"""Legacy setup shim: all metadata lives in pyproject.toml.

Kept so ``python setup.py develop`` still works on environments without
the ``wheel`` package (PEP 660 editable installs need it); normal
installs should use ``pip install -e .``.
"""

from setuptools import setup

setup()
