"""Planner benchmark: auto-selection vs. every fixed backend.

Runs the engine's ``algorithm="auto"`` against each fixed backend on the
five query-shape families (triangle / path / star / cycle / clique) the
planner's Table 1 decision table distinguishes, and records the results
to ``BENCH_planner.json``.  The headline number is the geometric mean of
``auto_time / best_fixed_time`` across workloads — the price of adaptive
selection, which must stay within 1.1× (plan caching amortizes the
planning work across the repeated executions a served workload sees).

Usage::

    PYTHONPATH=src python benchmarks/bench_planner.py \
        [--quick] [--repeats 3] [--output BENCH_planner.json] \
        [--max-ratio 1.1]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

#: Fixed backends every workload is raced against.
FIXED_BACKENDS = (
    "tetris-preloaded",
    "tetris-reloaded",
    "leapfrog",
    "yannakakis",
    "hash",
    "nested-loop",
)

#: Per-backend wall-time budget multiplier: a fixed backend slower than
#: BAILOUT × the current best is recorded from its first repeat only.
BAILOUT = 50.0


def _workloads(quick: bool):
    """(name, query, db) triples covering the planner's decision space."""
    import random

    from repro.relational.query import (
        clique_query,
        cycle_query,
        star_query,
        triangle_query,
    )
    from repro.relational.relation import Relation
    from repro.relational.schema import Domain
    from repro.relational.query import Database
    from repro.workloads.generators import (
        agm_tight_triangle,
        chained_path_db,
        dense_cycle_db,
        graph_triangle_db,
        random_graph_edges,
        random_path_db,
        split_path_instance,
    )

    def random_db(query, seed, n, depth):
        rng = random.Random(seed)
        rels = []
        for atom in query.atoms:
            rows = {
                tuple(rng.randrange(1 << depth) for _ in atom.attrs)
                for _ in range(n)
            }
            rels.append(Relation(atom, rows, Domain(depth)))
        return Database(rels)

    out = []

    # Triangles: a sparse social-network-style graph and the AGM-tight
    # worst case (where binary plans historically blow up).
    n_edges = 150 if quick else 600
    edges = random_graph_edges(80 if quick else 250, n_edges, seed=3)
    query, db = graph_triangle_db(edges)
    out.append(("triangle_sparse", query, db))
    query, db = agm_tight_triangle(5 if quick else 9)
    out.append(("triangle_agm_tight", query, db))

    # Paths: random (moderate output) and chained (output-controlled).
    query, db = random_path_db(3, 150 if quick else 500, seed=7, depth=8)
    out.append(("path3_random", query, db))
    query, db = chained_path_db(4, 120 if quick else 700, depth=10)
    out.append(("path4_chained", query, db))

    # The beyond-worst-case split instance: N grows, |C| stays O(1).
    query, db, _gao = split_path_instance(
        400 if quick else 2000, depth=12, seed=1
    )
    out.append(("path2_split_cert", query, db))

    # Star: acyclic, treewidth 1, high fan-out.
    q = star_query(4)
    out.append(("star4_random", q, random_db(q, 11, 150 if quick else 500, 8)))

    # Cycle: treewidth 2, the fhtw regime.
    query, db = dense_cycle_db(4, 60 if quick else 150, depth=7, seed=5)
    out.append(("cycle4_dense", query, db))

    # Clique: K4, treewidth 3 — the densest shape the suite prices.
    q = clique_query(4)
    out.append(("clique4_random", q, random_db(q, 13, 80 if quick else 200, 6)))

    return out


def _time_call(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    fn()  # warm-up: fills plan/index caches, stabilizes timing
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def run_suite(quick: bool, repeats: int) -> Dict[str, dict]:
    from repro.engine import clear_plan_cache, execute, plan_query

    results: Dict[str, dict] = {}
    for name, query, db in _workloads(quick):
        clear_plan_cache()
        entry: Dict[str, object] = {"backends": {}}
        reference: Optional[list] = None
        best_fixed = float("inf")
        best_backend = None
        for backend in FIXED_BACKENDS:
            t0 = time.perf_counter()
            try:
                probe = execute(query, db, algorithm=backend,
                                use_cache=False)
            except ValueError:
                entry["backends"][backend] = None  # not applicable
                continue
            first = time.perf_counter() - t0
            if reference is None:
                reference = probe.tuples
            elif probe.tuples != reference:
                raise AssertionError(
                    f"{backend} disagrees on {name}: "
                    f"{len(probe.tuples)} vs {len(reference)} tuples"
                )
            if best_fixed < float("inf") and first > BAILOUT * best_fixed:
                best_s = first  # too slow to repeat; one sample is plenty
            else:
                best_s, _ = _time_call(
                    lambda b=backend: execute(query, db, algorithm=b),
                    repeats,
                )
            entry["backends"][backend] = best_s
            if best_s < best_fixed:
                best_fixed = best_s
                best_backend = backend

        # Auto: plan once (cached thereafter), then time execution the
        # same way the fixed backends were timed.
        clear_plan_cache()
        plan = plan_query(query, db)
        auto_s, auto_result = _time_call(
            lambda: execute(query, db, algorithm="auto"), repeats
        )
        if auto_result.tuples != reference:
            raise AssertionError(f"auto disagrees on {name}")
        entry.update(
            auto_s=auto_s,
            auto_backend=plan.backend,
            best_fixed_s=best_fixed,
            best_fixed_backend=best_backend,
            ratio=auto_s / best_fixed,
            output_tuples=len(reference),
            n_tuples=db.total_tuples,
        )
        results[name] = entry
        print(
            f"  {name:20s} auto={plan.backend:17s} "
            f"{auto_s * 1e3:9.2f} ms   best={best_backend:17s} "
            f"{best_fixed * 1e3:9.2f} ms   ratio {entry['ratio']:.2f}"
        )
    return results


def geometric_mean(xs: List[float]) -> float:
    prod = 1.0
    for x in xs:
        prod *= x
    return prod ** (1.0 / len(xs))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="planner")
    parser.add_argument("--output", default="BENCH_planner.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true", help="small sizes")
    parser.add_argument(
        "--max-ratio", type=float, default=None,
        help="exit non-zero when geomean(auto/best) exceeds this",
    )
    args = parser.parse_args(argv)

    print(f"[{args.label}] planner benchmark "
          f"({'quick' if args.quick else 'full'}, best of {args.repeats})")
    results = run_suite(args.quick, args.repeats)
    ratios = [e["ratio"] for e in results.values()]
    geomean = geometric_mean(ratios)
    print(f"  {'geomean auto/best':20s} {geomean:.3f}")

    record = {
        "label": args.label,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
        "auto_vs_best_geomean": geomean,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.max_ratio is not None and geomean > args.max_ratio:
        print(f"FAIL: geomean {geomean:.3f} > {args.max_ratio}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
