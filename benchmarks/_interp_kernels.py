"""Frozen PR-5-era interpreted kernels — the bench_compiled baseline.

Verbatim copies of the interpreted hot loops as they stood before the
per-plan compiled kernels landed: the recursive leapfrog intersection
over row tuples (`repro.joins.leapfrog`), the generator-pipeline hash
cascade (`repro.joins.hashjoin` + `repro.joins.pipeline`), and the
frontier-resuming Tetris loop (`repro.core.tetris._run_resuming`).
``benchmarks/bench_compiled.py`` races these against the live compiled
kernels over the *same* pre-built data plane (sorted views, oracles), so
the measured ratio isolates kernel dispatch — not index builds.

Do not "fix" or modernize this module: it is a measurement baseline.
The only permitted edits are ones required to keep it importable.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

# -- leapfrog (frozen from repro.joins.leapfrog) --------------------------------


def _seek(rows, k: int, lo: int, hi: int, v: int) -> int:
    """First index in ``[lo, hi)`` whose row has ``row[k] >= v``."""
    if lo >= hi or rows[lo][k] >= v:
        return lo
    step = 1
    pos = lo
    while pos + step < hi and rows[pos + step][k] < v:
        pos += step
        step <<= 1
    lo = pos + 1
    hi = pos + step if pos + step < hi else hi
    while lo < hi:
        mid = (lo + hi) >> 1
        if rows[mid][k] < v:
            lo = mid + 1
        else:
            hi = mid
    return lo


def iter_leapfrog(query, db, gao) -> Iterator[Tuple[int, ...]]:
    """The PR-5 recursive leapfrog enumeration over cached sorted views."""
    gao = tuple(gao)
    n = len(gao)
    atom_rows: List[list] = []
    atom_depth: List[dict] = []
    for atom in query.atoms:
        order = tuple(a for a in gao if a in atom.attrs)
        atom_rows.append(db.sorted_view(atom.name, order).rows)
        atom_depth.append({gao.index(a): d for d, a in enumerate(order)})

    binding: List[int] = [0] * n
    positions = [gao.index(v) for v in query.variables]
    relevant = [
        [(i, depths[level]) for i, depths in enumerate(atom_depth)
         if level in depths]
        for level in range(n)
    ]

    def recurse(level: int, ranges: List[Tuple[int, int]]):
        if level == n:
            yield tuple(binding[i] for i in positions)
            return
        atoms_here = relevant[level]
        pos = {i: ranges[i][0] for i, _ in atoms_here}
        while True:
            v = None
            aligned = True
            for i, k in atoms_here:
                p = pos[i]
                if p >= ranges[i][1]:
                    return
                val = atom_rows[i][p][k]
                if v is None or val > v:
                    if v is not None:
                        aligned = False
                    v = val
                elif val < v:
                    aligned = False
            if not aligned:
                for i, k in atoms_here:
                    lo, hi = ranges[i]
                    p = _seek(atom_rows[i], k, pos[i], hi, v)
                    pos[i] = p
                    if p >= hi:
                        return
                continue
            binding[level] = v
            nxt = list(ranges)
            ends = {}
            for i, k in atoms_here:
                lo, hi = ranges[i]
                end = _seek(atom_rows[i], k, pos[i], hi, v + 1)
                nxt[i] = (pos[i], end)
                ends[i] = end
            yield from recurse(level + 1, nxt)
            for i, _ in atoms_here:
                pos[i] = ends[i]

    yield from recurse(0, [(0, len(rows)) for rows in atom_rows])


# -- hash (frozen from repro.joins.hashjoin / pipeline) -------------------------


def hash_stage(acc_attrs, right_attrs, right_rows):
    right_attrs = list(right_attrs)
    common = [a for a in acc_attrs if a in right_attrs]
    new_attrs = [a for a in right_attrs if a not in acc_attrs]
    rpos_common = [right_attrs.index(a) for a in common]
    rpos_new = [right_attrs.index(a) for a in new_attrs]
    lpos_common = [list(acc_attrs).index(a) for a in common]
    table = {}
    for t in right_rows:
        key = tuple(t[i] for i in rpos_common)
        table.setdefault(key, []).append(tuple(t[i] for i in rpos_new))
    return table, lpos_common, new_attrs


def probe(stream, table, lpos_common):
    for t in stream:
        key = tuple(t[i] for i in lpos_common)
        for ext in table.get(key, ()):
            yield t + ext


def iter_hash(query, db, order: Sequence[str]) -> Iterator[Tuple[int, ...]]:
    """The PR-5 generator-pipeline probe cascade for a given atom order."""
    first = query.atom(order[0])
    acc_attrs: List[str] = list(first.attrs)
    stream: Iterator[tuple] = iter(db[first.name].rows())
    for name in order[1:]:
        atom = query.atom(name)
        table, lpos_common, new_attrs = hash_stage(
            acc_attrs, atom.attrs, db[name]
        )
        stream = probe(stream, table, lpos_common)
        acc_attrs = acc_attrs + new_attrs
    positions = [acc_attrs.index(v) for v in query.variables]
    for t in stream:
        yield tuple(t[i] for i in positions)


# -- tetris (frozen from repro.core.tetris._run_resuming) -----------------------


def run_resuming(
    engine,
    oracle,
    max_outputs: Optional[int],
    on_demand: bool,
    trust_kb: bool = False,
) -> list:
    """The PR-5 frontier-resuming loop, as a standalone function.

    A verbatim copy of ``TetrisEngine._run_resuming`` with ``self``
    renamed to ``engine`` — every mode flag still branch-tested on every
    traversal step, which is precisely what the compiled kernel folds
    away.  The caller is responsible for preloading and for detaching
    the traversal frontier afterwards (see ``bench_compiled``).
    """
    from repro.core.boxes import box_contains
    from repro.core.resolution import Resolver, is_ordered_pair

    kb = engine.knowledge_base
    find_container = kb.find_container
    find_pinned = getattr(kb, "find_container_pinned", None)
    versioned = hasattr(kb, "version")
    find_shallowest = getattr(kb, "find_shallowest_container", None)
    kb_add = kb.add
    stats = engine.stats
    unit = engine._unit_marker
    cache = engine.cache_resolvents
    cache_resolvent = (
        kb_add if engine.resolvent_limit is None else engine._cache_resolvent
    )
    resolver = engine._resolver
    fast_resolve = type(resolver) is Resolver
    record = engine.stats.record
    uniform = engine.dims is None
    n = engine.ndim
    outputs: list = []
    stats.skeleton_calls += 1
    prefetch_key = None
    prefetch_boxes: list = []
    depth_bits = engine.depth + 1
    corner = None
    corner_covered = False
    frontier = None
    if uniform and hasattr(kb, "attach_frontier"):
        frontier = kb.attach_frontier()
        probe_fn = frontier.sync_and_probe

    stack: list = []
    current = engine._universe
    cursor = engine._initial_cursor(current) if uniform else 0
    pinned = None
    result = (True, engine._universe)

    while True:
        if current is not None:
            b = current
            stats.containment_queries += 1
            if frontier is not None:
                witness = probe_fn(b, cursor, pinned)
            else:
                witness = (
                    find_container(b)
                    if pinned is None or find_pinned is None
                    else find_pinned(b, pinned)
                )
            if witness is not None:
                stats.cache_hits += 1
                result = (True, witness)
                current = None
                continue
            if (cursor == n) if uniform else engine._is_unit_box(b):
                stats.resumes += 1
                if trust_kb:
                    gap_boxes = ()
                elif prefetch_key == b:
                    gap_boxes = prefetch_boxes
                    prefetch_key = None
                else:
                    sibling = None
                    if on_demand and stack:
                        frame = stack[-1]
                        if frame[4] == 0:
                            sibling = frame[1]
                    if sibling is not None:
                        batch = engine._oracle_lookup_many(
                            oracle, (b, sibling)
                        )
                        gap_boxes = batch[0]
                        prefetch_key = sibling
                        prefetch_boxes = batch[1]
                    else:
                        gap_boxes = engine._oracle_lookup(oracle, b)
                if gap_boxes:
                    loaded = 0
                    for box in gap_boxes:
                        if kb_add(box):
                            loaded += 1
                    stats.boxes_loaded += loaded
                    witness = (
                        find_shallowest(b)
                        if find_shallowest is not None
                        else None
                    )
                    if witness is None:
                        witness = gap_boxes[0]
                    stats.witness_depth_sum += (
                        sum(p.bit_length() for p in witness) - n
                    )
                    result = (True, witness)
                else:
                    outputs.append(engine._emit(b))
                    if (
                        max_outputs is not None
                        and len(outputs) >= max_outputs
                    ):
                        return outputs
                    kb_add(b)
                    stats.boxes_loaded += 1
                    result = (True, b)
                current = None
                continue
            if on_demand:
                if corner is None:
                    corner = tuple(
                        [p << (depth_bits - p.bit_length()) for p in b]
                    )
                    corner_covered = False
                if not corner_covered:
                    stats.containment_queries += 1
                    covered = (
                        probe_fn(corner, cursor)
                        if frontier is not None
                        else find_container(corner)
                    )
                    if covered is not None:
                        corner_covered = True
                    else:
                        gap_boxes = engine._oracle_lookup(oracle, corner)
                        corner_covered = True
                        if gap_boxes:
                            loaded = 0
                            for box in gap_boxes:
                                if kb_add(box):
                                    loaded += 1
                            stats.boxes_loaded += loaded
                            witness = None
                            for box in gap_boxes:
                                if box_contains(box, b):
                                    witness = box
                                    break
                            if witness is not None:
                                stats.resumes += 1
                                stats.witness_depth_sum += (
                                    sum(
                                        p.bit_length()
                                        for p in witness
                                    )
                                    - n
                                )
                                result = (True, witness)
                                current = None
                                continue
                        else:
                            outputs.append(engine._emit(corner))
                            if (
                                max_outputs is not None
                                and len(outputs) >= max_outputs
                            ):
                                return outputs
                            kb_add(corner)
                            stats.boxes_loaded += 1
            axis = cursor if uniform else engine._first_thick_generalized(b)
            head = b[:axis]
            tail = b[axis + 1:]
            half = b[axis] << 1
            b1 = head + (half,) + tail
            b2 = head + (half | 1,) + tail
            child_cursor = cursor
            if uniform and half >= unit:
                child_cursor = axis + 1
                while child_cursor < n and b[child_cursor] >= unit:
                    child_cursor += 1
            stack.append([
                b, b2, axis, None, 0, child_cursor,
                kb.version if versioned else None,
            ])
            current = b1
            cursor = child_cursor
            pinned = axis
            continue

        if not stack:
            return outputs

        frame = stack[-1]
        _, witness = result
        b, b2, axis, w1, stage, child_cursor, ver = frame
        if box_contains(witness, b):
            stack.pop()
            continue
        if stage == 0:
            frame[3] = witness
            frame[4] = 1
            current = b2
            cursor = child_cursor
            pinned = axis if ver is not None and ver == kb.version else None
            corner = None
            continue
        if fast_resolve:
            meet = list(map(max, w1, witness))
            meet[axis] = w1[axis] >> 1
            resolvent = tuple(meet)
            record(axis, is_ordered_pair(w1, witness, axis))
        else:
            resolvent = resolver.resolve(w1, witness, axis)
        if cache and resolvent != b:
            cache_resolvent(resolvent)
        stack.pop()
        result = (True, resolvent)
