"""Tetris kernel benchmark: frontier-resuming engine vs. the pre-PR kernel.

Races the live kernel (``mode="resume"`` with the masked/pinned/frontier
dyadic tree) against the frozen pre-PR kernel embedded in
``benchmarks/_seed_kernel.py`` — the PR-3 engine with plain prefix
walks, per-node ``min(box)`` unit scans, tuple-churn SAO translation,
and the restart-per-output loop as the Reloaded default — on the Table 1
Tetris workloads:

* **triangle** — random-graph and AGM-tight triangle joins (rows 2–3),
  preloaded and reloaded;
* **tw1** — treewidth-1 path joins evaluated by Tetris-Reloaded, the
  certificate row (rows 4–5), on diagonal and random instances;
* **acyclic** — the same acyclic path families under Tetris-Preloaded
  with the reverse-GYO SAO (row 1 / Theorem D.8).

Both kernels consume the *same* pre-built oracle (indexes built and gap
boxes materialized once per workload in setup), so the measured ratio
isolates the kernel hot path the way a served system amortizes its data
plane.  Each side runs its era's default configuration: the seed kernel
uses one-pass for preloaded and the faithful restarting loop for
reloaded (its shipped defaults); the live kernel uses the
frontier-resuming mode everywhere.  Outputs are asserted identical on
every run.  The headline number is the geometric mean of
``seed_time / new_time``, recorded to ``BENCH_tetris_core.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_tetris_core.py \
        [--quick] [--repeats 3] [--output BENCH_tetris_core.json] \
        [--min-speedup 2.0]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Tuple

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _setup(query, db, gao=None):
    """Build the shared data plane once: oracle, SAO, warm gap boxes."""
    from repro.joins.tetris_join import make_oracle

    oracle, gao = make_oracle(query, db, gao=gao)
    attrs = oracle.attrs
    sao = tuple(attrs.index(a) for a in gao)
    oracle.boxes()  # materialize + memoize the lifted gap-box set
    return oracle, sao, db.domain.depth


def _runners(oracle, sao, depth, preload: bool):
    """(seed_run, new_run) closures over the shared oracle."""
    from benchmarks._seed_kernel import TetrisEngine as SeedEngine
    from repro.core.resolution import ResolutionStats
    from repro.core.tetris import TetrisEngine

    ndim = len(sao)

    def seed_run():
        engine = SeedEngine(ndim, depth, sao=sao, stats=ResolutionStats())
        # The pre-PR defaults: one-pass for preloaded, faithful
        # restart-per-output for reloaded.
        return engine.run(oracle, preload=preload, one_pass=preload)

    def new_run():
        engine = TetrisEngine(ndim, depth, sao=sao, stats=ResolutionStats())
        return engine.run(oracle, preload=preload, mode="resume")

    return seed_run, new_run


def _workloads(quick: bool) -> List[Tuple[str, Callable]]:
    """(name, setup) pairs; setup() returns (seed_run, new_run)."""
    from repro.workloads.generators import (
        agm_tight_triangle,
        chained_path_db,
        graph_triangle_db,
        random_graph_edges,
        random_path_db,
    )

    tri_nodes, tri_edges = (120, 400) if quick else (320, 1200)
    agm_m = 12 if quick else 24
    chain_k, chain_d = (384, 11) if quick else (2048, 13)
    rand_m, rand_d = (800, 11) if quick else (3200, 13)

    def triangle(variant):
        def setup():
            q, db = graph_triangle_db(
                random_graph_edges(tri_nodes, tri_edges, seed=3)
            )
            return _runners(*_setup(q, db), preload=variant == "preloaded")

        return setup

    def triangle_agm():
        def setup():
            q, db = agm_tight_triangle(agm_m)
            return _runners(*_setup(q, db), preload=True)

        return setup

    def path_diag(preload):
        def setup():
            q, db = chained_path_db(3, chain_k, depth=chain_d)
            return _runners(*_setup(q, db), preload=preload)

        return setup

    def path_random(preload):
        def setup():
            q, db = random_path_db(3, rand_m, seed=17, depth=rand_d)
            return _runners(*_setup(q, db), preload=preload)

        return setup

    return [
        ("triangle_preloaded", triangle("preloaded")),
        ("triangle_reloaded", triangle("reloaded")),
        ("triangle_agm_preloaded", triangle_agm()),
        ("tw1_diag_reloaded", path_diag(False)),
        ("tw1_random_reloaded", path_random(False)),
        ("acyclic_diag_preloaded", path_diag(True)),
        ("acyclic_random_preloaded", path_random(True)),
    ]


def _time_best(fn: Callable, repeats: int) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def geometric_mean(xs: List[float]) -> float:
    prod = 1.0
    for x in xs:
        prod *= x
    return prod ** (1.0 / len(xs))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="tetris-core")
    parser.add_argument("--output", default="BENCH_tetris_core.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true", help="small sizes")
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero when geomean(seed/new) falls below this",
    )
    args = parser.parse_args(argv)

    print(f"[{args.label}] tetris-kernel benchmark "
          f"({'quick' if args.quick else 'full'}, best of {args.repeats})")
    results: Dict[str, dict] = {}
    for name, setup in _workloads(args.quick):
        seed_run, new_run = setup()
        # Interleave a warm-up + parity assertion before timing.
        seed_out = sorted(seed_run())
        new_out = sorted(new_run())
        assert seed_out == new_out, f"{name}: kernels disagree"
        seed_s, _ = _time_best(seed_run, args.repeats)
        new_s, _ = _time_best(new_run, args.repeats)
        speedup = seed_s / new_s
        results[name] = {
            "seed_s": seed_s,
            "new_s": new_s,
            "speedup": speedup,
            "outputs": len(new_out),
        }
        print(
            f"  {name:26s} seed {seed_s * 1e3:9.2f} ms   "
            f"new {new_s * 1e3:9.2f} ms   speedup {speedup:5.2f}×"
        )
    geomean = geometric_mean([r["speedup"] for r in results.values()])
    print(f"  {'geomean speedup':26s} {geomean:.3f}×")

    record = {
        "label": args.label,
        "quick": args.quick,
        "repeats": args.repeats,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workloads": results,
        "geomean_speedup": geomean,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.min_speedup is not None and geomean < args.min_speedup:
        print(f"FAIL: geomean {geomean:.3f} < {args.min_speedup}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
