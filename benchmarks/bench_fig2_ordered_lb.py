"""Figure 2, Ordered vs Geometric rows — Example F.1 (Thms 5.4 / 4.11).

Paper claims:

* **Theorem 5.4**: Ordered Geometric Resolution needs Ω(|C|^{n-1}) on
  adversarial instances; Example F.1 realizes Ω(|C|²) for n = 3 under
  *every* SAO.
* **Theorem 4.11**: lifting through the Balance map (Tetris-LB) solves
  the same instances with Õ(|C|^{n/2}) resolutions.

Measured: on Example F.1, the best-over-all-SAOs ordered count fits
exponent ≈ 2 in |C| while Tetris-LB fits ≈ 1.5 — and LB wins outright at
every size.
"""

import itertools

import pytest

from benchmarks.conftest import loglog_slope, print_sweep
from repro.core.balance import tetris_preloaded_lb, tetris_reloaded_lb
from repro.core.resolution import ResolutionStats
from repro.core.tetris import solve_bcp
from repro.workloads.hard_instances import example_f1

DEPTHS = (4, 5, 6, 7)


def _best_ordered(boxes, d):
    """Min resolutions over all six SAOs (the Ω bound defeats them all)."""
    best = None
    for sao in itertools.permutations(range(3)):
        stats = ResolutionStats()
        assert solve_bcp(boxes, 3, d, sao=sao, stats=stats) == []
        if best is None or stats.resolutions < best:
            best = stats.resolutions
    return best


def test_f1_ordered_vs_loadbalanced(benchmark):
    sizes, ordered_counts, lb_counts, rows = [], [], [], []
    for d in DEPTHS:
        boxes = example_f1(d)
        c = len(boxes)
        ordered = _best_ordered(boxes, d)
        lb_stats = ResolutionStats()
        assert tetris_preloaded_lb(boxes, 3, d, stats=lb_stats) == []
        sizes.append(c)
        ordered_counts.append(ordered)
        lb_counts.append(lb_stats.resolutions)
        rows.append((d, c, ordered, lb_stats.resolutions))
    print_sweep(
        "Figure 2: Example F.1 — ordered (best SAO) vs load-balanced",
        ("depth", "|C|", "ordered best", "Tetris-LB"),
        rows,
    )
    ordered_slope = loglog_slope(sizes, ordered_counts)
    lb_slope = loglog_slope(sizes, lb_counts)
    print(
        f"ordered exponent {ordered_slope:.2f} (paper: 2.0), "
        f"LB exponent {lb_slope:.2f} (paper: 1.5)"
    )
    assert ordered_slope > 1.6, "ordered resolution did not blow up"
    assert lb_slope < ordered_slope - 0.3, "LB did not separate"
    assert lb_counts[-1] < ordered_counts[-1], "LB must win at scale"
    boxes = example_f1(6)
    benchmark(lambda: tetris_preloaded_lb(boxes, 3, 6))


def test_f1_ordered_timing(benchmark):
    """Timing of plain ordered Tetris on the same instance, for contrast."""
    boxes = example_f1(6)
    benchmark(lambda: solve_bcp(boxes, 3, 6))


def test_online_lb_matches(benchmark):
    """The online (Reloaded) LB variant solves F.1 too (Appendix F.6)."""
    boxes = example_f1(5)
    assert tetris_reloaded_lb(boxes, 3, 5) == []
    benchmark(lambda: tetris_reloaded_lb(boxes, 3, 5))
