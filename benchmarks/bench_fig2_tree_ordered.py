"""Figure 2, Tree Ordered row — caching separations (Thms 5.1 / 5.2).

Two claims:

* **Theorem 5.1**: Tree Ordered Geometric Resolution (Tetris without
  resolvent caching) still achieves the AGM bound — measured: no-cache
  resolutions on the AGM-tight triangle stay within the N^{3/2}+Z shape.
* **Theorem 5.2**: Tree Ordered resolution needs Ω(N^{n/2}) on a
  treewidth-1 instance that cached (Ordered) resolution solves in Õ(N) —
  measured on the shared-suffix family: the cached count grows ~N while
  the uncached count grows ~N^{3/2} (ratio doubling per depth step).
"""

import pytest

from benchmarks.conftest import loglog_slope, print_sweep
from repro.core.resolution import ResolutionStats
from repro.core.tetris import solve_bcp
from repro.joins.tetris_join import join_tetris
from repro.workloads.generators import agm_tight_triangle
from repro.workloads.hard_instances import shared_suffix_instance


def test_tree_ordered_achieves_agm(benchmark):
    """Theorem 5.1: no-cache Tetris stays within the AGM shape."""
    xs, ys = [], []
    for m in (4, 8, 12, 16):
        query, db = agm_tight_triangle(m)
        result = join_tetris(query, db, cache_resolvents=False)
        assert len(result) == m ** 3
        xs.append(m * m)  # N per relation
        ys.append(result.stats.resolutions)
    slope = loglog_slope(xs, ys)
    print(f"\nno-cache AGM exponent vs N: {slope:.2f} (paper: ≤ 1.5)")
    assert slope < 1.8
    query, db = agm_tight_triangle(8)
    benchmark(lambda: join_tetris(query, db, cache_resolvents=False))


def test_caching_separation_shape(benchmark):
    """Theorem 5.2: cached ~N, uncached ~N^{3/2} on the tw-1 gadget."""
    rows = []
    ns, cached_counts, uncached_counts = [], [], []
    for d in (2, 3, 4, 5):
        boxes = shared_suffix_instance(d)
        cached = ResolutionStats()
        uncached = ResolutionStats()
        assert solve_bcp(boxes, 3, d, stats=cached) == []
        assert solve_bcp(
            boxes, 3, d, cache_resolvents=False, stats=uncached
        ) == []
        ns.append(len(boxes))
        cached_counts.append(cached.resolutions)
        uncached_counts.append(uncached.resolutions)
        rows.append(
            (d, len(boxes), cached.resolutions, uncached.resolutions,
             uncached.resolutions / cached.resolutions)
        )
    print_sweep(
        "Figure 2: caching separation on a treewidth-1 instance",
        ("depth", "N", "cached", "uncached", "ratio"),
        rows,
    )
    cached_slope = loglog_slope(ns, cached_counts)
    uncached_slope = loglog_slope(ns, uncached_counts)
    print(
        f"cached exponent {cached_slope:.2f} (paper: 1.0), "
        f"uncached exponent {uncached_slope:.2f} (paper: 1.5)"
    )
    assert cached_slope < 1.2
    assert uncached_slope > cached_slope + 0.25
    boxes = shared_suffix_instance(4)
    benchmark(lambda: solve_bcp(boxes, 3, 4, cache_resolvents=False))
