"""Table 1, row 2 — arbitrary queries within the AGM bound.

Paper claim (Theorem D.2): Tetris-Preloaded runs in Õ(N + AGM(Q)).  On
the AGM-tight triangle family (R = S = T = [m]²) the bound is tight:
AGM = N^{3/2} = m³ and the output realizes it.

Measured shape: resolutions vs m should scale like m³ (slope ≈ 3 in m,
i.e. 1.5 in N), and stay within a polylog factor of AGM(Q).  A binary
hash-join plan is timed for contrast — on this family its intermediate
result equals the output, so the interesting contrast is resolution
counts vs the AGM bound, which the crossover bench complements.
"""

import pytest

from benchmarks.conftest import loglog_slope, print_sweep
from repro.joins.hashjoin import join_hash
from repro.joins.leapfrog import join_leapfrog
from repro.joins.tetris_join import join_tetris
from repro.relational.agm import agm_bound
from repro.workloads.generators import agm_tight_triangle

SIZES = (4, 8, 12, 16, 24)


def test_agm_bound_scaling(benchmark):
    """Resolutions track AGM = N^{3/2} on the worst-case triangle family."""
    xs, ys, rows = [], [], []
    for m in SIZES:
        query, db = agm_tight_triangle(m)
        result = join_tetris(query, db, variant="preloaded")
        agm = agm_bound(query, db)
        assert len(result) == m ** 3  # output realizes the AGM bound
        xs.append(db.total_tuples / 3)  # N per relation = m²
        ys.append(result.stats.resolutions)
        rows.append(
            (m, db.total_tuples, int(agm), len(result),
             result.stats.resolutions)
        )
    slope = loglog_slope(xs, ys)
    print_sweep(
        "Table 1 row 2: AGM-tight triangle, Tetris-Preloaded",
        ("m", "N total", "AGM", "Z", "resolutions"),
        rows,
    )
    print(f"measured exponent vs N: {slope:.2f} (paper: 1.5)")
    assert 1.25 < slope < 1.75, f"exponent {slope:.2f} off the AGM shape"
    query, db = agm_tight_triangle(SIZES[2])
    benchmark(lambda: join_tetris(query, db, variant="preloaded"))


def test_agm_leapfrog_same_shape(benchmark):
    """The WCOJ baseline shows the same N^{3/2} output-bound behavior."""
    query, db = agm_tight_triangle(SIZES[2])
    out = benchmark(lambda: join_leapfrog(query, db))
    assert len(out) == SIZES[2] ** 3


def test_agm_hash_plan_baseline(benchmark):
    """Binary-plan timing on the same instance, for the comparison table."""
    query, db = agm_tight_triangle(SIZES[2])
    out = benchmark(lambda: join_hash(query, db))
    assert len(out) == SIZES[2] ** 3


def test_figure5_empty_triangle_constant_work(benchmark):
    """Figure 5: the MSB instance has huge N but O(1) dyadic gap boxes —
    with dyadic indexes Tetris finishes in constant work at any depth."""
    from repro.core.resolution import ResolutionStats
    from repro.core.tetris import solve_bcp
    from repro.workloads.hard_instances import msb_triangle

    counts = []
    for d in (4, 8, 12, 16):
        stats = ResolutionStats()
        assert solve_bcp(msb_triangle(d), 3, d, stats=stats) == []
        counts.append(stats.resolutions)
    print(f"\nFigure 5 resolutions by depth: {counts} (flat = O(1))")
    assert counts[-1] == counts[1]  # depth-independent
    benchmark(lambda: solve_bcp(msb_triangle(12), 3, 12))
