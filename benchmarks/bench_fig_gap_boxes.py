"""Figures 1, 3, 4 — gap-box geometry of the index structures.

* Figures 1b / 3a: the two B-tree sort orders of the running example
  produce different gap-box sets, each covering the exact complement.
* Figure 3b + footnote 9: a dyadic (quadtree) index can need
  exponentially fewer boxes (the MSB-complement relation: 2 vs ≥ 2^{d-1}).
* Figure 4 / Proposition B.14: dyadic decomposition of an arbitrary
  interval costs ≤ 2d segments — so B-tree gap counts stay Õ(N).
"""

import random

import pytest

from benchmarks.conftest import print_sweep
from repro.core.intervals import decompose_range
from repro.indexes.btree import BTreeIndex
from repro.indexes.dyadic_index import DyadicTreeIndex, KDTreeIndex
from repro.relational.relation import Relation
from repro.relational.schema import Domain, RelationSchema


def _random_relation(n, depth, seed):
    rng = random.Random(seed)
    rows = {
        (rng.randrange(1 << depth), rng.randrange(1 << depth))
        for _ in range(n)
    }
    return Relation(RelationSchema("R", ("A", "B")), rows, Domain(depth))


def test_gap_box_counts_by_index(benchmark):
    """Per-index gap-box counts on random relations (the Fig 1/3 story)."""
    depth = 8
    rows = []
    for n in (25, 50, 100, 200):
        rel = _random_relation(n, depth, seed=n)
        bt = BTreeIndex(rel, ("A", "B")).count_gap_boxes()
        bt2 = BTreeIndex(rel, ("B", "A")).count_gap_boxes()
        quad = DyadicTreeIndex(rel).count_gap_boxes()
        kd = KDTreeIndex(rel).count_gap_boxes()
        rows.append((len(rel), bt, bt2, quad, kd))
        # Õ(N) for B-trees: each tuple contributes ≤ 2d boxes per level.
        assert bt <= (len(rel) + 1) * 2 * depth * 2
    print_sweep(
        "Figures 1/3: gap boxes per index type (random relations)",
        ("N", "btree(A,B)", "btree(B,A)", "quadtree", "kdtree"),
        rows,
    )
    rel = _random_relation(100, depth, seed=100)
    benchmark(lambda: BTreeIndex(rel, ("A", "B")).count_gap_boxes())


def test_msb_exponential_separation(benchmark):
    """Footnote 9: quadtree needs 2 boxes, B-tree ≥ 2^{d-1}."""
    rows = []
    for depth in (3, 4, 5, 6):
        side = 1 << depth
        tuples = [
            (a, b)
            for a in range(side)
            for b in range(side)
            if (a >> (depth - 1)) != (b >> (depth - 1))
        ]
        rel = Relation(
            RelationSchema("R", ("A", "B")), tuples, Domain(depth)
        )
        quad = DyadicTreeIndex(rel).count_gap_boxes()
        bt = BTreeIndex(rel, ("A", "B")).count_gap_boxes()
        rows.append((depth, len(rel), quad, bt))
        assert quad == 2
        assert bt >= side
    print_sweep(
        "Footnote 9: MSB-complement relation, quadtree vs B-tree",
        ("depth", "N", "quadtree boxes", "btree boxes"),
        rows,
    )
    rel = Relation(
        RelationSchema("R", ("A", "B")),
        [(a, b) for a in range(32) for b in range(32)
         if (a >> 4) != (b >> 4)],
        Domain(5),
    )
    benchmark(lambda: DyadicTreeIndex(rel).count_gap_boxes())


def test_dyadic_decomposition_bound(benchmark):
    """Proposition B.14: any range decomposes into ≤ 2d dyadic pieces."""
    rng = random.Random(0)
    for depth in (8, 12, 16):
        worst = 0
        for _ in range(500):
            a = rng.randrange(1 << depth)
            b = rng.randrange(1 << depth)
            lo, hi = min(a, b), max(a, b)
            worst = max(worst, len(decompose_range(lo, hi, depth)))
        print(f"depth {depth}: worst decomposition {worst} ≤ {2 * depth}")
        assert worst <= 2 * depth
    benchmark(
        lambda: [
            decompose_range(1, (1 << 16) - 2, 16) for _ in range(100)
        ]
    )
