"""Table 1, row 4 — treewidth-w queries in Õ(|C|^{w+1} + Z).

Paper claim (Theorem 4.9 / Corollary 4.10): with an elimination-width-w
SAO, Tetris-Reloaded's work is polynomial in the certificate size — and
in particular *independent of N* when the certificate is small.

Measured shape: on split 4-cycle instances (treewidth 2) whose
certificate stays O(1) as N grows, boxes loaded and resolutions stay
flat across a 27× growth in N.
"""

import pytest

from benchmarks.conftest import print_sweep
from repro.core.resolution import ResolutionStats
from repro.joins.tetris_join import join_tetris
from repro.relational.hypergraph import Hypergraph
from repro.relational.query import cycle_query
from repro.workloads.generators import split_cycle_instance

SIZES = (30, 90, 270, 810)
DEPTH = 10


def test_cycle_treewidth_2():
    width, _ = Hypergraph.of_query(cycle_query(4)).treewidth()
    assert width == 2


def test_tw2_certificate_flat(benchmark):
    """Split 4-cycle: work flat in N when |C| = O(1)."""
    rows = []
    loaded = []
    for m in SIZES:
        query, db, gao = split_cycle_instance(m, depth=DEPTH, seed=2)
        stats = ResolutionStats()
        result = join_tetris(
            query, db, variant="reloaded", gao=gao, stats=stats
        )
        assert result.tuples == []
        rows.append(
            (db.total_tuples, stats.boxes_loaded, stats.resolutions)
        )
        loaded.append(stats.boxes_loaded)
    print_sweep(
        "Table 1 row 4: split 4-cycle (tw = 2), Tetris-Reloaded",
        ("N", "boxes loaded", "resolutions"),
        rows,
    )
    assert loaded[-1] <= loaded[0] + 2
    assert max(loaded) <= 10
    query, db, gao = split_cycle_instance(SIZES[1], depth=DEPTH, seed=2)
    benchmark(
        lambda: join_tetris(query, db, variant="reloaded", gao=gao)
    )


def test_tw2_cert_polynomial_envelope(benchmark):
    """With a k-box certificate, resolutions stay under Õ(|C|^{w+1} + Z).

    We synthesize 4-cycle BCP instances whose certificate has ~k boxes by
    splitting the A1 domain into k alternating bands.
    """
    import random

    from repro.core.tetris import solve_bcp
    from repro.relational.query import cycle_query
    from repro.workloads.generators import db_from_tuples

    depth = 6

    def make(bands):
        rng = random.Random(4)
        # A1-values of R0 avoid `bands` dyadic stripes that A1-values of
        # R1 cover, so emptiness needs ~2·bands boxes.
        query = cycle_query(4)
        width = (1 << depth) // (2 * bands)
        r0_vals = [
            v for v in range(1 << depth) if (v // width) % 2 == 0
        ]
        r1_vals = [
            v for v in range(1 << depth) if (v // width) % 2 == 1
        ]
        rows = {
            "R0": sorted({(rng.randrange(1 << depth), rng.choice(r0_vals))
                          for _ in range(150)}),
            "R1": sorted({(rng.choice(r1_vals), rng.randrange(1 << depth))
                          for _ in range(150)}),
            "R2": sorted({(rng.randrange(1 << depth),
                           rng.randrange(1 << depth))
                          for _ in range(150)}),
            "R3": sorted({(rng.randrange(1 << depth),
                           rng.randrange(1 << depth))
                          for _ in range(150)}),
        }
        return query, db_from_tuples(query, rows, depth)

    rows = []
    for bands in (1, 2, 4, 8):
        query, db = make(bands)
        stats = ResolutionStats()
        result = join_tetris(
            query, db, variant="reloaded", gao=("A1", "A0", "A2", "A3"),
            stats=stats,
        )
        assert result.tuples == []
        cert = 2 * bands  # alternating stripes need ~2·bands boxes
        rows.append((bands, cert, stats.boxes_loaded, stats.resolutions))
        # w+1 = 3 exponent envelope with polylog slack.
        assert stats.resolutions <= (cert ** 3 + 1) * depth ** 4
    print_sweep(
        "Table 1 row 4: banded 4-cycle, certificate growth",
        ("bands", "~|C|", "boxes loaded", "resolutions"),
        rows,
    )
    query, db = make(4)
    benchmark(
        lambda: join_tetris(
            query, db, variant="reloaded", gao=("A1", "A0", "A2", "A3")
        )
    )
