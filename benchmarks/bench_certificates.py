"""Examples B.3 / B.7 / Proposition B.6 — certificates depend on indexes.

Paper claims:

* a GAO-consistent certificate can be Ω(N) under one attribute order and
  O(1) under another (Example B.3);
* with richer (dyadic) indexes the box certificate can be O(1) even when
  every B-tree order needs Ω(N) (Examples B.7/B.8, Proposition B.6);
* |C| = O(N) always (gap boxes from one consistent index suffice).
"""

import pytest

from benchmarks.conftest import print_sweep
from repro.core.certificates import minimal_certificate
from repro.indexes.btree import BTreeIndex
from repro.indexes.dyadic_index import DyadicTreeIndex
from repro.relational.relation import Relation
from repro.relational.schema import Domain, RelationSchema


def _bowtie_band_relation(depth):
    """Example B.3's S(A,B): a horizontal band (all a, b in a thin slab)."""
    side = 1 << depth
    band = side // 2
    tuples = [(a, band) for a in range(side)]
    return Relation(RelationSchema("S", ("A", "B")), tuples, Domain(depth))


def test_gao_changes_certificate(benchmark):
    """Example B.3: (A,B)-order needs Ω(N) boxes, (B,A)-order O(log)."""
    rows = []
    for depth in (3, 4, 5):
        rel = _bowtie_band_relation(depth)
        ab_boxes = [b for b, _ in BTreeIndex(rel, ("A", "B")).gap_boxes()]
        ba_boxes = [b for b, _ in BTreeIndex(rel, ("B", "A")).gap_boxes()]
        cert_ab = minimal_certificate(ab_boxes, 2, depth)
        # (B,A) boxes live in (B,A) component order; certificate size is
        # order-independent so compute it there directly.
        cert_ba = minimal_certificate(ba_boxes, 2, depth)
        rows.append(
            (depth, len(rel), len(cert_ab), len(cert_ba))
        )
        assert len(cert_ab) >= len(rel) / (2 * depth)
        assert len(cert_ba) <= 2 * depth
    print_sweep(
        "Example B.3: certificate size by B-tree sort order (band relation)",
        ("depth", "N", "|C| under (A,B)", "|C| under (B,A)"),
        rows,
    )
    rel = _bowtie_band_relation(4)
    boxes = [b for b, _ in BTreeIndex(rel, ("B", "A")).gap_boxes()]
    benchmark(lambda: minimal_certificate(boxes, 2, 4))


def test_dyadic_index_constant_certificate(benchmark):
    """Proposition B.6 flavor: quadtree certificate O(1), B-tree Ω(N)."""
    rows = []
    for depth in (3, 4, 5):
        side = 1 << depth
        tuples = [
            (a, b)
            for a in range(side)
            for b in range(side)
            if (a >> (depth - 1)) != (b >> (depth - 1))
        ]
        rel = Relation(
            RelationSchema("R", ("A", "B")), tuples, Domain(depth)
        )
        quad_boxes = [b for b, _ in DyadicTreeIndex(rel).gap_boxes()]
        bt_boxes = [
            b for b, _ in BTreeIndex(rel, ("A", "B")).gap_boxes()
        ]
        cert_quad = minimal_certificate(quad_boxes, 2, depth)
        cert_bt = minimal_certificate(bt_boxes, 2, depth)
        rows.append((depth, len(rel), len(cert_quad), len(cert_bt)))
        assert len(cert_quad) == 2
        assert len(cert_bt) >= side / 2
    print_sweep(
        "Examples B.7/B.8: MSB relation, certificate by index power",
        ("depth", "N", "|C| quadtree", "|C| btree(A,B)"),
        rows,
    )
    benchmark(
        lambda: minimal_certificate(quad_boxes, 2, 5)
    )


def test_certificate_at_most_input(benchmark):
    """|C| ≤ #gap boxes = Õ(N) on random relations (Section 1's claim)."""
    import random

    rng = random.Random(5)
    depth = 5
    rows_out = []
    for n in (10, 20, 40):
        tuples = {
            (rng.randrange(1 << depth), rng.randrange(1 << depth))
            for _ in range(n)
        }
        rel = Relation(
            RelationSchema("R", ("A", "B")), tuples, Domain(depth)
        )
        boxes = [b for b, _ in BTreeIndex(rel, ("A", "B")).gap_boxes()]
        cert = minimal_certificate(boxes, 2, depth)
        rows_out.append((len(rel), len(boxes), len(cert)))
        assert len(cert) <= len(boxes)
    print_sweep(
        "Certificate vs gap boxes (random relations)",
        ("N", "gap boxes", "|C| (greedy)"),
        rows_out,
    )
    benchmark(lambda: minimal_certificate(boxes, 2, depth))
