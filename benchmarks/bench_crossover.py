"""Beyond-worst-case crossover — who wins as |C|/N shrinks (§1, fn 1).

Paper narrative: worst-case-optimal joins must examine Θ(N) data, while
certificate-based Tetris-Reloaded touches Õ(|C| + Z) gap boxes.  When
the certificate is comparable to N the WCOJ baseline's lower constants
win (CPython amplifies this); as |C|/N → 0 Tetris-Reloaded overtakes it.

Measured: runtimes of Tetris-Reloaded (excluding index construction —
indexes are precomputed in both worlds) vs Leapfrog on a family whose
certificate is fixed while N sweeps two orders of magnitude; the bench
reports the crossover point.
"""

import time

import pytest

from benchmarks.conftest import print_sweep
from repro.core.tetris import TetrisEngine
from repro.joins.leapfrog import join_leapfrog
from repro.joins.tetris_join import make_oracle
from repro.workloads.generators import split_path_instance

DEPTH = 12
SIZES = (50, 200, 800, 3200)


def _tetris_time(query, db, gao):
    oracle, gao = make_oracle(query, db, gao=gao)
    oracle.boxes()  # not timed: indexes are a preprocessing artifact
    attrs = oracle.attrs
    sao = tuple(attrs.index(a) for a in gao)
    t0 = time.perf_counter()
    engine = TetrisEngine(len(attrs), DEPTH, sao=sao)
    out = engine.run(oracle, preload=False)
    return time.perf_counter() - t0, out


def test_crossover_fixed_certificate(benchmark):
    rows = []
    wins = []
    for m in SIZES:
        query, db, gao = split_path_instance(m, depth=DEPTH, seed=1)
        t_tetris, out = _tetris_time(query, db, gao)
        assert out == []
        t0 = time.perf_counter()
        assert join_leapfrog(query, db, gao=gao) == []
        t_lf = time.perf_counter() - t0
        rows.append(
            (db.total_tuples, round(t_tetris * 1e3, 2),
             round(t_lf * 1e3, 2),
             "tetris" if t_tetris < t_lf else "leapfrog")
        )
        wins.append(t_tetris < t_lf)
    print_sweep(
        "Crossover: fixed |C|, growing N (times in ms)",
        ("N", "tetris-reloaded", "leapfrog", "winner"),
        rows,
    )
    # The shape claim: Tetris must win at the largest N (its work is
    # flat while the baseline scans the input).
    assert wins[-1], "Tetris-Reloaded should win once |C| ≪ N"
    query, db, gao = split_path_instance(SIZES[-1], depth=DEPTH, seed=1)
    oracle, gao = make_oracle(query, db, gao=gao)
    oracle.boxes()
    attrs = oracle.attrs
    sao = tuple(attrs.index(a) for a in gao)

    def run():
        engine = TetrisEngine(len(attrs), DEPTH, sao=sao)
        return engine.run(oracle, preload=False)

    assert benchmark(run) == []


def test_dense_regime_baseline_competitive(benchmark):
    """When |C| ≈ N (random dense data) the WCOJ baseline is competitive:
    the paper's beyond-worst-case story is about *sparse certificates*."""
    from repro.workloads.generators import random_path_db

    query, db = random_path_db(2, 300, seed=4, depth=8)
    t0 = time.perf_counter()
    lf = join_leapfrog(query, db)
    t_lf = time.perf_counter() - t0
    print(f"\ndense regime: leapfrog {t_lf * 1e3:.1f} ms on N = "
          f"{db.total_tuples}")
    benchmark(lambda: join_leapfrog(query, db))
