"""Ablations of the design choices DESIGN.md calls out.

* **Multilevel dyadic tree vs linear scan** (Appendix C.1): the Õ(1)
  containment query is what makes Lemma 4.5's "runtime ≈ #resolutions"
  true; with a flat list each containment query costs O(|A|) and the
  engine slows superlinearly as the knowledge base grows.
* **One-pass vs restarting outer loop** (TetrisSkeleton2, Theorem D.2's
  proof): both produce identical output; one-pass avoids the per-output
  root restart.  Resolution counts must match exactly — the difference
  is pure traversal overhead.
* **Resolvent caching** is ablated in bench_fig2_tree_ordered.
"""

import time

import pytest

from benchmarks.conftest import print_sweep
from repro.core.resolution import ResolutionStats
from repro.core.stores import ListStore
from repro.core.tetris import BoxSetOracle, TetrisEngine
from tests.helpers import random_boxes

NDIM, DEPTH = 3, 4


def _run(boxes, store=None, one_pass=True, stats=None):
    engine = TetrisEngine(
        NDIM, DEPTH, stats=stats,
        knowledge_base=store,
    )
    oracle = BoxSetOracle(boxes, NDIM)
    return engine.run(oracle, preload=True, one_pass=one_pass)


def test_store_ablation(benchmark):
    """Dyadic tree vs flat list: same answers, diverging runtimes.

    Measured on the structured hard instances, where most containment
    queries *miss* and the flat list pays O(|A|) per miss; the tree walks
    only stored prefixes (Õ(1), Prop B.12).  On random fat-box inputs the
    list can even win — hits come early — which is why the paper's claim
    is about the worst case.
    """
    from repro.workloads.hard_instances import (
        example_f1,
        shared_suffix_instance,
    )

    workloads = [
        ("shared-suffix d=4", shared_suffix_instance(4), 4),
        ("shared-suffix d=5", shared_suffix_instance(5), 5),
        ("example F.1 d=6", example_f1(6), 6),
    ]
    rows = []
    for name, boxes, depth in workloads:
        engine_kwargs = dict(ndim=3, depth=depth)
        t0 = time.perf_counter()
        tree_engine = TetrisEngine(**engine_kwargs)
        tree_out = tree_engine.run(
            BoxSetOracle(boxes, 3), preload=True, one_pass=True
        )
        t_tree = time.perf_counter() - t0
        t0 = time.perf_counter()
        list_engine = TetrisEngine(
            **engine_kwargs, knowledge_base=ListStore(3)
        )
        list_out = list_engine.run(
            BoxSetOracle(boxes, 3), preload=True, one_pass=True
        )
        t_list = time.perf_counter() - t0
        assert sorted(tree_out) == sorted(list_out)
        rows.append(
            (name, len(boxes), round(t_tree * 1e3, 1),
             round(t_list * 1e3, 1), t_list / max(t_tree, 1e-9))
        )
    print_sweep(
        "Ablation: multilevel dyadic tree vs linear-scan store (ms)",
        ("workload", "boxes", "dyadic tree", "linear scan", "slowdown"),
        rows,
    )
    assert rows[-1][4] > 3.0, "dyadic tree shows no advantage"
    boxes = shared_suffix_instance(4)
    benchmark(
        lambda: TetrisEngine(3, 4).run(
            BoxSetOracle(boxes, 3), preload=True, one_pass=True
        )
    )


def test_one_pass_ablation(benchmark):
    """One-pass and restarting traversals agree tuple-for-tuple."""
    rows = []
    for count in (50, 150):
        boxes = random_boxes(count + 1, count, NDIM, DEPTH)
        s_one = ResolutionStats()
        s_restart = ResolutionStats()
        one = _run(boxes, one_pass=True, stats=s_one)
        restart = _run(boxes, one_pass=False, stats=s_restart)
        assert sorted(one) == sorted(restart)
        rows.append(
            (count, len(one), s_one.resolutions, s_restart.resolutions,
             s_one.containment_queries, s_restart.containment_queries)
        )
    print_sweep(
        "Ablation: one-pass vs restarting outer loop",
        ("boxes", "Z", "res (1-pass)", "res (restart)",
         "queries (1-pass)", "queries (restart)"),
        rows,
    )
    boxes = random_boxes(9, 150, NDIM, DEPTH)
    benchmark(lambda: _run(boxes, one_pass=False))


def test_sao_choice_matters(benchmark):
    """SAO ablation: Example F.1 defeats every SAO, but on GAO-friendly
    instances the theorem-recommended order wins measurably."""
    import itertools

    from repro.core.tetris import solve_bcp
    from repro.workloads.hard_instances import shared_suffix_instance

    boxes = shared_suffix_instance(3)
    counts = {}
    for sao in itertools.permutations(range(3)):
        stats = ResolutionStats()
        assert solve_bcp(boxes, 3, 3, sao=sao, stats=stats) == []
        counts[sao] = stats.resolutions
    spread = max(counts.values()) / min(counts.values())
    print(f"\nSAO resolution counts: {counts}")
    print(f"best/worst spread: {spread:.1f}×")
    assert spread > 1.5, "SAO choice should matter on this instance"
    benchmark(lambda: solve_bcp(boxes, 3, 3))
