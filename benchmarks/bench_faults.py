"""Supervision overhead + recovery latency benchmark.

Two questions, one harness:

1. **What does supervision cost when nothing fails?**  The live dealer
   (``WorkerPool.run_shards`` — sentinel wait sets, in-flight
   bookkeeping, attempt counting, bounded drains) races the frozen PR-8
   loop (``_pr8_dealer.py`` — conns-only wait, O(n) ``conns.index``, no
   supervision) over identical dispatch rounds on identical pools.
   Both sides share payload encoding and the worker-side checksum scan,
   so the delta is precisely the supervision machinery.  The headline
   is the geomean time ratio (supervised / frozen); the acceptance gate
   is ``--max-overhead`` (CI uses 1.15 on shared runners; the tracked
   full-run figure is ≤ 1.05).

2. **What does recovery cost when something does fail?**  With
   deterministic faults armed (``REPRO_FAULTS``), the same dispatch
   round is timed against its fault-free floor: one worker crash
   (respawn + retry), a permanently erroring shard (quarantine), and a
   hang caught by the stall budget.  Reported as added wall-clock per
   fault — the price of one recovery, not a gate (fork latency is
   machine-dependent).

Parity is asserted on every timed round: both loops (and every faulted
round) must produce bit-identical per-shard checksums.

Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py \
        [--quick] [--repeats 5] [--workers 4] \
        [--output BENCH_faults.json] [--max-overhead 1.05]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import platform
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _pr8_dealer import pr8_run_shards
from _ship_baseline import checksum_rows

WORKERS_DEFAULT = 4
BACKEND = "fault-bench-scan"


def _register_scan_backend() -> None:
    """Checksum-scan runner, registered pre-fork so workers inherit it."""
    from repro.core.resolution import ResolutionStats
    from repro.engine.executor import BackendSpec, register_backend

    def _run_scan(query, db, plan):
        rels = [db[a.name] for a in query.atoms]
        if any(len(rel) == 0 for rel in rels):
            return [], ResolutionStats(), None
        return checksum_rows(rels), ResolutionStats(), None

    register_backend(
        BackendSpec(
            BACKEND, _run_scan,
            "per-relation checksum scan (fault benchmark)",
        )
    )


def _workloads(quick: bool):
    from repro.workloads.generators import (
        dense_cycle_db,
        graph_triangle_db,
        random_graph_edges,
        random_path_db,
    )

    out = []
    edges = random_graph_edges(
        300 if quick else 600, 3000 if quick else 9000, seed=3
    )
    out.append(("triangle_sparse", *graph_triangle_db(edges)))
    out.append(
        ("path3_acyclic",
         *random_path_db(3, 3000 if quick else 9000, seed=7, depth=10))
    )
    out.append(
        ("cycle4_fhtw",
         *dense_cycle_db(4, 1500 if quick else 3000, depth=8, seed=5))
    )
    return out


def _plan_for(query, db, workers: int):
    from repro.engine import clear_plan_cache, plan_query

    clear_plan_cache()
    plan = plan_query(query, db, algorithm="hash", workers=workers)
    if plan.num_shards <= 1:
        raise AssertionError("workload did not produce a shard split")
    return plan


def _fresh_report(plan):
    from repro.parallel.merge import ParallelReport

    return ParallelReport(
        workers=plan.workers,
        num_shards=plan.num_shards,
        split_attrs=tuple(plan.split_attrs),
    )


def _flatten(results: Dict[int, list]) -> List[tuple]:
    out = []
    for shard_id in sorted(results):
        for row in results[shard_id]:
            out.append((shard_id,) + tuple(row))
    return out


def _round(dealer_fn, pool, jobs, query, plan, report):
    """One timed dispatch round; returns (seconds, flat checksums)."""
    out: Dict[int, list] = {}
    t0 = time.perf_counter()
    for result, _wid, job in dealer_fn(
        pool, jobs, query.atoms, BACKEND, plan.index_kind, None, None,
        report,
    ):
        out[result.shard_id] = result.rows
    return time.perf_counter() - t0, _flatten(out)


def _live_dealer(pool, jobs, atoms, backend, index_kind, gao, limit,
                 report):
    return pool.run_shards(
        jobs, atoms=atoms, backend=backend, index_kind=index_kind,
        gao=gao, limit=limit, report=report,
    )


def race_family(name, query, db, workers: int, repeats: int) -> dict:
    """The fault-free overhead race: live supervised loop vs PR-8 loop.

    Each side gets its own pool (same class, same caches); one warm-up
    round ships the payloads, then timed rounds run on warm caches —
    zero wire bytes, so the loop machinery dominates the parent-side
    cost.  Timings interleave sides per repeat and keep per-side
    minima.
    """
    from repro.parallel.merge import prepare_jobs
    from repro.parallel.scheduler import WorkerPool

    plan = _plan_for(query, db, workers)
    _shards, jobs, _pruned = prepare_jobs(query, db, plan)

    live_pool = WorkerPool(workers)
    pr8_pool = WorkerPool(workers)
    live_s = pr8_s = float("inf")
    try:
        # Warm-up: pay shipping once on each pool, assert parity.
        _, live_flat = _round(
            _live_dealer, live_pool, jobs, query, plan,
            _fresh_report(plan),
        )
        _, pr8_flat = _round(
            pr8_run_shards, pr8_pool, jobs, query, plan,
            _fresh_report(plan),
        )
        if live_flat != pr8_flat:
            raise AssertionError(
                f"{name}: dealer parity broken — supervised and PR-8 "
                f"loops disagree"
            )
        for _rep in range(repeats):
            report = _fresh_report(plan)
            dt, flat = _round(
                pr8_run_shards, pr8_pool, jobs, query, plan, report
            )
            pr8_s = min(pr8_s, dt)
            assert flat == pr8_flat
            report = _fresh_report(plan)
            dt, flat = _round(
                _live_dealer, live_pool, jobs, query, plan, report
            )
            live_s = min(live_s, dt)
            assert flat == live_flat
            if report.worker_respawns or report.shard_retries:
                raise AssertionError(
                    f"{name}: fault-free round recovered something — "
                    f"the race is contaminated"
                )
    finally:
        live_pool.close()
        pr8_pool.close()

    entry = {
        "n_tuples": db.total_tuples,
        "num_shards": plan.num_shards,
        "jobs": len(jobs),
        "pr8_s": pr8_s,
        "supervised_s": live_s,
        "overhead": live_s / pr8_s,
    }
    print(
        f"  {name:20s} pr8 {pr8_s * 1e3:7.2f} ms   supervised "
        f"{live_s * 1e3:7.2f} ms   overhead {entry['overhead']:.3f}×"
    )
    return entry


def measure_recovery(query, db, workers: int) -> dict:
    """Wall-clock cost of one recovery per fault class.

    Runs the supervised dealer on fresh pools (workers must fork with
    the armed spec), compares against a fault-free floor on an equally
    fresh pool, and asserts checksum parity every time.
    """
    from repro.parallel import faults
    from repro.parallel.merge import prepare_jobs
    from repro.parallel.scheduler import WorkerPool

    plan = _plan_for(query, db, workers)
    _shards, jobs, _pruned = prepare_jobs(query, db, plan)
    victim = max(jobs, key=lambda j: j.weight).shard_id

    def fresh_round(spec, stall_ms=None):
        if spec is None:
            os.environ.pop(faults.FAULTS_ENV, None)
        else:
            os.environ[faults.FAULTS_ENV] = spec
        if stall_ms is None:
            os.environ.pop("REPRO_SHARD_TIMEOUT_MS", None)
        else:
            os.environ["REPRO_SHARD_TIMEOUT_MS"] = str(stall_ms)
        faults.reset()
        pool = WorkerPool(workers)
        try:
            report = _fresh_report(plan)
            dt, flat = _round(
                _live_dealer, pool, jobs, query, plan, report
            )
            return dt, flat, report
        finally:
            pool.close()
            os.environ.pop(faults.FAULTS_ENV, None)
            os.environ.pop("REPRO_SHARD_TIMEOUT_MS", None)
            faults.reset()

    floor_s, floor_flat, _ = fresh_round(None)
    out = {"fault_free_s": floor_s, "victim_shard": victim}

    crash_s, flat, report = fresh_round(f"crash@{victim}*1")
    assert flat == floor_flat, "crash recovery broke parity"
    out["crash_respawn"] = {
        "total_s": crash_s,
        "added_s": crash_s - floor_s,
        "respawns": report.worker_respawns,
        "retries": report.shard_retries,
    }

    error_s, flat, report = fresh_round(f"error@{victim}*inf")
    assert flat == floor_flat, "error quarantine broke parity"
    out["error_quarantine"] = {
        "total_s": error_s,
        "added_s": error_s - floor_s,
        "quarantined": report.shards_quarantined,
    }

    hang_s, flat, report = fresh_round(
        f"hang@{victim}*1", stall_ms=250
    )
    assert flat == floor_flat, "hang recovery broke parity"
    out["hang_stall_recovery"] = {
        "total_s": hang_s,
        "added_s": hang_s - floor_s,
        "stall_budget_ms": 250,
        "respawns": report.worker_respawns,
    }

    print(
        f"  recovery (added wall-clock over {floor_s * 1e3:.1f} ms "
        f"floor): crash +{out['crash_respawn']['added_s'] * 1e3:.1f} ms, "
        f"error-quarantine "
        f"+{out['error_quarantine']['added_s'] * 1e3:.1f} ms, "
        f"hang (250 ms budget) "
        f"+{out['hang_stall_recovery']['added_s'] * 1e3:.1f} ms"
    )
    return out


def geometric_mean(xs: List[float]) -> float:
    prod = 1.0
    for x in xs:
        prod *= x
    return prod ** (1.0 / len(xs))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="faults")
    parser.add_argument("--output", default="BENCH_faults.json")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--quick", action="store_true", help="small sizes")
    parser.add_argument("--workers", type=int, default=WORKERS_DEFAULT)
    parser.add_argument(
        "--max-overhead", type=float, default=None,
        help="exit non-zero when the fault-free geomean overhead "
             "(supervised/pr8) exceeds this ratio",
    )
    args = parser.parse_args(argv)

    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
    )
    if "fork" not in mp.get_all_start_methods():
        print(
            f"[{args.label}] no fork start method — the scan backend "
            f"cannot ride into spawned workers, skipping"
        )
        return 0

    from repro.parallel import faults, shutdown_pools

    # The race must start fault-free whatever the ambient environment.
    os.environ.pop(faults.FAULTS_ENV, None)
    os.environ.pop("REPRO_QUERY_TIMEOUT_MS", None)
    os.environ.pop("REPRO_SHARD_TIMEOUT_MS", None)
    faults.reset()

    _register_scan_backend()
    print(
        f"[{args.label}] supervision overhead race "
        f"({'quick' if args.quick else 'full'}, best of {args.repeats}, "
        f"{args.workers} workers, parity asserted per round)"
    )
    families = _workloads(args.quick)
    results: Dict[str, dict] = {}
    for name, query, db in families:
        results[name] = race_family(
            name, query, db, args.workers, args.repeats
        )

    overheads = [e["overhead"] for e in results.values()]
    headline = geometric_mean(overheads)
    print(
        f"  geomean fault-free overhead ×{args.workers}: "
        f"{headline:.3f}× the frozen PR-8 dealer"
    )

    # Recovery latency on the first family (informational, not gated).
    name, query, db = families[0]
    recovery = measure_recovery(query, db, args.workers)
    shutdown_pools()

    record = {
        "label": args.label,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workers": args.workers,
        "repeats": args.repeats,
        "results": results,
        "geomean_overhead": headline,
        "recovery": {"family": name, **recovery},
        "note": (
            "overhead = supervised dealer / frozen PR-8 dealer on warm "
            "pools (zero wire bytes; loop machinery dominates); "
            "recovery = added wall-clock for one injected fault vs a "
            "fault-free floor, parity asserted via per-shard relation "
            "checksums on every round"
        ),
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.max_overhead is not None and headline > args.max_overhead:
        print(f"FAIL: geomean {headline:.3f} > {args.max_overhead}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
