"""Compiled-kernel benchmark: per-plan codegen vs. the interpreted loops.

Races the live compiled kernels (``repro.engine.codegen`` — nested-loop
leapfrog over flat columns, scalar-keyed hash cascades, the
constant-folded Tetris resume skeleton) against the PR-5-era interpreted
kernels frozen verbatim in ``benchmarks/_interp_kernels.py``, on the
Table 1 workload families:

* **triangle** — random-graph triangle joins (rows 2–3) under leapfrog,
  hash, and Tetris preloaded/reloaded;
* **tw1** — treewidth-1 path joins (rows 4–5) under leapfrog, hash, and
  Tetris-Reloaded (the certificate row);
* **acyclic/star** — star joins and preloaded paths (row 1 /
  Theorem D.8) under leapfrog, hash, and Tetris-Preloaded.

Both sides consume the same pre-built data plane — cached sorted views
for the pipeline backends, one shared oracle with materialized gap
boxes for Tetris — so the ratio isolates the kernel hot path.  Kernels
are compiled during the parity warm-up, so the timed loop measures the
steady state a served workload sees (one compile per plan shape,
amortized by the kernel LRU).  Outputs are asserted identical on every
workload.  The headline number is the geometric mean of
``interpreted_time / compiled_time``, recorded to
``BENCH_compiled.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_compiled.py \
        [--quick] [--repeats 3] [--output BENCH_compiled.json] \
        [--min-speedup 1.5]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Dict, List, Tuple

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _star_db(rays: int, m: int, seed: int, depth: int):
    """A random star join R1(H,A1) ⋈ ... ⋈ Rk(H,Ak) (acyclic, row 1)."""
    import random

    from repro.relational.query import star_query
    from repro.workloads.generators import db_from_tuples

    rng = random.Random(seed)
    query = star_query(rays)
    tuples = {
        f"R{i}": sorted({
            (rng.randrange(1 << (depth - 2)), rng.randrange(1 << depth))
            for _ in range(m)
        })
        for i in range(1, rays + 1)
    }
    return query, db_from_tuples(query, tuples, depth)


# -- per-backend runner pairs ---------------------------------------------------


def _leapfrog_runners(query, db):
    from benchmarks import _interp_kernels as frozen
    from repro.indexes.oracle import default_gao
    from repro.joins.leapfrog import iter_leapfrog

    gao = default_gao(query)
    # Warm the shared sorted views once; both sides read the same cache.
    for atom in query.atoms:
        db.sorted_view(atom.name, tuple(a for a in gao if a in atom.attrs))

    def interp():
        return list(frozen.iter_leapfrog(query, db, gao))

    def compiled():
        return list(iter_leapfrog(query, db, gao=gao, compiled=True))

    return interp, compiled


def _hash_runners(query, db):
    from benchmarks import _interp_kernels as frozen
    from repro.joins.hashjoin import _plan_order, iter_hash

    order = _plan_order(query, db, None)
    for atom in query.atoms:
        db[atom.name].rows()

    def interp():
        return list(frozen.iter_hash(query, db, order))

    def compiled():
        return list(iter_hash(query, db, atom_order=order, compiled=True))

    return interp, compiled


def _preload(engine, oracle):
    boxes = oracle.boxes()
    if not engine._sao_identity:
        to_internal = engine.to_internal
        boxes = [to_internal(b) for b in boxes]
    kb = engine.knowledge_base
    add_many = getattr(kb, "add_many", None)
    if add_many is not None:
        engine.stats.boxes_loaded += add_many(boxes)
    else:
        for box in boxes:
            if kb.add(box):
                engine.stats.boxes_loaded += 1


def _tetris_runners(query, db, preload: bool):
    from benchmarks import _interp_kernels as frozen
    from repro.core.resolution import ResolutionStats
    from repro.core.tetris import TetrisEngine
    from repro.joins.tetris_join import make_oracle

    oracle, gao = make_oracle(query, db)
    attrs = oracle.attrs
    sao = tuple(attrs.index(a) for a in gao)
    ndim, depth = len(attrs), db.domain.depth
    oracle.boxes()  # materialize + memoize the lifted gap-box set

    def make_engine():
        return TetrisEngine(ndim, depth, sao=sao, stats=ResolutionStats())

    def interp():
        engine = make_engine()
        if preload:
            _preload(engine, oracle)
        try:
            return frozen.run_resuming(
                engine, oracle, None, on_demand=not preload,
                trust_kb=preload,
            )
        finally:
            detach = getattr(
                engine.knowledge_base, "detach_frontier", None
            )
            if detach is not None:
                detach()

    def compiled():
        engine = make_engine()
        return engine.run(oracle, preload=preload, compiled=True)

    return interp, compiled


def _workloads(quick: bool) -> List[Tuple[str, Callable]]:
    """(name, setup) pairs; setup() returns (interp_run, compiled_run)."""
    from repro.workloads.generators import (
        graph_triangle_db,
        random_graph_edges,
        random_path_db,
    )

    tri_nodes, tri_edges = (120, 420) if quick else (300, 1400)
    path_m, path_d = (700, 10) if quick else (2600, 12)
    star_m, star_d = (500, 10) if quick else (2200, 12)

    def triangle():
        return graph_triangle_db(
            random_graph_edges(tri_nodes, tri_edges, seed=3)
        )

    def tw1():
        return random_path_db(3, path_m, seed=17, depth=path_d)

    def star():
        return _star_db(3, star_m, seed=11, depth=star_d)

    return [
        ("leapfrog_triangle",
         lambda: _leapfrog_runners(*triangle())),
        ("leapfrog_tw1_path",
         lambda: _leapfrog_runners(*tw1())),
        ("leapfrog_star",
         lambda: _leapfrog_runners(*star())),
        ("hash_triangle",
         lambda: _hash_runners(*triangle())),
        ("hash_tw1_path",
         lambda: _hash_runners(*tw1())),
        ("hash_star",
         lambda: _hash_runners(*star())),
        ("tetris_triangle_preloaded",
         lambda: _tetris_runners(*triangle(), preload=True)),
        ("tetris_triangle_reloaded",
         lambda: _tetris_runners(*triangle(), preload=False)),
        ("tetris_tw1_reloaded",
         lambda: _tetris_runners(*tw1(), preload=False)),
        ("tetris_acyclic_preloaded",
         lambda: _tetris_runners(*tw1(), preload=True)),
    ]


def _time_best(fn: Callable, repeats: int) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def geometric_mean(xs: List[float]) -> float:
    prod = 1.0
    for x in xs:
        prod *= x
    return prod ** (1.0 / len(xs))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="compiled-kernels")
    parser.add_argument("--output", default="BENCH_compiled.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true", help="small sizes")
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero when geomean(interp/compiled) falls below this",
    )
    args = parser.parse_args(argv)

    print(f"[{args.label}] compiled-kernel benchmark "
          f"({'quick' if args.quick else 'full'}, best of {args.repeats})")
    results: Dict[str, dict] = {}
    for name, setup in _workloads(args.quick):
        interp_run, compiled_run = setup()
        # Warm-up doubles as the parity assertion (and compiles the
        # kernel, so the timed loop sees the steady state).
        interp_out = sorted(interp_run())
        compiled_out = sorted(compiled_run())
        assert interp_out == compiled_out, f"{name}: kernels disagree"
        interp_s, _ = _time_best(interp_run, args.repeats)
        compiled_s, _ = _time_best(compiled_run, args.repeats)
        speedup = interp_s / compiled_s
        results[name] = {
            "interpreted_s": interp_s,
            "compiled_s": compiled_s,
            "speedup": speedup,
            "outputs": len(compiled_out),
        }
        print(
            f"  {name:28s} interp {interp_s * 1e3:9.2f} ms   "
            f"compiled {compiled_s * 1e3:9.2f} ms   "
            f"speedup {speedup:5.2f}×"
        )
    geomean = geometric_mean([r["speedup"] for r in results.values()])
    print(f"  {'geomean speedup':28s} {geomean:.3f}×")

    from repro.engine.codegen import kernel_cache_info

    record = {
        "label": args.label,
        "quick": args.quick,
        "repeats": args.repeats,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workloads": results,
        "geomean_speedup": geomean,
        "kernel_caches": kernel_cache_info(),
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.min_speedup is not None and geomean < args.min_speedup:
        print(f"FAIL: geomean {geomean:.3f} < {args.min_speedup}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
