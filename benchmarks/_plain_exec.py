"""The frozen pre-observability execute path — the PR-6 baseline.

``bench_obs.py`` races :func:`repro.engine.execute` (which now wraps
every query in tracer/metrics bookkeeping) against this module, which
reproduces what the executor did *before* the observability layer
landed: resolve the backend spec, run it, and for parallel plans merge
and sort the shard outputs.  No spans, no snapshots, no slow-query
check — the two code paths do identical join work, so any timing gap is
the observability layer's overhead.

Kept deliberately minimal and separate from ``src/`` so future executor
changes don't silently drag the baseline along.
"""

from __future__ import annotations


def plain_execute(query, db, plan):
    """Run ``plan`` the way the PR-6 executor did; return (rows, stats).

    Serial plans dispatch straight to the backend runner (rows come back
    in the backend's order, exactly like ``execute``); parallel plans
    stream the shard outcomes off the pool and sort the merged rows,
    mirroring the executor's materialized parallel path.
    """
    from repro.engine.executor import _REGISTRY

    if plan.num_shards > 1:
        from repro.core.resolution import ResolutionStats
        from repro.parallel.merge import run_shards

        outcomes, report = run_shards(query, db, plan, None)
        stats = ResolutionStats()
        rows = []
        try:
            for outcome in outcomes:
                stats.absorb(outcome.stats)
                rows.extend(outcome.rows)
        finally:
            close = getattr(outcomes, "close", None)
            if close is not None:
                close()
        return sorted(rows), stats
    spec = _REGISTRY[plan.backend]
    tuples, stats, _gao = spec.runner(query, db, plan)
    return tuples, stats
