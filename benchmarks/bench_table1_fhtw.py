"""Table 1, row 3 — bounded-width queries in Õ(N^fhtw + Z).

Paper claim (Theorem 4.6 / Corollary D.10): with a GAO of minimum
elimination width, Tetris-Preloaded evaluates any query in
Õ(N^fhtw + Z).  The 4-cycle has fhtw = 2 (and treewidth 2), so the
resolution count must stay under ~N² — and, on random instances, well
under the naive N² while never exceeding it.
"""

import pytest

from benchmarks.conftest import loglog_slope, print_sweep
from repro.joins.tetris_join import join_tetris
from repro.relational.agm import fhtw
from repro.relational.hypergraph import Hypergraph
from repro.relational.query import cycle_query
from repro.workloads.generators import dense_cycle_db

SIZES = (20, 40, 80, 160)
DEPTH = 7


def test_cycle_fhtw_value():
    """Sanity: the 4-cycle's fhtw is 2 under our decomposition search."""
    value, _ = fhtw(Hypergraph.of_query(cycle_query(4)))
    assert value == pytest.approx(2.0)


def test_fhtw_scaling_shape(benchmark):
    """Resolutions on the 4-cycle stay below the N^fhtw envelope."""
    rows = []
    xs, ys = [], []
    for m in SIZES:
        query, db = dense_cycle_db(4, m, depth=DEPTH, seed=5)
        result = join_tetris(query, db, variant="preloaded")
        n = db.total_tuples / 4
        envelope = n ** 2 + len(result)
        xs.append(n)
        ys.append(result.stats.resolutions)
        rows.append(
            (m, int(n), len(result), result.stats.resolutions,
             int(envelope))
        )
        # Õ hides polylog(N) factors; d^4 is a generous stand-in.
        assert result.stats.resolutions <= envelope * DEPTH ** 4
    slope = loglog_slope(xs, ys)
    print_sweep(
        "Table 1 row 3: 4-cycle (fhtw = 2), Tetris-Preloaded",
        ("m", "N", "Z", "resolutions", "N^fhtw+Z"),
        rows,
    )
    print(f"measured exponent vs N: {slope:.2f} (paper bound: ≤ 2)")
    assert slope < 2.25
    query, db = dense_cycle_db(4, SIZES[1], depth=DEPTH, seed=5)
    benchmark(lambda: join_tetris(query, db, variant="preloaded"))


def test_fhtw_six_cycle(benchmark):
    """Longer cycles keep fhtw = 2: same envelope must hold."""
    query, db = dense_cycle_db(6, 30, depth=6, seed=9)
    result = join_tetris(query, db, variant="preloaded")
    n = db.total_tuples / 6
    assert result.stats.resolutions <= (n ** 2 + len(result)) * 6 ** 4
    benchmark(lambda: join_tetris(query, db, variant="preloaded"))
