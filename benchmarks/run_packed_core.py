"""End-to-end benchmark runner for the `bench_table1_*` workloads.

Times the representative join workloads of the five Table 1 benchmark
files end to end (database build excluded, Tetris run included) and
writes a JSON record for the repo's perf trajectory.  Usage:

    PYTHONPATH=src python benchmarks/run_packed_core.py \
        --label packed --baseline seed_times.json \
        --output BENCH_packed_core.json

With ``--baseline`` the output embeds the baseline run and the
per-workload + geometric-mean speedups, so a single file documents the
before/after of a perf PR.  ``--quick`` shrinks every workload (CI smoke
mode); ``--repeats`` controls best-of-N timing.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, List, Tuple


def _workloads(quick: bool) -> List[Tuple[str, Callable[[], Callable[[], object]]]]:
    """(name, setup) pairs; setup returns the zero-arg callable to time."""
    from repro.joins.tetris_join import join_tetris
    from repro.workloads.generators import (
        agm_tight_triangle,
        chained_path_db,
        dense_cycle_db,
        random_path_db,
        split_cycle_instance,
        split_path_instance,
    )

    def acyclic_chain():
        k = 128 if quick else 1024
        query, db = chained_path_db(3, k, depth=12)
        return lambda: join_tetris(query, db, variant="preloaded")

    def acyclic_random():
        n = 120 if quick else 400
        query, db = random_path_db(3, n, seed=7, depth=8)
        return lambda: join_tetris(query, db, variant="preloaded")

    def agm_triangle():
        m = 6 if quick else 14
        query, db = agm_tight_triangle(m)
        return lambda: join_tetris(query, db, variant="preloaded")

    def fhtw_cycle():
        m = 40 if quick else 160
        query, db = dense_cycle_db(4, m, depth=7, seed=5)
        return lambda: join_tetris(query, db, variant="preloaded")

    def tw_cert_cycle():
        m = 90 if quick else 810
        query, db, gao = split_cycle_instance(m, depth=10, seed=2)
        return lambda: join_tetris(query, db, variant="reloaded", gao=gao)

    def tw1_split_path():
        m = 400 if quick else 3200
        query, db, gao = split_path_instance(m, depth=12, seed=1)
        return lambda: join_tetris(query, db, variant="reloaded", gao=gao)

    return [
        ("table1_acyclic_chain", acyclic_chain),
        ("table1_acyclic_random", acyclic_random),
        ("table1_agm_triangle", agm_triangle),
        ("table1_fhtw_cycle", fhtw_cycle),
        ("table1_tw_cert_cycle", tw_cert_cycle),
        ("table1_tw1_split_path", tw1_split_path),
    ]


def run_suite(quick: bool, repeats: int) -> Dict[str, Dict[str, float]]:
    results: Dict[str, Dict[str, float]] = {}
    for name, setup in _workloads(quick):
        fn = setup()
        fn()  # warm up (fills caches, JITs nothing, but stabilizes timing)
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        results[name] = {
            "best_s": min(times),
            "mean_s": sum(times) / len(times),
            "repeats": repeats,
        }
        print(f"  {name:28s} best {min(times) * 1e3:9.2f} ms")
    return results


def geometric_mean(xs: List[float]) -> float:
    prod = 1.0
    for x in xs:
        prod *= x
    return prod ** (1.0 / len(xs))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="current", help="name of this run")
    parser.add_argument("--output", default="BENCH_packed_core.json")
    parser.add_argument(
        "--baseline",
        default=None,
        help="JSON file of a previous run to compute speedups against",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true", help="small sizes")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero when the geomean speedup is below this",
    )
    args = parser.parse_args(argv)

    print(f"[{args.label}] running bench_table1 suite "
          f"({'quick' if args.quick else 'full'}, best of {args.repeats})")
    results = run_suite(args.quick, args.repeats)

    record = {
        "label": args.label,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
    }

    if args.baseline:
        with open(args.baseline) as fh:
            base = json.load(fh)
        if "results" not in base and "current" in base:
            # A combined before/after record (this script's own output
            # with --baseline): compare against its "current" run.
            base = base["current"]
        base_results = base.get("results", base)
        speedups = {}
        for name, cur in results.items():
            if name in base_results:
                speedups[name] = base_results[name]["best_s"] / cur["best_s"]
        if not speedups:
            print(f"error: baseline {args.baseline} shares no workloads "
                  "with this run", file=sys.stderr)
            return 2
        if base.get("quick") != args.quick:
            print("warning: baseline and current runs use different "
                  "workload sizes (quick vs full) — speedups are not "
                  "comparable", file=sys.stderr)
        record = {
            "baseline": base,
            "current": record,
            "speedup": speedups,
            "speedup_geomean": geometric_mean(list(speedups.values())),
        }
        print("speedups vs baseline "
              f"[{base.get('label', '?')}]:")
        for name, s in speedups.items():
            print(f"  {name:28s} {s:6.2f}x")
        print(f"  {'geometric mean':28s} "
              f"{record['speedup_geomean']:6.2f}x")

    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.min_speedup is not None:
        geo = record.get("speedup_geomean")
        if geo is None or geo < args.min_speedup:
            print(f"FAIL: geomean speedup {geo} < {args.min_speedup}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
