"""The PR-8 deal loop, frozen — the unsupervised baseline for
``bench_faults.py``.

This replicates the scheduler's dynamic dealing exactly as it stood
before worker supervision landed: the wait set holds pipe connections
only (no process sentinels), the ready-connection lookup is the old
O(n) ``conns.index``, there are no deadlines, no stall budgets, no
retries — a worker death hangs or kills the run — and the end-of-run
drain is unbounded.  Payload encoding, cache-affine picking and the
receive path are shared with the live pool (``_dispatch`` /
``_receive`` / ``_pick_job``), so racing this loop against
``WorkerPool.run_shards`` isolates precisely the supervision machinery:
the sentinel wait set, the in-flight bookkeeping, the attempt counting
and the timeout arithmetic.

Fault-free, the two loops do identical work per shard; the benchmark's
gate asserts the supervised loop stays within a few percent of this
one.  Never import this from production code.
"""

from __future__ import annotations

from multiprocessing import connection as mp_connection

from repro.parallel.scheduler import WorkerError, WorkerPool


def pr8_run_shards(
    pool: WorkerPool, jobs, atoms, backend, index_kind, gao, limit,
    report=None,
):
    """Deal shards the PR-8 way: no supervision, no timeouts.

    Yields ``(result, worker_id, job)`` like the live dealer.  Any
    worker-side error is fatal; a dead worker blocks forever.  Use only
    under injected-fault-free conditions.
    """
    if pool.closed:
        raise WorkerError("worker pool is closed")
    if pool.active:
        raise WorkerError("worker pool is already running a shard set")
    pool.active = True
    pending = sorted(jobs, key=lambda j: -j.weight)
    free = list(range(pool.num_workers))
    busy = {}
    try:
        while pending or busy:
            while free and pending:
                wid = free.pop()
                job, stolen = pool._pick_job(wid, pending)
                if stolen and report is not None:
                    report.shards_stolen += 1
                pool._dispatch(
                    wid, job, atoms, backend, index_kind, gao, limit,
                    report,
                )
                busy[wid] = job
            ready = mp_connection.wait(
                [pool._conns[w] for w in busy]
            )
            for conn in ready:
                wid = pool._conns.index(conn)  # the PR-8 O(n) lookup
                result = pool._receive(wid)
                job = busy.pop(wid)
                free.append(wid)
                if result.error is not None:
                    raise WorkerError(
                        f"shard {job.shard_id} failed:\n{result.error}"
                    )
                if report is not None:
                    report.shm_attaches += result.shm_attaches
                    report.shm_attached_bytes += result.shm_attached_bytes
                    report.shm_attach_seconds += result.attach_seconds
                yield result, wid, job
    finally:
        for wid in list(busy):  # unbounded: a hung worker wedges us
            busy.pop(wid)
            try:
                pool._receive(wid)
            except Exception:
                pass
        pool.active = False
