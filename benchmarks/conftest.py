"""Shared helpers for the benchmark harness.

Every benchmark both *times* a representative run (pytest-benchmark) and
*asserts the scaling shape* the paper claims, by fitting a log-log slope
to resolution counts over a small parameter sweep.  Resolution counts are
the right interpreter-neutral proxy: Lemma 4.5 bounds Tetris's runtime by
the number of resolutions up to polylog factors.
"""

from __future__ import annotations

import math
from typing import Sequence

import pytest


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x).

    The measured exponent of a power law y ≈ c·x^slope.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs")
    lx = [math.log(x) for x in xs]
    ly = [math.log(max(y, 1.0)) for y in ys]
    mean_x = sum(lx) / len(lx)
    mean_y = sum(ly) / len(ly)
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    return num / den


def print_sweep(title: str, header: Sequence[str], rows) -> None:
    """Emit a paper-style sweep table to stdout (visible with -s / -rA)."""
    print(f"\n[{title}]")
    widths = [max(10, len(h) + 2) for h in header]
    print("".join(h.rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print(
            "".join(
                (f"{v:.3f}" if isinstance(v, float) else str(v)).rjust(w)
                for v, w in zip(row, widths)
            )
        )
