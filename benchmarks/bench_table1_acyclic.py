"""Table 1, row 1 — α-acyclic queries in Õ(N + Z) (Yannakakis bound).

Paper claim (Theorem D.8): Tetris-Preloaded with a reverse-GYO SAO and
GAO-consistent B-trees evaluates acyclic joins in time Õ(N + Z), where
the Õ hides a d^{O(1)} polylog factor (the per-box prefix-witness count
of Proposition B.12).

Measured shapes:

* **Z-sweep** (diagonal instances, N ∝ Z): resolutions scale with
  exponent ≈ 1.0 in N + Z — the clean linear regime;
* **N-sweep** (random instances): resolutions stay inside the
  (N + Z)·d² envelope at every size and well below the quadratic shape
  a treewidth-1 violation would show.
"""

import pytest

from benchmarks.conftest import loglog_slope, print_sweep
from repro.joins.tetris_join import join_tetris
from repro.joins.yannakakis import join_yannakakis
from repro.workloads.generators import chained_path_db, random_path_db

DEPTH = 12


def test_acyclic_z_sweep_linear(benchmark):
    """Output-dominated instances: resolutions ∝ (N + Z), slope ≈ 1."""
    xs, ys, rows = [], [], []
    for k in (16, 64, 256, 1024):
        query, db = chained_path_db(3, k, depth=DEPTH)
        result = join_tetris(query, db, variant="preloaded")
        assert len(result) == k
        n_plus_z = db.total_tuples + len(result)
        xs.append(n_plus_z)
        ys.append(result.stats.resolutions)
        rows.append((k, n_plus_z, result.stats.resolutions,
                     result.stats.resolutions / n_plus_z))
    slope = loglog_slope(xs, ys)
    print_sweep(
        "Table 1 row 1 (Z-sweep): diagonal path query, Tetris-Preloaded",
        ("Z", "N+Z", "resolutions", "ratio"),
        rows,
    )
    print(f"measured exponent: {slope:.2f} (paper: 1.0)")
    assert 0.85 < slope < 1.15
    query, db = chained_path_db(3, 256, depth=DEPTH)
    benchmark(lambda: join_tetris(query, db, variant="preloaded"))


def test_acyclic_n_sweep_envelope(benchmark):
    """Random instances: resolutions within the Õ(N + Z) envelope."""
    rows = []
    xs, ys = [], []
    for m in (200, 400, 800, 1600, 3200):
        query, db = random_path_db(3, m, seed=17, depth=DEPTH)
        result = join_tetris(query, db, variant="preloaded")
        n_plus_z = db.total_tuples + len(result)
        xs.append(n_plus_z)
        ys.append(result.stats.resolutions)
        rows.append(
            (m, n_plus_z, len(result), result.stats.resolutions,
             result.stats.resolutions / n_plus_z)
        )
        # Theory envelope: Õ(1) = O(d²) realized witnesses per box.
        assert result.stats.resolutions <= n_plus_z * DEPTH ** 2
    slope = loglog_slope(xs, ys)
    print_sweep(
        "Table 1 row 1 (N-sweep): random path query, Tetris-Preloaded",
        ("m", "N+Z", "Z", "resolutions", "ratio"),
        rows,
    )
    print(
        f"measured exponent: {slope:.2f} "
        f"(paper: 1.0 up to a d² factor; quadratic would signal a bug)"
    )
    assert slope < 1.8
    query, db = random_path_db(3, 800, seed=17, depth=DEPTH)
    benchmark(lambda: join_tetris(query, db, variant="preloaded"))


def test_acyclic_timing_vs_yannakakis(benchmark):
    """Timing of the classic Yannakakis baseline on the same instance."""
    query, db = random_path_db(3, 800, seed=17, depth=DEPTH)
    expected = join_yannakakis(query, db)
    assert join_tetris(query, db).tuples == expected
    got = benchmark(lambda: join_yannakakis(query, db))
    assert got == expected


def test_acyclic_star_query(benchmark):
    """Stars are acyclic too; the same envelope must hold."""
    import random

    from repro.relational.query import star_query
    from repro.workloads.generators import db_from_tuples

    rng = random.Random(3)
    query = star_query(3)
    for m in (100, 400):
        data = {
            atom.name: sorted(
                {
                    (rng.randrange(1 << DEPTH), rng.randrange(1 << DEPTH))
                    for _ in range(m)
                }
            )
            for atom in query.atoms
        }
        db = db_from_tuples(query, data, DEPTH)
        result = join_tetris(query, db, variant="preloaded")
        n_plus_z = db.total_tuples + len(result)
        assert result.stats.resolutions <= n_plus_z * DEPTH ** 2
    benchmark(lambda: join_tetris(query, db, variant="preloaded"))
