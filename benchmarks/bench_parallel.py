"""Shard-parallel benchmark: serial vs. ``workers=N`` on Table 1 rows.

For every workload family of the planner's Table 1 decision space
(triangle sparse + AGM-tight, acyclic path, star, dense cycle), the
serial auto-chosen backend is timed against the same backend run
shard-parallel at each worker count, with *exact* output parity asserted
on every run.

Two speedup readings are recorded per point:

* **wallclock** — end-to-end wall time of the parallel run on this
  host.  Only meaningful when the host has at least as many free cores
  as workers.
* **makespan** — partition + parent-side coordination + the busiest
  worker's CPU time (per-shard ``time.process_time`` measured inside the
  workers, so OS time-slicing on an oversubscribed host cannot
  double-count).  This is the critical-path wall time of the actual
  schedule the dealer produced — what a host with ≥ N free cores sees —
  and it is measured, not modeled: real shard CPU costs under the real
  assignment.

The headline ``geomean_speedup`` uses wallclock when the host has the
cores to honor the worker count, makespan otherwise (CI containers with
a single core cannot exhibit wall-clock parallelism by construction);
``speedup_basis`` in the JSON says which applied.  The split-certificate
row is reported separately as a shard-pruning demonstration — its serial
runtime is O(|C|) ≈ constant, so there is nothing to parallelize and it
is excluded from the speedup geomean.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py \
        [--quick] [--repeats 3] [--workers 2,4] \
        [--output BENCH_parallel.json] [--min-speedup 1.5]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Tuple


def _host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _workloads(quick: bool):
    from repro.relational.query import star_query
    from repro.workloads.generators import (
        agm_tight_triangle,
        dense_cycle_db,
        graph_triangle_db,
        random_graph_edges,
        random_path_db,
    )

    out = []
    edges = random_graph_edges(
        220 if quick else 400, 1800 if quick else 5000, seed=3
    )
    out.append(("triangle_sparse", *graph_triangle_db(edges)))
    out.append(
        ("triangle_agm_tight", *agm_tight_triangle(22 if quick else 40))
    )
    out.append(
        ("path3_acyclic",
         *random_path_db(3, 1800 if quick else 4000, seed=7, depth=10))
    )

    def star_db(rays, n, seed, depth):
        import random

        from repro.relational.query import Database
        from repro.relational.relation import Relation
        from repro.relational.schema import Domain

        rng = random.Random(seed)
        q = star_query(rays)
        rels = []
        for atom in q.atoms:
            rows = {
                tuple(rng.randrange(1 << depth) for _ in atom.attrs)
                for _ in range(n)
            }
            rels.append(Relation(atom, rows, Domain(depth)))
        return q, Database(rels)

    out.append(
        ("star4_fanout",
         *star_db(4, 1500 if quick else 4000, 11, 10))
    )
    out.append(
        ("cycle4_fhtw",
         *dense_cycle_db(4, 550 if quick else 900, depth=8, seed=5))
    )
    return out


def _time_best(fn, repeats: int) -> Tuple[float, object]:
    fn()  # warm-up: plan cache, sorted views, worker pools, shard caches
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best, value


def run_suite(
    quick: bool, repeats: int, worker_counts: List[int]
) -> Dict[str, dict]:
    from repro.engine import clear_plan_cache, execute, plan_query

    results: Dict[str, dict] = {}
    for name, query, db in _workloads(quick):
        clear_plan_cache()
        plan = plan_query(query, db)
        backend = plan.backend
        serial_s, serial = _time_best(
            lambda: execute(query, db, algorithm=backend), repeats
        )
        entry: Dict[str, object] = {
            "backend": backend,
            "serial_s": serial_s,
            "n_tuples": db.total_tuples,
            "output_tuples": len(serial.tuples),
            "parallel": {},
        }
        for w in worker_counts:
            best_wall = float("inf")
            best_report = None
            _time_best(  # includes warm-up; reuse the harness
                lambda w=w: execute(
                    query, db, algorithm=backend, workers=w
                ),
                0,
            )
            for _ in range(repeats):
                t0 = time.perf_counter()
                par = execute(query, db, algorithm=backend, workers=w)
                wall = time.perf_counter() - t0
                if par.tuples != serial.tuples:
                    raise AssertionError(
                        f"{name}: parallel×{w} output differs from serial"
                    )
                if wall < best_wall:
                    best_wall = wall
                    best_report = par.parallel
            entry["parallel"][str(w)] = {
                "wall_s": best_wall,
                "makespan_s": best_report.makespan_seconds,
                "speedup_wallclock": serial_s / best_wall,
                "speedup_makespan": (
                    serial_s / best_report.makespan_seconds
                ),
                "shards_run": best_report.executed_shards,
                "shards_pruned": best_report.pruned_shards,
                "split_attrs": list(best_report.split_attrs),
                "rows_shipped": best_report.rows_shipped,
                "ref_hits": best_report.ref_hits,
                "busiest_worker_s": best_report.max_worker_seconds,
                "balance": best_report.balance,
            }
        results[name] = entry
        top = entry["parallel"][str(worker_counts[-1])]
        print(
            f"  {name:20s} {backend:17s} serial "
            f"{serial_s * 1e3:8.1f} ms   ×{worker_counts[-1]}: wall "
            f"{top['wall_s'] * 1e3:8.1f} ms  makespan "
            f"{top['makespan_s'] * 1e3:8.1f} ms  "
            f"(speedup {top['speedup_makespan']:.2f}× makespan / "
            f"{top['speedup_wallclock']:.2f}× wall)"
        )
    return results


def run_pruning_demo(quick: bool) -> dict:
    """The split-certificate row: shards prune to nothing pre-dispatch."""
    from repro.engine import execute
    from repro.workloads.generators import split_path_instance

    query, db, _gao = split_path_instance(
        500 if quick else 2000, depth=12, seed=1
    )
    result = execute(query, db, algorithm="hash", workers=4)
    assert result.tuples == []
    report = result.parallel
    demo = {
        "n_tuples": db.total_tuples,
        "shards_pruned": report.pruned_shards,
        "shards_run": report.executed_shards,
        "partition_s": report.partition_seconds,
    }
    print(
        f"  split-cert pruning : {report.pruned_shards}/"
        f"{report.num_shards} shards pruned before dispatch "
        f"({report.partition_seconds * 1e3:.1f} ms partition, "
        f"0 rows shipped)"
    )
    return demo


def geometric_mean(xs: List[float]) -> float:
    prod = 1.0
    for x in xs:
        prod *= x
    return prod ** (1.0 / len(xs))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="parallel")
    parser.add_argument("--output", default="BENCH_parallel.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true", help="small sizes")
    parser.add_argument(
        "--workers", default="2,4",
        help="comma-separated worker counts to race (default 2,4)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero when the headline geomean at the largest "
             "worker count falls below this",
    )
    args = parser.parse_args(argv)
    worker_counts = [int(w) for w in args.workers.split(",") if w]

    cores = _host_cores()
    basis = "wallclock" if cores >= max(worker_counts) else "makespan"
    print(
        f"[{args.label}] shard-parallel benchmark "
        f"({'quick' if args.quick else 'full'}, best of {args.repeats}, "
        f"host cores {cores} → speedup basis: {basis})"
    )
    results = run_suite(args.quick, args.repeats, worker_counts)
    pruning = run_pruning_demo(args.quick)

    from repro.parallel import shutdown_pools

    shutdown_pools()

    geomeans: Dict[str, dict] = {}
    for w in worker_counts:
        wall = [
            e["parallel"][str(w)]["speedup_wallclock"]
            for e in results.values()
        ]
        make = [
            e["parallel"][str(w)]["speedup_makespan"]
            for e in results.values()
        ]
        geomeans[str(w)] = {
            "wallclock": geometric_mean(wall),
            "makespan": geometric_mean(make),
        }
    top_w = str(max(worker_counts))
    headline = geomeans[top_w][basis]
    for w in worker_counts:
        g = geomeans[str(w)]
        print(
            f"  geomean ×{w}: {g['makespan']:.2f}× makespan, "
            f"{g['wallclock']:.2f}× wallclock"
        )
    print(
        f"  headline (×{top_w}, {basis}): {headline:.2f}× over serial"
    )

    record = {
        "label": args.label,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "host_cores": cores,
        "speedup_basis": basis,
        "basis_note": (
            "wallclock speedups require >= workers free cores; on "
            "smaller hosts the headline uses the measured schedule "
            "makespan (partition + coordination + busiest worker CPU)"
        ),
        "worker_counts": worker_counts,
        "results": results,
        "pruning_demo": pruning,
        "geomean_speedups": geomeans,
        "geomean_speedup": headline,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.min_speedup is not None and headline < args.min_speedup:
        print(f"FAIL: geomean {headline:.2f} < {args.min_speedup}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
