"""Relation-core benchmark: cached sorted views vs. the seed data plane.

Times the storage-layer hot paths the columnar order-cached core
accelerates — repeated index builds, Leapfrog joins, ``select_prefix``
probes, and end-to-end Table 1 Tetris workloads — twice each: once on
the cached core as shipped, and once with ``Relation.sorted_by`` /
``select_prefix`` / ``rows`` monkeypatched back to the seed semantics
(full re-sort per call, linear prefix scan).  Identical engine code runs
in both modes; only the data plane differs.  The headline number is the
geometric mean of ``seed_time / cached_time`` across workloads, recorded
to ``BENCH_relation_core.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_relation_core.py \
        [--quick] [--repeats 3] [--output BENCH_relation_core.json] \
        [--min-speedup 1.3]
"""

from __future__ import annotations

import argparse
import contextlib
import json
import platform
import sys
import time
from typing import Callable, Dict, List, Tuple


# -- the seed data plane, resurrected for comparison ---------------------------


def _seed_sorted_by(self, attr_order):
    perm = self.schema.permutation(tuple(attr_order))
    return sorted(tuple(t[i] for i in perm) for t in self.tuples())


def _seed_select_prefix(self, attr_order, prefix):
    rows = _seed_sorted_by(self, attr_order)
    prefix = tuple(prefix)
    k = len(prefix)
    return [t for t in rows if t[:k] == prefix]


def _seed_rows(self):
    return sorted(self.tuples())


def _seed_view(self, attr_order):
    from repro.relational.relation import SortedView

    key = tuple(attr_order)
    return SortedView(key, _seed_sorted_by(self, key))


@contextlib.contextmanager
def seed_core():
    """Run the block with the seed (re-sort-per-call) relation core."""
    from repro.relational.relation import Relation

    saved = (Relation.sorted_by, Relation.select_prefix, Relation.rows,
             Relation.view)
    Relation.sorted_by = _seed_sorted_by
    Relation.select_prefix = _seed_select_prefix
    Relation.rows = _seed_rows
    Relation.view = _seed_view
    try:
        yield
    finally:
        (Relation.sorted_by, Relation.select_prefix, Relation.rows,
         Relation.view) = saved


# -- workloads -----------------------------------------------------------------


def _triangle_db(quick: bool):
    from repro.workloads.generators import (
        graph_triangle_db,
        random_graph_edges,
    )

    nodes, edges = (80, 240) if quick else (200, 700)
    return graph_triangle_db(random_graph_edges(nodes, edges, seed=3))


def _path_db(quick: bool):
    from repro.workloads.generators import random_path_db

    return random_path_db(3, 150 if quick else 600, seed=7, depth=8)


def _workloads(quick: bool) -> List[Tuple[str, Callable[[], Callable]]]:
    """(name, setup) pairs; setup() builds fresh data and returns the op.

    Every op models one round of a *served* workload — the repetition is
    where the view cache pays: the seed core re-sorts every round.
    """
    from repro.indexes.dyadic_index import DyadicTreeIndex
    from repro.indexes.oracle import build_btree_indexes, default_gao
    from repro.joins.leapfrog import join_leapfrog
    from repro.joins.tetris_join import join_tetris

    def index_build_btree():
        query, db = _triangle_db(quick)
        gao = default_gao(query)
        rev = tuple(reversed(gao))

        def op():
            build_btree_indexes(query, db, gao)
            build_btree_indexes(query, db, rev)

        return op

    def index_build_dyadic():
        query, db = _triangle_db(quick)

        def op():
            for atom in query.atoms:
                DyadicTreeIndex(db[atom.name])

        return op

    def leapfrog_triangle():
        query, db = _triangle_db(quick)

        def op():
            join_leapfrog(query, db)

        return op

    def select_prefix_probes():
        query, db = _path_db(quick)
        rel = db[query.atoms[0].name]
        order = tuple(reversed(rel.attrs))
        probes = [t[0] for t in rel.rows()][:: max(1, len(rel) // 200)]

        def op():
            for v in probes:
                rel.select_prefix(order, (v,))

        return op

    def table1_tetris_triangle():
        query, db = _triangle_db(quick)

        def op():
            join_tetris(query, db, variant="preloaded")

        return op

    return [
        ("index_build_btree", index_build_btree),
        ("index_build_dyadic", index_build_dyadic),
        ("leapfrog_triangle", leapfrog_triangle),
        ("select_prefix_probes", select_prefix_probes),
        ("table1_tetris_triangle", table1_tetris_triangle),
    ]


#: Rounds of each op per timed sample: enough repetition that the
#: one-time sort the cached core pays up front is amortized the way a
#: served workload amortizes it.
ROUNDS = 8


def _time_mode(setup: Callable[[], Callable], repeats: int,
               seed_mode: bool) -> float:
    """Best-of-``repeats`` wall time of ROUNDS rounds on fresh data."""
    best = float("inf")
    for _ in range(repeats):
        op = setup()  # fresh relations: no cache warmth leaks in
        ctx = seed_core() if seed_mode else contextlib.nullcontext()
        with ctx:
            t0 = time.perf_counter()
            for _ in range(ROUNDS):
                op()
            best = min(best, time.perf_counter() - t0)
    return best


def geometric_mean(xs: List[float]) -> float:
    prod = 1.0
    for x in xs:
        prod *= x
    return prod ** (1.0 / len(xs))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="relation-core")
    parser.add_argument("--output", default="BENCH_relation_core.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true", help="small sizes")
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero when geomean(seed/cached) falls below this",
    )
    args = parser.parse_args(argv)

    print(f"[{args.label}] relation-core benchmark "
          f"({'quick' if args.quick else 'full'}, best of {args.repeats}, "
          f"{ROUNDS} rounds/sample)")
    results: Dict[str, dict] = {}
    for name, setup in _workloads(args.quick):
        cached_s = _time_mode(setup, args.repeats, seed_mode=False)
        seed_s = _time_mode(setup, args.repeats, seed_mode=True)
        speedup = seed_s / cached_s
        results[name] = {
            "seed_s": seed_s,
            "cached_s": cached_s,
            "speedup": speedup,
        }
        print(
            f"  {name:24s} seed {seed_s * 1e3:9.2f} ms   "
            f"cached {cached_s * 1e3:9.2f} ms   speedup {speedup:5.2f}×"
        )
    geomean = geometric_mean([r["speedup"] for r in results.values()])
    print(f"  {'geomean speedup':24s} {geomean:.3f}×")

    record = {
        "label": args.label,
        "quick": args.quick,
        "rounds": ROUNDS,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workloads": results,
        "geomean_speedup": geomean,
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.min_speedup is not None and geomean < args.min_speedup:
        print(f"FAIL: geomean {geomean:.3f} < {args.min_speedup}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
