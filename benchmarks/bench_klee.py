"""Corollary F.8 — Klee's measure problem over the Boolean semiring.

Paper claim: the Boolean box cover (does the union cover the space?) is
solvable in Õ(|C|^{n/2}) via load-balanced Tetris, matching Chan's
O(m^{n/2}) but parameterized by the certificate.

Measured: plain and load-balanced Tetris agree with the classical
coordinate-compression sweep on random unions; on the adversarial
Example F.1 family the LB decision procedure scales with exponent ≈ 1.5
while plain ordered Tetris scales with ≈ 2 (see bench_fig2_ordered_lb).
"""

import random

import pytest

from benchmarks.conftest import print_sweep
from repro.core.resolution import ResolutionStats
from repro.klee.measure import (
    klee_covers_space,
    klee_measure_sweep,
    klee_uncovered_count,
)
from repro.workloads.hard_instances import example_f1
from tests.helpers import random_boxes


def test_boolean_klee_decision(benchmark):
    """Tetris-LB decides coverage; sweep cross-checks the measure."""
    rows = []
    for count in (20, 40, 80):
        boxes = random_boxes(count, count, 3, 4)
        covered = klee_covers_space(boxes, 3, 4)
        measure = klee_measure_sweep(boxes, 3, 4)
        total = 1 << 12
        assert covered == (measure == total)
        rows.append((count, measure, total, covered))
    print_sweep(
        "Klee (Boolean): random 3-D unions",
        ("boxes", "measure", "space", "covers?"),
        rows,
    )
    boxes = random_boxes(40, 40, 3, 4)
    benchmark(lambda: klee_covers_space(boxes, 3, 4))


def test_klee_lb_on_adversarial(benchmark):
    """LB Klee on Example F.1 — the Õ(|C|^{n/2}) configuration."""
    boxes = example_f1(6)
    stats = ResolutionStats()
    assert klee_covers_space(boxes, 3, 6, stats=stats)
    c = len(boxes)
    assert stats.resolutions <= 3 * c ** 1.5  # n/2 shape with slack
    benchmark(lambda: klee_covers_space(example_f1(6), 3, 6))


def test_klee_sweep_reference(benchmark):
    """Timing of the classical sweep baseline on the same workload."""
    boxes = random_boxes(7, 60, 3, 6)
    uncovered = klee_uncovered_count(boxes, 3, 6)
    assert 0 <= uncovered <= 1 << 18
    benchmark(lambda: klee_measure_sweep(boxes, 3, 6))
