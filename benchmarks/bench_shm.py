"""Shared-memory dispatch benchmark: segment refs vs. the pickle wire.

For every workload family of the parallel benchmark (triangle sparse +
AGM-tight, acyclic path, star, dense cycle), one **dispatch round** —
partition/clip, ship every shard's relations to a 4-worker pool,
materialize them worker-side, checksum, reply — is raced over two wires:

* **shm** (the live path): relations export once into named
  shared-memory segments; the pipes carry segment refs and bisect
  ranges; workers attach and build zero-copy column views.
* **baseline** (``_ship_baseline.py``, frozen): the pre-shm protocol —
  materialized clips pickled per cold ``(worker, content)`` pair.

Both sides run the same checksum scan worker-side, so the race isolates
dispatch, and the checksums assert *content parity* between the wires on
every run.  ``cold`` rounds start from fresh pools, empty caches and an
empty arena (pool spawn is excluded — both sides pay it identically);
``warm`` rounds repeat the dispatch on warm caches, where the shm wire
must converge to shipping zero bytes while attaching nothing new.
Timings interleave baseline/shm per repeat and keep the per-side
minimum; the headline is the geomean of per-family cold speedups.

Usage::

    PYTHONPATH=src python benchmarks/bench_shm.py \
        [--quick] [--repeats 3] [--workers 4] \
        [--output BENCH_shm.json] [--min-speedup 1.15]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import platform
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _ship_baseline import BaselinePool, baseline_prepare, checksum_rows

WORKERS_DEFAULT = 4
BACKEND = "shm-bench-scan"


def _register_scan_backend() -> None:
    """A runner that checksums its shard database instead of joining.

    Registered **before** any pool exists: workers fork from this
    process image, so the registry entry rides into every worker.
    """
    from repro.core.resolution import ResolutionStats
    from repro.engine.executor import BackendSpec, register_backend

    def _run_scan(query, db, plan):
        rels = [db[a.name] for a in query.atoms]
        # A shard holding an empty clip joins to nothing; mirroring that
        # here keeps checksum parity across wires that prune such shards
        # at different points (parent-side vs. on the worker).
        if any(len(rel) == 0 for rel in rels):
            return [], ResolutionStats(), None
        rows = checksum_rows(rels)
        return rows, ResolutionStats(), None

    register_backend(
        BackendSpec(
            BACKEND, _run_scan,
            "per-relation checksum scan (shm dispatch benchmark)",
        )
    )


def _workloads(quick: bool):
    """The parallel benchmark's five families, sized for a dispatch race.

    Workers only checksum here (no joins run), so the race affords
    larger cardinalities than ``bench_parallel`` — sizes where the
    wires genuinely diverge: the pickle path pays per *row* (clip
    materialization, content keys, pickling), the shm path per
    *segment* (one export, one attach, bisect ranges).
    """
    from repro.relational.query import Database, star_query
    from repro.relational.relation import Relation
    from repro.relational.schema import Domain
    from repro.workloads.generators import (
        agm_tight_triangle,
        dense_cycle_db,
        graph_triangle_db,
        random_graph_edges,
        random_path_db,
    )

    out = []
    edges = random_graph_edges(
        420 if quick else 700, 5000 if quick else 12000, seed=3
    )
    out.append(("triangle_sparse", *graph_triangle_db(edges)))
    out.append(
        ("triangle_agm_tight", *agm_tight_triangle(48 if quick else 80))
    )
    out.append(
        ("path3_acyclic",
         *random_path_db(3, 5000 if quick else 12000, seed=7, depth=10))
    )

    def star_db(rays, n, seed, depth):
        import random

        rng = random.Random(seed)
        q = star_query(rays)
        rels = []
        for atom in q.atoms:
            rows = {
                tuple(rng.randrange(1 << depth) for _ in atom.attrs)
                for _ in range(n)
            }
            rels.append(Relation(atom, rows, Domain(depth)))
        return q, Database(rels)

    out.append(
        ("star4_fanout",
         *star_db(4, 5000 if quick else 12000, 11, 10))
    )
    out.append(
        ("cycle4_fhtw",
         *dense_cycle_db(4, 2000 if quick else 4000, depth=8, seed=5))
    )
    return out


def _plan_for(query, db, workers: int):
    from repro.engine import clear_plan_cache, plan_query

    clear_plan_cache()
    plan = plan_query(query, db, algorithm="hash", workers=workers)
    if plan.num_shards <= 1:
        raise AssertionError("workload did not produce a shard split")
    return plan


def _shm_dispatch(query, db, plan, pool, report) -> Dict[int, list]:
    """One dispatch round over the live wire; returns shard checksums."""
    from repro.parallel.merge import prepare_jobs

    _shards, jobs, _pruned = prepare_jobs(query, db, plan)
    out: Dict[int, list] = {}
    for result, _wid, _job in pool.run_shards(
        jobs,
        atoms=query.atoms,
        backend=BACKEND,
        index_kind=plan.index_kind,
        gao=None,
        limit=None,
        report=report,
    ):
        out[result.shard_id] = result.rows
    return out


def _fresh_report(plan):
    from repro.parallel.merge import ParallelReport

    return ParallelReport(
        workers=plan.workers,
        num_shards=plan.num_shards,
        split_attrs=tuple(plan.split_attrs),
    )


def _flatten(results: Dict[int, list]) -> List[tuple]:
    out = []
    for shard_id in sorted(results):
        for row in results[shard_id]:
            out.append((shard_id,) + tuple(row))
    return out


def run_family(name, query, db, workers: int, repeats: int) -> dict:
    from repro.parallel import clear_job_cache, shutdown_pools
    from repro.parallel.scheduler import get_pool

    plan = _plan_for(query, db, workers)
    base_cold = shm_cold = float("inf")
    base_warm = shm_warm = float("inf")
    parity_base: Optional[List[tuple]] = None
    cold_report = warm_report = None
    base_ship_bytes = 0

    for _rep in range(repeats):
        # -- baseline cold: fresh pool, everything ships as blobs ------
        bpool = BaselinePool(workers)
        try:
            t0 = time.perf_counter()
            jobs = baseline_prepare(
                query, db, plan.num_shards, plan.split_attrs
            )
            base_out = bpool.dispatch(jobs, query.atoms, BACKEND)
            base_cold = min(base_cold, time.perf_counter() - t0)
            base_ship_bytes = bpool.bytes_shipped
            # -- baseline warm: same pool, reference dispatch ----------
            t0 = time.perf_counter()
            bpool.dispatch(
                baseline_prepare(
                    query, db, plan.num_shards, plan.split_attrs
                ),
                query.atoms,
                BACKEND,
            )
            base_warm = min(base_warm, time.perf_counter() - t0)
        finally:
            bpool.close()

        # -- shm cold: fresh pool, empty arena, cold job cache ---------
        shutdown_pools()
        clear_job_cache()
        pool = get_pool(workers)
        report = _fresh_report(plan)
        t0 = time.perf_counter()
        shm_out = _shm_dispatch(query, db, plan, pool, report)
        dt = time.perf_counter() - t0
        if dt < shm_cold:
            shm_cold = dt
            cold_report = report
        # -- shm warm: same pool; converge to zero wire bytes ----------
        for _ in range(5):
            report = _fresh_report(plan)
            t0 = time.perf_counter()
            _shm_dispatch(query, db, plan, pool, report)
            shm_warm = min(shm_warm, time.perf_counter() - t0)
            if (
                warm_report is None
                or report.bytes_shipped <= warm_report.bytes_shipped
            ):
                warm_report = report
            if report.bytes_shipped == 0:
                break

        flat_base = _flatten(base_out)
        flat_shm = _flatten(shm_out)
        if flat_base != flat_shm:
            raise AssertionError(
                f"{name}: wire parity broken — baseline and shm "
                f"checksums disagree"
            )
        parity_base = flat_base

    shutdown_pools()
    assert parity_base is not None
    assert cold_report is not None and warm_report is not None
    entry = {
        "n_tuples": db.total_tuples,
        "num_shards": plan.num_shards,
        "split_attrs": list(plan.split_attrs),
        "cold": {
            "baseline_s": base_cold,
            "shm_s": shm_cold,
            "speedup": base_cold / shm_cold,
            "baseline_bytes_shipped": base_ship_bytes,
            "shm_bytes_shipped": cold_report.bytes_shipped,
            "shm_bytes_nominal": cold_report.bytes_nominal,
            "shm_ships": cold_report.shm_ships,
            "shm_attached_bytes": cold_report.shm_attached_bytes,
            "shm_fallbacks": cold_report.shm_fallbacks,
        },
        "warm": {
            "baseline_s": base_warm,
            "shm_s": shm_warm,
            "shm_bytes_shipped": warm_report.bytes_shipped,
            "shm_attached_bytes": warm_report.shm_attached_bytes,
            "ref_hits": warm_report.ref_hits,
            "refs_total": warm_report.refs_total,
        },
    }
    print(
        f"  {name:20s} cold: baseline {base_cold * 1e3:8.1f} ms  "
        f"shm {shm_cold * 1e3:8.1f} ms  "
        f"({entry['cold']['speedup']:.2f}×)   wire: "
        f"{base_ship_bytes // 1024} KiB → "
        f"{cold_report.bytes_shipped} B  warm shm: "
        f"{warm_report.bytes_shipped} B shipped"
    )
    return entry


def geometric_mean(xs: List[float]) -> float:
    prod = 1.0
    for x in xs:
        prod *= x
    return prod ** (1.0 / len(xs))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="shm")
    parser.add_argument("--output", default="BENCH_shm.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true", help="small sizes")
    parser.add_argument("--workers", type=int, default=WORKERS_DEFAULT)
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit non-zero when the cold-dispatch geomean falls below "
             "this",
    )
    args = parser.parse_args(argv)

    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
    )
    from repro.parallel.shm import shm_enabled

    if not shm_enabled():
        print(
            f"[{args.label}] shared memory unavailable or disabled "
            f"(REPRO_NO_SHM) — nothing to race, skipping"
        )
        return 0
    if "fork" not in mp.get_all_start_methods():
        print(
            f"[{args.label}] no fork start method — the scan backend "
            f"cannot ride into spawned workers, skipping"
        )
        return 0

    # The race measures the shm plane itself, so every relation rides
    # it; the production size floor (DEFAULT_MIN_BYTES) is a dispatch
    # heuristic, not part of the wire under test.
    os.environ.setdefault("REPRO_SHM_MIN_BYTES", "0")

    _register_scan_backend()
    print(
        f"[{args.label}] shm-vs-pickle dispatch race "
        f"({'quick' if args.quick else 'full'}, best of {args.repeats}, "
        f"{args.workers} workers, parity asserted per round)"
    )
    results: Dict[str, dict] = {}
    for name, query, db in _workloads(args.quick):
        results[name] = run_family(
            name, query, db, args.workers, args.repeats
        )

    speedups = [e["cold"]["speedup"] for e in results.values()]
    headline = geometric_mean(speedups)
    warm_bytes = max(
        e["warm"]["shm_bytes_shipped"] for e in results.values()
    )
    cold_attached = min(
        e["cold"]["shm_attached_bytes"] for e in results.values()
    )
    print(
        f"  geomean cold-dispatch speedup ×{args.workers}: "
        f"{headline:.2f}× over the pickle wire"
    )
    print(
        f"  warm wire: ≤{warm_bytes} B shipped/family "
        f"(cold attached ≥{cold_attached} B)"
    )
    if cold_attached <= 0:
        print("FAIL: cold rounds attached no shared memory")
        return 1

    record = {
        "label": args.label,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "workers": args.workers,
        "repeats": args.repeats,
        "results": results,
        "geomean_cold_speedup": headline,
        "warm_max_bytes_shipped": warm_bytes,
        "note": (
            "cold = fresh pools/caches/arena, dispatch round timed "
            "(prepare + wire + worker-side materialize + checksum); "
            "baseline = frozen pre-shm pickle-ship protocol from "
            "_ship_baseline.py; parity asserted via per-shard relation "
            "checksums"
        ),
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    if args.min_speedup is not None and headline < args.min_speedup:
        print(f"FAIL: geomean {headline:.2f} < {args.min_speedup}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
