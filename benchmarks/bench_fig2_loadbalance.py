"""Figure 2, Geometric Resolution row — Tetris-LB beyond n = 3.

Theorem 4.11 holds for every n; this bench exercises the Balance map on
4-dimensional BCP instances (the lifted space has 2n-2 = 6 dimensions,
with two code/remainder dimension pairs) and confirms

* correctness against plain Tetris on random 4-D instances,
* the Õ(|C|^{n/2}) = Õ(|C|²) envelope on structured 4-D instances,
* that balanced partitions stay balanced (Definition 4.13) as inputs grow.
"""

import pytest

from benchmarks.conftest import loglog_slope, print_sweep
from repro.core.balance import (
    BalanceMap,
    balanced_partition,
    strictly_inside_count,
    tetris_preloaded_lb,
)
from repro.core.resolution import ResolutionStats
from repro.core.tetris import solve_bcp
from repro.workloads.hard_instances import staircase_instance
from tests.helpers import random_boxes, random_packed_boxes


def test_lb_correct_in_4d(benchmark):
    """LB and plain Tetris agree on random 4-D instances."""
    for seed in (1, 2, 3):
        boxes = random_boxes(seed, 40, 4, 3)
        plain = sorted(solve_bcp(boxes, 4, 3))
        lb = tetris_preloaded_lb(boxes, 4, 3)
        assert lb == plain
    boxes = random_boxes(1, 40, 4, 3)
    benchmark(lambda: tetris_preloaded_lb(boxes, 4, 3))


def test_lb_envelope_on_staircase_4d(benchmark):
    """Resolution counts on 4-D staircases stay inside the |C|² envelope."""
    rows = []
    xs, ys = [], []
    for d in (2, 3, 4):
        boxes = staircase_instance(4, d)
        stats = ResolutionStats()
        tetris_preloaded_lb(boxes, 4, d, stats=stats)
        c = len(boxes)
        xs.append(c)
        ys.append(max(stats.resolutions, 1))
        rows.append((d, c, stats.resolutions, c * c))
        assert stats.resolutions <= c * c * (d + 2) ** 4
    slope = loglog_slope(xs, ys)
    print_sweep(
        "Figure 2: Tetris-LB on 4-D staircases",
        ("depth", "|C|", "resolutions", "|C|^2"),
        rows,
    )
    print(f"measured exponent: {slope:.2f} (paper envelope: ≤ 2 = n/2)")
    boxes = staircase_instance(4, 3)
    benchmark(lambda: tetris_preloaded_lb(boxes, 4, 3))


def test_partitions_stay_balanced(benchmark):
    """Definition 4.13 invariants hold as the box count scales."""
    rows = []
    for count in (50, 200, 800):
        boxes = random_packed_boxes(count, count, 3, 8)
        parts = balanced_partition(boxes, 0, 8)
        threshold = count ** 0.5
        components = [b[0] for b in boxes]
        heavy = sum(
            1
            for p in parts
            if p.bit_length() - 1 < 8
            and strictly_inside_count(components, p) > threshold
        )
        rows.append((count, len(parts), int(threshold), heavy))
        assert heavy == 0
        # Õ(√|C|) parts: generous constant for the polylog.
        assert len(parts) <= 4 * threshold * 8
    print_sweep(
        "Balanced partitions (Definition 4.13) at scale",
        ("boxes", "parts", "√|C|", "heavy parts"),
        rows,
    )
    boxes = random_packed_boxes(800, 800, 3, 8)
    benchmark(lambda: balanced_partition(boxes, 0, 8))
