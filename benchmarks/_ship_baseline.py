"""The pre-shm pickle-ship dispatch path, frozen as a benchmark baseline.

``bench_shm.py`` races the live shared-memory data plane against the
dispatch protocol PR 5 introduced and PR 6/7 shipped.  The classes below
are that protocol, copied from the PR 7 revision of
``repro.parallel.scheduler`` / ``workers`` / ``merge`` and trimmed only
of the pool registry: materialized clips ride the pipes as pickled
relations inside the task (``Connection.send`` serializes them), workers
cache by content key, dealing is dynamic and cache-affine via the same
``_pick_job`` scoring the live scheduler still uses.

The point of the copy is **fidelity**: both sides of the race pay the
same dataclass, deal-loop, cache-mirror and engine-dispatch costs, so
the measured difference is the wire — parent-side clip materialization
+ pickling + pipe bytes + worker-side unpickling versus segment export
+ ref shipping + worker-side attach.  This module intentionally
duplicates rather than imports the live code: the live path now exports
segments and ships refs, and a baseline that silently inherited those
improvements would benchmark shm against itself.  Keep it frozen.

The workers don't run joins: both sides of the race register the same
per-relation checksum scan (:func:`checksum_rows`), so the checksums
double as a content-parity witness between the two wires.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import time
import traceback
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Dict, List, Optional, Sequence, Tuple

#: Mirrors the worker-side relation cache capacity of the frozen path.
CACHE_ENTRIES = 256


def checksum_rows(relations) -> List[Tuple[int, ...]]:
    """One row per relation: ``(index, cardinality, *column CRCs)``.

    ``zlib.crc32`` reads the column buffers directly — C speed over an
    ``array`` and a shared-memory ``memoryview`` alike — so the witness
    covers every shipped byte while costing microseconds: the race
    measures dispatch, not checksum arithmetic, yet a single wrong value
    anywhere in any shipped column still breaks parity.
    """
    rows = []
    for i, rel in enumerate(relations):
        crcs = tuple(zlib.crc32(col) for col in rel.columns())
        rows.append((i, len(rel)) + crcs)
    return rows


# -- the frozen wire format (PR 7 ShardTask/ShardResult) -----------------------


@dataclass(frozen=True)
class BaselineTask:
    """PR 7's ``ShardTask``: payloads carry live relations or ``None``."""

    shard_id: int
    atoms: Tuple
    payloads: Tuple[Tuple[str, Tuple, Optional[object]], ...]
    backend: str
    index_kind: str
    gao: Optional[Tuple[str, ...]]
    limit: Optional[int]
    trace: Optional[Tuple[str, Optional[str]]] = None


@dataclass
class BaselineResult:
    """PR 7's ``ShardResult``, unchanged."""

    shard_id: int
    rows: List[Tuple[int, ...]]
    stats: object
    compute_seconds: float
    ref_hits: int
    evicted: Tuple[Tuple, ...] = field(default_factory=tuple)
    error: Optional[str] = None
    spans: Tuple = field(default_factory=tuple)


@dataclass
class BaselineJob:
    """PR 7's ``PendingShard``: relations carry their cache keys."""

    shard_id: int
    relations: Tuple[Tuple[str, Tuple, object], ...]  # (name, key, Relation)
    weight: int


class _BaselinePlan:
    """The minimal plan shape registered backend runners read."""

    __slots__ = ("index_kind", "gao")

    def __init__(self, index_kind: str, gao=None):
        self.index_kind = index_kind
        self.gao = gao


# -- the frozen worker (PR 7 execute_shard/worker_main) ------------------------


def _execute_baseline_shard(task: BaselineTask, cache: OrderedDict):
    """PR 7's worker body: cache by key, engine-registry dispatch."""
    from repro.core.resolution import ResolutionStats
    from repro.engine.executor import _REGISTRY
    from repro.relational.query import Database, JoinQuery

    t0 = time.process_time()
    evicted: List[Tuple] = []
    try:
        relations = []
        hits = 0
        for _name, key, rel in task.payloads:
            if rel is None:
                rel = cache[key]
                cache.move_to_end(key)
                hits += 1
            else:
                cache[key] = rel
                cache.move_to_end(key)
                while len(cache) > CACHE_ENTRIES:
                    old_key, _ = cache.popitem(last=False)
                    evicted.append(old_key)
            relations.append(rel)
        query = JoinQuery(task.atoms)
        db = Database(relations)
        spec = _REGISTRY[task.backend]
        plan = _BaselinePlan(task.index_kind, task.gao)
        if task.limit is not None and spec.streamer is not None:
            rows_iter, stats, _gao = spec.streamer(
                query, db, plan, task.limit
            )
            rows = list(itertools.islice(rows_iter, task.limit))
        else:
            rows, stats, _gao = spec.runner(query, db, plan)
            if task.limit is not None:
                rows = rows[: task.limit]
        return BaselineResult(
            shard_id=task.shard_id,
            rows=rows,
            stats=stats,
            compute_seconds=time.process_time() - t0,
            ref_hits=hits,
            evicted=tuple(evicted),
        )
    except Exception:
        return BaselineResult(
            shard_id=task.shard_id,
            rows=[],
            stats=ResolutionStats(),
            compute_seconds=time.process_time() - t0,
            ref_hits=0,
            evicted=tuple(evicted),
            error=traceback.format_exc(),
        )


def _baseline_worker_main(conn) -> None:
    """PR 7's worker loop: recv task / send result until ``None``."""
    cache: OrderedDict = OrderedDict()
    try:
        while True:
            task = conn.recv()
            if task is None:
                break
            conn.send(_execute_baseline_shard(task, cache))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


# -- the frozen prepare (PR 7 prepare_jobs: materialized clips) ----------------


def baseline_prepare(
    query, db, num_shards: int, split_attrs
) -> List[BaselineJob]:
    """Partition and clip with materialized copies — the frozen prepare.

    Every relation of every shard is clipped into a materialized copy in
    the parent (PR 7 had no slice plans), empty-clip shards are pruned
    before dispatch, and each piece carries its content cache key.  No
    memoization here: the benchmark times cold prepares explicitly and
    re-calls this per round, exactly like the live side with a cleared
    job cache.
    """
    from repro.parallel.partition import clip_relation, partition_shards

    shards = partition_shards(query, db, num_shards, split_attrs or None)
    depth = db.domain.depth
    jobs: List[BaselineJob] = []
    for shard_id, shard in enumerate(shards):
        relations = []
        weight = 0
        for atom in query.atoms:
            rel = db[atom.name]
            attr_map = dict(zip(atom.attrs, rel.attrs))
            piece = clip_relation(rel, shard, depth, attr_map)
            if len(piece) == 0:
                relations = None
                break
            relations.append((atom.name, piece.cache_key(), piece))
            weight += len(piece)
        if relations is None:
            continue
        jobs.append(
            BaselineJob(
                shard_id=shard_id,
                relations=tuple(relations),
                weight=weight,
            )
        )
    return jobs


# -- the frozen scheduler (PR 7 WorkerPool) ------------------------------------


class BaselinePool:
    """PR 7's ``WorkerPool``: dynamic cache-affine dealing, blob wire."""

    def __init__(self, num_workers: int):
        method = (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        ctx = mp.get_context(method)
        self.num_workers = num_workers
        self._conns: List = []
        self._procs: List = []
        for i in range(num_workers):
            parent_end, child_end = ctx.Pipe()
            proc = ctx.Process(
                target=_baseline_worker_main,
                args=(child_end,),
                daemon=True,
                name=f"repro-baseline-worker-{i}",
            )
            proc.start()
            child_end.close()
            self._conns.append(parent_end)
            self._procs.append(proc)
        #: Mirror of each worker's relation cache, by content key.
        self._known: List[set] = [set() for _ in range(num_workers)]
        self.rows_shipped = 0
        self.bytes_shipped = 0  # nominal, as PR 7 accounted it

    def _pick_job(self, wid: int, pending: List[BaselineJob]) -> BaselineJob:
        """PR 7's dealing score: affinity, then unclaimed, then steal."""
        known = self._known[wid]
        others = [k for i, k in enumerate(self._known) if i != wid]
        best_i = 0
        best_score = None
        for i, job in enumerate(pending):
            own = sum(1 for _, key, _ in job.relations if key in known)
            stolen = max(
                (
                    sum(1 for _, key, _ in job.relations if key in o)
                    for o in others
                ),
                default=0,
            )
            score = (own, -stolen)
            if best_score is None or score > best_score:
                best_i, best_score = i, score
                if own == len(job.relations):
                    break
        return pending.pop(best_i)

    def dispatch(
        self,
        jobs: Sequence[BaselineJob],
        atoms,
        backend: str,
        index_kind: str = "btree",
    ) -> Dict[int, List[Tuple[int, ...]]]:
        """Deal every job dynamically; return ``{shard_id: rows}``."""
        pending = sorted(jobs, key=lambda j: -j.weight)
        results: Dict[int, List[Tuple[int, ...]]] = {}
        free = list(range(self.num_workers))
        busy: Dict[int, BaselineJob] = {}
        while pending or busy:
            while free and pending:
                wid = free.pop()
                job = self._pick_job(wid, pending)
                known = self._known[wid]
                payloads = []
                for name, key, rel in job.relations:
                    if key in known:
                        payloads.append((name, key, None))
                    else:
                        payloads.append((name, key, rel))
                        known.add(key)
                        self.rows_shipped += len(rel)
                        self.bytes_shipped += 8 * len(rel) * len(rel.attrs)
                task = BaselineTask(
                    shard_id=job.shard_id,
                    atoms=atoms,
                    payloads=tuple(payloads),
                    backend=backend,
                    index_kind=index_kind,
                    gao=None,
                    limit=None,
                )
                self._conns[wid].send(task)
                busy[wid] = job
            ready = mp_connection.wait([self._conns[w] for w in busy])
            for conn in ready:
                wid = self._conns.index(conn)
                result = self._conns[wid].recv()
                for key in result.evicted:
                    self._known[wid].discard(key)
                job = busy.pop(wid)
                free.append(wid)
                if result.error is not None:
                    raise RuntimeError(
                        f"baseline shard {result.shard_id} failed:\n"
                        f"{result.error}"
                    )
                results[result.shard_id] = result.rows
        return results

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
        for conn in self._conns:
            conn.close()
