"""The pre-PR Tetris kernel, frozen for benchmarking.

A verbatim copy of ``repro.core.dyadic_tree`` and ``repro.core.tetris``
as they stood before the frontier-resuming kernel overhaul (the PR-3
tree with plain prefix walks, the ``min(box)`` unit scan, tuple-churn
SAO translation, and the restart-per-output loop as the Reloaded
default).  ``bench_tetris_core`` races it against the live kernel over
identical oracles so the recorded speedup isolates the kernel, not the
data plane.  Not part of the library: nothing outside the benchmark
imports this module.
"""

from __future__ import annotations


from typing import Iterator, List, Optional

from repro.core.boxes import PackedBox


class MultilevelDyadicTree:
    """A set of packed dyadic boxes with Õ(1) ``find_container`` queries."""

    __slots__ = ("ndim", "_root", "_size")

    def __init__(self, ndim: int):
        if ndim < 1:
            raise ValueError("ndim must be at least 1")
        self.ndim = ndim
        self._root: dict = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, box: PackedBox) -> bool:
        node = self._root
        last = self.ndim - 1
        for level in range(last):
            node = node.get(box[level])
            if node is None:
                return False
        return box[last] in node

    def add(self, box: PackedBox) -> bool:
        """Insert a packed box; returns ``False`` when already present."""
        if len(box) != self.ndim:
            raise ValueError(
                f"box has {len(box)} components, store has {self.ndim}"
            )
        node = self._root
        last = self.ndim - 1
        for level in range(last):
            comp = box[level]
            child = node.get(comp)
            if child is None:
                child = {}
                node[comp] = child
            node = child
        comp = box[last]
        if comp in node:
            return False
        node[comp] = box
        self._size += 1
        return True

    def find_container(self, box: PackedBox) -> Optional[PackedBox]:
        """A stored box containing ``box``, or ``None``.

        DFS over the stored prefixes of each component: at every level
        each packed prefix of the query component (``q >> k``) is one
        dict probe.  The first hit is returned; Tetris only needs *some*
        witness (Algorithm 1, line 1).
        """
        last = self.ndim - 1
        if last == 0:
            node = self._root
            q = box[0]
            while True:
                hit = node.get(q)
                if hit is not None:
                    return hit
                if q == 1:
                    return None
                q >>= 1
        stack = [(0, self._root)]
        push = stack.append
        pop = stack.pop
        while stack:
            level, node = pop()
            q = box[level]
            if level == last:
                get = node.get
                while True:
                    hit = get(q)
                    if hit is not None:
                        return hit
                    if q == 1:
                        break
                    q >>= 1
            else:
                nxt = level + 1
                get = node.get
                while True:
                    child = get(q)
                    if child is not None:
                        push((nxt, child))
                    if q == 1:
                        break
                    q >>= 1
        return None

    def find_all_containers(self, box: PackedBox) -> List[PackedBox]:
        """All stored boxes containing ``box`` (the oracle query of §3.4)."""
        out: List[PackedBox] = []
        last = self.ndim - 1
        stack = [(0, self._root)]
        while stack:
            level, node = stack.pop()
            q = box[level]
            if level == last:
                while True:
                    hit = node.get(q)
                    if hit is not None:
                        out.append(hit)
                    if q == 1:
                        break
                    q >>= 1
            else:
                nxt = level + 1
                while True:
                    child = node.get(q)
                    if child is not None:
                        stack.append((nxt, child))
                    if q == 1:
                        break
                    q >>= 1
        return out

    def __iter__(self) -> Iterator[PackedBox]:
        """Iterate over all stored boxes (test/debug helper)."""

        def walk(level: int, node: dict) -> Iterator[PackedBox]:
            if level == self.ndim - 1:
                yield from node.values()
            else:
                for child in node.values():
                    yield from walk(level + 1, child)

        yield from walk(0, self._root)



from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core import intervals as dy
from repro.core.boxes import PackedBox, box_contains

from repro.core.resolution import ResolutionStats, Resolver

Point = Tuple[int, ...]


class DimensionSpec:
    """How one dimension of the output space bottoms out.

    The plain engine treats every dimension as ``{0,1}^d`` (``FixedDepth``).
    The load-balanced engine of Section 4.5 lifts an n-dimensional BCP into
    2n-2 dimensions whose components are *not* fixed-length strings:

    * a partition dimension ``A'`` holds elements of a complete prefix-free
      code P (a balanced partition) — a component is unit when it is in P;
    * its remainder dimension ``A''`` holds the suffix, whose unit length
      depends on the P element chosen on ``A'``.

    Implementations answer, for a packed box in SAO order, whether an axis
    is at its unit (unsplittable) level.
    """

    def is_unit(self, box: PackedBox, axis: int) -> bool:
        raise NotImplementedError


class FixedDepth(DimensionSpec):
    """Ordinary dimension over ``{0,1}^depth``."""

    __slots__ = ("depth", "_unit")

    def __init__(self, depth: int):
        self.depth = depth
        self._unit = 1 << depth

    def is_unit(self, box: PackedBox, axis: int) -> bool:
        return box[axis] >= self._unit


class CodeDimension(DimensionSpec):
    """Dimension whose unit values form a complete prefix-free code.

    ``code`` is the set of packed intervals of a balanced partition P; any
    strict prefix of a code element is splittable, any code element is unit.
    """

    __slots__ = ("code",)

    def __init__(self, code):
        self.code = frozenset(code)

    def is_unit(self, box: PackedBox, axis: int) -> bool:
        return box[axis] in self.code


class RemainderDimension(DimensionSpec):
    """Suffix dimension paired with a code dimension.

    Unit length is ``total_depth`` minus the length of the partner (code)
    component.  Valid because the SAO visits the partner first, so by the
    time this axis is split the partner component is already unit.
    """

    __slots__ = ("partner_axis", "total_depth")

    def __init__(self, partner_axis: int, total_depth: int):
        self.partner_axis = partner_axis
        self.total_depth = total_depth

    def is_unit(self, box: PackedBox, axis: int) -> bool:
        # len(axis) == total_depth - len(partner), via bit_length = len + 1.
        return (
            box[axis].bit_length() + box[self.partner_axis].bit_length()
            == self.total_depth + 2
        )


class BoxSetOracle:
    """Oracle access to a set of gap boxes ``B`` (Section 3.4).

    Given a unit box (a point of the output space), returns all boxes of
    ``B`` containing it in Õ(1) via a multilevel dyadic tree.  This models
    "the pre-built database indices of the input relations".

    Input boxes may be in pair or packed form (packed once here, at the
    boundary); all queries and results are packed.
    """

    def __init__(self, boxes: Iterable, ndim: int):
        self.ndim = ndim
        self._tree = MultilevelDyadicTree(ndim)
        self._boxes: List[PackedBox] = []
        for box in boxes:
            packed = dy.pack_box(box)
            if self._tree.add(packed):
                self._boxes.append(packed)

    def __len__(self) -> int:
        return len(self._boxes)

    def containing(self, unit_box: PackedBox) -> List[PackedBox]:
        """All gap boxes containing the given point (Algorithm 2, line 4)."""
        return self._tree.find_all_containers(unit_box)

    def boxes(self) -> Sequence[PackedBox]:
        """The full box set (used by Tetris-Preloaded initialization)."""
        return self._boxes


class TetrisEngine:
    """One Tetris run: a knowledge base, a resolver, and a splitting order.

    ``sao`` is the splitting attribute order as a permutation of dimension
    indices; boxes are stored and split internally in SAO order and
    translated back at the API boundary.  All engine-level box arguments
    and results (``skeleton``, ``add_box``, ``return_boxes`` outputs) are
    **packed**.
    """

    def __init__(
        self,
        ndim: int,
        depth: int,
        sao: Optional[Sequence[int]] = None,
        cache_resolvents: bool = True,
        stats: Optional[ResolutionStats] = None,
        dims: Optional[Sequence[DimensionSpec]] = None,
        knowledge_base=None,
    ):
        if ndim < 1:
            raise ValueError("ndim must be at least 1")
        if depth < 0:
            raise ValueError("depth must be non-negative")
        self.ndim = ndim
        self.depth = depth
        self.sao: Tuple[int, ...] = (
            tuple(range(ndim)) if sao is None else tuple(sao)
        )
        if sorted(self.sao) != list(range(ndim)):
            raise ValueError(
                f"sao must be a permutation of 0..{ndim - 1}, got {self.sao}"
            )
        inv = [0] * ndim
        for pos, dim in enumerate(self.sao):
            inv[dim] = pos
        self._inv_sao = tuple(inv)
        self.cache_resolvents = cache_resolvents
        self.stats = stats if stats is not None else ResolutionStats()
        # The store behind Algorithm 1's A; any object with
        # add / find_container / find_all_containers works
        # (see repro.core.stores for the linear-scan ablation).
        self.knowledge_base = (
            knowledge_base
            if knowledge_base is not None
            else MultilevelDyadicTree(ndim)
        )
        self._resolver = Resolver(self.stats)
        self._universe: PackedBox = (dy.PLAMBDA,) * ndim
        self._unit_marker = 1 << depth
        self._return_boxes = False
        # Dimension specs are given in *internal (SAO) order*; None means
        # every dimension is a plain {0,1}^depth domain (the fast path).
        self.dims: Optional[Tuple[DimensionSpec, ...]] = (
            tuple(dims) if dims is not None else None
        )
        if self.dims is not None:
            if len(self.dims) != ndim:
                raise ValueError("one dimension spec per dimension")
            for i, spec in enumerate(self.dims):
                if (
                    isinstance(spec, RemainderDimension)
                    and spec.partner_axis >= i
                ):
                    raise ValueError(
                        "a remainder dimension must follow its code "
                        "dimension in SAO order"
                    )

    def _is_unit_box(self, box: PackedBox) -> bool:
        """Unit test under dimension specs (generalized spaces only)."""
        dims = self.dims
        return all(
            dims[i].is_unit(box, i) for i in range(self.ndim)
        )

    def _first_thick_generalized(self, box: PackedBox) -> int:
        dims = self.dims
        for i in range(self.ndim):
            if not dims[i].is_unit(box, i):
                return i
        raise ValueError("unit boxes cannot be split")

    # -- SAO translation -----------------------------------------------------

    def to_internal(self, box: PackedBox) -> PackedBox:
        """Permute a space-order box into SAO order."""
        sao = self.sao
        return tuple(box[sao[i]] for i in range(self.ndim))

    def to_external(self, box: PackedBox) -> PackedBox:
        """Permute an SAO-order box back into space order."""
        inv = self._inv_sao
        return tuple(box[inv[i]] for i in range(self.ndim))

    def add_box(self, box) -> bool:
        """Amend the knowledge base with a space-order box.

        Accepts pair or packed form (tolerant boundary conversion).
        """
        added = self.knowledge_base.add(self.to_internal(dy.pack_box(box)))
        if added:
            self.stats.boxes_loaded += 1
        return added

    # -- Algorithm 1: TetrisSkeleton ------------------------------------------

    def skeleton(self, target: PackedBox) -> Tuple[bool, PackedBox]:
        """Algorithm 1 on an SAO-order packed target box.

        Returns ``(True, w)`` with ``w ⊇ target`` covered by the knowledge
        base, or ``(False, p)`` with ``p`` an uncovered unit box inside
        ``target``.  Implemented with an explicit stack; each frame holds
        ``[b, second_half, axis, w1, stage]``.
        """
        kb = self.knowledge_base
        find_container = kb.find_container
        kb_add = kb.add
        stats = self.stats
        unit = self._unit_marker
        cache = self.cache_resolvents
        resolver = self._resolver
        uniform = self.dims is None
        stats.skeleton_calls += 1

        stack: list = []
        current: Optional[PackedBox] = target
        result: Tuple[bool, PackedBox] = (False, target)

        while True:
            if current is not None:
                b = current
                stats.containment_queries += 1
                witness = find_container(b)
                if witness is not None:
                    stats.cache_hits += 1
                    result = (True, witness)
                    current = None
                    continue
                # Unit box check: every component at its unit level.
                if (
                    min(b) >= unit if uniform else self._is_unit_box(b)
                ):
                    result = (False, b)
                    current = None
                    continue
                if uniform:
                    axis = 0
                    while b[axis] >= unit:
                        axis += 1
                else:
                    axis = self._first_thick_generalized(b)
                head = b[:axis]
                tail = b[axis + 1:]
                half = b[axis] << 1
                b1 = head + (half,) + tail
                b2 = head + (half | 1,) + tail
                stack.append([b, b2, axis, None, 0])
                current = b1
                continue

            if not stack:
                return result

            frame = stack[-1]
            covered, witness = result
            if not covered:
                # An uncovered point propagates straight to the root
                # (Algorithm 1, lines 9–10 and 14–15).
                stack.pop()
                continue
            b, b2, axis, w1, stage = frame
            if box_contains(witness, b):
                # Lines 11–12 / 16–17: the half's witness already covers b.
                stack.pop()
                continue
            if stage == 0:
                frame[3] = witness
                frame[4] = 1
                current = b2
                continue
            # Both halves covered but neither witness covers b: resolve.
            resolvent = resolver.resolve(w1, witness, axis)
            if cache:
                kb_add(resolvent)
            stack.pop()
            result = (True, resolvent)

    # -- Algorithm 2: the outer loop -------------------------------------------

    def run(
        self,
        oracle: Optional[BoxSetOracle] = None,
        preload: bool = False,
        one_pass: bool = False,
        max_outputs: Optional[int] = None,
        return_boxes: bool = False,
    ):
        """Solve the box cover problem, returning all uncovered points.

        ``oracle`` supplies the input gap boxes in space order; with
        ``preload=True`` they are all loaded into the knowledge base up
        front (Tetris-Preloaded), otherwise they are pulled on demand
        (Tetris-Reloaded).  ``one_pass`` switches to the TetrisSkeleton2
        traversal that reports outputs without restarting.

        ``return_boxes=True`` yields each output as a full packed unit
        box (space order) rather than a tuple of values — required for
        generalized spaces where components have varying lengths.
        """
        if oracle is not None and preload:
            to_internal = self.to_internal
            kb_add = self.knowledge_base.add
            loaded = 0
            for box in oracle.boxes():
                if kb_add(to_internal(box)):
                    loaded += 1
            self.stats.boxes_loaded += loaded
        self._return_boxes = return_boxes
        if one_pass:
            return self._run_one_pass(oracle, max_outputs)
        return self._run_restarting(oracle, max_outputs)

    def _emit(self, unit_internal: PackedBox):
        """Convert an internal unit box to the configured output form."""
        external = self.to_external(unit_internal)
        if self._return_boxes:
            return external
        if self.dims is None:
            unit = self._unit_marker
            return tuple(p ^ unit for p in external)
        return tuple(dy.pvalue(p) for p in external)

    def _oracle_lookup(
        self, oracle: Optional[BoxSetOracle], point_internal: PackedBox
    ) -> List[PackedBox]:
        """Query the oracle with an internal (SAO-order) unit box."""
        if oracle is None:
            return []
        self.stats.oracle_queries += 1
        external = self.to_external(point_internal)
        return [self.to_internal(b) for b in oracle.containing(external)]

    def _run_restarting(
        self, oracle: Optional[BoxSetOracle], max_outputs: Optional[int]
    ) -> List[Point]:
        """Faithful Algorithm 2: restart the skeleton after every witness."""
        outputs: List[Point] = []
        universe = self._universe
        kb = self.knowledge_base
        covered, witness = self.skeleton(universe)
        while not covered:
            gap_boxes = self._oracle_lookup(oracle, witness)
            if not gap_boxes:
                outputs.append(self._emit(witness))
                gap_boxes = [witness]
                if max_outputs is not None and len(outputs) >= max_outputs:
                    return outputs
            for box in gap_boxes:
                if kb.add(box):
                    self.stats.boxes_loaded += 1
            covered, witness = self.skeleton(universe)
        return outputs

    def _run_one_pass(
        self, oracle: Optional[BoxSetOracle], max_outputs: Optional[int]
    ) -> List[Point]:
        """TetrisSkeleton2: handle uncovered points in place, never restart."""
        kb = self.knowledge_base
        find_container = kb.find_container
        kb_add = kb.add
        stats = self.stats
        unit = self._unit_marker
        cache = self.cache_resolvents
        resolver = self._resolver
        uniform = self.dims is None
        outputs: List[Point] = []
        stats.skeleton_calls += 1

        stack: list = []
        current: Optional[PackedBox] = self._universe
        result: Tuple[bool, PackedBox] = (True, self._universe)

        while True:
            if current is not None:
                b = current
                stats.containment_queries += 1
                witness = find_container(b)
                if witness is not None:
                    stats.cache_hits += 1
                    result = (True, witness)
                    current = None
                    continue
                if (
                    min(b) >= unit if uniform else self._is_unit_box(b)
                ):
                    gap_boxes = self._oracle_lookup(oracle, b)
                    if gap_boxes:
                        for box in gap_boxes:
                            if kb_add(box):
                                stats.boxes_loaded += 1
                        result = (True, gap_boxes[0])
                    else:
                        outputs.append(self._emit(b))
                        if (
                            max_outputs is not None
                            and len(outputs) >= max_outputs
                        ):
                            return outputs
                        kb_add(b)
                        stats.boxes_loaded += 1
                        result = (True, b)
                    current = None
                    continue
                if uniform:
                    axis = 0
                    while b[axis] >= unit:
                        axis += 1
                else:
                    axis = self._first_thick_generalized(b)
                head = b[:axis]
                tail = b[axis + 1:]
                half = b[axis] << 1
                b1 = head + (half,) + tail
                b2 = head + (half | 1,) + tail
                stack.append([b, b2, axis, None, 0])
                current = b1
                continue

            if not stack:
                return outputs

            frame = stack[-1]
            _, witness = result
            b, b2, axis, w1, stage = frame
            if box_contains(witness, b):
                stack.pop()
                continue
            if stage == 0:
                frame[3] = witness
                frame[4] = 1
                current = b2
                continue
            resolvent = resolver.resolve(w1, witness, axis)
            if cache:
                kb_add(resolvent)
            stack.pop()
            result = (True, resolvent)


# -- Convenience entry points ---------------------------------------------------


def solve_bcp(
    boxes: Iterable,
    ndim: int,
    depth: int,
    sao: Optional[Sequence[int]] = None,
    preload: bool = True,
    cache_resolvents: bool = True,
    one_pass: bool = True,
    stats: Optional[ResolutionStats] = None,
) -> List[Point]:
    """Solve a Box Cover Problem instance: list points not covered by ``boxes``.

    ``boxes`` may use the documented ``(value, length)`` pair components
    or packed ints (converted once at this boundary).  Defaults to the
    fast one-pass preloaded configuration; pass
    ``preload=False, one_pass=False`` for the faithful Tetris-Reloaded.
    """
    oracle = BoxSetOracle(boxes, ndim)
    engine = TetrisEngine(
        ndim, depth, sao=sao, cache_resolvents=cache_resolvents, stats=stats
    )
    return engine.run(oracle, preload=preload, one_pass=one_pass)


def tetris_preloaded(
    boxes: Iterable,
    ndim: int,
    depth: int,
    sao: Optional[Sequence[int]] = None,
    stats: Optional[ResolutionStats] = None,
    one_pass: bool = True,
) -> List[Point]:
    """Tetris-Preloaded (Section 4.3): worst-case-optimal configuration."""
    return solve_bcp(
        boxes, ndim, depth, sao=sao, preload=True, one_pass=one_pass,
        stats=stats,
    )


def tetris_reloaded(
    boxes: Iterable,
    ndim: int,
    depth: int,
    sao: Optional[Sequence[int]] = None,
    stats: Optional[ResolutionStats] = None,
    one_pass: bool = False,
) -> List[Point]:
    """Tetris-Reloaded (Section 4.4): certificate-based configuration."""
    return solve_bcp(
        boxes, ndim, depth, sao=sao, preload=False, one_pass=one_pass,
        stats=stats,
    )


def boolean_box_cover(
    boxes: Iterable,
    ndim: int,
    depth: int,
    sao: Optional[Sequence[int]] = None,
    stats: Optional[ResolutionStats] = None,
) -> bool:
    """Boolean BCP (Definition 3.5): does the union cover the whole space?

    Stops at the first uncovered point, so an uncovered instance exits early.
    """
    oracle = BoxSetOracle(boxes, ndim)
    engine = TetrisEngine(ndim, depth, sao=sao, stats=stats)
    uncovered = engine.run(oracle, preload=True, one_pass=True, max_outputs=1)
    return not uncovered
