"""Table 1, row 5 — treewidth-1 queries in Õ(|C| + Z).

Paper claim (Theorem 4.7 / Corollary 4.8): with an elimination-width-1
SAO, Tetris-Reloaded solves treewidth-1 joins in time proportional to the
*box certificate*, not the input.

Measured shape: on the split family (B-values of R and S in opposite
domain halves ⇒ empty join, |C| = 2), the boxes loaded and resolutions
performed must stay O(1) — flat — while N grows by 64×; the
worst-case-optimal Leapfrog baseline's runtime grows with N.
"""

import time

import pytest

from benchmarks.conftest import loglog_slope, print_sweep
from repro.core.resolution import ResolutionStats
from repro.joins.leapfrog import join_leapfrog
from repro.joins.tetris_join import join_tetris, make_oracle
from repro.workloads.generators import split_path_instance

SIZES = (50, 200, 800, 3200)
DEPTH = 12


def test_certificate_flat_scaling(benchmark):
    """Work is governed by |C| = O(1), independent of N."""
    rows = []
    loaded_counts = []
    for m in SIZES:
        query, db, gao = split_path_instance(m, depth=DEPTH, seed=1)
        stats = ResolutionStats()
        result = join_tetris(
            query, db, variant="reloaded", gao=gao, stats=stats
        )
        assert result.tuples == []
        rows.append(
            (db.total_tuples, stats.boxes_loaded, stats.resolutions,
             stats.oracle_queries)
        )
        loaded_counts.append(stats.boxes_loaded)
    print_sweep(
        "Table 1 row 5: split path query (|C| = O(1)), Tetris-Reloaded",
        ("N", "boxes loaded", "resolutions", "oracle queries"),
        rows,
    )
    # Flatness: the largest instance needs no more boxes than the
    # smallest (both certify with the same two coarse boxes).
    assert loaded_counts[-1] <= loaded_counts[0] + 2
    assert max(loaded_counts) <= 8

    query, db, gao = split_path_instance(SIZES[-1], depth=DEPTH, seed=1)
    oracle, gao = make_oracle(query, db, gao=gao)

    def run():
        from repro.core.tetris import TetrisEngine

        attrs = oracle.attrs
        sao = tuple(attrs.index(a) for a in gao)
        engine = TetrisEngine(len(attrs), DEPTH, sao=sao)
        return engine.run(oracle, preload=False)

    assert benchmark(run) == []


def test_leapfrog_grows_with_n(benchmark):
    """The comparison point: a WCOJ baseline must look at Θ(N) data."""
    times = []
    for m in (SIZES[0], SIZES[-1]):
        query, db, gao = split_path_instance(m, depth=DEPTH, seed=1)
        t0 = time.perf_counter()
        assert join_leapfrog(query, db, gao=gao) == []
        times.append(time.perf_counter() - t0)
    print(f"\nleapfrog runtime small→large: {times[0]:.4f}s → "
          f"{times[1]:.4f}s (grows with N)")
    query, db, gao = split_path_instance(SIZES[-1], depth=DEPTH, seed=1)
    benchmark(lambda: join_leapfrog(query, db, gao=gao))


def test_nonempty_output_pays_only_z(benchmark):
    """With K matching join values, work is Õ(|C| + Z): linear in Z."""
    import random

    from repro.relational.query import path_query
    from repro.workloads.generators import db_from_tuples

    def make(k):
        # R's B-values in the lower half except k bridge values that S
        # shares — output has exactly k · (pairs) tuples.
        rng = random.Random(0)
        half = 1 << (DEPTH - 1)
        query = path_query(2)
        bridges = list(range(half, half + k))
        r_rows = sorted(
            {(rng.randrange(1 << DEPTH), rng.randrange(half))
             for _ in range(400)}
        ) + [(i, b) for i, b in enumerate(bridges)]
        s_rows = sorted(
            {(half + rng.randrange(half), rng.randrange(1 << DEPTH))
             for _ in range(400)}
        )
        s_rows = [t for t in s_rows if t[0] not in set(bridges)]
        s_rows += [(b, 7) for b in bridges]
        db = db_from_tuples(query, {"R0": r_rows, "R1": s_rows}, DEPTH)
        return query, db

    xs, ys = [], []
    for k in (4, 16, 64):
        query, db = make(k)
        stats = ResolutionStats()
        result = join_tetris(
            query, db, variant="reloaded", gao=("A1", "A0", "A2"),
            stats=stats,
        )
        assert len(result) >= k
        xs.append(len(result) + stats.boxes_loaded)
        ys.append(stats.resolutions)
    slope = loglog_slope(xs, ys)
    print(f"\nexponent of resolutions vs |C|+Z: {slope:.2f} (paper: 1.0)")
    assert slope < 1.4
    query, db = make(16)
    benchmark(
        lambda: join_tetris(
            query, db, variant="reloaded", gao=("A1", "A0", "A2")
        )
    )
