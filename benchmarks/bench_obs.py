"""Observability overhead benchmark: the instrumented engine vs. PR-6.

Three execution modes race over the five Table-1 workload families at
worker counts 1 and 4, all running the *same* pre-computed plan:

* **plain** — the frozen pre-observability execute path
  (``benchmarks/_plain_exec.py``): backend runner for serial plans,
  shard merge + sort for parallel ones.  This is the PR-6 baseline.
* **disabled** — ``execute()`` with the metrics registry and tracing
  both off.  This is the default-off cost every query pays: a handful
  of per-query flag checks, never anything per tuple.
* **traced** — ``execute()`` with metrics on and tracing on: span tree
  for the full lifecycle (worker processes serialize their shard spans
  back over the pipe) plus two registry snapshots per query.

Output parity is asserted across modes on every run.  The gates:

* ``--max-disabled-overhead`` (default 0.03) — geomean of
  ``disabled/plain − 1`` must stay under it; observability that is
  switched off must be free.
* ``--max-traced-overhead`` (default 0.15) — geomean of
  ``traced/plain − 1``; full tracing is allowed a real but bounded tax.

``--trace-sample PATH`` additionally writes one traced parallel run as
a Chrome trace-event file (load it at https://ui.perfetto.dev) — CI
uploads it as an artifact so every build has an inspectable trace.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py \
        [--quick] [--repeats 5] [--output BENCH_obs.json] \
        [--trace-sample trace-sample.json] \
        [--max-disabled-overhead 0.03] [--max-traced-overhead 0.15]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List

from bench_parallel import _host_cores, _workloads

WORKER_COUNTS = (1, 4)


def _set_modes(metrics_on: bool, trace_on: bool) -> None:
    from repro.obs import metrics, tracing

    metrics.set_enabled(metrics_on)
    tracing.set_enabled(trace_on)


def _time_interleaved(modes, repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` per mode, modes interleaved round-robin.

    Back-to-back blocks per mode would let slow host drift (thermal
    throttling, noisy CI neighbors) bias whichever mode runs last;
    rotating through the modes every round exposes them all to the same
    drift, and the min absorbs the noise.
    """
    for _, setup, fn in modes:
        setup()
        fn()  # warm-up: kernels, sorted views, worker pools, caches
    best = {tag: float("inf") for tag, _, _ in modes}
    for _ in range(repeats):
        for tag, setup, fn in modes:
            setup()
            t0 = time.perf_counter()
            fn()
            dt = time.perf_counter() - t0
            if dt < best[tag]:
                best[tag] = dt
    return best


def geometric_mean(xs: List[float]) -> float:
    prod = 1.0
    for x in xs:
        prod *= x
    return prod ** (1.0 / len(xs))


def run_suite(quick: bool, repeats: int) -> Dict[str, dict]:
    from _plain_exec import plain_execute

    from repro.engine import clear_plan_cache, execute, plan_query

    results: Dict[str, dict] = {}
    for name, query, db in _workloads(quick):
        clear_plan_cache()
        entry: Dict[str, object] = {"by_workers": {}}
        for w in WORKER_COUNTS:
            plan = plan_query(
                query, db, workers=w if w > 1 else None
            )
            entry["backend"] = plan.backend

            _set_modes(False, False)
            expected = sorted(plain_execute(query, db, plan)[0])

            def _check(tag, metrics_on, trace_on):
                # Output parity across modes, asserted outside the
                # timed loop so the sort/compare isn't billed as
                # observability overhead.
                _set_modes(metrics_on, trace_on)
                got = execute(query, db, plan=plan)
                if sorted(got.tuples) != expected:
                    raise AssertionError(
                        f"{name} ×{w} [{tag}]: output differs from the "
                        "plain baseline"
                    )

            _check("disabled", False, False)
            _check("traced", True, True)

            run = lambda: execute(query, db, plan=plan)  # noqa: E731
            best = _time_interleaved(
                [
                    ("plain", lambda: _set_modes(False, False),
                     lambda: plain_execute(query, db, plan)),
                    ("disabled", lambda: _set_modes(False, False), run),
                    ("traced", lambda: _set_modes(True, True), run),
                ],
                repeats,
            )
            _set_modes(True, False)

            entry["by_workers"][str(w)] = {
                "num_shards": plan.num_shards,
                "plain_s": best["plain"],
                "disabled_s": best["disabled"],
                "traced_s": best["traced"],
                "disabled_ratio": best["disabled"] / best["plain"],
                "traced_ratio": best["traced"] / best["plain"],
            }
        entry["n_tuples"] = db.total_tuples
        entry["output_tuples"] = len(expected)
        results[name] = entry
        for w in WORKER_COUNTS:
            p = entry["by_workers"][str(w)]
            print(
                f"  {name:20s} ×{w}  plain "
                f"{p['plain_s'] * 1e3:8.1f} ms   disabled "
                f"{(p['disabled_ratio'] - 1) * 100:+6.2f}%   traced "
                f"{(p['traced_ratio'] - 1) * 100:+6.2f}%"
            )
    return results


def write_trace_sample(quick: bool, path: str) -> None:
    """One fully-traced 4-worker run, exported as a Chrome trace."""
    from repro.engine import execute
    from repro.obs import tracing

    name, query, db = _workloads(quick)[0]
    _set_modes(True, True)
    try:
        # A forced backend plus workers always shards (auto planning may
        # legitimately stay serial on a small host) — the sample trace
        # must show the full dispatch/shard/merge lifecycle.
        result = execute(query, db, algorithm="leapfrog", workers=4)
    finally:
        _set_modes(True, False)
    tracing.write_chrome_trace(result.trace.serialized(), path)
    print(
        f"  trace sample       : {name} ×4 → {path} "
        f"({len(result.trace.spans)} spans)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="obs")
    parser.add_argument("--output", default="BENCH_obs.json")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--quick", action="store_true", help="small sizes")
    parser.add_argument("--trace-sample", default=None, metavar="PATH")
    parser.add_argument("--max-disabled-overhead", type=float, default=0.03)
    parser.add_argument("--max-traced-overhead", type=float, default=0.15)
    args = parser.parse_args(argv)

    # The registry/tracer flags are flipped per mode below; pin the env
    # out of the way so a caller's REPRO_* settings can't skew a mode.
    os.environ.pop("REPRO_SLOW_QUERY_MS", None)

    print(
        f"[{args.label}] observability overhead benchmark "
        f"({'quick' if args.quick else 'full'}, best of {args.repeats}, "
        f"host cores {_host_cores()})"
    )
    results = run_suite(args.quick, args.repeats)
    if args.trace_sample:
        write_trace_sample(args.quick, args.trace_sample)

    from repro.parallel import shutdown_pools

    shutdown_pools()

    disabled_ratios = [
        p["disabled_ratio"]
        for e in results.values()
        for p in e["by_workers"].values()
    ]
    traced_ratios = [
        p["traced_ratio"]
        for e in results.values()
        for p in e["by_workers"].values()
    ]
    disabled_overhead = geometric_mean(disabled_ratios) - 1
    traced_overhead = geometric_mean(traced_ratios) - 1
    print(
        f"  geomean overhead   : disabled {disabled_overhead * 100:+.2f}% "
        f"(gate < {args.max_disabled_overhead * 100:.0f}%), traced "
        f"{traced_overhead * 100:+.2f}% "
        f"(gate < {args.max_traced_overhead * 100:.0f}%)"
    )

    record = {
        "label": args.label,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "host_cores": _host_cores(),
        "repeats": args.repeats,
        "worker_counts": list(WORKER_COUNTS),
        "families": results,
        "geomean_disabled_overhead": disabled_overhead,
        "geomean_traced_overhead": traced_overhead,
        "gates": {
            "max_disabled_overhead": args.max_disabled_overhead,
            "max_traced_overhead": args.max_traced_overhead,
        },
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    failed = False
    if disabled_overhead > args.max_disabled_overhead:
        print(
            f"FAIL: disabled overhead {disabled_overhead * 100:.2f}% > "
            f"{args.max_disabled_overhead * 100:.0f}%"
        )
        failed = True
    if traced_overhead > args.max_traced_overhead:
        print(
            f"FAIL: traced overhead {traced_overhead * 100:.2f}% > "
            f"{args.max_traced_overhead * 100:.0f}%"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
