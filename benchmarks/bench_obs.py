"""Observability overhead benchmark: the instrumented engine vs. PR-6.

Five execution modes race over the five Table-1 workload families at
worker counts 1 and 4, all running the *same* pre-computed plan:

* **plain** — the frozen pre-observability execute path
  (``benchmarks/_plain_exec.py``): backend runner for serial plans,
  shard merge + sort for parallel ones.  This is the PR-6 baseline.
* **disabled** — ``execute()`` with the metrics registry and tracing
  both off.  This is the default-off cost every query pays: a handful
  of per-query flag checks, never anything per tuple.
* **metrics** — registry on, tracing off: quantile histograms, the
  flight recorder, and — on parallel rows — each worker's registry
  delta shipped home on its shard results.  The default-on production
  configuration.
* **traced** — ``execute()`` with metrics on and tracing on: span tree
  for the full lifecycle (worker processes serialize their shard spans
  back over the pipe) plus two registry snapshots per query.
* **profiled** — metrics on plus the 200 Hz sampling profiler running;
  sampling is statistical, so this bounds the flamegraph tax.

Output parity is asserted across modes on every run.  The gates:

* ``--max-disabled-overhead`` (default 0.03) — geomean of
  ``disabled/plain − 1`` must stay under it; observability that is
  switched off must be free.
* ``--max-shipping-overhead`` (default 0.03) — geomean of
  ``metrics/plain − 1`` over the **parallel** rows only: histograms +
  worker-delta shipping must stay in the noise.
* ``--max-traced-overhead`` (default 0.15) — geomean of
  ``traced/plain − 1``; full tracing is allowed a real but bounded tax.
* ``--max-profiled-overhead`` (default 0.10) — geomean of
  ``profiled/plain − 1``; a running sampler costs a few percent.

``--trace-sample PATH`` additionally writes one traced parallel run as
a Chrome trace-event file (load it at https://ui.perfetto.dev), and
``--flame-sample PATH`` writes one profiled run as a speedscope JSON
flamegraph (plus the collapsed-stack ``.folded`` next to it) — CI
uploads both as artifacts so every build has an inspectable trace and
profile.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py \
        [--quick] [--repeats 5] [--output BENCH_obs.json] \
        [--trace-sample trace-sample.json] \
        [--flame-sample flame-sample.speedscope.json] \
        [--max-disabled-overhead 0.03] [--max-shipping-overhead 0.03] \
        [--max-traced-overhead 0.15] [--max-profiled-overhead 0.10]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List

from bench_parallel import _host_cores, _workloads

WORKER_COUNTS = (1, 4)


def _set_modes(
    metrics_on: bool, trace_on: bool, profile_on: bool = False
) -> None:
    from repro.obs import metrics, profiler, tracing

    metrics.set_enabled(metrics_on)
    tracing.set_enabled(trace_on)
    if profile_on:
        profiler.install()
    elif profiler.active() is not None:
        profiler.uninstall()


def _time_interleaved(modes, repeats: int) -> Dict[str, float]:
    """Best-of-``repeats`` per mode, modes interleaved round-robin.

    Back-to-back blocks per mode would let slow host drift (thermal
    throttling, noisy CI neighbors) bias whichever mode runs last;
    rotating through the modes every round exposes them all to the same
    drift, and the min absorbs the noise.
    """
    for _, setup, fn in modes:
        setup()
        fn()  # warm-up: kernels, sorted views, worker pools, caches
    best = {tag: float("inf") for tag, _, _ in modes}
    for _ in range(repeats):
        for tag, setup, fn in modes:
            setup()
            t0 = time.perf_counter()
            fn()
            dt = time.perf_counter() - t0
            if dt < best[tag]:
                best[tag] = dt
    return best


def geometric_mean(xs: List[float]) -> float:
    prod = 1.0
    for x in xs:
        prod *= x
    return prod ** (1.0 / len(xs))


def run_suite(quick: bool, repeats: int) -> Dict[str, dict]:
    from _plain_exec import plain_execute

    from repro.engine import clear_plan_cache, execute, plan_query

    results: Dict[str, dict] = {}
    for name, query, db in _workloads(quick):
        clear_plan_cache()
        entry: Dict[str, object] = {"by_workers": {}}
        for w in WORKER_COUNTS:
            plan = plan_query(
                query, db, workers=w if w > 1 else None
            )
            entry["backend"] = plan.backend

            _set_modes(False, False)
            expected = sorted(plain_execute(query, db, plan)[0])

            def _check(tag, metrics_on, trace_on):
                # Output parity across modes, asserted outside the
                # timed loop so the sort/compare isn't billed as
                # observability overhead.
                _set_modes(metrics_on, trace_on)
                got = execute(query, db, plan=plan)
                if sorted(got.tuples) != expected:
                    raise AssertionError(
                        f"{name} ×{w} [{tag}]: output differs from the "
                        "plain baseline"
                    )

            _check("disabled", False, False)
            _check("metrics", True, False)
            _check("traced", True, True)

            run = lambda: execute(query, db, plan=plan)  # noqa: E731
            best = _time_interleaved(
                [
                    ("plain", lambda: _set_modes(False, False),
                     lambda: plain_execute(query, db, plan)),
                    ("disabled", lambda: _set_modes(False, False), run),
                    ("metrics", lambda: _set_modes(True, False), run),
                    ("traced", lambda: _set_modes(True, True), run),
                    ("profiled",
                     lambda: _set_modes(True, False, profile_on=True),
                     run),
                ],
                repeats,
            )
            _set_modes(True, False)

            entry["by_workers"][str(w)] = {
                "num_shards": plan.num_shards,
                "plain_s": best["plain"],
                "disabled_s": best["disabled"],
                "metrics_s": best["metrics"],
                "traced_s": best["traced"],
                "profiled_s": best["profiled"],
                "disabled_ratio": best["disabled"] / best["plain"],
                "metrics_ratio": best["metrics"] / best["plain"],
                "traced_ratio": best["traced"] / best["plain"],
                "profiled_ratio": best["profiled"] / best["plain"],
            }
        entry["n_tuples"] = db.total_tuples
        entry["output_tuples"] = len(expected)
        results[name] = entry
        for w in WORKER_COUNTS:
            p = entry["by_workers"][str(w)]
            print(
                f"  {name:20s} ×{w}  plain "
                f"{p['plain_s'] * 1e3:8.1f} ms   disabled "
                f"{(p['disabled_ratio'] - 1) * 100:+6.2f}%   metrics "
                f"{(p['metrics_ratio'] - 1) * 100:+6.2f}%   traced "
                f"{(p['traced_ratio'] - 1) * 100:+6.2f}%   profiled "
                f"{(p['profiled_ratio'] - 1) * 100:+6.2f}%"
            )
    return results


def write_trace_sample(quick: bool, path: str) -> None:
    """One fully-traced 4-worker run, exported as a Chrome trace."""
    from repro.engine import execute
    from repro.obs import tracing

    name, query, db = _workloads(quick)[0]
    _set_modes(True, True)
    try:
        # A forced backend plus workers always shards (auto planning may
        # legitimately stay serial on a small host) — the sample trace
        # must show the full dispatch/shard/merge lifecycle.
        result = execute(query, db, algorithm="leapfrog", workers=4)
    finally:
        _set_modes(True, False)
    tracing.write_chrome_trace(result.trace.serialized(), path)
    print(
        f"  trace sample       : {name} ×4 → {path} "
        f"({len(result.trace.spans)} spans)"
    )


def write_flame_sample(quick: bool, path: str) -> None:
    """One profiled traced run, exported as speedscope JSON + folded
    stacks (``<path minus extension>.folded``)."""
    from repro.engine import execute
    from repro.obs import profiler

    name, query, db = _workloads(quick)[0]
    prof = profiler.install()
    prof.clear()
    _set_modes(True, True, profile_on=True)
    try:
        # Traced so samples attribute to span stages, repeated so even
        # a fast host lands enough ticks to make the flamegraph real.
        for _ in range(3):
            execute(query, db, algorithm="leapfrog", workers=4)
    finally:
        _set_modes(True, False, profile_on=True)
    prof.write_speedscope(path, name=f"{name} ×4")
    folded = os.path.splitext(path)[0] + ".folded"
    prof.write_folded(folded)
    profiler.uninstall()
    print(
        f"  flame sample       : {name} ×4 → {path} + {folded} "
        f"({prof.ticks} samples @ {prof.hz} Hz)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="obs")
    parser.add_argument("--output", default="BENCH_obs.json")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--quick", action="store_true", help="small sizes")
    parser.add_argument("--trace-sample", default=None, metavar="PATH")
    parser.add_argument("--flame-sample", default=None, metavar="PATH")
    parser.add_argument("--max-disabled-overhead", type=float, default=0.03)
    parser.add_argument("--max-shipping-overhead", type=float, default=0.03)
    parser.add_argument("--max-traced-overhead", type=float, default=0.15)
    parser.add_argument("--max-profiled-overhead", type=float, default=0.10)
    args = parser.parse_args(argv)

    # The registry/tracer flags are flipped per mode below; pin the env
    # out of the way so a caller's REPRO_* settings can't skew a mode.
    os.environ.pop("REPRO_SLOW_QUERY_MS", None)
    os.environ.pop("REPRO_PROFILE", None)

    print(
        f"[{args.label}] observability overhead benchmark "
        f"({'quick' if args.quick else 'full'}, best of {args.repeats}, "
        f"host cores {_host_cores()})"
    )
    results = run_suite(args.quick, args.repeats)
    if args.trace_sample:
        write_trace_sample(args.quick, args.trace_sample)
    if args.flame_sample:
        write_flame_sample(args.quick, args.flame_sample)

    from repro.parallel import shutdown_pools

    shutdown_pools()

    def _ratios(tag, parallel_only=False):
        return [
            p[tag]
            for e in results.values()
            for w, p in e["by_workers"].items()
            if not parallel_only or int(w) > 1
        ]

    disabled_overhead = geometric_mean(_ratios("disabled_ratio")) - 1
    shipping_overhead = (
        geometric_mean(_ratios("metrics_ratio", parallel_only=True)) - 1
    )
    traced_overhead = geometric_mean(_ratios("traced_ratio")) - 1
    profiled_overhead = geometric_mean(_ratios("profiled_ratio")) - 1
    print(
        f"  geomean overhead   : disabled {disabled_overhead * 100:+.2f}% "
        f"(gate < {args.max_disabled_overhead * 100:.0f}%), shipping "
        f"{shipping_overhead * 100:+.2f}% "
        f"(gate < {args.max_shipping_overhead * 100:.0f}%, parallel rows), "
        f"traced {traced_overhead * 100:+.2f}% "
        f"(gate < {args.max_traced_overhead * 100:.0f}%), profiled "
        f"{profiled_overhead * 100:+.2f}% "
        f"(gate < {args.max_profiled_overhead * 100:.0f}%)"
    )

    record = {
        "label": args.label,
        "quick": args.quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "host_cores": _host_cores(),
        "repeats": args.repeats,
        "worker_counts": list(WORKER_COUNTS),
        "families": results,
        "geomean_disabled_overhead": disabled_overhead,
        "geomean_shipping_overhead": shipping_overhead,
        "geomean_traced_overhead": traced_overhead,
        "geomean_profiled_overhead": profiled_overhead,
        "gates": {
            "max_disabled_overhead": args.max_disabled_overhead,
            "max_shipping_overhead": args.max_shipping_overhead,
            "max_traced_overhead": args.max_traced_overhead,
            "max_profiled_overhead": args.max_profiled_overhead,
        },
    }
    with open(args.output, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")

    failed = False
    gates = (
        ("disabled", disabled_overhead, args.max_disabled_overhead),
        ("shipping", shipping_overhead, args.max_shipping_overhead),
        ("traced", traced_overhead, args.max_traced_overhead),
        ("profiled", profiled_overhead, args.max_profiled_overhead),
    )
    for tag, overhead, gate in gates:
        if overhead > gate:
            print(
                f"FAIL: {tag} overhead {overhead * 100:.2f}% > "
                f"{gate * 100:.0f}%"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
