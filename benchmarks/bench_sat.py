"""Section 4.2.4 / Appendix I — Tetris as DPLL with clause learning.

Paper claim: under the clause ↔ box encoding, Tetris is a #SAT procedure
(a DPLL with a particular clause-learning rule), and geometric
resolutions are learned clauses.

Measured: Tetris's model counts agree with classic DPLL and brute force
on random 3-CNFs across the phase-transition density range; timings for
both counters.
"""

import pytest

from benchmarks.conftest import print_sweep
from repro.core.resolution import ResolutionStats
from repro.sat import random_cnf
from repro.sat.dpll import count_models_dpll, count_models_tetris

NUM_VARS = 14


def test_model_counts_agree(benchmark):
    rows = []
    for ratio in (1, 2, 3, 4, 5):
        cnf = random_cnf(
            NUM_VARS, ratio * NUM_VARS, width=3, seed=ratio
        )
        stats = ResolutionStats()
        tetris = count_models_tetris(cnf, stats=stats)
        dpll = count_models_dpll(cnf)
        assert tetris == dpll
        rows.append(
            (ratio, len(cnf.clauses), tetris, stats.resolutions)
        )
    print_sweep(
        "Tetris as #SAT: random 3-CNF over 14 variables",
        ("m/n", "clauses", "models", "learned clauses"),
        rows,
    )
    cnf = random_cnf(NUM_VARS, 3 * NUM_VARS, width=3, seed=3)
    benchmark(lambda: count_models_tetris(cnf))


def test_dpll_baseline_timing(benchmark):
    cnf = random_cnf(NUM_VARS, 3 * NUM_VARS, width=3, seed=3)
    expected = count_models_tetris(cnf)
    got = benchmark(lambda: count_models_dpll(cnf))
    assert got == expected


def test_unsat_early_exit(benchmark):
    """On unsatisfiable formulas Tetris's cover proof is the refutation."""
    # Pigeonhole-ish dense formula: likely UNSAT at high density.
    cnf = random_cnf(10, 80, width=3, seed=11)
    tetris = count_models_tetris(cnf)
    assert tetris == count_models_dpll(cnf)
    benchmark(lambda: count_models_tetris(cnf))
