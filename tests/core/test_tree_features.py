"""The dyadic tree's kernel-support features: masks after discard,
pinned and shallowest probes, batched walks, and the traversal frontier."""

import random

import pytest

from repro.core.boxes import box_contains
from repro.core.dyadic_tree import MultilevelDyadicTree, _MASK
from repro.core.stores import ListStore
from tests.helpers import random_packed_boxes


def tree_of(boxes, ndim):
    t = MultilevelDyadicTree(ndim)
    for b in boxes:
        t.add(b)
    return t


def unit_points(rng, count, ndim, depth):
    return [
        tuple((1 << depth) | rng.getrandbits(depth) for _ in range(ndim))
        for _ in range(count)
    ]


class TestDiscard:
    def test_discard_roundtrip(self):
        boxes = random_packed_boxes(1, 30, 3, 4)
        t = tree_of(boxes, 3)
        size = len(t)
        unique = list(dict.fromkeys(boxes))
        for b in unique:
            assert t.discard(b)
            assert b not in t
        assert len(t) == size - len(unique)
        assert t.find_container(((1 << 4), (1 << 4), (1 << 4))) is None

    def test_discard_absent_returns_false(self):
        t = tree_of(random_packed_boxes(2, 5, 2, 3), 2)
        assert not t.discard(((1 << 3) | 7, (1 << 3) | 7))

    def test_masks_exact_after_discard(self):
        boxes = random_packed_boxes(3, 40, 2, 4)
        t = tree_of(boxes, 2)
        rng = random.Random(0)
        for b in rng.sample(list(dict.fromkeys(boxes)), 10):
            t.discard(b)
        # Root mask must exactly reflect the remaining level-0 lengths.
        remaining = set(t)
        expected_mask = 0
        for box in remaining:
            expected_mask |= 1 << (box[0].bit_length() - 1)
        assert t._root[_MASK] == expected_mask
        # And queries still agree with a fresh tree.
        fresh = tree_of(remaining, 2)
        rng2 = random.Random(1)
        for p in unit_points(rng2, 50, 2, 4):
            assert (t.find_container(p) is None) == (
                fresh.find_container(p) is None
            )

    def test_version_counts_mutations(self):
        t = MultilevelDyadicTree(2)
        v0 = t.version
        t.add((2, 3))
        assert t.version == v0 + 1
        t.add((2, 3))  # duplicate: no mutation
        assert t.version == v0 + 1
        t.discard((2, 3))
        assert t.version == v0 + 2


class TestProbeVariants:
    @pytest.mark.parametrize("ndim", [1, 2, 3, 4, 5])
    def test_find_container_matches_liststore(self, ndim):
        boxes = random_packed_boxes(ndim, 60, ndim, 4)
        tree = tree_of(boxes, ndim)
        ref = ListStore(ndim)
        for b in boxes:
            ref.add(b)
        rng = random.Random(7)
        for p in unit_points(rng, 80, ndim, 4):
            got = tree.find_container(p)
            expected = ref.find_container(p)
            assert (got is None) == (expected is None)
            if got is not None:
                assert box_contains(got, p)

    def test_pinned_probe_complete_under_invariant(self):
        # After a miss on the parent, the pinned probe must find every
        # container of the first half.
        ndim, depth = 3, 4
        boxes = random_packed_boxes(9, 50, ndim, depth)
        tree = tree_of(boxes, ndim)
        rng = random.Random(5)
        checked = 0
        for _ in range(300):
            axis = rng.randrange(ndim)
            parent = list(
                random_packed_boxes(rng.randrange(10_000), 1, ndim, depth - 1)[0]
            )
            b = tuple(parent)
            if tree.find_container(b) is not None:
                continue
            half = b[:axis] + (b[axis] << 1,) + b[axis + 1:]
            assert (
                tree.find_container_pinned(half, axis) is None
            ) == (tree.find_container(half) is None)
            checked += 1
        assert checked > 10

    def test_shallowest_container_is_container(self):
        boxes = random_packed_boxes(4, 60, 3, 4)
        tree = tree_of(boxes, 3)
        store = ListStore(3)
        for b in boxes:
            store.add(b)
        rng = random.Random(2)
        for p in unit_points(rng, 60, 3, 4):
            got = tree.find_shallowest_container(p)
            best = store.find_shallowest_container(p)
            assert (got is None) == (best is None)
            if got is not None:
                assert box_contains(got, p)
                # The ListStore optimum is a lower bound on total depth;
                # the greedy tree answer must still be a genuine witness.
                assert sum(c.bit_length() for c in best) <= sum(
                    c.bit_length() for c in got
                )

    def test_batched_walk_matches_single_probes(self):
        for ndim in (1, 2, 3, 4):
            boxes = random_packed_boxes(ndim + 20, 50, ndim, 4)
            tree = tree_of(boxes, ndim)
            rng = random.Random(ndim)
            points = unit_points(rng, 25, ndim, 4)
            # Include a sibling pair — the engine's prefetch shape.
            sib = points[0][:-1] + (points[0][-1] ^ 1,)
            points.append(sib)
            batch = tree.find_all_containers_many(points)
            assert len(batch) == len(points)
            for p, got in zip(points, batch):
                assert sorted(got) == sorted(tree.find_all_containers(p))

    def test_empty_batch(self):
        tree = tree_of(random_packed_boxes(1, 5, 2, 3), 2)
        assert tree.find_all_containers_many([]) == []


class TestTraversalFrontier:
    def test_probe_matches_plain_find_under_mutation(self):
        ndim, depth = 3, 4
        rng = random.Random(13)
        boxes = random_packed_boxes(21, 30, ndim, depth)
        tree = tree_of(boxes[:10], ndim)
        frontier = tree.attach_frontier()
        extra = iter(boxes[10:])
        for step in range(200):
            # Random traversal-shaped probe: unit prefix, partial comp,
            # λ tail.
            cursor = rng.randrange(ndim + 1)
            comps = []
            for i in range(ndim):
                if i < cursor:
                    comps.append((1 << depth) | rng.getrandbits(depth))
                elif i == cursor:
                    ln = rng.randrange(depth + 1)
                    comps.append((1 << ln) | rng.getrandbits(ln))
                else:
                    comps.append(1)
            box = tuple(comps)
            got = frontier.sync_and_probe(box, cursor)
            expected = tree.find_container(box)
            assert (got is None) == (expected is None), step
            if got is not None:
                assert box_contains(got, box)
            if step % 5 == 0:
                nxt = next(extra, None)
                if nxt is not None:
                    tree.add(nxt)  # attach hook must keep frontier fresh
        tree.detach_frontier()

    def test_frontier_sees_boxes_added_mid_descent(self):
        tree = MultilevelDyadicTree(2)
        frontier = tree.attach_frontier()
        unit = 1 << 3
        probe = (unit | 5, (1 << 2) | 1)
        assert frontier.sync_and_probe(probe, 1) is None
        tree.add((unit | 5, 1))  # containing box arrives after the freeze
        assert frontier.sync_and_probe(probe, 1) == (unit | 5, 1)

    def test_frontier_with_eviction(self):
        tree = MultilevelDyadicTree(2)
        frontier = tree.attach_frontier()
        unit = 1 << 3
        probe = (unit | 5, unit | 6)  # comp1 = "110"
        tree.add((unit | 5, (1 << 1) | 1))  # comp1 = "1" contains "110"
        assert frontier.sync_and_probe(probe, 2) is not None
        tree.discard((unit | 5, (1 << 1) | 1))
        assert frontier.sync_and_probe(probe, 2) is None
