"""Tests for balanced partitions, the Balance map, and Tetris-LB."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import intervals as dy
from repro.core.balance import (
    BalanceMap,
    balanced_partition,
    split_by_partition,
    strictly_inside_count,
    tetris_preloaded_lb,
    tetris_reloaded_lb,
)
from repro.core.boxes import Box
from repro.core.resolution import ResolutionStats
from repro.core.tetris import solve_bcp
from tests.helpers import (
    brute_force_uncovered,
    random_boxes,
    random_packed_boxes,
)

DEPTH = 3


def ivs(max_depth=DEPTH):
    return st.integers(0, max_depth).flatmap(
        lambda length: st.integers(0, (1 << length) - 1).map(
            lambda value: (value, length)
        )
    )


def box_tuples(ndim=3):
    return st.tuples(*([ivs()] * ndim))


class TestBalancedPartition:
    def test_empty_boxes(self):
        assert balanced_partition([], 0, DEPTH) == (dy.PLAMBDA,)

    def test_is_complete_prefix_free_code(self):
        boxes = random_packed_boxes(0, 40, 3, DEPTH)
        parts = balanced_partition(boxes, 0, DEPTH)
        # Prefix-free.
        for a in parts:
            for b in parts:
                if a != b:
                    assert not dy.pis_prefix(a, b)
        # Complete: every point has a part prefixing it.
        for point in range(1 << DEPTH):
            assert any(
                dy.pcovers_point(p, point, DEPTH) for p in parts
            )

    def test_no_heavy_part(self):
        """Definition 4.13: every part has ≤ √|C| boxes strictly inside
        (unless the part is already a unit interval)."""
        boxes = random_packed_boxes(1, 50, 3, DEPTH)
        threshold = len(boxes) ** 0.5
        parts = balanced_partition(boxes, 0, DEPTH)
        components = [b[0] for b in boxes]
        for p in parts:
            if dy.plength(p) < DEPTH:
                assert strictly_inside_count(components, p) <= threshold

    def test_example_f1_shape(self):
        """Example F.1 (n=3, d=6): the partition refines inside the loaded
        halves but stays coarse elsewhere."""
        d = 6
        boxes = []
        # C1: ⟨0x, λ, 0⟩ for x ∈ {0,1}^{d-2} plus ⟨0, y, 1⟩.
        for x in range(1 << (d - 2)):
            boxes.append(
                (dy.pmake(x, d - 1), dy.PLAMBDA, dy.pmake(0, 1))
            )
        for y in range(1 << (d - 2)):
            boxes.append(
                (dy.pmake(0, 1), dy.pmake(y, d - 2), dy.pmake(1, 1))
            )
        parts = balanced_partition(boxes, 0, d)
        # Parts under '0' must be fine; '1' stays one part.
        one = dy.pmake(1, 1)
        assert one in parts
        assert all(p == one or dy.plength(p) > 1 for p in parts)


class TestSplitByPartition:
    # Code {'0', '10', '11'} in packed form.
    PARTS = (dy.pfrom_bits("0"), dy.pfrom_bits("10"), dy.pfrom_bits("11"))

    def test_prefix_of_code(self):
        parts = self.PARTS
        assert split_by_partition(dy.PLAMBDA, parts) == \
            (dy.PLAMBDA, dy.PLAMBDA)
        assert split_by_partition(dy.pfrom_bits("1"), parts) == \
            (dy.pfrom_bits("1"), dy.PLAMBDA)

    def test_extension_of_code(self):
        parts = self.PARTS
        # '011': code element '0' prefixes it; suffix '11'.
        assert split_by_partition(dy.pfrom_bits("011"), parts) == \
            (dy.pfrom_bits("0"), dy.pfrom_bits("11"))

    def test_code_element_itself(self):
        parts = self.PARTS
        assert split_by_partition(dy.pfrom_bits("10"), parts) == \
            (dy.pfrom_bits("10"), dy.PLAMBDA)

    def test_inconsistent_raises(self):
        with pytest.raises(ValueError):
            split_by_partition(
                dy.pfrom_bits("1"), (dy.pfrom_bits("0"),)
            )


class TestBalanceMapRoundtrip:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(box_tuples(), min_size=1, max_size=12))
    def test_lift_preserves_point_coverage(self, boxes):
        boxes = [dy.pack_box(b) for b in boxes]
        mapping = BalanceMap(boxes, 3, DEPTH)
        for box in boxes:
            lifted = mapping.lift_box(box)
            assert len(lifted) == mapping.lifted_ndim

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(box_tuples(), min_size=1, max_size=8),
        st.tuples(
            st.integers(0, (1 << DEPTH) - 1),
            st.integers(0, (1 << DEPTH) - 1),
            st.integers(0, (1 << DEPTH) - 1),
        ),
    )
    def test_point_roundtrip(self, boxes, point):
        """A point is covered by a box iff its lift is covered by the
        lifted box — and lowering the lifted unit recovers the point."""
        boxes = [dy.pack_box(b) for b in boxes]
        mapping = BalanceMap(boxes, 3, DEPTH)
        # Lift the point as a (degenerate) box of unit components.
        unit = tuple((1 << DEPTH) | v for v in point)
        lifted_unit = mapping.lift_box(unit)
        assert mapping.lower_point(lifted_unit) == point
        from repro.core.boxes import box_contains

        for box in boxes:
            covered = box_contains(box, unit)
            lifted_box = mapping.lift_box(box)
            assert box_contains(lifted_box, lifted_unit) == covered

    def test_ndim_too_small(self):
        with pytest.raises(ValueError):
            BalanceMap([], 1, DEPTH)


class TestTetrisLB:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(box_tuples(), max_size=10))
    def test_matches_brute_force(self, boxes):
        expected = brute_force_uncovered(boxes, 3, DEPTH)
        assert tetris_preloaded_lb(boxes, 3, DEPTH) == expected

    @settings(max_examples=15, deadline=None)
    @given(st.lists(box_tuples(), max_size=8))
    def test_online_matches_brute_force(self, boxes):
        expected = brute_force_uncovered(boxes, 3, DEPTH)
        assert tetris_reloaded_lb(boxes, 3, DEPTH) == expected

    def test_low_dimension_fallback(self):
        boxes = random_boxes(2, 10, 2, DEPTH)
        expected = brute_force_uncovered(boxes, 2, DEPTH)
        assert sorted(tetris_preloaded_lb(boxes, 2, DEPTH)) == expected
        assert sorted(tetris_reloaded_lb(boxes, 2, DEPTH)) == expected

    def test_4d_instance(self):
        boxes = random_boxes(5, 25, 4, 2)
        expected = brute_force_uncovered(boxes, 4, 2)
        assert tetris_preloaded_lb(boxes, 4, 2) == expected

    def test_stats_collected(self):
        stats = ResolutionStats()
        boxes = random_boxes(7, 20, 3, DEPTH)
        tetris_preloaded_lb(boxes, 3, DEPTH, stats=stats)
        assert stats.skeleton_calls >= 1
