"""Tests for balanced partitions, the Balance map, and Tetris-LB."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import intervals as dy
from repro.core.balance import (
    BalanceMap,
    balanced_partition,
    split_by_partition,
    strictly_inside_count,
    tetris_preloaded_lb,
    tetris_reloaded_lb,
)
from repro.core.boxes import Box
from repro.core.resolution import ResolutionStats
from repro.core.tetris import solve_bcp
from tests.helpers import brute_force_uncovered, random_boxes

DEPTH = 3


def ivs(max_depth=DEPTH):
    return st.integers(0, max_depth).flatmap(
        lambda length: st.integers(0, (1 << length) - 1).map(
            lambda value: (value, length)
        )
    )


def box_tuples(ndim=3):
    return st.tuples(*([ivs()] * ndim))


class TestBalancedPartition:
    def test_empty_boxes(self):
        assert balanced_partition([], 0, DEPTH) == ((0, 0),)

    def test_is_complete_prefix_free_code(self):
        boxes = random_boxes(0, 40, 3, DEPTH)
        parts = balanced_partition(boxes, 0, DEPTH)
        # Prefix-free.
        for a in parts:
            for b in parts:
                if a != b:
                    assert not dy.is_prefix(a, b)
        # Complete: every point has a part prefixing it.
        for point in range(1 << DEPTH):
            assert any(
                dy.covers_point(p, point, DEPTH) for p in parts
            )

    def test_no_heavy_part(self):
        """Definition 4.13: every part has ≤ √|C| boxes strictly inside
        (unless the part is already a unit interval)."""
        boxes = random_boxes(1, 50, 3, DEPTH)
        threshold = len(boxes) ** 0.5
        parts = balanced_partition(boxes, 0, DEPTH)
        components = [b[0] for b in boxes]
        for p in parts:
            if p[1] < DEPTH:
                assert strictly_inside_count(components, p) <= threshold

    def test_example_f1_shape(self):
        """Example F.1 (n=3, d=6): the partition refines inside the loaded
        halves but stays coarse elsewhere."""
        d = 6
        boxes = []
        # C1: ⟨0x, λ, 0⟩ for x ∈ {0,1}^{d-2} plus ⟨0, y, 1⟩.
        for x in range(1 << (d - 2)):
            boxes.append(((x | (0 << (d - 2)), d - 1), (0, 0), (0, 1)))
        for y in range(1 << (d - 2)):
            boxes.append(((0, 1), (y, d - 2), (1, 1)))
        parts = balanced_partition(boxes, 0, d)
        # Parts under '0' must be fine; '1' stays one part.
        assert (1, 1) in parts
        assert all(p == (1, 1) or p[1] > 1 for p in parts)


class TestSplitByPartition:
    def test_prefix_of_code(self):
        parts = ((0, 1), (2, 2), (3, 2))
        assert split_by_partition((0, 0), parts) == ((0, 0), (0, 0))
        assert split_by_partition((1, 1), parts) == ((1, 1), (0, 0))

    def test_extension_of_code(self):
        parts = ((0, 1), (2, 2), (3, 2))
        # '011' = (3,3): code element '0'=(0,1) prefixes it; suffix '11'.
        assert split_by_partition((3, 3), parts) == ((0, 1), (3, 2))

    def test_code_element_itself(self):
        parts = ((0, 1), (2, 2), (3, 2))
        assert split_by_partition((2, 2), parts) == ((2, 2), (0, 0))

    def test_inconsistent_raises(self):
        with pytest.raises(ValueError):
            split_by_partition((1, 1), ((0, 1),))


class TestBalanceMapRoundtrip:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(box_tuples(), min_size=1, max_size=12))
    def test_lift_preserves_point_coverage(self, boxes):
        mapping = BalanceMap(boxes, 3, DEPTH)
        for box in boxes:
            lifted = mapping.lift_box(box)
            assert len(lifted) == mapping.lifted_ndim

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(box_tuples(), min_size=1, max_size=8),
        st.tuples(
            st.integers(0, (1 << DEPTH) - 1),
            st.integers(0, (1 << DEPTH) - 1),
            st.integers(0, (1 << DEPTH) - 1),
        ),
    )
    def test_point_roundtrip(self, boxes, point):
        """A point is covered by a box iff its lift is covered by the
        lifted box — and lowering the lifted unit recovers the point."""
        mapping = BalanceMap(boxes, 3, DEPTH)
        # Lift the point as a (degenerate) box of unit components.
        unit = tuple((v, DEPTH) for v in point)
        lifted_unit = mapping.lift_box(unit)
        assert mapping.lower_point(lifted_unit) == point
        from repro.core.boxes import box_contains

        for box in boxes:
            covered = box_contains(box, unit)
            lifted_box = mapping.lift_box(box)
            assert box_contains(lifted_box, lifted_unit) == covered

    def test_ndim_too_small(self):
        with pytest.raises(ValueError):
            BalanceMap([], 1, DEPTH)


class TestTetrisLB:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(box_tuples(), max_size=10))
    def test_matches_brute_force(self, boxes):
        expected = brute_force_uncovered(boxes, 3, DEPTH)
        assert tetris_preloaded_lb(boxes, 3, DEPTH) == expected

    @settings(max_examples=15, deadline=None)
    @given(st.lists(box_tuples(), max_size=8))
    def test_online_matches_brute_force(self, boxes):
        expected = brute_force_uncovered(boxes, 3, DEPTH)
        assert tetris_reloaded_lb(boxes, 3, DEPTH) == expected

    def test_low_dimension_fallback(self):
        boxes = random_boxes(2, 10, 2, DEPTH)
        expected = brute_force_uncovered(boxes, 2, DEPTH)
        assert sorted(tetris_preloaded_lb(boxes, 2, DEPTH)) == expected
        assert sorted(tetris_reloaded_lb(boxes, 2, DEPTH)) == expected

    def test_4d_instance(self):
        boxes = random_boxes(5, 25, 4, 2)
        expected = brute_force_uncovered(boxes, 4, 2)
        assert tetris_preloaded_lb(boxes, 4, 2) == expected

    def test_stats_collected(self):
        stats = ResolutionStats()
        boxes = random_boxes(7, 20, 3, DEPTH)
        tetris_preloaded_lb(boxes, 3, DEPTH, stats=stats)
        assert stats.skeleton_calls >= 1
