"""Unit and property tests for the packed marker-bit interval encoding.

Covers the edge cases the encoding must get right — λ (packed ``1``),
unit-depth intervals, and the degenerate depth-0 domain — plus
hypothesis-driven parity with the documented pair-based API.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core import intervals as dy
from repro.core.boxes import Box, pbox_from_bits
from repro.core.intervals import LAMBDA, PLAMBDA

DEPTH = 6


def pair_ivs(max_depth=DEPTH):
    return st.integers(0, max_depth).flatmap(
        lambda length: st.integers(0, (1 << length) - 1).map(
            lambda value: (value, length)
        )
    )


class TestPackUnpack:
    @given(pair_ivs())
    def test_roundtrip(self, iv):
        assert dy.unpack(dy.pack(iv)) == iv

    @given(pair_ivs())
    def test_value_length_accessors(self, iv):
        p = dy.pack(iv)
        assert dy.pvalue(p) == iv[0]
        assert dy.plength(p) == iv[1]

    def test_lambda(self):
        assert dy.pack(LAMBDA) == PLAMBDA
        assert dy.unpack(PLAMBDA) == LAMBDA
        assert dy.plength(PLAMBDA) == 0
        assert dy.pvalue(PLAMBDA) == 0

    def test_examples(self):
        assert dy.pack((5, 3)) == 0b1101
        assert dy.pack((0, 1)) == 0b10
        assert dy.pack((1, 1)) == 0b11

    def test_pack_box_tolerant(self):
        mixed = ((2, 2), 0b10, LAMBDA)
        assert dy.pack_box(mixed) == (0b110, 0b10, PLAMBDA)
        assert dy.unpack_box(dy.pack_box(mixed)) == ((2, 2), (0, 1), (0, 0))

    def test_bits_roundtrip(self):
        assert dy.pfrom_bits("101") == 0b1101
        assert dy.pto_bits(0b1101) == "101"
        assert dy.pto_bits(PLAMBDA) == "λ"
        assert dy.pfrom_bits("") == PLAMBDA
        with pytest.raises(ValueError):
            dy.pfrom_bits("10x")

    def test_pmake_validates(self):
        assert dy.pmake(5, 3) == 0b1101
        with pytest.raises(ValueError):
            dy.pmake(8, 3)
        with pytest.raises(ValueError):
            dy.pmake(0, -1)


class TestPackedOrder:
    @given(pair_ivs(), pair_ivs())
    def test_prefix_parity(self, a, b):
        assert dy.pis_prefix(dy.pack(a), dy.pack(b)) == dy.is_prefix(a, b)

    @given(pair_ivs(), pair_ivs())
    def test_overlap_parity(self, a, b):
        assert dy.poverlaps(dy.pack(a), dy.pack(b)) == dy.overlaps(a, b)

    @given(pair_ivs(), pair_ivs())
    def test_meet_parity(self, a, b):
        pa, pb = dy.pack(a), dy.pack(b)
        if dy.overlaps(a, b):
            assert dy.pmeet(pa, pb) == dy.pack(dy.meet(a, b))
        else:
            with pytest.raises(ValueError):
                dy.pmeet(pa, pb)

    @given(pair_ivs(), pair_ivs())
    def test_sibling_parity(self, a, b):
        assert dy.pare_siblings(dy.pack(a), dy.pack(b)) == \
            dy.are_siblings(a, b)

    def test_lambda_is_prefix_of_all(self):
        assert dy.pis_prefix(PLAMBDA, 0b1101)
        assert dy.pis_prefix(PLAMBDA, PLAMBDA)
        assert not dy.pis_prefix(0b10, PLAMBDA)


class TestPackedStructure:
    @given(pair_ivs(max_depth=DEPTH - 1))
    def test_split_parity(self, a):
        left, right = dy.split(a)
        assert dy.psplit(dy.pack(a)) == (dy.pack(left), dy.pack(right))

    def test_split_lambda(self):
        assert dy.psplit(PLAMBDA) == (0b10, 0b11)

    @given(pair_ivs(max_depth=DEPTH - 1), st.integers(0, 1))
    def test_extend_parent_roundtrip(self, a, bit):
        p = dy.pack(a)
        child = dy.pextend(p, bit)
        assert dy.pparent(child) == p
        assert dy.plast_bit(child) == bit

    def test_parent_of_lambda_raises(self):
        with pytest.raises(ValueError):
            dy.pparent(PLAMBDA)
        with pytest.raises(ValueError):
            dy.plast_bit(PLAMBDA)

    @given(pair_ivs())
    def test_prefixes_parity(self, a):
        assert list(dy.pprefixes(dy.pack(a))) == [
            dy.pack(x) for x in dy.prefixes(a)
        ]


class TestPackedGeometry:
    @given(pair_ivs())
    def test_to_range_parity(self, a):
        assert dy.pto_range(dy.pack(a), DEPTH) == dy.to_range(a, DEPTH)

    @given(pair_ivs())
    def test_width_parity(self, a):
        assert dy.pwidth(dy.pack(a), DEPTH) == dy.width(a, DEPTH)

    @given(pair_ivs(), st.integers(0, (1 << DEPTH) - 1))
    def test_covers_point_parity(self, a, point):
        assert dy.pcovers_point(dy.pack(a), point, DEPTH) == \
            dy.covers_point(a, point, DEPTH)

    @given(
        st.integers(0, (1 << DEPTH) - 1),
        st.integers(0, (1 << DEPTH) - 1),
    )
    def test_decompose_parity(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert dy.pdecompose_range(lo, hi, DEPTH) == [
            dy.pack(x) for x in dy.decompose_range(lo, hi, DEPTH)
        ]


class TestUnitAndDepthEdges:
    def test_unit_at_depth(self):
        p = dy.pfrom_point(5, 3)
        assert p == 0b1101
        assert dy.pis_unit(p, 3)
        assert not dy.pis_unit(p >> 1, 3)

    def test_unit_out_of_domain(self):
        with pytest.raises(ValueError):
            dy.pfrom_point(16, 4)

    def test_depth_zero_domain(self):
        # On a depth-0 domain λ IS the unit interval of the only point.
        assert dy.pis_unit(PLAMBDA, 0)
        assert dy.pfrom_point(0, 0) == PLAMBDA
        assert dy.pto_range(PLAMBDA, 0) == (0, 0)
        assert dy.pcovers_point(PLAMBDA, 0, 0)
        assert dy.pdecompose_range(0, 0, 0) == [PLAMBDA]

    def test_unit_depth_split_is_below_domain(self):
        # Splitting a unit interval leaves the domain; pis_unit must not
        # confuse the child with a unit of the same depth.
        p = dy.pfrom_point(2, 2)
        child = dy.pextend(p, 1)
        assert not dy.pis_unit(child, 2)
        assert dy.pis_unit(child, 3)


class TestBoxHelpers:
    def test_pbox_from_bits(self):
        assert pbox_from_bits("10", "", "0") == (0b110, 1, 0b10)
        assert pbox_from_bits("λ", "*") == (1, 1)

    @given(st.lists(pair_ivs(), min_size=1, max_size=4))
    def test_box_packed_roundtrip(self, ivs):
        box = Box(ivs)
        assert Box.from_packed(box.packed) == box
        assert dy.pack_box(box.ivs) == box.packed
