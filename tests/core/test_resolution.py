"""Tests for geometric resolution: soundness, completeness of the rule shape."""

import pytest
from hypothesis import given, strategies as st

from repro.core import resolution as res
from repro.core.boxes import Box
from repro.core.resolution import ResolutionStats, Resolver

DEPTH = 4


def ivs(max_depth=DEPTH):
    # All packed marker-bit intervals of length <= max_depth.
    return st.integers(1, (1 << (max_depth + 1)) - 1)


def box_tuples(ndim=3):
    return st.tuples(*([ivs()] * ndim))


class TestPaperExamples:
    def test_figure_7(self):
        # Resolution between ⟨λ, 00⟩ and ⟨10, 01⟩ yields ⟨10, 0⟩.
        w1 = Box.from_bits("", "00")
        w2 = Box.from_bits("10", "01")
        assert res.resolve(w1, w2) == Box.from_bits("10", "0")

    def test_example_4_4_step(self):
        # Resolving ⟨01, 10⟩ with ⟨λ, 11⟩ gives ⟨01, 1⟩.
        w1 = Box.from_bits("01", "10")
        w2 = Box.from_bits("", "11")
        assert res.resolve(w1, w2) == Box.from_bits("01", "1")

    def test_example_4_4_final_chain(self):
        # ⟨λ, 0⟩ with ⟨01, 1⟩ gives ⟨01, λ⟩.
        w1 = Box.from_bits("", "0")
        w2 = Box.from_bits("01", "1")
        assert res.resolve(w1, w2) == Box.from_bits("01", "")


class TestPreconditions:
    def test_not_resolvable_two_sibling_axes(self):
        w1 = Box.from_bits("0", "0").packed
        w2 = Box.from_bits("1", "1").packed
        assert res.find_resolvable_dimension(w1, w2) is None

    def test_not_resolvable_disjoint_axis(self):
        w1 = Box.from_bits("00", "0").packed
        w2 = Box.from_bits("11", "1").packed
        assert res.find_resolvable_dimension(w1, w2) is None

    def test_not_resolvable_identical(self):
        w = Box.from_bits("0", "1").packed
        assert res.find_resolvable_dimension(w, w) is None

    def test_resolve_raises_when_impossible(self):
        with pytest.raises(ValueError):
            res.resolve(Box.from_bits("0", "0"), Box.from_bits("1", "1"))

    def test_resolvable_single_axis(self):
        w1 = Box.from_bits("10", "0").packed
        w2 = Box.from_bits("11", "01").packed
        assert res.find_resolvable_dimension(w1, w2) == 0
        assert res.resolvable(w1, w2)


class TestSoundness:
    @given(box_tuples(), box_tuples())
    def test_resolvent_covered_by_union(self, w1, w2):
        """Soundness: every point of the resolvent lies in w1 ∪ w2."""
        axis = res.find_resolvable_dimension(w1, w2)
        if axis is None:
            return
        w = res.resolve_tuples(w1, w2)
        b1 = Box.from_packed(w1)
        b2 = Box.from_packed(w2)
        bw = Box.from_packed(w)
        union = set(b1.points(DEPTH)) | set(b2.points(DEPTH))
        assert set(bw.points(DEPTH)) <= union

    @given(box_tuples(), box_tuples())
    def test_resolvent_is_maximal_box_in_union(self, w1, w2):
        """The resolvent strictly contains both inputs' shadow on the axis."""
        axis = res.find_resolvable_dimension(w1, w2)
        if axis is None:
            return
        w = res.resolve_tuples(w1, w2)
        # Axis component is the common parent of the two siblings.
        assert w[axis] == w1[axis] >> 1
        # Other components are the meet (the longer string).
        for i, p in enumerate(w):
            if i != axis:
                assert p in (w1[i], w2[i])
                assert p.bit_length() == max(
                    w1[i].bit_length(), w2[i].bit_length()
                )


class TestOrderedShape:
    def test_ordered_pair_accepts_staircase(self):
        w1 = Box.from_bits("1010", "0110", "00").packed
        w2 = Box.from_bits("1010", "01", "01").packed
        assert res.is_ordered_pair(w1, w2, 2)

    def test_ordered_pair_rejects_tail(self):
        # Non-λ after the resolved axis breaks the Definition 4.3 shape.
        w1 = Box.from_bits("00", "1", "1").packed
        w2 = Box.from_bits("01", "1", "1").packed
        assert not res.is_ordered_pair(w1, w2, 0)

    def test_ordered_pair_requires_siblings(self):
        w1 = Box.from_bits("00", "", "").packed
        w2 = Box.from_bits("10", "", "").packed
        assert not res.is_ordered_pair(w1, w2, 0)


class TestResolverStats:
    def test_counts(self):
        stats = ResolutionStats()
        r = Resolver(stats)
        w1 = Box.from_bits("0", "0").packed
        w2 = Box.from_bits("1", "0").packed
        out = r.resolve(w1, w2, 0)
        assert out == Box.from_bits("", "0").packed
        assert stats.resolutions == 1
        assert stats.by_axis == {0: 1}

    def test_ordered_counted_separately(self):
        stats = ResolutionStats()
        r = Resolver(stats)
        # ordered pair
        r.resolve(Box.from_bits("0", "").packed, Box.from_bits("1", "").packed, 0)
        # unordered pair (non-λ after axis)
        r.resolve(Box.from_bits("0", "1").packed, Box.from_bits("1", "1").packed, 0)
        assert stats.resolutions == 2
        assert stats.ordered_resolutions == 1

    def test_reset(self):
        stats = ResolutionStats()
        r = Resolver(stats)
        r.resolve(Box.from_bits("0", "").packed, Box.from_bits("1", "").packed, 0)
        stats.reset()
        assert stats.resolutions == 0
        assert stats.by_axis == {}

    def test_summary_mentions_counts(self):
        stats = ResolutionStats()
        assert "resolutions=0" in stats.summary()
