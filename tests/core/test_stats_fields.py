"""ResolutionStats field coverage: absorb/merge/reset/as_metrics are
field-driven, so a counter added by a future PR cannot silently vanish
in the parallel shard merge or the metrics block.  These tests enumerate
``dataclasses.fields`` — they hold for today's eleven counters and for
whatever lands next."""

import dataclasses

from repro.core.resolution import ResolutionStats

FIELDS = dataclasses.fields(ResolutionStats)


def _filled(base: int) -> ResolutionStats:
    """A stats object with every field set to a distinct nonzero value."""
    stats = ResolutionStats()
    for i, f in enumerate(FIELDS):
        current = getattr(stats, f.name)
        if isinstance(current, dict):
            current[i] = base + i
            current[i + 100] = base + i + 1
        else:
            setattr(stats, f.name, base + i)
    return stats


def test_every_field_is_int_or_dict():
    """The two kinds absorb() understands — anything else must extend it."""
    stats = ResolutionStats()
    for f in FIELDS:
        value = getattr(stats, f.name)
        assert isinstance(value, (int, dict)), (
            f"ResolutionStats.{f.name} is {type(value).__name__}; "
            "absorb()/reset()/as_metrics() only handle int and dict "
            "fields — extend them (and this test) for the new kind"
        )


def test_absorb_covers_every_field():
    a = _filled(1)
    b = _filled(1000)
    a.absorb(b)
    for i, f in enumerate(FIELDS):
        got = getattr(a, f.name)
        if isinstance(got, dict):
            assert got[i] == (1 + i) + (1000 + i), f.name
            assert got[i + 100] == (1 + i + 1) + (1000 + i + 1), f.name
        else:
            assert got == (1 + i) + (1000 + i), f.name


def test_merge_equals_sequential_absorb():
    parts = [_filled(1), _filled(50), _filled(900)]
    merged = ResolutionStats.merge(parts)
    expected = ResolutionStats()
    for part in parts:
        expected.absorb(part)
    assert dataclasses.asdict(merged) == dataclasses.asdict(expected)


def test_merge_disjoint_dict_keys():
    a = ResolutionStats()
    a.record(axis=0, ordered=True)
    b = ResolutionStats()
    b.record(axis=3, ordered=False)
    merged = ResolutionStats.merge([a, b])
    assert merged.by_axis == {0: 1, 3: 1}
    assert merged.resolutions == 2
    assert merged.ordered_resolutions == 1


def test_reset_zeroes_every_field():
    stats = _filled(7)
    stats.reset()
    assert dataclasses.asdict(stats) == dataclasses.asdict(
        ResolutionStats()
    )


def test_as_metrics_covers_every_field():
    stats = _filled(3)
    metrics = stats.as_metrics()
    for i, f in enumerate(FIELDS):
        value = getattr(stats, f.name)
        if isinstance(value, dict):
            for key, count in value.items():
                matches = [
                    name for name in metrics
                    if name.startswith("tetris.")
                    and name.endswith(f".{key}")
                    and f.name in name
                ]
                assert matches, (f.name, key)
                assert metrics[matches[0]] == count
        else:
            assert metrics[f"tetris.{f.name}"] == value


def test_as_metrics_by_axis_namespace():
    stats = ResolutionStats()
    stats.record(axis=2, ordered=False)
    stats.record(axis=2, ordered=True)
    metrics = stats.as_metrics()
    assert metrics["tetris.resolutions.by_axis.2"] == 2
    assert metrics["tetris.resolutions"] == 2


def test_absorb_rejects_nothing_today_guard():
    """absorb() of empty stats is the identity (parallel no-op shards)."""
    a = _filled(4)
    before = dataclasses.asdict(a)
    a.absorb(ResolutionStats())
    assert dataclasses.asdict(a) == before
