"""Tests for the Tetris engine: correctness against brute force, variants."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.boxes import Box
from repro.core.resolution import ResolutionStats
from repro.core.tetris import (
    BoxSetOracle,
    TetrisEngine,
    boolean_box_cover,
    solve_bcp,
    tetris_preloaded,
    tetris_reloaded,
)
from tests.helpers import brute_force_uncovered, random_boxes

DEPTH = 3
NDIM = 2


def ivs(max_depth=DEPTH):
    return st.integers(0, max_depth).flatmap(
        lambda length: st.integers(0, (1 << length) - 1).map(
            lambda value: (value, length)
        )
    )


def box_tuples(ndim=NDIM, depth=DEPTH):
    return st.tuples(*([ivs(depth)] * ndim))


ALL_VARIANTS = list(
    itertools.product([True, False], [True, False], [True, False])
)


class TestSmallInstances:
    def test_no_boxes_lists_everything(self):
        out = solve_bcp([], ndim=1, depth=2)
        assert sorted(out) == [(0,), (1,), (2,), (3,)]

    def test_full_cover_single_box(self):
        out = solve_bcp([Box.universe(2).ivs], ndim=2, depth=2)
        assert out == []

    def test_figure_10_example(self):
        """Example 4.4: B = {⟨λ,0⟩, ⟨00,λ⟩, ⟨λ,11⟩, ⟨10,1⟩}, outputs
        ⟨01,10⟩ and ⟨11,10⟩."""
        boxes = [
            Box.from_bits("", "0").ivs,
            Box.from_bits("00", "").ivs,
            Box.from_bits("", "11").ivs,
            Box.from_bits("10", "1").ivs,
        ]
        out = solve_bcp(boxes, ndim=2, depth=2)
        assert sorted(out) == [(1, 2), (3, 2)]

    def test_figure_5_triangle_empty(self):
        """Figure 5: MSB-complement triangle instance has empty output."""
        d = 3
        boxes = [
            Box.from_bits("0", "0", "").ivs,
            Box.from_bits("1", "1", "").ivs,
            Box.from_bits("", "0", "0").ivs,
            Box.from_bits("", "1", "1").ivs,
            Box.from_bits("0", "", "0").ivs,
            Box.from_bits("1", "", "1").ivs,
        ]
        assert solve_bcp(boxes, ndim=3, depth=d) == []
        assert boolean_box_cover(boxes, ndim=3, depth=d)

    def test_figure_6_triangle_nonempty(self):
        """Figure 6: T' has same-MSB pairs; output is non-empty."""
        d = 2
        boxes = [
            Box.from_bits("0", "0", "").ivs,
            Box.from_bits("1", "1", "").ivs,
            Box.from_bits("", "0", "0").ivs,
            Box.from_bits("", "1", "1").ivs,
            Box.from_bits("0", "", "1").ivs,
            Box.from_bits("1", "", "0").ivs,
        ]
        out = solve_bcp(boxes, ndim=3, depth=d)
        # Output tuples: MSB(a) != MSB(b), MSB(b) != MSB(c), MSB(a) = MSB(c)
        # — impossible, wait: gaps of T' are MSB(a) != MSB(c)... the output
        # is tuples avoiding all gaps: MSB(a)!=MSB(b), MSB(b)!=MSB(c),
        # MSB(a)==MSB(c) is excluded by T' gaps ⟨0,λ,1⟩,⟨1,λ,0⟩ meaning
        # a,c must share MSB. So outputs: a,c share MSB, b differs.
        expected = [
            (a, b, c)
            for a in range(4)
            for b in range(4)
            for c in range(4)
            if (a >> 1) != (b >> 1)
            and (b >> 1) != (c >> 1)
            and (a >> 1) == (c >> 1)
        ]
        assert sorted(out) == sorted(expected)
        assert not boolean_box_cover(boxes, ndim=3, depth=d)


class TestAgainstBruteForce:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(box_tuples(), max_size=10))
    def test_default_config_matches_brute_force(self, boxes):
        expected = brute_force_uncovered(boxes, NDIM, DEPTH)
        assert sorted(solve_bcp(boxes, NDIM, DEPTH)) == expected

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(box_tuples(ndim=3, depth=2), max_size=6),
        st.permutations(range(3)),
    )
    def test_all_variants_agree_3d(self, boxes, sao):
        expected = brute_force_uncovered(boxes, 3, 2)
        for preload, one_pass, cache in ALL_VARIANTS:
            got = solve_bcp(
                boxes, 3, 2, sao=tuple(sao), preload=preload,
                one_pass=one_pass, cache_resolvents=cache,
            )
            assert sorted(got) == expected, (preload, one_pass, cache)

    def test_randomized_bigger(self):
        for seed in range(5):
            boxes = random_boxes(seed, 30, 3, 4)
            expected = brute_force_uncovered(boxes, 3, 4)
            assert sorted(tetris_preloaded(boxes, 3, 4)) == expected
            assert sorted(tetris_reloaded(boxes, 3, 4)) == expected


class TestEngineAPI:
    def test_bad_sao_rejected(self):
        with pytest.raises(ValueError):
            TetrisEngine(2, 3, sao=(0, 0))

    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            TetrisEngine(0, 3)

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            TetrisEngine(2, -1)

    def test_sao_translation_roundtrip(self):
        eng = TetrisEngine(3, 4, sao=(2, 0, 1))
        b = Box.from_bits("10", "0", "111").ivs
        assert eng.to_external(eng.to_internal(b)) == b

    def test_max_outputs_truncates(self):
        eng = TetrisEngine(1, 3)
        out = eng.run(BoxSetOracle([], 1), max_outputs=3)
        assert len(out) == 3

    def test_stats_populated(self):
        stats = ResolutionStats()
        boxes = [Box.from_bits("0", "").ivs, Box.from_bits("1", "0").ivs]
        solve_bcp(boxes, 2, 3, stats=stats)
        assert stats.skeleton_calls >= 1
        assert stats.containment_queries > 0

    def test_oracle_dedups(self):
        b = Box.from_bits("0", "").ivs
        oracle = BoxSetOracle([b, b], 2)
        assert len(oracle) == 1

    def test_outputs_in_space_order_with_sao(self):
        # One gap box; sao reverses axes — outputs must come back in
        # the original attribute order.
        boxes = [Box.from_bits("0", "").ivs]  # removes x in [0,1]
        out = solve_bcp(boxes, 2, 1, sao=(1, 0))
        assert sorted(out) == [(1, 0), (1, 1)]


class TestResolutionAccounting:
    def test_no_cache_means_more_resolutions(self):
        """Dropping resolvent caching can only increase work (Thm 5.2 flavor)."""
        boxes = random_boxes(3, 25, 3, 4)
        s_cache = ResolutionStats()
        s_nocache = ResolutionStats()
        solve_bcp(boxes, 3, 4, cache_resolvents=True, stats=s_cache)
        solve_bcp(boxes, 3, 4, cache_resolvents=False, stats=s_nocache)
        assert s_nocache.resolutions >= s_cache.resolutions

    def test_all_skeleton_resolutions_are_ordered(self):
        """Lemma C.1: with a universal target every resolution is ordered."""
        for seed in range(4):
            boxes = random_boxes(seed, 20, 3, 4)
            stats = ResolutionStats()
            solve_bcp(boxes, 3, 4, stats=stats)
            assert stats.resolutions == stats.ordered_resolutions
