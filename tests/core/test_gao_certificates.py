"""Tests for GAO-consistent certificates and arbitrary-box decomposition."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.boxes import Box
from repro.core.certificates import (
    gao_consistent_certificate,
    is_gao_consistent,
    minimal_certificate,
)
from repro.indexes.gaps import dyadic_boxes_from_ranges
from tests.helpers import brute_force_uncovered

DEPTH = 3


class TestGaoConsistency:
    def test_single_nontrivial_ok(self):
        # ⟨unit, gap-piece, λ⟩ in order (0,1,2).
        box = ((5, DEPTH), (1, 1), (0, 0))
        assert is_gao_consistent(box, (0, 1, 2), DEPTH)

    def test_nontrivial_then_nonlambda_rejected(self):
        box = ((1, 1), (5, DEPTH), (0, 0))
        assert not is_gao_consistent(box, (0, 1, 2), DEPTH)

    def test_order_dependence(self):
        box = ((1, 1), (5, DEPTH), (0, 0))
        # Under the order (1, 0, 2) the unit comes first: consistent.
        assert is_gao_consistent(box, (1, 0, 2), DEPTH)

    def test_all_lambda_or_units_consistent(self):
        assert is_gao_consistent(
            ((0, 0), (5, DEPTH)), (0, 1), DEPTH
        )

    def test_two_nontrivial_rejected(self):
        box = ((1, 1), (1, 1))
        assert not is_gao_consistent(box, (0, 1), DEPTH)


class TestGaoCertificate:
    def test_matches_union(self):
        # Two σ-consistent halves plus an inconsistent redundant box.
        boxes = [
            ((0, 1), (0, 0)),
            ((1, 1), (0, 0)),
            ((1, 1), (1, 1)),  # inconsistent but covered by the halves
        ]
        cert = gao_consistent_certificate(boxes, (0, 1), 2, DEPTH)
        assert brute_force_uncovered(cert, 2, DEPTH) == []
        assert all(is_gao_consistent(b, (0, 1), DEPTH) for b in cert)

    def test_raises_when_consistent_subset_insufficient(self):
        # Only box is inconsistent: no σ-consistent certificate.
        boxes = [((1, 1), (1, 1))]
        with pytest.raises(ValueError, match="σ-consistent"):
            gao_consistent_certificate(boxes, (0, 1), 2, DEPTH)

    def test_proposition_b6_gap(self):
        """|C| can be far below |C_gao| (Proposition B.6): coarse
        2-D boxes beat σ-consistent strips."""
        # Cover the whole space with two 'quadtree style' boxes that are
        # NOT (0,1)-consistent, plus the Θ(2^d) consistent strips.
        coarse = [((0, 1), (0, 0)), ((1, 1), (0, 0))]
        strips = [
            ((v, DEPTH), (0, 0)) for v in range(1 << DEPTH)
        ]
        both = coarse + strips
        general = minimal_certificate(both, 2, DEPTH)
        consistent = gao_consistent_certificate(both, (0, 1), 2, DEPTH)
        assert len(general) == 2
        assert len(consistent) >= (1 << DEPTH) / (2 * DEPTH)


class TestRangeBoxDecomposition:
    def test_empty_range(self):
        assert dyadic_boxes_from_ranges([(3, 2), (0, 7)], DEPTH) == []

    def test_full_space(self):
        boxes = dyadic_boxes_from_ranges([(0, 7), (0, 7)], DEPTH)
        assert boxes == [((0, 0), (0, 0))]

    @settings(max_examples=60)
    @given(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
    )
    def test_exact_cover(self, xr, yr):
        xlo, xhi = min(xr), max(xr)
        ylo, yhi = min(yr), max(yr)
        boxes = dyadic_boxes_from_ranges([(xlo, xhi), (ylo, yhi)], DEPTH)
        points = set()
        for b in boxes:
            pts = set(Box(b).points(DEPTH))
            assert not pts & points, "pieces must be disjoint"
            points |= pts
        expected = {
            (x, y)
            for x in range(xlo, xhi + 1)
            for y in range(ylo, yhi + 1)
        }
        assert points == expected

    @settings(max_examples=30)
    @given(
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
        st.tuples(st.integers(0, 7), st.integers(0, 7)),
    )
    def test_count_bound(self, xr, yr):
        boxes = dyadic_boxes_from_ranges(
            [(min(xr), max(xr)), (min(yr), max(yr))], DEPTH
        )
        assert len(boxes) <= (2 * DEPTH) ** 2
