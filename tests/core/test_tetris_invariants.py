"""Property tests for TetrisEngine invariants and failure injection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import intervals as dy
from repro.core.boxes import Box, box_contains, pbox_from_bits
from repro.core.tetris import (
    BoxSetOracle,
    CodeDimension,
    FixedDepth,
    RemainderDimension,
    TetrisEngine,
)
from tests.helpers import box_covers_point, brute_force_uncovered, \
    random_boxes

DEPTH = 3
NDIM = 2


def ivs(max_depth=DEPTH):
    return st.integers(0, max_depth).flatmap(
        lambda length: st.integers(0, (1 << length) - 1).map(
            lambda value: (value, length)
        )
    )


def box_tuples(ndim=NDIM):
    return st.tuples(*([ivs()] * ndim))


class TestSkeletonPostconditions:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(box_tuples(), max_size=8), box_tuples())
    def test_skeleton_answer_matches_semantics(self, boxes, target):
        """skeleton(b) says covered iff every point of b is covered, and
        the returned witness satisfies its contract."""
        engine = TetrisEngine(NDIM, DEPTH)
        for b in boxes:
            engine.add_box(b)
        covered, witness = engine.skeleton(
            engine.to_internal(dy.pack_box(target))
        )
        target_points = set(Box(target).points(DEPTH))
        covered_points = {
            p
            for p in target_points
            if any(box_covers_point(b, p, DEPTH) for b in boxes)
        }
        truly_covered = target_points == covered_points
        assert covered == truly_covered
        if covered:
            # Witness covers the whole target.
            assert box_contains(
                engine.to_external(witness), Box(target).packed
            )
        else:
            # Witness is an uncovered unit point inside the target.
            ext = engine.to_external(witness)
            point = tuple(dy.pvalue(p) for p in ext)
            assert point in target_points
            assert point not in covered_points

    @settings(max_examples=40, deadline=None)
    @given(st.lists(box_tuples(), max_size=8))
    def test_witnesses_sound(self, boxes):
        """Positive witnesses never cover actual uncovered points."""
        engine = TetrisEngine(NDIM, DEPTH)
        for b in boxes:
            engine.add_box(b)
        uncovered = brute_force_uncovered(boxes, NDIM, DEPTH)
        covered, witness = engine.skeleton(engine._universe)
        if covered:
            assert uncovered == []


class TestEngineReuse:
    def test_rerun_is_stable(self):
        boxes = random_boxes(1, 15, 2, DEPTH)
        oracle = BoxSetOracle(boxes, 2)
        engine = TetrisEngine(2, DEPTH)
        first = engine.run(oracle, preload=True, one_pass=True)
        # Running again on the saturated knowledge base finds nothing new.
        second = engine.run(oracle, preload=True, one_pass=True)
        assert second == []
        assert sorted(first) == brute_force_uncovered(boxes, 2, DEPTH)

    def test_return_boxes_mode(self):
        boxes = [Box.from_bits("0", "").ivs]
        engine = TetrisEngine(2, 1)
        out = engine.run(
            BoxSetOracle(boxes, 2), preload=True, one_pass=True,
            return_boxes=True,
        )
        # Packed unit boxes: '1','0' and '1','1'.
        assert sorted(out) == [
            pbox_from_bits("1", "0"), pbox_from_bits("1", "1")
        ]


class TestDimensionSpecs:
    def test_fixed_depth(self):
        spec = FixedDepth(3)
        assert spec.is_unit((dy.pmake(5, 3),), 0)
        assert not spec.is_unit((dy.pmake(1, 2),), 0)

    def test_code_dimension(self):
        spec = CodeDimension(
            {dy.pmake(0, 1), dy.pmake(2, 2), dy.pmake(3, 2)}
        )
        assert spec.is_unit((dy.pmake(0, 1),), 0)
        assert not spec.is_unit((dy.pmake(1, 1),), 0)
        assert not spec.is_unit((dy.PLAMBDA,), 0)

    def test_remainder_dimension(self):
        spec = RemainderDimension(partner_axis=0, total_depth=4)
        # Partner has length 1, so the remainder is unit at length 3.
        assert spec.is_unit((dy.pmake(0, 1), dy.pmake(5, 3)), 1)
        assert not spec.is_unit((dy.pmake(0, 1), dy.pmake(1, 2)), 1)

    def test_remainder_must_follow_partner(self):
        with pytest.raises(ValueError, match="must follow"):
            TetrisEngine(
                2, 3,
                dims=[RemainderDimension(1, 3), FixedDepth(3)],
            )

    def test_spec_count_checked(self):
        with pytest.raises(ValueError, match="one dimension spec"):
            TetrisEngine(2, 3, dims=[FixedDepth(3)])

    def test_generalized_engine_runs(self):
        """A code/remainder pair behaves like one depth-3 dimension."""
        code = CodeDimension(
            {dy.pmake(0, 1), dy.pmake(2, 2), dy.pmake(3, 2)}
        )
        engine = TetrisEngine(
            2, 3,
            dims=[code, RemainderDimension(0, 3)],
        )
        # One box covering the '0' part of the code; uncovered points are
        # the lifts of values 4..7 (codes '10', '11').
        engine.add_box(((0, 1), (0, 0)))
        out = engine.run(return_boxes=True)
        lowered = sorted(
            (dy.pvalue(p) << (s.bit_length() - 1)) | dy.pvalue(s)
            for (p, s) in out
        )
        assert lowered == [4, 5, 6, 7]


class TestExample44Trace:
    """Example 4.4 / Figure 10, step by step via a tracing resolver."""

    def test_resolvents_of_the_paper_appear(self):
        from repro.core.trace import traced_solve_bcp

        boxes = [
            Box.from_bits("", "0").ivs,
            Box.from_bits("00", "").ivs,
            Box.from_bits("", "11").ivs,
            Box.from_bits("10", "1").ivs,
        ]
        outputs, proof = traced_solve_bcp(boxes, 2, 2)
        assert sorted(outputs) == [(1, 2), (3, 2)]
        proof.verify()
        resolvents = proof.resolvents
        # The narrative's key derived boxes (SAO = (X, Y)).
        for expected in ("01,1", "01,λ", "0,λ", "10,λ", "11,1",
                         "11,λ", "1,λ", "λ,λ"):
            x, y = expected.split(",")
            box = pbox_from_bits(
                "" if x == "λ" else x, "" if y == "λ" else y
            )
            assert box in resolvents, f"missing resolvent ⟨{expected}⟩"
