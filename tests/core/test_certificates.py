"""Tests for box certificates: complements, redundancy, minimality."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.boxes import Box
from repro.core.certificates import (
    certificate_size,
    complement_boxes,
    covers,
    is_redundant,
    minimal_certificate,
    minimum_certificate,
)
from tests.helpers import brute_force_uncovered, random_boxes

DEPTH = 3


def ivs(max_depth=DEPTH):
    return st.integers(0, max_depth).flatmap(
        lambda length: st.integers(0, (1 << length) - 1).map(
            lambda value: (value, length)
        )
    )


def box_tuples(ndim=2):
    return st.tuples(*([ivs()] * ndim))


class TestComplement:
    @settings(max_examples=60)
    @given(box_tuples())
    def test_complement_is_exact(self, box):
        pieces = complement_boxes(box, DEPTH)
        inside = set(Box(box).points(DEPTH))
        outside = set()
        for p in pieces:
            outside.update(Box(p).points(DEPTH))
        all_points = {
            (a, b)
            for a in range(1 << DEPTH)
            for b in range(1 << DEPTH)
        }
        assert outside == all_points - inside

    def test_universe_has_empty_complement(self):
        assert complement_boxes(((0, 0), (0, 0)), DEPTH) == []

    def test_piece_count_bound(self):
        # At most n·d pieces.
        box = ((5, 3), (2, 3))
        assert len(complement_boxes(box, DEPTH)) <= 2 * DEPTH


class TestCovers:
    def test_direct_containment(self):
        target = Box.from_bits("10", "0").ivs
        assert covers([Box.from_bits("1", "").ivs], target, 2, DEPTH)

    def test_cover_by_two_halves(self):
        target = Box.from_bits("1", "").ivs
        halves = [Box.from_bits("10", "").ivs, Box.from_bits("11", "").ivs]
        assert covers(halves, target, 2, DEPTH)

    def test_not_covered(self):
        target = Box.from_bits("1", "").ivs
        assert not covers([Box.from_bits("10", "").ivs], target, 2, DEPTH)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(box_tuples(), max_size=6), box_tuples())
    def test_matches_point_semantics(self, candidate, target):
        got = covers(candidate, target, 2, DEPTH)
        target_pts = set(Box(target).points(DEPTH))
        covered = set()
        for b in candidate:
            covered.update(Box(b).points(DEPTH))
        assert got == (target_pts <= covered)


class TestRedundancy:
    def test_contained_box_is_redundant(self):
        boxes = [Box.from_bits("1", "").ivs, Box.from_bits("10", "0").ivs]
        assert is_redundant(boxes, 1, 2, DEPTH)
        assert not is_redundant(boxes, 0, 2, DEPTH)

    def test_union_covered_box(self):
        boxes = [
            Box.from_bits("0", "").ivs,
            Box.from_bits("1", "").ivs,
            Box.from_bits("", "01").ivs,  # inside the union of the halves
        ]
        assert is_redundant(boxes, 2, 2, DEPTH)


class TestMinimalCertificate:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(box_tuples(), max_size=8))
    def test_same_union(self, boxes):
        cert = minimal_certificate(boxes, 2, DEPTH)
        assert brute_force_uncovered(cert, 2, DEPTH) == \
            brute_force_uncovered(boxes, 2, DEPTH)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(box_tuples(), max_size=7))
    def test_irredundant(self, boxes):
        cert = minimal_certificate(boxes, 2, DEPTH)
        for i in range(len(cert)):
            assert not is_redundant(cert, i, 2, DEPTH)

    def test_duplicates_removed(self):
        b = Box.from_bits("1", "0").ivs
        assert minimal_certificate([b, b, b], 2, DEPTH) == [b]

    def test_certificate_can_be_much_smaller(self):
        """Thin slices covered by one big box: |C| = 1 despite many inputs."""
        big = Box.from_bits("0", "").ivs
        thin = [
            Box.from_bits(format(v, "03b"), "").ivs for v in range(4)
        ]
        cert = minimal_certificate(thin + [big], 2, DEPTH)
        assert cert == [big]


class TestMinimumCertificate:
    def test_exact_beats_or_ties_greedy(self):
        for seed in range(4):
            boxes = random_boxes(seed, 8, 2, DEPTH)
            exact = minimum_certificate(boxes, 2, DEPTH)
            greedy = minimal_certificate(boxes, 2, DEPTH)
            assert len(exact) <= len(greedy)
            assert brute_force_uncovered(exact, 2, DEPTH) == \
                brute_force_uncovered(boxes, 2, DEPTH)

    def test_limit_enforced(self):
        # Unit boxes on the diagonal are pairwise incomparable, so all of
        # them survive the maximality filter and trip the limit.
        boxes = [((v, DEPTH), (v, DEPTH)) for v in range(8)]
        with pytest.raises(ValueError):
            minimum_certificate(boxes, 2, DEPTH, limit=5)

    def test_certificate_size_helper(self):
        b = Box.from_bits("1", "0").ivs
        assert certificate_size([b, b], 2, DEPTH) == 1
        assert certificate_size([b, b], 2, DEPTH, exact=True) == 1
