"""Unit and property tests for dyadic boxes and spaces."""

import pytest
from hypothesis import given, strategies as st

from repro.core.boxes import Box, Space, box_contains, box_overlaps
from repro.core.intervals import LAMBDA

DEPTH = 4
NDIM = 3


def ivs(max_depth=DEPTH):
    return st.integers(0, max_depth).flatmap(
        lambda length: st.integers(0, (1 << length) - 1).map(
            lambda value: (value, length)
        )
    )


def boxes(ndim=NDIM, max_depth=DEPTH):
    return st.tuples(*([ivs(max_depth)] * ndim)).map(Box)


class TestBoxBasics:
    def test_from_bits(self):
        b = Box.from_bits("10", "", "0")
        assert b.ivs == ((2, 2), LAMBDA, (0, 1))

    def test_from_bits_wildcards(self):
        assert Box.from_bits("λ", "*", "").ivs == (LAMBDA,) * 3

    def test_point(self):
        assert Box.point((1, 2), 3).ivs == ((1, 3), (2, 3))

    def test_universe(self):
        assert Box.universe(2).ivs == (LAMBDA, LAMBDA)

    def test_equality_and_hash(self):
        assert Box.from_bits("1", "0") == Box.from_bits("1", "0")
        assert hash(Box.from_bits("1", "0")) == hash(Box.from_bits("1", "0"))
        assert Box.from_bits("1", "0") != Box.from_bits("0", "1")

    def test_repr(self):
        assert repr(Box.from_bits("10", "")) == "⟨10, λ⟩"

    def test_ndim(self):
        assert Box.universe(4).ndim == 4


class TestContainment:
    def test_universe_contains_all(self):
        u = Box.universe(2)
        assert u.contains(Box.from_bits("101", "0"))

    def test_componentwise(self):
        outer = Box.from_bits("1", "")
        inner = Box.from_bits("10", "11")
        assert outer.contains(inner)
        assert not inner.contains(outer)

    @given(boxes(), boxes())
    def test_contains_iff_point_subset(self, a, b):
        pa = set(a.points(DEPTH))
        pb = set(b.points(DEPTH))
        assert a.contains(b) == (pb <= pa)

    @given(boxes(), boxes())
    def test_overlaps_iff_points_intersect(self, a, b):
        pa = set(a.points(DEPTH))
        pb = set(b.points(DEPTH))
        assert a.overlaps(b) == bool(pa & pb)

    @given(boxes(), boxes())
    def test_intersect_matches_point_intersection(self, a, b):
        pa = set(a.points(DEPTH))
        pb = set(b.points(DEPTH))
        if a.overlaps(b):
            assert set(a.intersect(b).points(DEPTH)) == pa & pb
        else:
            with pytest.raises(ValueError):
                a.intersect(b)

    def test_raw_tuple_helpers(self):
        # The raw helpers run on the packed marker-bit form.
        a = Box.from_bits("1", "").packed
        b = Box.from_bits("10", "1").packed
        assert box_contains(a, b)
        assert box_overlaps(a, b)
        assert not box_contains(b, a)

    def test_packed_roundtrip(self):
        b = Box.from_bits("10", "", "0")
        assert b.packed == (0b110, 0b1, 0b10)
        assert Box.from_packed(b.packed) == b


class TestSupportAndPoints:
    def test_support_indices(self):
        b = Box.from_bits("1", "", "01")
        assert b.support() == frozenset({0, 2})

    def test_support_names(self):
        b = Box.from_bits("1", "", "01")
        assert b.support(("A", "B", "C")) == frozenset({"A", "C"})

    def test_unit_box(self):
        assert Box.point((1, 2), 3).is_unit(3)
        assert not Box.from_bits("1", "10").is_unit(3)

    def test_to_point(self):
        assert Box.point((1, 2), 3).to_point(3) == (1, 2)

    def test_to_point_non_unit_raises(self):
        with pytest.raises(ValueError):
            Box.from_bits("1", "10").to_point(3)

    def test_covers_point(self):
        b = Box.from_bits("1", "")
        assert b.covers_point((5, 0), 3)
        assert not b.covers_point((3, 0), 3)

    def test_volume(self):
        assert Box.universe(2).volume(3) == 64
        assert Box.from_bits("1", "01").volume(3) == 4 * 2

    @given(boxes())
    def test_volume_matches_point_count(self, b):
        assert b.volume(DEPTH) == len(list(b.points(DEPTH)))


class TestSpace:
    def test_basic(self):
        sp = Space(("A", "B"), 4)
        assert sp.ndim == 2
        assert sp.domain_size == 16
        assert sp.axis("B") == 1

    def test_duplicate_attrs_rejected(self):
        with pytest.raises(ValueError):
            Space(("A", "A"), 4)

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            Space(("A",), -1)

    def test_point_arity_check(self):
        sp = Space(("A", "B"), 4)
        with pytest.raises(ValueError):
            sp.point((1,))

    def test_box_kwargs(self):
        sp = Space(("A", "B", "C"), 4)
        b = sp.box(A="10", C="0")
        assert b == Box.from_bits("10", "", "0")

    def test_embed(self):
        sp = Space(("A", "B", "C"), 4)
        small = Box.from_bits("1", "00")  # over (C, A)
        lifted = sp.embed(small, ("C", "A"))
        assert lifted == Box.from_bits("00", "", "1")

    def test_project(self):
        sp = Space(("A", "B", "C"), 4)
        b = Box.from_bits("10", "11", "0")
        assert sp.project(b, ("A", "C")) == Box.from_bits("10", "", "0")

    def test_universe(self):
        assert Space(("A", "B"), 2).universe() == Box.universe(2)
