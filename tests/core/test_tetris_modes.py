"""Parity matrix for the Tetris traversal modes and kernel hot-path features.

The frontier-resuming skeleton (``mode="resume"``), TetrisSkeleton2
(``mode="onepass"``) and the faithful restart-per-output loop
(``mode="faithful"``) must emit identical output sets on every instance
— over random packed box sets, every dimensionality 1–4, uniform and
generalized (per-axis depth) spaces, both knowledge-base stores, with
and without the bounded resolvent-admission policy.
"""

import itertools

import pytest

from repro.core.resolution import ResolutionStats
from repro.core.stores import ListStore
from repro.core.tetris import (
    MODES,
    BoxSetOracle,
    FixedDepth,
    TetrisEngine,
    solve_bcp,
)
from tests.helpers import brute_force_uncovered, random_boxes

MODE_IDS = list(MODES)


def run_mode(boxes, ndim, depth, mode, preload, store=None, sao=None,
             resolvent_limit=None):
    oracle = BoxSetOracle(boxes, ndim)
    kb = store(ndim) if store is not None else None
    engine = TetrisEngine(
        ndim, depth, sao=sao, knowledge_base=kb,
        resolvent_limit=resolvent_limit,
    )
    return sorted(engine.run(oracle, preload=preload, mode=mode))


class TestModeParityUniform:
    @pytest.mark.parametrize("ndim,depth", [(1, 5), (2, 4), (3, 3), (4, 2)])
    @pytest.mark.parametrize("preload", [True, False])
    def test_modes_match_brute_force(self, ndim, depth, preload):
        for seed in range(6):
            boxes = random_boxes(seed, 4 * ndim, ndim, depth)
            expected = brute_force_uncovered(boxes, ndim, depth)
            for mode in MODES:
                got = run_mode(boxes, ndim, depth, mode, preload)
                assert got == expected, (mode, preload, seed)

    @pytest.mark.parametrize("mode", MODE_IDS)
    def test_sao_permutations_agree(self, mode):
        ndim, depth = 3, 3
        boxes = random_boxes(11, 12, ndim, depth)
        expected = brute_force_uncovered(boxes, ndim, depth)
        for sao in itertools.permutations(range(ndim)):
            got = run_mode(boxes, ndim, depth, mode, True, sao=sao)
            assert got == expected, (mode, sao)

    @pytest.mark.parametrize("mode", MODE_IDS)
    @pytest.mark.parametrize("preload", [True, False])
    def test_list_store_parity(self, mode, preload):
        ndim, depth = 3, 3
        for seed in range(4):
            boxes = random_boxes(seed, 10, ndim, depth)
            expected = brute_force_uncovered(boxes, ndim, depth)
            got = run_mode(
                boxes, ndim, depth, mode, preload, store=ListStore
            )
            assert got == expected, (mode, preload, seed)

    def test_dense_and_empty_instances(self):
        # Full cover and empty box set, every mode.
        for mode in MODES:
            assert run_mode([((0, 0), (0, 0))], 2, 2, mode, True) == []
            assert (
                run_mode([], 2, 2, mode, False)
                == brute_force_uncovered([], 2, 2)
            )


class TestModeParityGeneralized:
    """Per-axis FixedDepth specs exercise the generalized-dims path."""

    @pytest.mark.parametrize("preload", [True, False])
    def test_mixed_depths_match_reference(self, preload):
        depths = (2, 3, 1)
        ndim = len(depths)
        top = max(depths)
        for seed in range(4):
            # Clamp random boxes into each axis' depth budget.
            raw = random_boxes(seed, 10, ndim, min(depths))
            boxes = [
                tuple(
                    (v, min(ln, depths[i]))
                    for i, (v, ln) in enumerate(box)
                )
                for box in raw
            ]
            # Reference: enumerate the mixed-depth product space.
            covered = []
            points = itertools.product(*[range(1 << d) for d in depths])
            for point in points:
                hit = any(
                    all(
                        (point[i] >> (depths[i] - ln)) == v
                        for i, (v, ln) in enumerate(box)
                    )
                    for box in boxes
                )
                if not hit:
                    covered.append(point)
            expected = sorted(covered)
            dims = [FixedDepth(d) for d in depths]
            results = {}
            for mode in MODES:
                oracle = BoxSetOracle(boxes, ndim)
                engine = TetrisEngine(ndim, top, dims=dims)
                results[mode] = sorted(
                    engine.run(oracle, preload=preload, mode=mode)
                )
            for mode in MODES:
                assert results[mode] == expected, (mode, preload, seed)


class TestBoundedResolventAdmission:
    def test_eviction_preserves_output(self):
        ndim, depth = 3, 4
        boxes = random_boxes(7, 40, ndim, depth)
        expected = sorted(solve_bcp(boxes, ndim, depth))
        for mode in MODES:
            for limit in (1, 4, 64):
                got = run_mode(
                    boxes, ndim, depth, mode, True, resolvent_limit=limit
                )
                assert got == expected, (mode, limit)

    def test_evictions_counted_and_kb_bounded(self):
        # The one-pass mode caches every resolvent (the resume mode
        # skips ones no wider than their frame), so it must overflow a
        # tight bound and evict.
        ndim, depth = 3, 4
        boxes = random_boxes(3, 30, ndim, depth)
        stats = ResolutionStats()
        oracle = BoxSetOracle(boxes, ndim)
        engine = TetrisEngine(ndim, depth, stats=stats, resolvent_limit=8)
        baseline = len(oracle)
        engine.run(oracle, preload=True, mode="onepass")
        assert stats.evictions > 0
        # Inputs + outputs + at most `limit` cached resolvents.
        assert len(engine.knowledge_base) <= baseline + 8 + (
            stats.boxes_loaded
        )

    def test_list_store_eviction(self):
        ndim, depth = 2, 4
        boxes = random_boxes(5, 25, ndim, depth)
        expected = sorted(solve_bcp(boxes, ndim, depth))
        got = run_mode(
            boxes, ndim, depth, "resume", True, store=ListStore,
            resolvent_limit=2,
        )
        assert got == expected

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            TetrisEngine(2, 3, resolvent_limit=0)


class TestLegacyOnePassFlag:
    def test_one_pass_maps_to_modes(self):
        boxes = random_boxes(2, 10, 2, 3)
        expected = brute_force_uncovered(boxes, 2, 3)
        oracle = BoxSetOracle(boxes, 2)
        for one_pass in (True, False):
            engine = TetrisEngine(2, 3)
            got = sorted(
                engine.run(oracle, preload=True, one_pass=one_pass)
            )
            assert got == expected

    def test_conflicting_flags_rejected(self):
        engine = TetrisEngine(2, 3)
        with pytest.raises(ValueError):
            engine.run(BoxSetOracle([], 2), one_pass=True, mode="faithful")

    def test_unknown_mode_rejected(self):
        engine = TetrisEngine(2, 3)
        with pytest.raises(ValueError):
            engine.run(BoxSetOracle([], 2), mode="bogus")


class TestResumeInstrumentation:
    def test_resume_counters_populated(self):
        boxes = random_boxes(9, 20, 3, 4)
        stats = ResolutionStats()
        oracle = BoxSetOracle(boxes, 3)
        engine = TetrisEngine(3, 4, stats=stats)
        engine.run(oracle, preload=False, mode="resume")
        assert stats.resumes > 0
        # Gap-loading resumes record witness depths; reloaded runs with
        # any gap box must have seen at least one.
        assert stats.witness_depth_sum > 0
        assert stats.mean_witness_depth > 0

    def test_faithful_mode_never_resumes(self):
        boxes = random_boxes(9, 20, 3, 4)
        stats = ResolutionStats()
        oracle = BoxSetOracle(boxes, 3)
        engine = TetrisEngine(3, 4, stats=stats)
        engine.run(oracle, preload=False, mode="faithful")
        assert stats.resumes == 0


class TestMaxOutputsAcrossModes:
    @pytest.mark.parametrize("mode", MODE_IDS)
    def test_cap_truncates(self, mode):
        engine = TetrisEngine(2, 3)
        out = engine.run(BoxSetOracle([], 2), mode=mode, max_outputs=5)
        assert len(out) == 5
