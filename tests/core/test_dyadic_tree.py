"""Tests for the multilevel dyadic tree knowledge-base store (packed)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.boxes import Box, box_contains
from repro.core.dyadic_tree import MultilevelDyadicTree
from tests.helpers import random_packed_boxes

DEPTH = 4


def ivs(max_depth=DEPTH):
    # All packed marker-bit intervals of length <= max_depth.
    return st.integers(1, (1 << (max_depth + 1)) - 1)


def box_tuples(ndim=2):
    return st.tuples(*([ivs()] * ndim))


class TestBasics:
    def test_empty(self):
        tree = MultilevelDyadicTree(2)
        assert len(tree) == 0
        assert tree.find_container(Box.universe(2).packed) is None

    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            MultilevelDyadicTree(0)

    def test_add_and_contains(self):
        tree = MultilevelDyadicTree(2)
        b = Box.from_bits("10", "0").packed
        assert tree.add(b)
        assert b in tree
        assert len(tree) == 1

    def test_duplicate_add(self):
        tree = MultilevelDyadicTree(2)
        b = Box.from_bits("10", "0").packed
        assert tree.add(b)
        assert not tree.add(b)
        assert len(tree) == 1

    def test_arity_mismatch(self):
        tree = MultilevelDyadicTree(2)
        with pytest.raises(ValueError):
            tree.add(Box.from_bits("1").packed)

    def test_not_contains_prefix(self):
        tree = MultilevelDyadicTree(1)
        tree.add(Box.from_bits("10").packed)
        assert Box.from_bits("1").packed not in tree

    def test_iteration(self):
        tree = MultilevelDyadicTree(2)
        items = {
            Box.from_bits("10", "0").packed,
            Box.from_bits("", "11").packed,
            Box.from_bits("10", "").packed,
        }
        for b in items:
            tree.add(b)
        assert set(tree) == items


class TestFindContainer:
    def test_finds_exact(self):
        tree = MultilevelDyadicTree(2)
        b = Box.from_bits("10", "0").packed
        tree.add(b)
        assert tree.find_container(b) == b

    def test_finds_strict_container(self):
        tree = MultilevelDyadicTree(2)
        big = Box.from_bits("1", "").packed
        tree.add(big)
        small = Box.from_bits("101", "0011").packed
        assert tree.find_container(small) == big

    def test_lambda_component_matches_everything(self):
        tree = MultilevelDyadicTree(3)
        b = Box.from_bits("", "01", "").packed
        tree.add(b)
        q = Box.from_bits("1111", "0110", "0000").packed
        assert tree.find_container(q) == b

    def test_no_false_positive(self):
        tree = MultilevelDyadicTree(2)
        tree.add(Box.from_bits("10", "0").packed)
        assert tree.find_container(Box.from_bits("11", "0").packed) is None
        assert tree.find_container(Box.from_bits("1", "0").packed) is None

    def test_find_all_containers(self):
        tree = MultilevelDyadicTree(2)
        a = Box.from_bits("1", "").packed
        b = Box.from_bits("", "0").packed
        c = Box.from_bits("0", "0").packed
        for x in (a, b, c):
            tree.add(x)
        point = Box.from_bits("1111", "0000").packed
        found = set(map(tuple, tree.find_all_containers(point)))
        assert found == {a, b}

    @settings(max_examples=200)
    @given(st.lists(box_tuples(), max_size=12), box_tuples())
    def test_matches_linear_scan(self, stored, query):
        tree = MultilevelDyadicTree(2)
        for b in stored:
            tree.add(b)
        expected = {b for b in stored if box_contains(b, query)}
        found = tree.find_container(query)
        if expected:
            assert found in expected
        else:
            assert found is None
        assert set(tree.find_all_containers(query)) == expected

    def test_randomized_bulk(self):
        rng = random.Random(7)
        stored = random_packed_boxes(1, 200, 3, 5)
        tree = MultilevelDyadicTree(3)
        for b in stored:
            tree.add(b)
        for _ in range(100):
            q = tuple(
                (1 << 5) | rng.getrandbits(5) for _ in range(3)
            )
            expected = {b for b in stored if box_contains(b, q)}
            assert set(tree.find_all_containers(q)) == expected
