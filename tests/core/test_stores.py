"""Tests for the knowledge-base store abstraction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.boxes import Box
from repro.core.stores import ListStore
from repro.core.tetris import BoxSetOracle, TetrisEngine
from tests.helpers import brute_force_uncovered, random_boxes


def ivs(max_depth=3):
    # All packed marker-bit intervals of length <= max_depth.
    return st.integers(1, (1 << (max_depth + 1)) - 1)


class TestListStore:
    def test_basics(self):
        store = ListStore(2)
        b = Box.from_bits("1", "0").packed
        assert store.add(b)
        assert not store.add(b)
        assert b in store
        assert len(store) == 1
        assert list(store) == [b]

    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            ListStore(0)

    def test_arity_check(self):
        with pytest.raises(ValueError):
            ListStore(2).add(Box.from_bits("1").packed)

    def test_find_container(self):
        store = ListStore(2)
        big = Box.from_bits("1", "").packed
        store.add(big)
        assert store.find_container(Box.from_bits("10", "01").packed) == big
        assert store.find_container(Box.from_bits("0", "").packed) is None

    @settings(max_examples=100)
    @given(
        st.lists(st.tuples(ivs(), ivs()), max_size=10),
        st.tuples(ivs(), ivs()),
    )
    def test_agrees_with_dyadic_tree(self, stored, query):
        from repro.core.dyadic_tree import MultilevelDyadicTree

        lst = ListStore(2)
        tree = MultilevelDyadicTree(2)
        for b in stored:
            assert lst.add(b) == tree.add(b)
        assert set(lst.find_all_containers(query)) == set(
            tree.find_all_containers(query)
        )


class TestEngineWithListStore:
    def test_same_outputs(self):
        for seed in range(3):
            boxes = random_boxes(seed, 25, 3, 4)
            expected = brute_force_uncovered(boxes, 3, 4)
            engine = TetrisEngine(3, 4, knowledge_base=ListStore(3))
            got = engine.run(
                BoxSetOracle(boxes, 3), preload=True, one_pass=True
            )
            assert sorted(got) == expected
