"""Tests for resolution-proof recording, verification, classification."""

import pytest

from repro.core.boxes import Box
from repro.core.trace import (
    ProofStep,
    ResolutionProof,
    TracingResolver,
    traced_solve_bcp,
)
from repro.workloads.hard_instances import (
    example_f1,
    msb_triangle,
    shared_suffix_instance,
)
from tests.helpers import brute_force_uncovered, random_boxes

DEPTH = 3


class TestTracingResolver:
    def test_records_steps(self):
        tracer = TracingResolver()
        w1 = Box.from_bits("0", "").packed
        w2 = Box.from_bits("1", "").packed
        out = tracer.resolve(w1, w2, 0)
        assert len(tracer.proof) == 1
        step = tracer.proof.steps[0]
        assert step.resolvent == out
        assert step.ordered


class TestProofVerification:
    def test_valid_proof_verifies(self):
        boxes = random_boxes(0, 20, 3, DEPTH)
        outputs, proof = traced_solve_bcp(boxes, 3, DEPTH)
        proof.verify()
        assert sorted(outputs) == brute_force_uncovered(boxes, 3, DEPTH)

    def test_corrupted_resolvent_caught(self):
        proof = ResolutionProof(
            [
                ProofStep(
                    left=Box.from_bits("0", "").packed,
                    right=Box.from_bits("1", "").packed,
                    axis=0,
                    resolvent=Box.from_bits("1", "").packed,  # wrong
                    ordered=True,
                )
            ]
        )
        with pytest.raises(ValueError, match="resolvent mismatch"):
            proof.verify()

    def test_unresolvable_premises_caught(self):
        proof = ResolutionProof(
            [
                ProofStep(
                    left=Box.from_bits("0", "0").packed,
                    right=Box.from_bits("1", "1").packed,
                    axis=0,
                    resolvent=Box.from_bits("", "").packed,
                    ordered=False,
                )
            ]
        )
        with pytest.raises(ValueError, match="not resolvable"):
            proof.verify()

    def test_wrong_axis_caught(self):
        proof = ResolutionProof(
            [
                ProofStep(
                    left=Box.from_bits("0", "1").packed,
                    right=Box.from_bits("1", "1").packed,
                    axis=1,
                    resolvent=Box.from_bits("", "1").packed,
                    ordered=False,
                )
            ]
        )
        with pytest.raises(ValueError, match="recorded axis"):
            proof.verify()


class TestClassification:
    def test_tetris_proofs_are_ordered(self):
        """Lemma C.1: from the universal target, all steps are ordered."""
        for seed in range(3):
            boxes = random_boxes(seed, 15, 3, DEPTH)
            _, proof = traced_solve_bcp(boxes, 3, DEPTH)
            proof.verify()
            assert proof.is_ordered()
            assert proof.classify() in ("ordered", "tree-ordered")

    def test_no_cache_gives_tree_proofs(self):
        """Without caching, resolvents are never reused: tree proofs."""
        boxes = shared_suffix_instance(2)
        _, proof = traced_solve_bcp(boxes, 3, 2, cache_resolvents=False)
        proof.verify()
        assert proof.is_tree()
        assert proof.classify() == "tree-ordered"

    def test_caching_reuses_resolvents(self):
        """With caching on the shared-suffix gadget, the proof is a DAG."""
        boxes = shared_suffix_instance(2)
        _, proof = traced_solve_bcp(boxes, 3, 2, cache_resolvents=True)
        proof.verify()
        assert not proof.is_tree()
        assert proof.classify() == "ordered"


class TestProofStructure:
    def test_cover_proof_derives_universe(self):
        """On covered instances the proof derives ⟨λ,λ,λ⟩ (Prop 4.2)."""
        for maker, d in ((msb_triangle, 3), (example_f1, 4)):
            boxes = maker(d)
            outputs, proof = traced_solve_bcp(boxes, 3, d)
            assert outputs == []
            proof.verify()
            universe = (1,) * 3  # packed ⟨λ,λ,λ⟩
            assert proof.derives(universe)

    def test_leaves_are_inputs_or_outputs(self):
        boxes = random_boxes(4, 15, 2, DEPTH)
        outputs, proof = traced_solve_bcp(boxes, 2, DEPTH)
        box_set = set(boxes)
        output_units = {
            tuple((v, DEPTH) for v in point) for point in outputs
        }
        for leaf in proof.leaves():
            assert leaf in box_set or leaf in output_units

    def test_dot_export(self):
        boxes = [Box.from_bits("0", "").packed, Box.from_bits("1", "").packed]
        _, proof = traced_solve_bcp(boxes, 2, 1)
        dot = proof.to_dot()
        assert dot.startswith("digraph proof {")
        assert "->" in dot

    def test_empty_proof(self):
        proof = ResolutionProof()
        proof.verify()
        assert proof.is_tree()
        assert proof.is_ordered()
        assert proof.classify() == "tree-ordered"
        assert proof.leaves() == set()
