"""Unit and property tests for dyadic intervals."""

import pytest
from hypothesis import given, strategies as st

from repro.core import intervals as dy
from repro.core.intervals import LAMBDA


DEPTH = 6


def ivs(max_depth=DEPTH):
    """Hypothesis strategy for dyadic intervals up to a depth."""
    return st.integers(0, max_depth).flatmap(
        lambda length: st.integers(0, (1 << length) - 1).map(
            lambda value: (value, length)
        )
    )


class TestConstruction:
    def test_make_valid(self):
        assert dy.make(5, 3) == (5, 3)

    def test_make_lambda(self):
        assert dy.make(0, 0) == LAMBDA

    def test_make_rejects_oversized_value(self):
        with pytest.raises(ValueError):
            dy.make(8, 3)

    def test_make_rejects_negative_length(self):
        with pytest.raises(ValueError):
            dy.make(0, -1)

    def test_make_rejects_nonzero_lambda(self):
        with pytest.raises(ValueError):
            dy.make(1, 0)

    def test_from_bits_roundtrip(self):
        assert dy.from_bits("101") == (5, 3)
        assert dy.to_bits((5, 3)) == "101"

    def test_from_bits_empty_is_lambda(self):
        assert dy.from_bits("") == LAMBDA
        assert dy.to_bits(LAMBDA) == "λ"

    def test_from_bits_rejects_garbage(self):
        with pytest.raises(ValueError):
            dy.from_bits("10x")

    def test_from_point(self):
        assert dy.from_point(3, 4) == (3, 4)

    def test_from_point_out_of_domain(self):
        with pytest.raises(ValueError):
            dy.from_point(16, 4)


class TestPrefixOrder:
    def test_lambda_is_prefix_of_all(self):
        assert dy.is_prefix(LAMBDA, (5, 3))
        assert dy.is_prefix(LAMBDA, LAMBDA)

    def test_prefix_basic(self):
        assert dy.is_prefix((1, 1), (5, 3))  # '1' < '101'
        assert not dy.is_prefix((0, 1), (5, 3))  # '0' not prefix of '101'

    def test_prefix_not_symmetric(self):
        assert not dy.is_prefix((5, 3), (1, 1))

    def test_contains_alias(self):
        assert dy.contains is dy.is_prefix

    @given(ivs())
    def test_prefix_reflexive(self, a):
        assert dy.is_prefix(a, a)

    @given(ivs(), ivs(), ivs())
    def test_prefix_transitive(self, a, b, c):
        if dy.is_prefix(a, b) and dy.is_prefix(b, c):
            assert dy.is_prefix(a, c)

    @given(ivs(), ivs())
    def test_prefix_antisymmetric(self, a, b):
        if dy.is_prefix(a, b) and dy.is_prefix(b, a):
            assert a == b

    @given(ivs(), ivs())
    def test_overlap_iff_ranges_intersect(self, a, b):
        ra = set(range(*_span(a)))
        rb = set(range(*_span(b)))
        assert dy.overlaps(a, b) == bool(ra & rb)


def _span(iv, depth=DEPTH):
    lo, hi = dy.to_range(iv, depth)
    return lo, hi + 1


class TestMeetSplit:
    def test_meet_takes_longer(self):
        assert dy.meet((1, 1), (5, 3)) == (5, 3)
        assert dy.meet((5, 3), (1, 1)) == (5, 3)

    def test_meet_disjoint_raises(self):
        with pytest.raises(ValueError):
            dy.meet((0, 1), (1, 1))

    def test_split(self):
        left, right = dy.split((1, 1))
        assert left == (2, 2)
        assert right == (3, 2)

    def test_split_lambda(self):
        assert dy.split(LAMBDA) == ((0, 1), (1, 1))

    @given(ivs(max_depth=DEPTH - 1))
    def test_split_partitions(self, a):
        left, right = dy.split(a)
        la = set(range(*_span(left)))
        ra = set(range(*_span(right)))
        assert la | ra == set(range(*_span(a)))
        assert not la & ra

    def test_parent_inverts_extend(self):
        assert dy.parent(dy.extend((1, 1), 0)) == (1, 1)

    def test_parent_of_lambda_raises(self):
        with pytest.raises(ValueError):
            dy.parent(LAMBDA)

    def test_last_bit(self):
        assert dy.last_bit((5, 3)) == 1
        assert dy.last_bit((4, 3)) == 0

    def test_last_bit_of_lambda_raises(self):
        with pytest.raises(ValueError):
            dy.last_bit(LAMBDA)

    def test_siblings(self):
        assert dy.are_siblings((4, 3), (5, 3))
        assert not dy.are_siblings((4, 3), (6, 3))
        assert not dy.are_siblings((4, 3), (5, 4))
        assert not dy.are_siblings(LAMBDA, LAMBDA)

    @given(ivs(max_depth=DEPTH - 1))
    def test_split_makes_siblings(self, a):
        left, right = dy.split(a)
        assert dy.are_siblings(left, right)


class TestPrefixEnumeration:
    def test_prefixes_of_101(self):
        assert list(dy.prefixes((5, 3))) == [
            (0, 0), (1, 1), (2, 2), (5, 3)
        ]

    @given(ivs())
    def test_prefix_count(self, a):
        assert len(list(dy.prefixes(a))) == a[1] + 1

    @given(ivs())
    def test_all_prefixes_contain(self, a):
        for p in dy.prefixes(a):
            assert dy.is_prefix(p, a)


class TestRanges:
    def test_to_range(self):
        assert dy.to_range((1, 1), 3) == (4, 7)
        assert dy.to_range(LAMBDA, 3) == (0, 7)

    def test_to_range_too_deep(self):
        with pytest.raises(ValueError):
            dy.to_range((0, 4), 3)

    def test_width(self):
        assert dy.width(LAMBDA, 5) == 32
        assert dy.width((0, 5), 5) == 1

    def test_covers_point(self):
        assert dy.covers_point((1, 1), 5, 3)
        assert not dy.covers_point((1, 1), 3, 3)


class TestDecomposeRange:
    def test_empty(self):
        assert dy.decompose_range(5, 4, 3) == []

    def test_full_domain(self):
        assert dy.decompose_range(0, 7, 3) == [LAMBDA]

    def test_single_point(self):
        assert dy.decompose_range(5, 5, 3) == [(5, 3)]

    def test_out_of_domain(self):
        with pytest.raises(ValueError):
            dy.decompose_range(0, 8, 3)

    @given(
        st.integers(0, (1 << DEPTH) - 1),
        st.integers(0, (1 << DEPTH) - 1),
    )
    def test_decomposition_is_exact_partition(self, a, b):
        lo, hi = min(a, b), max(a, b)
        pieces = dy.decompose_range(lo, hi, DEPTH)
        covered = []
        for piece in pieces:
            plo, phi = dy.to_range(piece, DEPTH)
            covered.extend(range(plo, phi + 1))
        assert sorted(covered) == list(range(lo, hi + 1))
        assert len(covered) == len(set(covered))

    @given(
        st.integers(0, (1 << DEPTH) - 1),
        st.integers(0, (1 << DEPTH) - 1),
    )
    def test_decomposition_size_bound(self, a, b):
        # Proposition B.14: at most 2d dyadic segments per interval.
        lo, hi = min(a, b), max(a, b)
        assert len(dy.decompose_range(lo, hi, DEPTH)) <= 2 * DEPTH
