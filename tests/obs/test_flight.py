"""Flight recorder ring and the rotating observability logs."""

import json

import pytest

from repro.obs import flight, slowlog
from repro.obs.flight import FlightRecord, FlightRecorder


def _rec(i: int) -> FlightRecord:
    return FlightRecord(
        ts=float(i),
        description=f"q{i}",
        plan_digest="d" * 10,
        backend="hash",
        workers=1,
        seconds=0.001 * i,
        rows=i,
    )


def test_ring_is_bounded_and_ordered():
    ring = FlightRecorder(capacity=4)
    for i in range(10):
        ring.record(_rec(i))
    assert len(ring) == 4
    assert [r.rows for r in ring.last(10)] == [6, 7, 8, 9]
    assert [r.rows for r in ring.last(2)] == [8, 9]
    assert ring.last(0) == []
    ring.clear()
    assert len(ring) == 0


def test_capacity_env_knob(monkeypatch):
    monkeypatch.setenv(flight.FLIGHT_RECORDS_ENV, "3")
    assert FlightRecorder().capacity == 3
    monkeypatch.setenv(flight.FLIGHT_RECORDS_ENV, "junk")
    assert FlightRecorder().capacity == flight.DEFAULT_CAPACITY
    monkeypatch.setenv(flight.FLIGHT_RECORDS_ENV, "-1")
    assert FlightRecorder().capacity == flight.DEFAULT_CAPACITY


def test_dump_is_json_lines(tmp_path):
    ring = FlightRecorder(capacity=8)
    for i in range(3):
        ring.record(_rec(i))
    path = tmp_path / "flight.jsonl"
    ring.dump_to(str(path))
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 3
    decoded = [json.loads(line) for line in lines]
    assert [d["rows"] for d in decoded] == [0, 1, 2]
    assert decoded[0]["plan_digest"] == "d" * 10
    assert "faults" not in decoded[0]  # clean runs omit the key


def test_executed_query_lands_in_the_ring():
    from repro.engine import execute
    from repro.workloads.generators import (
        graph_triangle_db,
        random_graph_edges,
    )

    flight.RECORDER.clear()
    query, db = graph_triangle_db(random_graph_edges(25, 60, seed=21))
    result = execute(query, db)
    assert len(flight.RECORDER) == 1
    (rec,) = flight.RECORDER.last(1)
    assert rec.rows == len(result.tuples)
    assert rec.backend == result.backend
    assert len(rec.plan_digest) == 10
    assert rec.seconds > 0
    # This query's own latency observation is in the histogram, so the
    # quantile context always exists by record time.
    assert set(rec.quantiles) == {"p50", "p95", "p99"}
    assert rec.percentile is not None and 0 < rec.percentile <= 1
    assert rec.metrics.get("engine.queries") == 1
    # Same shape again: same digest (the grouping key is the plan).
    execute(query, db)
    a, b = flight.RECORDER.last(2)
    assert a.plan_digest == b.plan_digest


def test_render_record_lines():
    rec = _rec(5)
    rec.quantiles = {"p50": 0.004, "p95": 0.009, "p99": 0.010}
    rec.percentile = 0.42
    rec.stage_seconds = {"execute": 0.004, "plan": 0.001}
    rec.faults = {"respawns": 1, "retries": 2, "quarantined": 0}
    lines = flight.render_record(rec, indent="> ")
    text = "\n".join(lines)
    assert all(line.startswith("> ") for line in lines)
    assert "backend=hash" in text
    assert "p50=4.0ms" in text and "≈ p42" in text
    assert "execute=4.0ms" in text
    assert "respawns=1" in text and "quarantined" not in text


def test_slow_query_report_embeds_flight_record():
    rec = _rec(7)
    rec.quantiles = {"p50": 0.004, "p95": 0.009, "p99": 0.010}
    report = slowlog.render_report(
        "q7", elapsed_s=0.5, budget=1.0, flight=rec
    )
    assert "├─ flight" in report
    assert "process latency" in report


@pytest.fixture()
def _small_cap(monkeypatch):
    monkeypatch.setenv(slowlog.LOG_MAX_BYTES_ENV, "120")


def test_rotating_append_rotates_at_the_cap(tmp_path, _small_cap):
    path = tmp_path / "logs" / "analyze.jsonl"
    first = "a" * 80 + "\n"
    second = "b" * 80 + "\n"
    third = "c" * 80 + "\n"
    slowlog.rotating_append(str(path), first)
    assert path.read_text() == first  # under the cap: no rotation
    slowlog.rotating_append(str(path), second)
    rotated = tmp_path / "logs" / "analyze.jsonl.1"
    assert rotated.read_text() == first
    assert path.read_text() == second
    slowlog.rotating_append(str(path), third)
    # One generation kept: the oldest cap's worth is gone.
    assert rotated.read_text() == second
    assert path.read_text() == third


def test_log_max_bytes_parsing(monkeypatch):
    monkeypatch.delenv(slowlog.LOG_MAX_BYTES_ENV, raising=False)
    assert slowlog.log_max_bytes() == slowlog.DEFAULT_MAX_BYTES
    monkeypatch.setenv(slowlog.LOG_MAX_BYTES_ENV, "1024")
    assert slowlog.log_max_bytes() == 1024
    monkeypatch.setenv(slowlog.LOG_MAX_BYTES_ENV, "nope")
    assert slowlog.log_max_bytes() == slowlog.DEFAULT_MAX_BYTES
    monkeypatch.setenv(slowlog.LOG_MAX_BYTES_ENV, "0")
    assert slowlog.log_max_bytes() == slowlog.DEFAULT_MAX_BYTES


def test_calibration_log_rotates(tmp_path, _small_cap):
    from repro.obs import calibration

    path = tmp_path / "analyze_log.jsonl"
    record = {"backend": "hash", "seconds": 1.0, "quantity": 2.0,
              "pad": "x" * 60}
    for _ in range(3):
        calibration.append_run(record, path=str(path))
    assert (tmp_path / "analyze_log.jsonl.1").exists()
    # The newest generation still parses for the fitter.
    runs = calibration.load_runs(str(path))
    assert runs and runs[-1]["backend"] == "hash"
