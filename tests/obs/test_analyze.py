"""EXPLAIN ANALYZE, the calibration loop, and the slow-query log."""

import json
import os

import pytest

from repro.obs import calibration


@pytest.fixture()
def obs_paths(tmp_path, monkeypatch):
    """Isolate the calibration log + saved file under tmp_path."""
    log = tmp_path / "analyze_log.jsonl"
    saved = tmp_path / "calibration.json"
    monkeypatch.setenv(calibration.ANALYZE_LOG_ENV, str(log))
    monkeypatch.setenv(calibration.CALIBRATION_ENV, str(saved))
    calibration.clear_saved_cache()
    from repro.engine import clear_plan_cache

    clear_plan_cache()
    yield log, saved
    calibration.clear_saved_cache()
    clear_plan_cache()


def _instance():
    from repro.workloads.generators import (
        graph_triangle_db,
        random_graph_edges,
    )

    return graph_triangle_db(random_graph_edges(30, 80, seed=21))


def test_analyze_measures_and_logs(obs_paths):
    log, _ = obs_paths
    from repro.obs.analyze import analyze, render_analyze

    query, db = _instance()
    report = analyze(query, db)
    assert report.actual_rows == len(report.result.tuples)
    assert report.actual_seconds > 0
    assert report.predicted_seconds > 0
    assert report.stage_seconds.get("execute", 0) > 0
    assert "plan" in report.stage_seconds
    # The record landed in the log, JSON-parseable, fit-usable.
    assert report.log_path == str(log)
    (line,) = log.read_text().strip().splitlines()
    record = json.loads(line)
    assert record["backend"] == report.result.backend
    assert record["seconds"] == report.actual_seconds
    assert record["quantity"] > 0
    text = render_analyze(report)
    assert "stages (wall time)" in text
    assert "cardinality" in text
    assert "cost" in text
    assert "metrics" in text


def test_analyze_without_logging(obs_paths):
    log, _ = obs_paths
    from repro.obs.analyze import analyze

    query, db = _instance()
    report = analyze(query, db, append_log=False)
    assert report.log_path is None
    assert not log.exists()


def test_calibrate_shrinks_cost_error(obs_paths):
    log, saved = obs_paths
    from repro.engine.cost import CostModel
    from repro.obs.analyze import analyze, calibrate_from_log

    query, db = _instance()
    for _ in range(3):
        analyze(query, db)
    model, info, saved_path = calibrate_from_log()
    assert saved_path == str(saved)
    assert info["usable_runs"] == 3
    assert info["error_after"] <= info["error_before"]
    # The saved constants feed back into every default-built model.
    fresh = CostModel()
    assert fresh.unit_seconds == model.unit_seconds
    assert fresh.calibration == model.calibration
    # And the refit error over the logged runs is what info reported.
    runs = calibration.load_runs()
    assert calibration.cost_error(runs, fresh) == pytest.approx(
        info["error_after"]
    )


def test_calibrate_empty_log_saves_nothing(obs_paths):
    _, saved = obs_paths
    from repro.obs.analyze import calibrate_from_log

    model, info, saved_path = calibrate_from_log()
    assert saved_path is None
    assert info["usable_runs"] == 0
    assert not saved.exists()


def test_saved_calibration_invalidates_plan_cache(obs_paths):
    """A calibrate run must not resurrect plans priced under old constants."""
    from repro.engine import execute
    from repro.obs.analyze import analyze, calibrate_from_log

    # Force a non-anchor backend: fitting only the anchor ("hash")
    # leaves the relative factors untouched by construction, and an
    # unchanged calibration legitimately keeps its cached plans.
    query, db = _instance()
    analyze(query, db, algorithm="leapfrog")
    first = execute(query, db, algorithm="leapfrog")
    assert first.plan.cache_hit  # warmed by the analyze run
    calibrate_from_log()
    after = execute(query, db, algorithm="leapfrog")
    assert not after.plan.cache_hit  # new calibration → new plan key


def test_malformed_log_lines_are_skipped(obs_paths):
    log, _ = obs_paths
    log.write_text(
        "not json\n"
        + json.dumps({"backend": "leapfrog", "seconds": 0.5,
                      "quantity": 1000.0})
        + "\n"
        + json.dumps({"backend": "", "seconds": -1, "quantity": 0})
        + "\n"
    )
    runs = calibration.load_runs()
    assert len(runs) == 2  # parseable dicts
    from repro.obs.analyze import calibrate_from_log

    _, info, saved_path = calibrate_from_log()
    assert info["usable_runs"] == 1
    assert saved_path is not None


# -- slow-query log ------------------------------------------------------------


def test_slow_query_log_dumps_spans_and_metrics(tmp_path, monkeypatch):
    from repro.engine import execute
    from repro.obs import slowlog

    out = tmp_path / "slow.log"
    monkeypatch.setenv(slowlog.SLOW_QUERY_MS_ENV, "0")
    monkeypatch.setenv(slowlog.SLOW_QUERY_LOG_ENV, str(out))
    query, db = _instance()
    result = execute(query, db)
    assert result.trace is not None  # arming the budget forces tracing
    text = out.read_text()
    assert "SLOW QUERY" in text
    assert "query" in text and "execute" in text  # span tree lines
    assert "engine.queries" in text  # metrics delta


def test_slow_query_log_quiet_under_budget(tmp_path, monkeypatch, capsys):
    from repro.engine import execute
    from repro.obs import slowlog

    monkeypatch.setenv(slowlog.SLOW_QUERY_MS_ENV, "60000")
    monkeypatch.delenv(slowlog.SLOW_QUERY_LOG_ENV, raising=False)
    query, db = _instance()
    execute(query, db)
    assert "SLOW QUERY" not in capsys.readouterr().err


# -- CLI surface ---------------------------------------------------------------


@pytest.fixture()
def cli_csvs(tmp_path):
    import random

    rng = random.Random(9)
    for name in ("r", "s", "t"):
        with open(tmp_path / f"{name}.csv", "w") as fh:
            for _ in range(120):
                fh.write(f"v{rng.randrange(30)},v{rng.randrange(30)}\n")
    return tmp_path


def test_cli_explain_analyze_and_calibrate(obs_paths, cli_csvs, capsys):
    from repro.cli import main

    args = [
        "explain", "R(A,B), S(B,C), T(C,A)",
        "--csv", f"R={cli_csvs / 'r.csv'}",
        "--csv", f"S={cli_csvs / 's.csv'}",
        "--csv", f"T={cli_csvs / 't.csv'}",
        "--analyze",
        "--trace-out", str(cli_csvs / "trace.json"),
    ]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "EXPLAIN" in out
    assert "analyze" in out
    assert "stages (wall time)" in out
    assert "├─ metrics" in out
    assert "cost        :" in out
    trace = json.loads((cli_csvs / "trace.json").read_text())
    assert trace["traceEvents"]
    assert {e["ph"] for e in trace["traceEvents"]} == {"X"}

    assert main(["calibrate"]) == 0
    out = capsys.readouterr().out
    assert "cost error" in out
    assert "saved" in out
    log, saved = obs_paths
    assert saved.exists()


def test_cli_analyze_needs_data(capsys):
    from repro.cli import main

    assert main(["explain", "R(A,B)", "--analyze"]) == 2
    assert "needs --csv" in capsys.readouterr().err


def test_cli_calibrate_empty_log(obs_paths, capsys):
    from repro.cli import main

    assert main(["calibrate"]) == 1
    err = capsys.readouterr().err
    assert "nothing to fit" in err


def test_explain_text_has_consolidated_metrics_block():
    from repro.engine import execute, explain_text

    query, db = _instance()
    result = execute(query, db)
    text = explain_text(result.plan, result)
    assert "├─ metrics" in text
    assert "engine.queries" in text
