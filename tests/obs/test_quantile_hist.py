"""Quantile histograms: bounded-error quantiles, exact merges, wire form.

The two properties everything downstream leans on:

* ``quantile(q)`` is within :data:`~repro.obs.metrics.
  HIST_RELATIVE_ERROR` of the true sample quantile (the render path
  prints p50/p95/p99 from it, the flight recorder contextualizes
  queries with it);
* merging — across snapshots (``since``/``absorb``) or across
  processes (``to_wire``/``from_wire`` + ``merge_wire_delta``) — is
  *exact* bucket-wise addition, so a parent that folds worker deltas in
  reports the same distribution as one process that saw every sample.
"""

import math
import pickle
import random

from repro.obs.metrics import (
    HIST_RELATIVE_ERROR,
    MetricsRegistry,
    QuantileHistogram,
    merge_wire_delta,
    wire_delta,
)


def _true_quantile(samples, q):
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def test_quantile_error_is_bounded():
    rng = random.Random(42)
    h = QuantileHistogram()
    samples = []
    # Log-uniform over six decades: every bucket regime is exercised.
    for _ in range(5000):
        v = 10 ** rng.uniform(-4, 2)
        samples.append(v)
        h.record(v)
    for q in (0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999):
        estimate = h.quantile(q)
        truth = _true_quantile(samples, q)
        rel = abs(estimate - truth) / truth
        assert rel <= HIST_RELATIVE_ERROR + 1e-9, (q, estimate, truth)


def test_single_sample_and_extremes_are_exact():
    h = QuantileHistogram()
    h.record(3.7)
    for q in (0.0, 0.5, 1.0):
        assert h.quantile(q) == 3.7
    h.record(100.0)
    # The top end clamps to the observed max exactly; the bottom is a
    # bucket-midpoint estimate within the relative-error bound.
    assert h.quantile(1.0) == 100.0
    assert abs(h.quantile(0.0) - 3.7) / 3.7 <= HIST_RELATIVE_ERROR


def test_zero_and_negative_samples_use_the_zero_bucket():
    h = QuantileHistogram()
    for v in (0.0, -1.0, 5.0):
        h.record(v)
    assert h.zero == 2
    assert h.count == 3
    assert h.lo == -1.0
    assert h.quantile(0.5) <= 0.0
    assert abs(h.quantile(1.0) - 5.0) / 5.0 <= HIST_RELATIVE_ERROR


def test_merge_is_exact_bucketwise():
    rng = random.Random(7)
    a, b, both = (
        QuantileHistogram(),
        QuantileHistogram(),
        QuantileHistogram(),
    )
    for _ in range(400):
        v = rng.expovariate(1.0)
        a.record(v)
        both.record(v)
    for _ in range(600):
        v = rng.expovariate(10.0)
        b.record(v)
        both.record(v)
    a.absorb(b)
    assert a.count == both.count
    assert a.buckets == both.buckets
    assert a.zero == both.zero
    assert a.lo == both.lo and a.hi == both.hi
    assert abs(a.total - both.total) < 1e-9
    for q in (0.1, 0.5, 0.9, 0.99):
        assert a.quantile(q) == both.quantile(q)


def test_since_diffs_the_window():
    h = QuantileHistogram()
    for v in (1.0, 2.0):
        h.record(v)
    earlier = h.copy()
    for v in (4.0, 8.0):
        h.record(v)
    window = h.since(earlier)
    assert window.count == 2
    assert window.buckets == {
        i: c for i, c in h.buckets.items()
        if c > earlier.buckets.get(i, 0)
    }
    assert window.quantile(1.0) == 8.0
    # Empty window: no samples, no stale extremes.
    empty = h.since(h.copy())
    assert empty.count == 0
    assert empty.quantile(0.5) == 0.0


def test_wire_round_trip_and_pickle():
    h = QuantileHistogram()
    for v in (0.5, 1.5, 1.5, 30.0, 0.0):
        h.record(v)
    wire = h.to_wire()
    # The wire form is plain tuples: what the worker pipe pickles.
    assert wire == pickle.loads(pickle.dumps(wire))
    back = QuantileHistogram.from_wire(wire)
    assert back.count == h.count
    assert back.buckets == h.buckets
    assert back.zero == h.zero
    assert back.lo == h.lo and back.hi == h.hi


def test_rank_locates_a_value():
    h = QuantileHistogram()
    for v in range(1, 101):
        h.record(float(v))
    assert h.rank(0.5) == 0.0
    assert h.rank(1000.0) == 1.0
    mid = h.rank(50.0)
    assert 0.3 < mid < 0.7


def test_cross_process_merge_matches_single_process():
    """Worker deltas folded into the parent == one registry that saw
    every sample (the shipping path's correctness statement)."""
    rng = random.Random(13)
    parent = MetricsRegistry(enabled=True)
    oracle = MetricsRegistry(enabled=True)
    parent_samples = [rng.expovariate(5.0) for _ in range(100)]
    for v in parent_samples:
        parent.observe("query.latency", v)
        oracle.observe("query.latency", v)
    parent.inc("kernels.compile.misses", 2)
    oracle.inc("kernels.compile.misses", 2)
    for wid in range(3):
        worker = MetricsRegistry(enabled=True)
        before = worker.snapshot()
        worker.inc("kernels.compile.misses")
        for _ in range(50):
            v = rng.expovariate(1.0)
            worker.observe("query.latency", v)
            oracle.observe("query.latency", v)
        oracle.inc("kernels.compile.misses")
        wire = wire_delta(before, worker.snapshot())
        assert wire == pickle.loads(pickle.dumps(wire))
        merge_wire_delta(parent, wire, worker_prefix=f"worker.{wid}")
    merged = parent.histogram("query.latency")
    truth = oracle.histogram("query.latency")
    assert merged.count == truth.count == 250
    assert merged.buckets == truth.buckets
    for q in (0.5, 0.95, 0.99):
        assert merged.quantile(q) == truth.quantile(q)
    snap = parent.snapshot()
    assert snap["kernels.compile.misses"] == 5
    for wid in range(3):
        assert snap[f"worker.{wid}.kernels.compile.misses"] == 1


def test_wire_delta_of_idle_window_is_none():
    reg = MetricsRegistry(enabled=True)
    reg.inc("n", 3)
    reg.gauge("g", 1)
    before = reg.snapshot()
    reg.gauge("g", 2)  # gauges deliberately don't ship
    assert wire_delta(before, reg.snapshot()) is None


def test_registry_quantiles_render():
    from repro.obs.metrics import render_metrics

    reg = MetricsRegistry(enabled=True)
    for v in (0.010, 0.020, 0.040):
        reg.observe("query.latency", v)
    assert reg.quantile("query.latency", 1.0) == 0.040
    lines = render_metrics(reg.snapshot())
    joined = "\n".join(lines)
    for needle in (
        "query.latency.count",
        "query.latency.p50",
        "query.latency.p95",
        "query.latency.p99",
    ):
        assert needle in joined
