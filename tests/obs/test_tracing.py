"""Span tracing: tree mechanics, cross-process stitching, parity."""

import dataclasses

import pytest

from repro.obs import tracing
from repro.obs.tracing import Span, Tracer, chrome_trace_events


def test_nested_spans_parent_correctly():
    tracer = Tracer()
    with tracer.span("query") as q:
        with tracer.span("plan") as p:
            pass
        with tracer.span("execute") as e:
            with tracer.span("kernel.compile") as k:
                pass
    assert p.parent_id == q.span_id
    assert e.parent_id == q.span_id
    assert k.parent_id == e.span_id
    roots = tracer.tree()
    assert len(roots) == 1
    assert roots[0].shape() == (
        "query",
        (
            ("execute", (("kernel.compile", ()),)),
            ("plan", ()),
        ),
    )


def test_span_ids_unique_across_tracers_in_one_process():
    ids = set()
    for _ in range(3):
        t = Tracer()
        with t.span("s"):
            pass
        ids.add(t.spans[0].span_id)
    assert len(ids) == 3


def test_module_span_is_noop_without_ambient_tracer():
    with tracing.span("anything") as s:
        assert s is None


def test_module_span_records_under_ambient_tracer():
    tracer = Tracer()
    with tracing.use(tracer):
        assert tracing.current_tracer() is tracer
        with tracing.span("work", k=1) as s:
            assert s is not None
    assert tracing.current_tracer() is None
    assert [s.name for s in tracer.spans] == ["work"]
    assert tracer.spans[0].attrs == {"k": 1}


def test_adoption_stitches_foreign_spans():
    parent = Tracer()
    with parent.span("query"):
        with parent.span("dispatch") as d:
            ctx = parent.context()
            # Simulate a worker on the far end of the pipe.
            worker = Tracer(trace_id=ctx[0], parent_id=ctx[1])
            ws = worker.start("shard[0]")
            worker.finish(ws)
            parent.adopt(worker.serialized())
    roots = parent.tree()
    assert roots[0].shape() == (
        "query",
        (("dispatch", (("shard[0]", ()),)),),
    )


def test_finish_closes_abandoned_children():
    tracer = Tracer()
    outer = tracer.start("outer")
    tracer.start("inner")  # never finished explicitly
    tracer.finish(outer)
    assert all(s.end >= s.start for s in tracer.spans)
    assert tracer._stack == []


def test_serialized_round_trips():
    tracer = Tracer()
    with tracer.span("a", n=3):
        pass
    d = tracer.serialized()[0]
    back = Span.from_dict(d)
    assert back.name == "a"
    assert back.attrs == {"n": 3}
    assert back.span_id == tracer.spans[0].span_id


def test_chrome_events_shape():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    (event,) = chrome_trace_events(tracer.serialized())
    assert event["ph"] == "X"
    assert event["dur"] >= 0
    assert event["args"]["span_id"] == tracer.spans[0].span_id


# -- engine integration --------------------------------------------------------


def _triangle_instance():
    from repro.workloads.generators import (
        graph_triangle_db,
        random_graph_edges,
    )

    return graph_triangle_db(random_graph_edges(36, 90, seed=13))


def _forced_parallel_plan(query, db, workers, num_shards):
    """A parallel plan with a pinned shard count.

    ``default_num_shards`` scales with the worker count, so parity
    across worker counts pins ``num_shards`` explicitly — same shards,
    same span tree shape, only the pool size differs.
    """
    from repro.engine import plan_query

    base = plan_query(
        query, db, algorithm="leapfrog", workers=workers, use_cache=False
    )
    assert base.num_shards > 1, "expected a parallel plan"
    return dataclasses.replace(
        base, workers=workers, num_shards=num_shards,
        split_attrs=base.split_attrs,
    )


def _traced_run(query, db, workers, num_shards=8):
    from repro.engine import execute

    plan = _forced_parallel_plan(query, db, workers, num_shards)
    tracer = Tracer()
    with tracing.use(tracer):
        result = execute(query, db, plan=plan)
    roots = tracer.tree()
    assert len(roots) == 1
    return result, roots[0]


def test_span_tree_shape_is_worker_count_invariant():
    """Workers 1 and 4 over the same pinned shards: identical shape.

    Pruning and shard identity are functions of the data and the shard
    parameters, both pinned here — only the pool size differs, and the
    shape (names, nesting, child multiset) must not notice.
    """
    query, db = _triangle_instance()
    result1, root1 = _traced_run(query, db, workers=1)
    result4, root4 = _traced_run(query, db, workers=4)
    assert root1.shape() == root4.shape()
    assert sorted(result1.tuples) == sorted(result4.tuples)
    # And the structure is the documented lifecycle: the execute stage
    # fans into partition/dispatch/merge, shards under dispatch only.
    (name, children) = root4.shape()
    assert name == "query"
    by_name = dict(children)
    dispatch_children = dict(by_name["execute"])["parallel.dispatch"]
    assert dispatch_children, "expected shard spans under dispatch"
    assert all(n.startswith("shard[") for n, _ in dispatch_children)
    assert "merge" in dict(by_name["execute"])
    assert "parallel.partition" in dict(by_name["execute"])


def test_worker_spans_carry_foreign_pids_and_stitch():
    from repro.engine import execute

    query, db = _triangle_instance()
    plan = _forced_parallel_plan(query, db, workers=2, num_shards=8)
    tracer = Tracer()
    with tracing.use(tracer):
        result = execute(query, db, plan=plan)
    shard_spans = [s for s in tracer.spans if s.name.startswith("shard[")]
    assert len(shard_spans) == result.parallel.executed_shards > 0
    dispatch = next(s for s in tracer.spans if s.name == "parallel.dispatch")
    assert {s.parent_id for s in shard_spans} == {dispatch.span_id}
    # Shards ran in worker processes, not the parent.
    assert all(s.pid != tracer.pid for s in shard_spans)


def test_disabled_path_is_bit_identical():
    """Tracing+metrics off vs. on: same rows, same ResolutionStats."""
    from repro.engine import clear_plan_cache, execute
    from repro.obs import metrics as obs_metrics

    query, db = _triangle_instance()
    clear_plan_cache()
    metrics_was = obs_metrics.enabled()
    try:
        obs_metrics.set_enabled(False)
        tracing.set_enabled(False)
        plain = execute(query, db, algorithm="tetris-preloaded")
        assert plain.metrics is None
        assert plain.trace is None

        obs_metrics.set_enabled(True)
        tracing.set_enabled(True)
        fancy = execute(query, db, algorithm="tetris-preloaded")
        assert fancy.metrics is not None
        assert fancy.trace is not None
    finally:
        tracing.set_enabled(False)
        obs_metrics.set_enabled(metrics_was)
    assert plain.tuples == fancy.tuples
    assert dataclasses.asdict(plain.stats) == dataclasses.asdict(fancy.stats)
    assert plain.gao == fancy.gao
    assert plain.backend == fancy.backend


def test_cursor_owns_a_trace_when_enabled():
    from repro.engine import execute_cursor

    query, db = _triangle_instance()
    tracing.set_enabled(True)
    try:
        with execute_cursor(query, db, limit=5) as cursor:
            rows = cursor.fetchall()
    finally:
        tracing.set_enabled(False)
    assert len(rows) <= 5
    assert cursor.trace is not None
    names = {s.name for s in cursor.trace.spans}
    assert "query" in names and "plan" in names
    assert all(s.end >= s.start for s in cursor.trace.spans)
