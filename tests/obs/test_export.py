"""OpenMetrics exposition: golden format and the scrape endpoint."""

import urllib.request

from repro.obs.export import (
    render_openmetrics,
    start_metrics_server,
)
from repro.obs.metrics import MetricsRegistry, QuantileHistogram


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry(enabled=True)
    reg.inc("engine.queries", 3)
    reg.gauge("pool.size", 2)
    for v in (0.0, 1.0, 2.0):
        reg.observe("lat", v)
    return reg


def test_openmetrics_golden_document():
    """The full exposition text, byte for byte.  Bucket boundaries are
    fixed powers of the module base, so the document is deterministic;
    a diff here means the scrape format changed."""
    text = render_openmetrics(_sample_registry().snapshot())
    assert text == (
        "# TYPE repro_engine_queries counter\n"
        "repro_engine_queries_total 3\n"
        "# TYPE repro_pool_size gauge\n"
        "repro_pool_size 2\n"
        "# TYPE repro_lat histogram\n"
        'repro_lat_bucket{le="0"} 1\n'
        'repro_lat_bucket{le="1.2"} 2\n'
        'repro_lat_bucket{le="2.0736"} 3\n'
        'repro_lat_bucket{le="+Inf"} 3\n'
        "repro_lat_count 3\n"
        "repro_lat_sum 3\n"
        "# TYPE repro_lat_min gauge\n"
        "repro_lat_min 0\n"
        "# TYPE repro_lat_max gauge\n"
        "repro_lat_max 2\n"
        "# EOF\n"
    )


def test_bucket_boundaries_are_exact_powers():
    # The boundary printed for bucket i is B^(i+1) — what makes PromQL
    # histogram_quantile agree with the in-process estimates.
    h = QuantileHistogram()
    h.record(1.0)
    ((index, _),) = h.bucket_items()
    assert QuantileHistogram.bucket_upper(index) == 1.2 ** (index + 1)


def test_names_are_sanitized_and_prefixed():
    reg = MetricsRegistry(enabled=True)
    reg.inc("tetris.resolutions.by_axis.0", 4)
    reg.inc("weird-name with spaces", 1)
    text = render_openmetrics(reg.snapshot())
    assert "repro_tetris_resolutions_by_axis_0_total 4" in text
    assert "repro_weird_name_with_spaces_total 1" in text
    assert text.endswith("# EOF\n")


def test_histogram_flat_scalars_are_not_doubled():
    """lat.count/sum/min/max belong to the histogram series — they must
    not also appear as standalone counters."""
    text = render_openmetrics(_sample_registry().snapshot())
    assert "# TYPE repro_lat_count" not in text
    assert "repro_lat_count_total" not in text
    assert text.count("repro_lat_count 3") == 1


def test_metrics_server_serves_scrapes_and_flight():
    from repro.obs.flight import RECORDER

    server = start_metrics_server(port=0)
    try:
        port = server.server_address[1]
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=10
        ) as resp:
            body = resp.read().decode()
            assert resp.headers["Content-Type"].startswith(
                "application/openmetrics-text"
            )
        assert body.endswith("# EOF\n")
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/flight", timeout=10
        ) as resp:
            flight = resp.read().decode()
        # The ring may be empty; the endpoint must still answer.
        assert flight.count("\n") == len(RECORDER)
    finally:
        server.shutdown()
        server.server_close()
