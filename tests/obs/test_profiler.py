"""The sampling profiler: off by default, harmless when on.

The contract the executor relies on: with ``REPRO_PROFILE`` unset the
query path never starts a thread and never changes a result; with it
set, samples accumulate, attribute to the ambient span stage, and
export in both flamegraph formats.
"""

import json
import time

import pytest

from repro.obs import profiler, tracing


@pytest.fixture(autouse=True)
def _pristine_profiler(monkeypatch):
    """No profiler before or after, and a fresh env-check latch."""
    monkeypatch.delenv(profiler.PROFILE_ENV, raising=False)
    profiler.uninstall()
    monkeypatch.setattr(profiler, "_PROFILER", None)
    monkeypatch.setattr(profiler, "_ENV_CHECKED", False)
    yield
    profiler.uninstall()


def _spin(prof, min_ticks=3, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while prof.ticks < min_ticks and time.monotonic() < deadline:
        sum(i * i for i in range(2000))
    return prof.ticks


def test_disabled_env_never_installs():
    assert profiler.maybe_start() is None
    # The latch: later calls are two global reads, still None.
    assert profiler.maybe_start() is None
    assert profiler.active() is None


def test_env_hz_parsing(monkeypatch):
    cases = {
        "": 0, "0": 0, "off": 0, "no": 0, "false": 0,
        "1": profiler.DEFAULT_HZ, "true": profiler.DEFAULT_HZ,
        "500": 500, "-3": 0, "wat": profiler.DEFAULT_HZ,
    }
    for raw, want in cases.items():
        monkeypatch.setenv(profiler.PROFILE_ENV, raw)
        assert profiler._env_hz() == want, raw


def test_maybe_start_honors_env(monkeypatch):
    monkeypatch.setenv(profiler.PROFILE_ENV, "400")
    prof = profiler.maybe_start()
    assert prof is not None and prof.running
    assert prof.hz == 400
    assert profiler.maybe_start() is prof  # idempotent fast path
    profiler.uninstall()
    assert profiler.active() is None


def test_disabled_profiler_leaves_execution_identical():
    """A query with no profiler == a query with one: same rows, and
    the disabled path touches no profiler state at all."""
    from repro.engine import execute
    from repro.workloads.generators import (
        graph_triangle_db,
        random_graph_edges,
    )

    query, db = graph_triangle_db(random_graph_edges(25, 60, seed=3))
    baseline = execute(query, db).tuples
    assert profiler.active() is None  # the run installed nothing
    prof = profiler.install(hz=300)
    try:
        profiled = execute(query, db).tuples
    finally:
        profiler.uninstall()
    assert profiled == baseline


def test_samples_accumulate_and_attribute_to_spans():
    prof = profiler.install(hz=500)
    try:
        tracer = tracing.Tracer()
        with tracing.use(tracer):
            with tracer.span("backend[hash]"):
                _spin(prof)
    finally:
        profiler.uninstall()
    assert prof.ticks >= 3
    stages = {stage for stage, _ in prof.samples}
    # Bracketed span names collapse to their base stage.
    assert "backend" in stages or profiler.UNTRACED in stages
    total = prof.stage_self_seconds()
    assert abs(sum(total.values()) - prof.ticks / prof.hz) < 1e-9


def test_folded_and_speedscope_exports(tmp_path):
    prof = profiler.SamplingProfiler(hz=1000)
    prof.samples = {
        ("plan", ("a.py:main", "b.py:inner")): 3,
        (profiler.UNTRACED, ("a.py:main",)): 1,
    }
    folded = prof.folded()
    assert "plan;a.py:main;b.py:inner 3" in folded
    assert f"{profiler.UNTRACED};a.py:main 1" in folded
    out = tmp_path / "prof.folded"
    prof.write_folded(str(out))
    assert out.read_text().strip().splitlines() == folded

    doc = prof.speedscope()
    assert doc["$schema"].startswith("https://www.speedscope.app/")
    profile = doc["profiles"][0]
    assert profile["type"] == "sampled"
    assert len(profile["samples"]) == len(profile["weights"]) == 2
    assert abs(sum(profile["weights"]) - 4 / 1000) < 1e-12
    labels = [doc["shared"]["frames"][i]["name"]
              for i in profile["samples"][0]]
    assert labels[0] in ("plan", profiler.UNTRACED)
    ss = tmp_path / "prof.speedscope.json"
    prof.write_speedscope(str(ss))
    assert json.loads(ss.read_text())["profiles"][0]["type"] == "sampled"


def test_analyze_reports_profile_stage_seconds():
    from repro.obs.analyze import analyze, render_analyze
    from repro.workloads.generators import (
        graph_triangle_db,
        random_graph_edges,
    )

    query, db = graph_triangle_db(random_graph_edges(30, 80, seed=9))
    profiler.install(hz=500)
    try:
        report = analyze(query, db, append_log=False)
    finally:
        profiler.uninstall()
    assert report.profile_hz == 500
    assert report.profile_stage_seconds is not None
    text = render_analyze(report)
    assert "profile" in text and "500 Hz" in text


def test_analyze_without_profiler_renders_no_profile_section():
    from repro.obs.analyze import analyze, render_analyze
    from repro.workloads.generators import (
        graph_triangle_db,
        random_graph_edges,
    )

    query, db = graph_triangle_db(random_graph_edges(20, 50, seed=1))
    report = analyze(query, db, append_log=False)
    assert report.profile_stage_seconds is None
    assert "sampled self-time" not in render_analyze(report)
