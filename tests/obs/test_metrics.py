"""The metrics registry: instruments, collectors, snapshots, rendering."""

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    render_metrics,
)


def test_counters_accumulate():
    reg = MetricsRegistry(enabled=True)
    reg.inc("a.b")
    reg.inc("a.b", 4)
    reg.inc_many({"a.b": 1, "c": 2, "zero": 0})
    snap = reg.snapshot()
    assert snap["a.b"] == 6
    assert snap["c"] == 2
    assert "zero" not in snap  # zero deltas are not materialized


def test_gauge_last_write_wins():
    reg = MetricsRegistry(enabled=True)
    reg.gauge("pool.size", 3)
    reg.gauge("pool.size", 7)
    assert reg.snapshot()["pool.size"] == 7


def test_histogram_expands_to_scalars():
    reg = MetricsRegistry(enabled=True)
    for v in (2.0, 8.0, 5.0):
        reg.observe("lat", v)
    snap = reg.snapshot()
    assert snap["lat.count"] == 3
    assert snap["lat.sum"] == 15.0
    assert snap["lat.min"] == 2.0
    assert snap["lat.max"] == 8.0


def test_disabled_registry_records_nothing():
    reg = MetricsRegistry(enabled=False)
    reg.inc("a")
    reg.gauge("g", 1)
    reg.observe("h", 1)
    reg.inc_many({"b": 2})
    assert len(reg.snapshot()) == 0


def test_collectors_run_at_snapshot_time():
    reg = MetricsRegistry(enabled=True)
    calls = []

    def collect():
        calls.append(1)
        return {"sub.hits": 5, "sub.entries": 2}

    reg.register_collector("sub", collect)
    reg.register_collector("sub", collect)  # idempotent by name
    assert not calls
    snap = reg.snapshot()
    assert calls == [1]  # one registration, one pull
    assert snap["sub.hits"] == 5
    # size-like collector names are gauges: since() keeps the value.
    later = reg.snapshot()
    delta = later.since(snap)
    assert delta["sub.entries"] == 2
    assert delta["sub.hits"] == 0


def test_since_diffs_counters_and_keeps_gauges():
    reg = MetricsRegistry(enabled=True)
    reg.inc("n", 3)
    reg.gauge("g", 10)
    before = reg.snapshot()
    reg.inc("n", 4)
    reg.gauge("g", 2)
    delta = reg.snapshot().since(before)
    assert delta["n"] == 4
    assert delta["g"] == 2


def test_since_clamps_negative_traffic():
    reg = MetricsRegistry(enabled=True)
    reg.inc("n", 5)
    before = reg.snapshot()
    reg.reset()
    reg.inc("n", 1)
    assert reg.snapshot().since(before)["n"] == 0


def test_group_and_nonzero():
    snap = MetricsSnapshot({"a.x": 1, "a.y": 0, "b.z": 2})
    assert snap.group("a") == {"x": 1, "y": 0}
    assert dict(snap.nonzero().as_dict()) == {"a.x": 1, "b.z": 2}


def test_render_metrics_aligned_and_sorted():
    snap = MetricsSnapshot({"bbb": 2, "a": 1, "zero": 0})
    lines = render_metrics(snap)
    assert lines == ["a   : 1", "bbb : 2"]
    assert render_metrics(MetricsSnapshot({})) == ["(no metrics recorded)"]


def test_reset_clears_direct_instruments_only():
    reg = MetricsRegistry(enabled=True)
    reg.inc("n")
    reg.register_collector("c", lambda: {"c.total": 9})
    reg.reset()
    snap = reg.snapshot()
    assert "n" not in snap
    assert snap["c.total"] == 9


@pytest.mark.parametrize("workload", ["triangle"])
def test_engine_counters_flow_into_registry(workload):
    """One executed query surfaces engine.* and kernel/cache names."""
    from repro.engine import clear_plan_cache, execute
    from repro.workloads.generators import (
        graph_triangle_db,
        random_graph_edges,
    )

    clear_plan_cache()
    query, db = graph_triangle_db(random_graph_edges(30, 70, seed=11))
    result = execute(query, db)
    assert result.metrics is not None
    delta = result.metrics
    assert delta["engine.queries"] == 1
    assert delta["engine.rows.returned"] == len(result.tuples)
    assert "engine.plan_cache.misses" in delta
    assert "engine.stats_cache.misses" in delta
    # A second, plan-cached run: hit counters move, misses don't.
    again = execute(query, db).metrics
    assert again["engine.plan_cache.hits"] >= 1
    assert again["engine.plan_cache.misses"] == 0


def test_tetris_resolution_counters_surface():
    from repro.engine import execute
    from repro.workloads.generators import (
        graph_triangle_db,
        random_graph_edges,
    )

    query, db = graph_triangle_db(random_graph_edges(24, 60, seed=5))
    result = execute(query, db, algorithm="tetris-preloaded")
    assert result.stats.resolutions > 0
    delta = result.metrics
    assert delta["tetris.resolutions"] == result.stats.resolutions
    by_axis = delta.group("tetris.resolutions.by_axis")
    assert sum(by_axis.values()) == result.stats.resolutions
