"""Tests for the CNF ↔ box encoding and the #SAT counters."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.clauses import (
    CNF,
    box_to_clause,
    clause_to_box,
    cnf_to_boxes,
    random_cnf,
)
from repro.sat.dpll import (
    count_models_dpll,
    count_models_tetris,
    enumerate_models_tetris,
)


class TestCNF:
    def test_basic(self):
        cnf = CNF(3, [[1, -2], [3]])
        assert len(cnf.clauses) == 2
        assert cnf.is_satisfied_by([1, 0, 1])
        assert not cnf.is_satisfied_by([0, 1, 1])

    def test_tautology_dropped(self):
        cnf = CNF(2, [[1, -1]])
        assert cnf.clauses == ()

    def test_bad_literal(self):
        with pytest.raises(ValueError):
            CNF(2, [[0]])
        with pytest.raises(ValueError):
            CNF(2, [[3]])

    def test_no_vars(self):
        with pytest.raises(ValueError):
            CNF(0, [])

    def test_naive_count(self):
        # (x1 ∨ x2): 3 of 4 assignments.
        assert CNF(2, [[1, 2]]).count_models_naive() == 3


class TestEncoding:
    def test_example_4_1_clause(self):
        # Clause (x1 ∨ ¬x3) excludes x1=0, x3=1 → box ⟨0, λ, 1⟩.
        box = clause_to_box(frozenset({1, -3}), 3)
        assert box == ((0, 1), (0, 0), (1, 1))

    def test_roundtrip(self):
        clause = frozenset({1, -2, 4})
        assert box_to_clause(clause_to_box(clause, 4)) == clause

    def test_box_to_clause_rejects_deep(self):
        with pytest.raises(ValueError):
            box_to_clause(((0, 2),))

    @given(
        st.integers(2, 5).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.lists(
                        st.integers(1, n).map(
                            lambda v: v
                        ),
                        min_size=1,
                        max_size=n,
                    ),
                    max_size=5,
                ),
            )
        )
    )
    def test_boxes_exclude_exactly_falsifying(self, data):
        n, raw = data
        import random

        rng = random.Random(42)
        clauses = [
            [v if rng.random() < 0.5 else -v for v in clause]
            for clause in raw
        ]
        cnf = CNF(n, clauses)
        boxes = cnf_to_boxes(cnf)
        for mask in range(1 << n):
            assignment = [(mask >> v) & 1 for v in range(n)]
            point = tuple((bit, 1) for bit in assignment)
            covered = any(
                all(
                    length == 0 or value == assignment[i]
                    for i, (value, length) in enumerate(box)
                )
                for box in boxes
            )
            assert covered == (not cnf.is_satisfied_by(assignment))


class TestModelCounting:
    def test_simple(self):
        cnf = CNF(2, [[1, 2]])
        assert count_models_tetris(cnf) == 3
        assert count_models_dpll(cnf) == 3

    def test_unsat(self):
        cnf = CNF(1, [[1], [-1]])
        assert count_models_tetris(cnf) == 0
        assert count_models_dpll(cnf) == 0

    def test_empty_formula(self):
        cnf = CNF(3, [])
        assert count_models_tetris(cnf) == 8
        assert count_models_dpll(cnf) == 8

    def test_enumerate(self):
        cnf = CNF(2, [[1], [-2]])
        assert enumerate_models_tetris(cnf) == [(1, 0)]

    @pytest.mark.parametrize("seed", range(8))
    def test_counters_agree_random(self, seed):
        cnf = random_cnf(num_vars=7, num_clauses=12, width=3, seed=seed)
        naive = cnf.count_models_naive()
        assert count_models_tetris(cnf) == naive
        assert count_models_dpll(cnf) == naive
