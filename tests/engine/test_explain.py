"""EXPLAIN rendering tests, including the CLI golden output."""

import textwrap

import pytest

from repro.cli import main
from repro.engine import clear_plan_cache, execute, explain_text, plan_query
from repro.workloads.generators import split_path_instance

#: The frozen `repro explain` output for a two-atom path under assumed
#: uniform statistics.  Every quantity is exact integer arithmetic (64 is
#: a power of two, so even the AGM LP result rounds cleanly) and the only
#: fractional cost (leapfrog's 1.3 calibration × 432) is an exact binary
#: product, which keeps the golden stable across platforms.
GOLDEN = textwrap.dedent("""\
    # query: R(A, B) ⋈ S(B, C)
    EXPLAIN
    ├─ structure
    │   ├─ α-acyclic   : True
    │   ├─ treewidth   : 1
    │   ├─ fhtw ≤      : 1
    │   ├─ GAO         : B, C, A
    │   └─ Table 1 row : α-acyclic: Õ(N + Z) [Yannakakis / Thm D.8]
    ├─ statistics [assumed (no data)]
    │   ├─ N = 128 tuples over 2 relations, domain depth 6
    │   ├─ R: |R|=64  d(A)=64, d(B)=64
    │   ├─ S: |S|=64  d(B)=64, d(C)=64
    │   └─ Ẑ ≈ 64  (AGM 4096, independence 64)
    ├─ candidates
    │   ├─ hash              cost≈       312  N + Σ intermediates ≈ 312 ◀
    │   ├─ leapfrog          cost≈     561.6  Õ(N + Σ prefix bindings) ≈ 432 (AGM 4096)
    │   ├─ yannakakis        cost≈      1168  Õ(N + Z) = 3·128 + 64 (+6 passes)
    │   ├─ nested-loop       cost≈      2912  Σ prefix scans ≈ 4160
    │   ├─ tetris-preloaded  cost≈     20736  Õ(N + Z) = (128 + 64)·18
    │   └─ tetris-reloaded   cost≈     90624  Õ(|C| + Z), |Ĉ|=768 (N·d bound)
    └─ plan: hash  (index btree; predicted cost 312)
""")


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def test_explain_golden_output(capsys):
    rc = main(["explain", "R(A,B), S(B,C)", "--assume-rows", "64"])
    assert rc == 0
    assert capsys.readouterr().out == GOLDEN


def test_explain_with_data_and_execute(tmp_path, capsys):
    (tmp_path / "r.csv").write_text("u,v\nu,w\nx,y\n")
    (tmp_path / "s.csv").write_text("v,z\ny,q\n")
    rc = main([
        "explain", "R(A,B), S(B,C)", "--execute",
        "--csv", f"R={tmp_path / 'r.csv'}",
        "--csv", f"S={tmp_path / 's.csv'}",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "statistics [measured]" in out
    assert "execution" in out
    assert "tuples      : 2" in out  # (u,v,z) and (x,y,q)


def test_explain_execute_without_data_fails(capsys):
    rc = main(["explain", "R(A,B)", "--execute"])
    assert rc == 2
    assert "needs --csv" in capsys.readouterr().err


def test_explain_inapplicable_backend_clean_error(capsys):
    rc = main([
        "explain", "R(A,B), S(B,C), T(A,C)", "--algorithm", "yannakakis",
    ])
    assert rc == 2
    assert "not applicable" in capsys.readouterr().err


def test_probe_appears_in_rendering():
    query, db, gao = split_path_instance(80, depth=8, seed=1)
    plan = plan_query(query, db, gao=gao, probe_certificate=True)
    text = explain_text(plan)
    assert "certificate probe" in text
    assert "complete" in text


def test_cache_hit_is_visible():
    query, db, _ = split_path_instance(40, depth=8, seed=1)
    plan_query(query, db)
    cached = plan_query(query, db)
    assert "cached plan" in explain_text(cached)


def test_execution_section_reports_predicted_vs_actual():
    query, db, _ = split_path_instance(40, depth=8, seed=1)
    result = execute(query, db)
    text = explain_text(result.plan, result)
    assert "wall time" in text
    assert f"tuples      : {len(result.tuples)}" in text
