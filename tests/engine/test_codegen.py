"""Compiled-kernel tests: parity matrix, cache isolation, LRU bounds.

The compiled kernels of :mod:`repro.engine.codegen` must be invisible
except for speed: every (backend × Table-1 family × worker count ×
Tetris mode) cell is checked byte-identical against the interpreted
loops (``compiled=False``), cache keys must keep attribute-renamed
schemas apart, and the per-family LRU must stay bounded with honest
hit/miss/eviction counters.
"""

import functools
from dataclasses import asdict

import pytest

from repro.engine import (
    clear_kernel_caches,
    execute,
    kernel_cache_info,
    kernel_cache_summary,
    render_execution,
)
from repro.engine.codegen import (
    _HASH_CACHE,
    _LEAPFROG_CACHE,
    _TETRIS_CACHE,
    KernelCache,
)
from repro.joins.hashjoin import join_hash
from repro.joins.leapfrog import join_leapfrog
from repro.joins.tetris_join import join_tetris
from repro.relational.query import JoinQuery, star_query
from repro.relational.schema import RelationSchema
from repro.workloads.generators import (
    db_from_tuples,
    graph_triangle_db,
    random_graph_edges,
    random_path_db,
)


@functools.lru_cache(maxsize=None)
def _family(name):
    if name == "triangle":
        return graph_triangle_db(random_graph_edges(40, 110, seed=3))
    if name == "tw1":
        return random_path_db(3, 90, seed=17, depth=7)
    if name == "star":
        import random

        rng = random.Random(11)
        query = star_query(3)
        tuples = {
            f"R{i}": sorted({
                (rng.randrange(1 << 5), rng.randrange(1 << 7))
                for _ in range(80)
            })
            for i in (1, 2, 3)
        }
        return query, db_from_tuples(query, tuples, 7)
    raise ValueError(name)


FAMILIES = ("triangle", "tw1", "star")


def _interpreted(algorithm, query, db):
    """The semantic reference: the interpreted loop, kernels forced off."""
    if algorithm == "leapfrog":
        return join_leapfrog(query, db, compiled=False)
    if algorithm == "hash":
        return join_hash(query, db, compiled=False)
    variant = algorithm.split("-", 1)[1]
    return join_tetris(query, db, variant=variant, compiled=False).tuples


# -- parity matrix --------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize(
    "algorithm", ["leapfrog", "hash", "tetris-preloaded", "tetris-reloaded"]
)
def test_compiled_matches_interpreted(algorithm, family, workers):
    query, db = _family(family)
    expected = sorted(_interpreted(algorithm, query, db))
    result = execute(
        query, db, algorithm=algorithm,
        workers=workers if workers > 1 else None,
    )
    assert sorted(result.tuples) == expected


@pytest.mark.parametrize("variant", ["preloaded", "reloaded"])
@pytest.mark.parametrize("family", FAMILIES)
def test_tetris_kernel_stats_are_bit_identical(variant, family):
    """Not just the output: every ResolutionStats counter must match."""
    query, db = _family(family)
    interp = join_tetris(query, db, variant=variant, compiled=False)
    comp = join_tetris(query, db, variant=variant, compiled=True)
    assert comp.tuples == interp.tuples
    assert asdict(comp.stats) == asdict(interp.stats)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"mode": "onepass"},
        {"mode": "faithful"},
        {"resolvent_limit": 10_000},
    ],
    ids=["onepass", "faithful", "resolvent-limit"],
)
def test_unsupported_tetris_shapes_fall_back_correctly(kwargs):
    """Shapes the codegen declines still answer through the interpreter."""
    query, db = _family("triangle")
    expected = join_tetris(query, db, compiled=False).tuples
    got = join_tetris(query, db, compiled=True, **kwargs)
    assert got.tuples == expected


def test_capped_tetris_run_matches_interpreted_prefix():
    query, db = _family("tw1")
    interp = join_tetris(query, db, max_outputs=5, compiled=False)
    comp = join_tetris(query, db, max_outputs=5, compiled=True)
    assert comp.tuples == interp.tuples
    assert len(comp.tuples) <= 5


# -- cache-key isolation --------------------------------------------------------


def test_attribute_renaming_gets_distinct_kernels():
    """Schemas differing only in attribute names must not share a kernel.

    R(a,b) ⋈ S(b,c) is a path; R(a,b) ⋈ S(a,c) is a star.  Same relation
    names, same arities, same data — a shared kernel would answer one of
    them wrong.
    """
    path = JoinQuery(
        [RelationSchema("R", ("a", "b")), RelationSchema("S", ("b", "c"))]
    )
    star = JoinQuery(
        [RelationSchema("R", ("a", "b")), RelationSchema("S", ("a", "c"))]
    )
    tuples = {"R": [(1, 2)], "S": [(2, 3)]}
    db_path = db_from_tuples(path, tuples, 3)
    db_star = db_from_tuples(star, tuples, 3)

    clear_kernel_caches()
    assert join_hash(path, db_path, compiled=True) == [(1, 2, 3)]
    assert join_hash(star, db_star, compiled=True) == []
    assert join_leapfrog(path, db_path, compiled=True) == [(1, 2, 3)]
    assert join_leapfrog(star, db_star, compiled=True) == []

    info = kernel_cache_info()
    assert info["hash"]["entries"] == 2
    assert info["hash"]["hits"] == 0
    assert info["leapfrog"]["entries"] == 2
    assert info["leapfrog"]["hits"] == 0


def test_repeat_plans_hit_the_kernel_cache():
    query, db = _family("triangle")
    clear_kernel_caches()
    first = join_leapfrog(query, db, compiled=True)
    before = kernel_cache_info()["leapfrog"]
    again = join_leapfrog(query, db, compiled=True)
    after = kernel_cache_info()["leapfrog"]
    assert again == first
    assert after["entries"] == before["entries"]
    assert after["hits"] == before["hits"] + 1


# -- KernelCache mechanics ------------------------------------------------------


def _fake_kernel(tag):
    def fn():
        return tag

    fn.source = tag
    return fn


def test_kernel_cache_lru_evicts_least_recent():
    cache = KernelCache("test", capacity=2)
    a = cache.lookup(("a",), lambda: _fake_kernel("A"))
    cache.lookup(("b",), lambda: _fake_kernel("B"))
    # Hit refreshes recency and must not rebuild.
    assert cache.lookup(("a",), lambda: pytest.fail("rebuilt on hit")) is a
    cache.lookup(("c",), lambda: _fake_kernel("C"))  # evicts the LRU: "b"
    assert cache.info() == {
        "entries": 2, "capacity": 2, "hits": 1, "misses": 3, "evictions": 1,
    }
    rebuilt = cache.lookup(("b",), lambda: _fake_kernel("B2"))
    assert rebuilt.source == "B2"
    assert cache.info()["evictions"] == 2  # rebuilding "b" evicted "a"


def test_kernel_cache_negative_results_are_cached():
    cache = KernelCache("test", capacity=4)
    assert cache.lookup(("no",), lambda: None) is None
    assert cache.lookup(("no",), lambda: pytest.fail("re-analyzed")) is None
    info = cache.info()
    assert (info["hits"], info["misses"]) == (1, 1)
    # None entries hold no source.
    assert cache.cached_sources() == ()


def test_kernel_cache_clear_resets_entries_and_counters():
    cache = KernelCache("test", capacity=2)
    cache.lookup(("a",), lambda: _fake_kernel("A"))
    cache.lookup(("a",), lambda: _fake_kernel("A"))
    cache.clear()
    assert cache.info() == {
        "entries": 0, "capacity": 2, "hits": 0, "misses": 0, "evictions": 0,
    }


def test_generated_sources_are_inspectable():
    query, db = _family("triangle")
    clear_kernel_caches()
    join_leapfrog(query, db, compiled=True)
    join_hash(query, db, compiled=True)
    join_tetris(query, db, compiled=True)
    for cache in (_LEAPFROG_CACHE, _HASH_CACHE, _TETRIS_CACHE):
        sources = cache.cached_sources()
        assert len(sources) == 1
        assert "def kernel" in sources[0]


def test_explain_surfaces_kernel_cache_stats():
    query, db = _family("tw1")
    result = execute(query, db, algorithm="leapfrog")
    text = render_execution(result)
    # Kernel cache traffic surfaces through the consolidated metrics
    # block (kernels.* names); with the registry disabled the old
    # summary line is the fallback.
    assert "kernels" in text
    if result.metrics is None:
        assert kernel_cache_summary() in text
    else:
        assert "kernels.cache.entries" in text
