"""Planner decision tests: Table 1 as executable expectations.

Each case pins the backend the cost model must choose on a concrete
instance of one of the paper's query shapes.  The expectations encode
*measured* reality on this codebase (see BENCH_planner.json), not just
the asymptotic table — e.g. hash plans win small sparse instances
despite worse worst-case bounds, and the skewed-hub star is exactly the
regime where Yannakakis' semijoin reduction pays off.
"""

import random

import pytest

from repro.engine import (
    CostModel,
    clear_plan_cache,
    collect_stats,
    plan_cache_info,
    plan_query,
    structure_of,
)
from repro.relational.query import (
    Database,
    clique_query,
    cycle_query,
    path_query,
    star_query,
    triangle_query,
)
from repro.relational.relation import Relation
from repro.relational.schema import Domain
from repro.workloads.generators import (
    agm_tight_triangle,
    dense_cycle_db,
    split_path_instance,
)


def random_db(query, seed, n=30, depth=5):
    rng = random.Random(seed)
    rels = []
    for atom in query.atoms:
        rows = {
            tuple(rng.randrange(1 << depth) for _ in atom.attrs)
            for _ in range(n)
        }
        rels.append(Relation(atom, rows, Domain(depth)))
    return Database(rels)


def skewed_star_db(rays=4, n=200, hub_values=4, depth=8, seed=0):
    """A star whose hub attribute has very few distinct values.

    Binary hash plans blow up on the hub (intermediates ≈ n²/hub);
    Yannakakis' semijoin reduction never materializes more than N + Z.
    """
    rng = random.Random(seed)
    query = star_query(rays)
    rels = []
    for atom in query.atoms:
        rows = {
            (rng.randrange(hub_values), rng.randrange(1 << depth))
            for _ in range(n)
        }
        rels.append(Relation(atom, rows, Domain(depth)))
    return query, Database(rels)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _case_triangle_sparse():
    q = triangle_query()
    return q, random_db(q, 1), "hash"


def _case_triangle_agm_tight():
    q, db = agm_tight_triangle(6)
    return q, db, "hash"


def _case_path():
    q = path_query(3)
    return q, random_db(q, 2, n=60, depth=6), "hash"


def _case_star_uniform():
    q = star_query(4)
    return q, random_db(q, 3, n=60, depth=6), "hash"


def _case_star_skewed_hub():
    q, db = skewed_star_db()
    return q, db, "yannakakis"


def _case_cycle():
    q, db = dense_cycle_db(4, 60, depth=6, seed=5)
    return q, db, "hash"


def _case_clique():
    q = clique_query(4)
    return q, random_db(q, 13, n=80, depth=6), "leapfrog"


DECISION_CASES = {
    "triangle_sparse": _case_triangle_sparse,
    "triangle_agm_tight": _case_triangle_agm_tight,
    "path3": _case_path,
    "star4_uniform": _case_star_uniform,
    "star4_skewed_hub": _case_star_skewed_hub,
    "cycle4_dense": _case_cycle,
    "clique4": _case_clique,
}


@pytest.mark.parametrize("name", sorted(DECISION_CASES))
def test_backend_decisions(name):
    query, db, expected = DECISION_CASES[name]()
    plan = plan_query(query, db)
    assert plan.backend == expected, (
        f"{name}: chose {plan.backend}, expected {expected}\n"
        + "\n".join(
            f"  {c.backend}: {c.cost:g}" for c in plan.candidates
        )
    )
    # The chosen estimate is the applicable minimum.
    applicable = [c for c in plan.candidates if c.applicable]
    assert plan.predicted_cost == min(c.cost for c in applicable)


@pytest.mark.parametrize(
    "algorithm,backend,variant",
    [
        ("tetris", "tetris-preloaded", "preloaded"),
        ("tetris-reloaded", "tetris-reloaded", "reloaded"),
        ("leapfrog", "leapfrog", None),
        ("hash", "hash", None),
    ],
)
def test_forced_backend(algorithm, backend, variant):
    q = triangle_query()
    db = random_db(q, 1)
    plan = plan_query(q, db, algorithm=algorithm)
    assert plan.backend == backend
    assert plan.variant == variant


def test_forced_inapplicable_backend_rejected():
    q = triangle_query()
    db = random_db(q, 1)
    with pytest.raises(ValueError, match="not applicable"):
        plan_query(q, db, algorithm="yannakakis")


def test_unknown_algorithm_rejected():
    q = triangle_query()
    with pytest.raises(ValueError, match="unknown algorithm"):
        plan_query(q, random_db(q, 1), algorithm="quantum")


def test_plan_cache_hits_on_identical_stats():
    q = triangle_query()
    db = random_db(q, 1)
    first = plan_query(q, db)
    second = plan_query(q, db)
    assert not first.cache_hit
    assert second.cache_hit
    assert second.backend == first.backend
    info = plan_cache_info()
    assert info["hits"] >= 1
    # Content-keyed: a database with identical statistics hits too.
    clone = Database(
        [
            Relation(atom, db[atom.name].tuples(), db.domain)
            for atom in q.atoms
        ]
    )
    third = plan_query(q, clone)
    assert third.cache_hit


def test_plan_cache_misses_on_changed_stats():
    q = triangle_query()
    db1 = random_db(q, 1)
    db2 = random_db(q, 2)
    plan_query(q, db1)
    other = plan_query(q, db2)
    assert not other.cache_hit


def test_certificate_probe_feeds_the_cost_model():
    query, db, gao = split_path_instance(400, depth=12, seed=1)
    stats = collect_stats(query, db, probe=True, probe_gao=gao)
    assert stats.probe is not None
    assert stats.probe.complete  # O(1) certificate: probe finishes
    assert stats.probe.boxes_loaded <= 8
    assert stats.probe.outputs_found == 0  # the join is empty


def test_calibration_hook_changes_the_decision():
    """Recalibrating Tetris's constant flips the probed split instance."""
    query, db, gao = split_path_instance(400, depth=12, seed=1)
    default = plan_query(query, db, gao=gao, probe_certificate=True,
                         use_cache=False)
    assert default.backend != "tetris-reloaded"  # CPython constants
    cheap_tetris = CostModel({"tetris-reloaded": 0.001})
    plan = plan_query(
        query, db, gao=gao, probe_certificate=True,
        cost_model=cheap_tetris, use_cache=False,
    )
    assert plan.backend == "tetris-reloaded"
    assert plan.variant == "reloaded"


def test_calibrate_refits_from_measurements():
    model = CostModel()
    refit = model.calibrate({
        "hash": (1.0, 1000.0),
        "leapfrog": (2.0, 1000.0),
    })
    # leapfrog measured 2× hash per unit; factors keep that ratio.
    assert refit.calibration["leapfrog"] == pytest.approx(
        2.0 * refit.calibration["hash"]
    )
    # The original model is untouched.
    assert model.calibration["leapfrog"] == CostModel().calibration["leapfrog"]


def test_structure_profile_matches_known_shapes():
    tri = structure_of(triangle_query())
    assert not tri.acyclic
    assert tri.treewidth == 2
    assert tri.fhtw_upper == pytest.approx(1.5)
    p = structure_of(path_query(3))
    assert p.acyclic
    assert p.treewidth == 1
    assert p.fhtw_upper == 1.0


def test_plan_without_data_uses_assumed_stats():
    plan = plan_query(path_query(2), assumed_rows=64)
    assert plan.stats.assumed
    assert plan.stats.relations[0].cardinality == 64
    assert plan.backend  # some applicable backend was chosen


def test_gao_override_is_recorded():
    q = triangle_query()
    db = random_db(q, 1)
    plan = plan_query(q, db, gao=("B", "A", "C"))
    assert plan.gao == ("B", "A", "C")


def test_bad_gao_rejected():
    q = triangle_query()
    db = random_db(q, 1)
    with pytest.raises(ValueError, match="not a permutation"):
        plan_query(q, db, gao=("B", "A"))
