"""Streaming cursor API: parity with the materialized engine, laziness,
limits, decoding, and the cursor-consuming aggregates.

The parity matrix mirrors the executor acceptance tests: every backend's
cursor must reproduce the seed semantics (the same result multiset) on
every workload-generator family.
"""

import random
import types

import pytest

from repro.engine import (
    clear_plan_cache,
    execute,
    execute_cursor,
    registered_backends,
)
from repro.joins.aggregates import any_rows, count_rows, group_counts
from repro.joins.hashjoin import iter_hash
from repro.joins.leapfrog import iter_leapfrog
from repro.joins.nested_loop import iter_nested_loop
from repro.joins.yannakakis import iter_yannakakis
from repro.relational.hypergraph import Hypergraph
from repro.relational.io import ValueDictionary, relation_from_rows
from repro.relational.query import (
    Database,
    JoinQuery,
    clique_query,
    evaluate_reference,
    star_query,
)
from repro.relational.relation import Relation
from repro.relational.schema import Domain, RelationSchema
from repro.workloads.generators import (
    agm_tight_triangle,
    chained_path_db,
    dense_cycle_db,
    graph_triangle_db,
    random_graph_edges,
    random_path_db,
    split_cycle_instance,
    split_path_instance,
)


def random_db(query, seed, n=25, depth=5):
    rng = random.Random(seed)
    rels = []
    for atom in query.atoms:
        rows = {
            tuple(rng.randrange(1 << depth) for _ in atom.attrs)
            for _ in range(n)
        }
        rels.append(Relation(atom, rows, Domain(depth)))
    return Database(rels)


def _generator_workloads():
    out = {}
    q, db = agm_tight_triangle(4)
    out["agm_tight_triangle"] = (q, db)
    edges = random_graph_edges(30, 60, seed=3)
    q, db = graph_triangle_db(edges)
    out["graph_triangles"] = (q, db)
    q, db = random_path_db(3, 40, seed=7, depth=6)
    out["random_path"] = (q, db)
    q, db = chained_path_db(4, 30, depth=8)
    out["chained_path"] = (q, db)
    q, db, _ = split_path_instance(60, depth=8, seed=1)
    out["split_path"] = (q, db)
    q, db, _ = split_cycle_instance(40, depth=8, seed=2)
    out["split_cycle"] = (q, db)
    q, db = dense_cycle_db(4, 30, depth=6, seed=5)
    out["dense_cycle"] = (q, db)
    q = star_query(3)
    out["star"] = (q, random_db(q, 11, n=30, depth=6))
    q = clique_query(4)
    out["clique"] = (q, random_db(q, 13, n=30, depth=5))
    return out


WORKLOADS = _generator_workloads()


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("backend", sorted(registered_backends()))
def test_cursor_parity_with_reference(name, backend):
    """Cursors reproduce seed semantics on every family × backend."""
    query, db = WORKLOADS[name]
    if backend == "yannakakis" and not (
        Hypergraph.of_query(query).is_alpha_acyclic()
    ):
        return
    expected = evaluate_reference(query, db)
    cursor = execute_cursor(query, db, algorithm=backend)
    rows = cursor.fetchall()
    # Streaming order is backend-defined; the multiset must match (and
    # every streaming backend is duplicate-free, so list-sorted works).
    assert sorted(rows) == expected, backend
    assert cursor.rows_produced == len(expected)
    assert cursor.backend == backend
    assert cursor.variables == query.variables


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_limit_materializes_at_most_k(name):
    query, db = WORKLOADS[name]
    full = evaluate_reference(query, db)
    for k in (0, 1, 3, len(full), len(full) + 5):
        result = execute(query, db, algorithm="auto", limit=k)
        assert len(result.tuples) == min(k, len(full))
        assert result.limit == k
        assert set(result.tuples) <= set(full)


@pytest.mark.parametrize("backend", sorted(registered_backends()))
def test_cursor_limit_early_termination(backend):
    query, db = WORKLOADS["graph_triangles"]
    if backend == "yannakakis":
        return  # triangle query is cyclic
    full = evaluate_reference(query, db)
    assert len(full) > 2
    cursor = execute_cursor(query, db, algorithm=backend, limit=2)
    rows = cursor.fetchall()
    assert len(rows) == 2
    assert cursor.rows_produced == 2
    assert set(rows) <= set(full)


def test_streaming_backends_are_generators():
    """The pipeline backends defer all probe work until consumption."""
    query, db = WORKLOADS["random_path"]
    for it in (
        iter_hash(query, db),
        iter_leapfrog(query, db),
        iter_nested_loop(query, db),
        iter_yannakakis(query, db),
    ):
        assert isinstance(it, types.GeneratorType)


def test_cursor_fetchmany_and_close():
    query, db = WORKLOADS["graph_triangles"]
    expected = evaluate_reference(query, db)
    cursor = execute_cursor(query, db, algorithm="leapfrog")
    first = cursor.fetchmany(1)
    assert len(first) == 1
    cursor.close()
    assert cursor.fetchall() == []
    assert cursor.rows_produced == 1
    # A context-managed cursor closes itself.
    with execute_cursor(query, db, algorithm="leapfrog") as cur:
        assert len(cur.fetchmany(2)) == min(2, len(expected))
    assert cur.fetchall() == []


def test_close_releases_limited_pipeline():
    """close() must reach the backend generator through the limit wrapper."""
    query, db = WORKLOADS["graph_triangles"]
    finalized = []

    def traced():
        try:
            yield from iter_hash(query, db)
        finally:
            finalized.append(True)

    from repro.engine.executor import ResultCursor

    plan = execute(query, db, algorithm="hash").plan
    cursor = ResultCursor(
        traced(), variables=query.variables, backend="hash", plan=plan,
        stats=plan.stats, gao=plan.gao, limit=2,
    )
    assert len(cursor.fetchmany(1)) == 1
    cursor.close()
    assert finalized == [True]


def test_negative_limit_rejected():
    query, db = WORKLOADS["graph_triangles"]
    with pytest.raises(ValueError):
        execute_cursor(query, db, limit=-1)


def test_limit_prefix_consistency_leapfrog():
    """A limited run returns a prefix of the backend's enumeration."""
    query, db = WORKLOADS["chained_path"]
    all_rows = list(iter_leapfrog(query, db))
    cursor = execute_cursor(query, db, algorithm="leapfrog", limit=4)
    prefix = cursor.fetchall()
    assert prefix == all_rows[:4]


def _decoded_db():
    dictionary = ValueDictionary()
    query = JoinQuery([
        RelationSchema("R", ("A", "B")),
        RelationSchema("S", ("B", "C")),
    ])
    r_rows = [("u", "v"), ("u", "w"), ("x", "y")]
    s_rows = [("v", "z"), ("y", "q")]
    for row in r_rows + s_rows:
        dictionary.encode_row(row)
    domain = dictionary.domain()
    db = Database([
        relation_from_rows("R", ("A", "B"), r_rows, dictionary, domain),
        relation_from_rows("S", ("B", "C"), s_rows, dictionary, domain),
    ])
    return query, db, dictionary


def test_execute_decode_returns_values():
    query, db, dictionary = _decoded_db()
    result = execute(query, db, decode=dictionary)
    decoded = list(result.decoded_rows())
    assert len(decoded) == len(result.tuples)
    assert sorted(decoded) == [("u", "v", "z"), ("x", "y", "q")]
    for coded, plain in zip(result.tuples, decoded):
        assert dictionary.decode_row(coded) == plain


def test_decoded_rows_without_dictionary_rejected():
    query, db, _ = _decoded_db()
    result = execute(query, db)
    with pytest.raises(ValueError):
        result.decoded_rows()


def test_cursor_decode_streams_values():
    query, db, dictionary = _decoded_db()
    cursor = execute_cursor(query, db, decode=dictionary)
    rows = cursor.fetchall()
    assert sorted(rows) == [("u", "v", "z"), ("x", "y", "q")]


def test_decode_rows_is_lazy():
    dictionary = ValueDictionary()
    codes = [dictionary.encode_row(("a", "b"))]
    stream = dictionary.decode_rows(iter(codes))
    assert isinstance(stream, types.GeneratorType)
    assert list(stream) == [("a", "b")]


class TestCursorAggregates:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_count_rows_matches_reference(self, name):
        query, db = WORKLOADS[name]
        expected = evaluate_reference(query, db)
        assert count_rows(query, db) == len(expected)

    @pytest.mark.parametrize("name", ["graph_triangles", "split_path"])
    def test_any_rows(self, name):
        query, db = WORKLOADS[name]
        expected = evaluate_reference(query, db)
        assert any_rows(query, db) == bool(expected)

    def test_any_rows_ignores_stray_limit_kwarg(self):
        query, db = WORKLOADS["graph_triangles"]
        assert any_rows(query, db, limit=5)

    def test_any_rows_empty(self):
        from repro.relational.query import triangle_query

        query = triangle_query()
        db = Database([
            Relation(atom, [], Domain(3)) for atom in query.atoms
        ])
        assert not any_rows(query, db)
        assert count_rows(query, db) == 0

    def test_group_counts(self):
        query, db = WORKLOADS["graph_triangles"]
        expected = evaluate_reference(query, db)
        groups = group_counts(query, db, by=("A",))
        pos = query.variables.index("A")
        naive = {}
        for t in expected:
            naive[(t[pos],)] = naive.get((t[pos],), 0) + 1
        assert groups == naive
        assert sum(groups.values()) == len(expected)

    def test_group_counts_bad_attr(self):
        query, db = WORKLOADS["graph_triangles"]
        with pytest.raises(ValueError):
            group_counts(query, db, by=("NOPE",))
