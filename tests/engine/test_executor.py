"""Unified-engine correctness: auto and forced dispatch vs. the oracle.

The acceptance bar for the engine: ``execute(query, db)`` with
``algorithm="auto"`` returns tuples identical to ``evaluate_reference``
on every workload-generator query family, and every forced backend
agrees wherever it applies.
"""

import random

import pytest

from repro.engine import (
    BackendSpec,
    clear_plan_cache,
    execute,
    register_backend,
    registered_backends,
)
from repro.core.resolution import ResolutionStats
from repro.relational.hypergraph import Hypergraph
from repro.relational.query import (
    Database,
    clique_query,
    evaluate_reference,
    star_query,
)
from repro.relational.relation import Relation
from repro.relational.schema import Domain
from repro.workloads.generators import (
    agm_tight_triangle,
    chained_path_db,
    dense_cycle_db,
    graph_triangle_db,
    random_graph_edges,
    random_path_db,
    split_cycle_instance,
    split_path_instance,
)


def random_db(query, seed, n=25, depth=5):
    rng = random.Random(seed)
    rels = []
    for atom in query.atoms:
        rows = {
            tuple(rng.randrange(1 << depth) for _ in atom.attrs)
            for _ in range(n)
        }
        rels.append(Relation(atom, rows, Domain(depth)))
    return Database(rels)


def _generator_workloads():
    out = {}
    q, db = agm_tight_triangle(4)
    out["agm_tight_triangle"] = (q, db)
    edges = random_graph_edges(30, 60, seed=3)
    q, db = graph_triangle_db(edges)
    out["graph_triangles"] = (q, db)
    q, db = random_path_db(3, 40, seed=7, depth=6)
    out["random_path"] = (q, db)
    q, db = chained_path_db(4, 30, depth=8)
    out["chained_path"] = (q, db)
    q, db, _ = split_path_instance(60, depth=8, seed=1)
    out["split_path"] = (q, db)
    q, db, _ = split_cycle_instance(40, depth=8, seed=2)
    out["split_cycle"] = (q, db)
    q, db = dense_cycle_db(4, 30, depth=6, seed=5)
    out["dense_cycle"] = (q, db)
    q = star_query(3)
    out["star"] = (q, random_db(q, 11, n=30, depth=6))
    q = clique_query(4)
    out["clique"] = (q, random_db(q, 13, n=30, depth=5))
    return out


WORKLOADS = _generator_workloads()


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_auto_matches_reference_on_generators(name):
    query, db = WORKLOADS[name]
    expected = evaluate_reference(query, db)
    result = execute(query, db, algorithm="auto")
    assert result.tuples == expected
    assert result.variables == query.variables
    assert result.backend == result.plan.backend


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("backend", sorted(registered_backends()))
def test_forced_backends_agree(name, backend):
    query, db = WORKLOADS[name]
    if backend == "yannakakis" and not (
        Hypergraph.of_query(query).is_alpha_acyclic()
    ):
        with pytest.raises(ValueError):
            execute(query, db, algorithm=backend)
        return
    expected = evaluate_reference(query, db)
    result = execute(query, db, algorithm=backend)
    assert result.tuples == expected, backend
    assert result.backend == backend


def test_result_shape_mirrors_join_result():
    query, db = WORKLOADS["graph_triangles"]
    result = execute(query, db)
    assert len(result) == len(result.tuples)
    assert list(iter(result)) == result.tuples
    assert isinstance(result.stats, ResolutionStats)
    assert result.elapsed >= 0.0
    assert result.plan.predicted_cost > 0


def test_index_kind_and_gao_are_honored():
    query, db = WORKLOADS["graph_triangles"]
    expected = evaluate_reference(query, db)
    for kind in ("btree", "dyadic", "kdtree"):
        result = execute(
            query, db, algorithm="tetris-preloaded", index_kind=kind,
            gao=("B", "A", "C"),
        )
        assert result.tuples == expected, kind
        assert result.gao == ("B", "A", "C")
        assert result.plan.index_kind == kind


def test_register_custom_backend():
    query, db = WORKLOADS["random_path"]
    expected = evaluate_reference(query, db)

    def runner(q, d, plan):
        return evaluate_reference(q, d), ResolutionStats(), plan.gao

    register_backend(
        BackendSpec("reference", runner, "the test oracle itself")
    )
    try:
        assert "reference" in registered_backends()
        plan = execute(query, db, algorithm="hash").plan
        import dataclasses

        forced = dataclasses.replace(plan, backend="reference")
        result = execute(query, db, plan=forced)
        assert result.tuples == expected
        assert result.backend == "reference"
    finally:
        from repro.engine import executor

        executor._REGISTRY.pop("reference", None)
