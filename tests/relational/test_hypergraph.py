"""Tests for hypergraph structure analysis: GYO, widths, decompositions."""

import pytest

from repro.relational.hypergraph import Hypergraph, gao_for_acyclic
from repro.relational.query import (
    clique_query,
    cycle_query,
    path_query,
    star_query,
    triangle_query,
)


def h_of(query):
    return Hypergraph.of_query(query)


class TestConstruction:
    def test_of_query(self):
        h = h_of(triangle_query())
        assert set(h.vertices) == {"A", "B", "C"}
        assert len(h.edges) == 3

    def test_bad_edge(self):
        with pytest.raises(ValueError):
            Hypergraph(("A",), [("A", "B")])

    def test_of_boxes(self):
        boxes = [((1, 1), (0, 0), (0, 1)), ((0, 0), (1, 1), (0, 0))]
        h = Hypergraph.of_boxes(boxes, ("A", "B", "C"))
        assert frozenset({"A", "C"}) in h.edges
        assert frozenset({"B"}) in h.edges


class TestAcyclicity:
    def test_path_is_alpha_acyclic(self):
        assert h_of(path_query(4)).is_alpha_acyclic()

    def test_star_is_alpha_acyclic(self):
        assert h_of(star_query(3)).is_alpha_acyclic()

    def test_triangle_not_acyclic(self):
        assert not h_of(triangle_query()).is_alpha_acyclic()

    def test_cycle_not_acyclic(self):
        assert not h_of(cycle_query(4)).is_alpha_acyclic()

    def test_triangle_with_covering_edge_is_acyclic(self):
        # Adding the edge {A,B,C} makes the triangle α-acyclic.
        h = Hypergraph(
            ("A", "B", "C"),
            [("A", "B"), ("B", "C"), ("A", "C"), ("A", "B", "C")],
        )
        assert h.is_alpha_acyclic()
        # ... but not β-acyclic (the sub-hypergraph without the big edge
        # is the triangle).
        assert not h.is_beta_acyclic()

    def test_path_is_beta_acyclic(self):
        assert h_of(path_query(3)).is_beta_acyclic()

    def test_gao_for_acyclic_path(self):
        gao = gao_for_acyclic(h_of(path_query(3)))
        assert sorted(gao) == ["A0", "A1", "A2", "A3"]

    def test_gao_for_cyclic_raises(self):
        with pytest.raises(ValueError):
            gao_for_acyclic(h_of(triangle_query()))


class TestWidths:
    def test_path_treewidth_1(self):
        width, order = h_of(path_query(5)).treewidth()
        assert width == 1
        assert h_of(path_query(5)).induced_width(order) == 1

    def test_star_treewidth_1(self):
        width, _ = h_of(star_query(4)).treewidth()
        assert width == 1

    def test_triangle_treewidth_2(self):
        width, order = h_of(triangle_query()).treewidth()
        assert width == 2
        assert h_of(triangle_query()).induced_width(order) == 2

    def test_cycle_treewidth_2(self):
        for k in (4, 5, 6):
            width, order = h_of(cycle_query(k)).treewidth()
            assert width == 2, k
            assert h_of(cycle_query(k)).induced_width(order) == 2

    def test_clique_treewidth(self):
        for n in (3, 4, 5):
            width, _ = h_of(clique_query(n)).treewidth()
            assert width == n - 1

    def test_greedy_upper_bounds_exact(self):
        for q in (path_query(4), cycle_query(5), clique_query(4)):
            h = h_of(q)
            exact, _ = h.treewidth_exact()
            greedy, order = h.treewidth_greedy()
            assert greedy >= exact
            assert h.induced_width(order) == greedy

    def test_induced_width_bad_order(self):
        with pytest.raises(ValueError):
            h_of(triangle_query()).induced_width(("A", "B"))

    def test_elimination_supports_triangle(self):
        h = h_of(triangle_query())
        supports = h.elimination_supports(("A", "B", "C"))
        # Eliminating C first: support(C) = {A,B,C}; then B: {A,B}; A: {A}.
        assert supports["C"] == frozenset({"A", "B", "C"})
        assert supports["B"] == frozenset({"A", "B"})
        assert supports["A"] == frozenset({"A"})


class TestTreeDecomposition:
    def test_validates_on_standard_queries(self):
        for q in (
            path_query(4),
            star_query(3),
            triangle_query(),
            cycle_query(5),
            clique_query(4),
        ):
            h = h_of(q)
            td = h.tree_decomposition()
            td.validate()

    def test_width_matches_treewidth(self):
        h = h_of(cycle_query(5))
        width, order = h.treewidth()
        td = h.tree_decomposition(order)
        assert td.width == width

    def test_decomposition_from_explicit_order(self):
        h = h_of(triangle_query())
        td = h.tree_decomposition(("A", "B", "C"))
        td.validate()
        assert td.width == 2
