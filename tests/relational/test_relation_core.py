"""The columnar order-cached relation core: views, bisect, columns.

Parity tests assert the cached sorted views and bisect prefix lookups
reproduce the seed semantics (full re-sort + linear scan) exactly, and
identity tests assert the zero-copy sharing the consumers rely on.
"""

import random

import pytest

from repro.relational.relation import Relation, SortedView
from repro.relational.schema import Domain, RelationSchema


def _random_relation(seed, n=60, arity=3, depth=5):
    rng = random.Random(seed)
    schema = RelationSchema("R", tuple(f"A{i}" for i in range(arity)))
    rows = {
        tuple(rng.randrange(1 << depth) for _ in range(arity))
        for _ in range(n)
    }
    return Relation(schema, rows, Domain(depth))


def _seed_sorted_by(rel, attr_order):
    """The seed core's semantics: permute and re-sort from scratch."""
    perm = [rel.schema.position(a) for a in attr_order]
    return sorted(tuple(t[i] for i in perm) for t in rel.tuples())


def _all_orders(attrs):
    import itertools

    return list(itertools.permutations(attrs))


class TestSortedViews:
    @pytest.mark.parametrize("seed", range(5))
    def test_sorted_by_matches_seed_semantics(self, seed):
        rel = _random_relation(seed)
        for order in _all_orders(rel.attrs):
            assert rel.sorted_by(order) == _seed_sorted_by(rel, order)

    def test_views_are_memoized_and_shared(self):
        rel = _random_relation(0)
        order = ("A1", "A0", "A2")
        assert rel.sorted_by(order) is rel.sorted_by(order)
        assert rel.view(order) is rel.view(list(order))

    def test_canonical_view_is_zero_copy(self):
        rel = _random_relation(1)
        assert rel.sorted_by(rel.attrs) is rel.rows()
        assert rel.view(rel.attrs).rows is rel.rows()

    def test_cached_view_orders_reports_materializations(self):
        rel = _random_relation(2)
        assert rel.cached_view_orders() == ()  # all views are lazy now
        rel.sorted_by(rel.attrs)
        assert rel.cached_view_orders() == (rel.attrs,)
        rel.sorted_by(("A2", "A1", "A0"))
        assert ("A2", "A1", "A0") in rel.cached_view_orders()

    def test_bad_order_rejected(self):
        rel = _random_relation(3)
        with pytest.raises(ValueError):
            rel.sorted_by(("A0", "A1"))
        with pytest.raises(ValueError):
            rel.view(("A0", "A1", "B"))

    def test_iteration_follows_canonical_view(self):
        rel = _random_relation(4)
        assert list(rel) == rel.rows() == sorted(rel.tuples())


class TestSelectPrefix:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_linear_scan(self, seed):
        rel = _random_relation(seed, n=80, depth=3)
        for order in _all_orders(rel.attrs):
            rows = _seed_sorted_by(rel, order)
            for k in range(rel.arity + 1):
                for probe in [(), (0,), (3,), (7,), (3, 3), (7, 7, 7)]:
                    prefix = probe[:k]
                    if len(prefix) != k:
                        continue
                    expected = [t for t in rows if t[:k] == prefix]
                    assert rel.select_prefix(order, prefix) == expected

    def test_prefix_range_bounds(self):
        schema = RelationSchema("R", ("A", "B"))
        rel = Relation(
            schema, [(0, 1), (1, 0), (1, 2), (1, 3), (2, 0)], Domain(2)
        )
        view = rel.view(("A", "B"))
        assert view.prefix_range(()) == (0, 5)
        assert view.prefix_range((1,)) == (1, 4)
        assert view.prefix_range((3,)) == (5, 5)
        assert view.prefix_range((1, 2)) == (2, 3)

    def test_too_long_prefix_rejected(self):
        rel = _random_relation(0, arity=2)
        with pytest.raises(ValueError):
            rel.select_prefix(("A0", "A1"), (1, 2, 3))

    def test_empty_relation(self):
        schema = RelationSchema("E", ("A", "B"))
        rel = Relation(schema, [], Domain(3))
        assert rel.select_prefix(("B", "A"), (1,)) == []
        assert rel.rows() == []
        assert tuple(tuple(c) for c in rel.columns()) == ((), ())


class TestColumns:
    def test_columns_align_with_rows(self):
        rel = _random_relation(7)
        cols = rel.columns()
        assert len(cols) == rel.arity
        for i, row in enumerate(rel.rows()):
            for j, v in enumerate(row):
                assert cols[j][i] == v

    def test_column_by_attr(self):
        schema = RelationSchema("R", ("X", "Y"))
        rel = Relation(schema, [(1, 2), (0, 3)], Domain(2))
        assert tuple(rel.column("X")) == (0, 1)
        assert tuple(rel.column("Y")) == (3, 2)
        with pytest.raises(KeyError):
            rel.column("Z")


class TestDistinctCounts:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive(self, seed):
        rel = _random_relation(seed, n=50, depth=4)
        naive = {
            a: len({t[i] for t in rel.tuples()})
            for i, a in enumerate(rel.attrs)
        }
        assert rel.distinct_counts() == naive

    def test_reuses_cached_views(self):
        rel = _random_relation(8)
        # Materialize a view led by the last attribute, then count.
        rel.sorted_by(("A2", "A0", "A1"))
        naive = {
            a: len({t[i] for t in rel.tuples()})
            for i, a in enumerate(rel.attrs)
        }
        assert rel.distinct_counts() == naive

    def test_distinct_leading_on_view(self):
        schema = RelationSchema("R", ("A", "B"))
        rel = Relation(schema, [(0, 0), (0, 1), (2, 0)], Domain(2))
        assert rel.view(("A", "B")).distinct_leading() == 2
        assert rel.view(("B", "A")).distinct_leading() == 2


class TestSortedViewClass:
    def test_len_and_iter(self):
        view = SortedView(("A",), [(0,), (1,)])
        assert len(view) == 2
        assert list(view) == [(0,), (1,)]


class TestDatabaseSortedView:
    def test_shares_the_relation_cache(self):
        from repro.relational.query import Database

        rel = _random_relation(9)
        db = Database([rel])
        order = ("A2", "A0", "A1")
        view = db.sorted_view("R", order)
        assert view is rel.view(order)
        assert view.rows == _seed_sorted_by(rel, order)


class TestViewCacheLRU:
    def test_view_cache_is_bounded_with_eviction_counter(self):
        import itertools

        rel = _random_relation(9, n=40, arity=4, depth=5)
        perms = list(itertools.permutations(rel.schema.attrs))  # 24 orders
        for perm in perms:
            rel.view(perm)
        cap = Relation.VIEW_CACHE_CAP
        assert len(rel.cached_view_orders()) <= cap + 1  # +1: pinned canonical
        assert rel.view_evictions >= len(perms) - cap - 1

    def test_canonical_view_is_pinned_through_churn(self):
        import itertools

        rel = _random_relation(10, n=20, arity=4, depth=5)
        canonical = rel.view(rel.schema.attrs)
        for perm in itertools.permutations(rel.schema.attrs):
            rel.view(perm)
        assert rel.schema.attrs in rel.cached_view_orders()
        assert rel.view(rel.schema.attrs) is canonical

    def test_evicted_order_is_rebuilt_identically(self):
        import itertools

        rel = _random_relation(11, n=30, arity=4, depth=5)
        perms = list(itertools.permutations(rel.schema.attrs))
        first = perms[1]  # not the canonical order
        rel.view(first)
        for perm in perms[2:]:
            rel.view(perm)
        assert first not in rel.cached_view_orders()  # LRU dropped it
        assert rel.view(first).rows == _seed_sorted_by(rel, first)

    def test_recently_touched_order_survives_churn(self):
        import itertools

        rel = _random_relation(12, n=20, arity=4, depth=5)
        hot = ("A1", "A0", "A3", "A2")
        for perm in itertools.permutations(rel.schema.attrs):
            rel.view(perm)
            rel.view(hot)  # refresh recency on every insertion
        assert hot in rel.cached_view_orders()
