"""Tests for schemas, domains, and relation instances."""

import pytest

from repro.relational.relation import Relation
from repro.relational.schema import Domain, RelationSchema


class TestDomain:
    def test_size(self):
        assert Domain(3).size == 8

    def test_contains(self):
        d = Domain(2)
        assert 0 in d and 3 in d
        assert 4 not in d and -1 not in d

    def test_negative_depth(self):
        with pytest.raises(ValueError):
            Domain(-1)

    def test_for_values(self):
        assert Domain.for_values(0).depth == 0
        assert Domain.for_values(1).depth == 1
        assert Domain.for_values(7).depth == 3
        assert Domain.for_values(8).depth == 4

    def test_for_values_negative(self):
        with pytest.raises(ValueError):
            Domain.for_values(-1)


class TestRelationSchema:
    def test_basic(self):
        s = RelationSchema("R", ("A", "B"))
        assert s.arity == 2
        assert s.position("B") == 1
        assert repr(s) == "R(A, B)"

    def test_duplicate_attrs(self):
        with pytest.raises(ValueError):
            RelationSchema("R", ("A", "A"))

    def test_empty_attrs(self):
        with pytest.raises(ValueError):
            RelationSchema("R", ())

    def test_position_missing(self):
        with pytest.raises(KeyError):
            RelationSchema("R", ("A",)).position("Z")


class TestRelation:
    def make(self):
        schema = RelationSchema("R", ("A", "B"))
        return Relation(schema, [(1, 2), (0, 3), (1, 2)], Domain(2))

    def test_dedup_and_len(self):
        assert len(self.make()) == 2

    def test_membership(self):
        r = self.make()
        assert (1, 2) in r
        assert (2, 1) not in r

    def test_iteration_sorted(self):
        assert list(self.make()) == [(0, 3), (1, 2)]

    def test_arity_check(self):
        schema = RelationSchema("R", ("A", "B"))
        with pytest.raises(ValueError):
            Relation(schema, [(1,)], Domain(2))

    def test_domain_check(self):
        schema = RelationSchema("R", ("A", "B"))
        with pytest.raises(ValueError):
            Relation(schema, [(1, 9)], Domain(2))

    def test_sorted_by_reorder(self):
        r = self.make()
        assert r.sorted_by(("B", "A")) == [(2, 1), (3, 0)]

    def test_sorted_by_bad_order(self):
        with pytest.raises(ValueError):
            self.make().sorted_by(("A", "C"))

    def test_project(self):
        p = self.make().project(("B",))
        assert sorted(p) == [(2,), (3,)]

    def test_select_prefix(self):
        r = self.make()
        assert r.select_prefix(("A", "B"), (1,)) == [(1, 2)]
        assert r.select_prefix(("A", "B"), (2,)) == []
