"""Tests for AGM bounds, fractional edge covers, and fhtw."""

import math

import pytest

from repro.relational.agm import (
    agm_bound,
    agm_per_bag,
    bag_cover_number,
    fhtw,
    fractional_edge_cover,
    fractional_edge_cover_number,
)
from repro.relational.hypergraph import Hypergraph
from repro.relational.query import (
    Database,
    clique_query,
    cycle_query,
    path_query,
    triangle_query,
)
from repro.relational.relation import Relation
from repro.relational.schema import Domain, RelationSchema


def db_for(query, tuples_by_name, depth=4):
    rels = []
    for atom in query.atoms:
        rels.append(
            Relation(atom, tuples_by_name[atom.name], Domain(depth))
        )
    return Database(rels)


class TestFractionalEdgeCover:
    def test_triangle_rho_star(self):
        h = Hypergraph.of_query(triangle_query())
        assert fractional_edge_cover_number(h) == pytest.approx(1.5)

    def test_path_rho_star(self):
        # P_2: two edges sharing a vertex; each edge must get weight 1
        # to cover its endpoint, so ρ* = 2.
        h = Hypergraph.of_query(path_query(2))
        assert fractional_edge_cover_number(h) == pytest.approx(2.0)

    def test_clique4_rho_star(self):
        # K_n with binary edges: ρ* = n/2.
        h = Hypergraph.of_query(clique_query(4))
        assert fractional_edge_cover_number(h) == pytest.approx(2.0)

    def test_uncoverable_vertex(self):
        with pytest.raises(ValueError):
            fractional_edge_cover(("A", "B"), [frozenset({"A"})])

    def test_weight_arity_mismatch(self):
        with pytest.raises(ValueError):
            fractional_edge_cover(
                ("A",), [frozenset({"A"})], weights=[1.0, 2.0]
            )


class TestAGMBound:
    def test_triangle_equal_sizes(self):
        q = triangle_query()
        pairs = [(i, j) for i in range(4) for j in range(4)]
        db = db_for(q, {"R": pairs, "S": pairs, "T": pairs})
        assert agm_bound(q, db) == pytest.approx(16 ** 1.5)

    def test_empty_relation_gives_zero(self):
        q = triangle_query()
        db = db_for(q, {"R": [], "S": [(0, 0)], "T": [(0, 0)]})
        assert agm_bound(q, db) == 0.0

    def test_skewed_sizes_pick_better_cover(self):
        q = triangle_query()
        # Tiny R: the integral cover {R, S} or {R, T}... the LP exploits
        # the small relation. AGM ≤ |R| * |S| (cover x_R=1, x_S=1).
        pairs = [(i, j) for i in range(4) for j in range(4)]
        db = db_for(q, {"R": [(0, 0)], "S": pairs, "T": pairs})
        assert agm_bound(q, db) <= 16.0 + 1e-6

    def test_monotone_in_relation_size(self):
        q = triangle_query()
        small = [(i, j) for i in range(2) for j in range(2)]
        big = [(i, j) for i in range(4) for j in range(4)]
        db1 = db_for(q, {"R": small, "S": small, "T": small})
        db2 = db_for(q, {"R": big, "S": big, "T": big})
        assert agm_bound(q, db1) < agm_bound(q, db2)


class TestFHTW:
    def test_acyclic_fhtw_1(self):
        h = Hypergraph.of_query(path_query(4))
        value, order = fhtw(h)
        assert value == pytest.approx(1.0)

    def test_triangle_fhtw(self):
        h = Hypergraph.of_query(triangle_query())
        value, _ = fhtw(h)
        assert value == pytest.approx(1.5)

    def test_cycle4_fhtw(self):
        # C4 has fhtw 2 with binary edges... the one-bag cover of any pair
        # of opposite edges gives 2.
        h = Hypergraph.of_query(cycle_query(4))
        value, _ = fhtw(h)
        assert 1.0 < value <= 2.0 + 1e-9

    def test_bag_cover_number(self):
        h = Hypergraph.of_query(triangle_query())
        bag = frozenset({"A", "B", "C"})
        assert bag_cover_number(bag, h.edges) == pytest.approx(1.5)

    def test_agm_per_bag(self):
        q = triangle_query()
        pairs = [(i, j) for i in range(4) for j in range(4)]
        db = db_for(q, {"R": pairs, "S": pairs, "T": pairs})
        h = Hypergraph.of_query(q)
        _, order = h.treewidth()
        bags = agm_per_bag(q, db, order)
        assert max(bags.values()) == pytest.approx(16 ** 1.5)
