"""Tests for value dictionaries, CSV/edge-list/DIMACS readers, query parsing."""

import pytest

from repro.relational.io import (
    ValueDictionary,
    database_from_csvs,
    parse_query,
    read_csv_rows,
    read_dimacs,
    read_edge_list,
    relation_from_rows,
)
from repro.relational.query import triangle_query


class TestValueDictionary:
    def test_encode_decode_roundtrip(self):
        d = ValueDictionary()
        assert d.encode("alice") == 0
        assert d.encode("bob") == 1
        assert d.encode("alice") == 0
        assert d.decode(1) == "bob"
        assert d.decode_row((1, 0)) == ("bob", "alice")
        assert len(d) == 2

    def test_decode_unknown_raises(self):
        d = ValueDictionary()
        with pytest.raises(KeyError):
            d.decode(0)

    def test_domain_sizing(self):
        d = ValueDictionary()
        for i in range(5):
            d.encode(f"v{i}")
        assert d.domain().size >= 5

    def test_relation_from_rows(self):
        d = ValueDictionary()
        rel = relation_from_rows(
            "R", ("A", "B"), [("x", "y"), ("y", "x")], d
        )
        assert len(rel) == 2
        assert (0, 1) in rel and (1, 0) in rel


class TestParseQuery:
    def test_triangle(self):
        q = parse_query("R(A,B), S(B,C), T(A,C)")
        assert [a.name for a in q.atoms] == ["R", "S", "T"]
        assert q.variables == ("A", "B", "C")

    def test_whitespace_tolerant(self):
        q = parse_query("  R( A , B ) ,S(B,C)")
        assert q.atoms[0].attrs == ("A", "B")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_query("")

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_query("R(A,B")
        with pytest.raises(ValueError):
            parse_query("R A,B)")
        with pytest.raises(ValueError):
            parse_query("(A,B)")
        with pytest.raises(ValueError):
            parse_query("R(A,,B)")


class TestFileReaders:
    def test_csv_roundtrip(self, tmp_path):
        p = tmp_path / "r.csv"
        p.write_text("a,b\nalice,bob\ncarol,dave\n\n")
        rows = read_csv_rows(p, skip_header=True)
        assert rows == [("alice", "bob"), ("carol", "dave")]

    def test_database_from_csvs(self, tmp_path):
        q = triangle_query()
        (tmp_path / "r.csv").write_text("u,v\nu,w\n")
        (tmp_path / "s.csv").write_text("v,x\n")
        (tmp_path / "t.csv").write_text("u,x\n")
        db, d = database_from_csvs(
            q,
            {
                "R": tmp_path / "r.csv",
                "S": tmp_path / "s.csv",
                "T": tmp_path / "t.csv",
            },
        )
        assert db.total_tuples == 4
        from repro.joins.tetris_join import join_tetris

        out = join_tetris(q, db)
        decoded = [d.decode_row(t) for t in out.tuples]
        assert decoded == [("u", "v", "x")]

    def test_database_missing_file(self, tmp_path):
        q = triangle_query()
        with pytest.raises(ValueError, match="no file"):
            database_from_csvs(q, {})

    def test_database_bad_arity(self, tmp_path):
        q = triangle_query()
        (tmp_path / "r.csv").write_text("a,b,c\n")
        with pytest.raises(ValueError, match="columns"):
            database_from_csvs(
                q,
                {
                    "R": tmp_path / "r.csv",
                    "S": tmp_path / "r.csv",
                    "T": tmp_path / "r.csv",
                },
            )

    def test_edge_list(self, tmp_path):
        p = tmp_path / "e.txt"
        p.write_text("# comment\n1 2\n2 3 extra-ignored\n\n")
        assert read_edge_list(p) == [("1", "2"), ("2", "3")]

    def test_edge_list_malformed(self, tmp_path):
        p = tmp_path / "e.txt"
        p.write_text("justone\n")
        with pytest.raises(ValueError):
            read_edge_list(p)


class TestDimacs:
    def test_basic(self, tmp_path):
        p = tmp_path / "f.cnf"
        p.write_text("c comment\np cnf 3 2\n1 -2 0\n3 0\n")
        cnf = read_dimacs(p)
        assert cnf.num_vars == 3
        assert len(cnf.clauses) == 2

    def test_multiline_clause(self, tmp_path):
        p = tmp_path / "f.cnf"
        p.write_text("p cnf 4 1\n1 2\n3 4 0\n")
        cnf = read_dimacs(p)
        assert len(cnf.clauses) == 1
        assert cnf.clauses[0] == frozenset({1, 2, 3, 4})

    def test_missing_header(self, tmp_path):
        p = tmp_path / "f.cnf"
        p.write_text("1 2 0\n")
        with pytest.raises(ValueError):
            read_dimacs(p)

    def test_counts_match(self, tmp_path):
        from repro.sat.dpll import count_models_tetris

        p = tmp_path / "f.cnf"
        p.write_text("p cnf 3 2\n1 2 0\n-1 -2 0\n")
        cnf = read_dimacs(p)
        # (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2): x1 ≠ x2, x3 free → 4 models.
        assert count_models_tetris(cnf) == 4
