"""Tests for join queries, databases, and the reference evaluator."""

import pytest

from repro.relational.query import (
    Database,
    JoinQuery,
    bowtie_query,
    clique_query,
    cycle_query,
    evaluate_reference,
    path_query,
    star_query,
    triangle_query,
)
from repro.relational.relation import Relation
from repro.relational.schema import Domain, RelationSchema


def make_db(query, tuples_by_name, depth=3):
    return Database(
        [
            Relation(atom, tuples_by_name[atom.name], Domain(depth))
            for atom in query.atoms
        ]
    )


class TestDatabase:
    def test_lookup(self):
        q = triangle_query()
        db = make_db(q, {"R": [(0, 1)], "S": [(1, 2)], "T": [(0, 2)]})
        assert (0, 1) in db["R"]
        assert "S" in db
        assert len(db) == 3
        assert db.total_tuples == 3

    def test_duplicate_names(self):
        r = Relation(RelationSchema("R", ("A",)), [(0,)], Domain(1))
        with pytest.raises(ValueError):
            Database([r, r])

    def test_mixed_domains(self):
        r1 = Relation(RelationSchema("R", ("A",)), [(0,)], Domain(1))
        r2 = Relation(RelationSchema("S", ("A",)), [(0,)], Domain(2))
        with pytest.raises(ValueError):
            Database([r1, r2])

    def test_empty_database(self):
        with pytest.raises(ValueError):
            Database([])


class TestJoinQuery:
    def test_variables_in_first_appearance_order(self):
        q = triangle_query()
        assert q.variables == ("A", "B", "C")

    def test_atom_lookup(self):
        q = triangle_query()
        assert q.atom("S").attrs == ("B", "C")
        with pytest.raises(KeyError):
            q.atom("X")

    def test_duplicate_atoms_rejected(self):
        s = RelationSchema("R", ("A",))
        with pytest.raises(ValueError):
            JoinQuery([s, s])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            JoinQuery([])

    def test_generators_shapes(self):
        assert path_query(3).num_vars == 4
        assert star_query(3).num_vars == 4
        assert cycle_query(4).num_vars == 4
        assert clique_query(4).num_vars == 4
        assert len(clique_query(4).atoms) == 6
        assert bowtie_query().num_vars == 2

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            path_query(0)
        with pytest.raises(ValueError):
            star_query(0)
        with pytest.raises(ValueError):
            cycle_query(2)
        with pytest.raises(ValueError):
            clique_query(1)


class TestReferenceEvaluator:
    def test_triangle(self):
        q = triangle_query()
        db = make_db(
            q,
            {
                "R": [(0, 1), (0, 2), (3, 3)],
                "S": [(1, 5), (2, 5)],
                "T": [(0, 5), (3, 5)],
            },
        )
        out = evaluate_reference(q, db)
        assert out == [(0, 1, 5), (0, 2, 5)]

    def test_empty_output(self):
        q = triangle_query()
        db = make_db(q, {"R": [(0, 1)], "S": [(1, 2)], "T": [(1, 2)]})
        assert evaluate_reference(q, db) == []

    def test_path(self):
        q = path_query(2)
        db = make_db(
            q, {"R0": [(0, 1), (1, 1)], "R1": [(1, 4), (2, 4)]}
        )
        assert evaluate_reference(q, db) == [(0, 1, 4), (1, 1, 4)]

    def test_bowtie(self):
        q = bowtie_query()
        db = make_db(
            q, {"R": [(0,), (1,)], "S": [(1, 2), (5, 5)], "T": [(2,)]}
        )
        assert evaluate_reference(q, db) == [(1, 2)]
