"""Satellite coverage: batched oracle APIs, galloping Leapfrog seeks,
and the join-level mode knob."""

import random

import pytest

from repro.core.tetris import BoxSetOracle
from repro.joins.hashjoin import join_hash
from repro.joins.leapfrog import _seek, iter_leapfrog, join_leapfrog
from repro.joins.tetris_join import join_tetris, make_oracle
from repro.workloads.generators import (
    graph_triangle_db,
    random_graph_edges,
    random_path_db,
)
from tests.helpers import random_packed_boxes


class TestBoxSetOracleBatch:
    def test_containing_many_matches_containing(self):
        boxes = random_packed_boxes(8, 40, 3, 4)
        oracle = BoxSetOracle(boxes, 3)
        rng = random.Random(4)
        points = [
            tuple((1 << 4) | rng.getrandbits(4) for _ in range(3))
            for _ in range(20)
        ]
        batch = oracle.containing_many(points)
        assert len(batch) == len(points)
        for p, got in zip(points, batch):
            assert sorted(got) == sorted(oracle.containing(p))

    def test_query_gap_oracle_batch(self):
        query, db = graph_triangle_db(random_graph_edges(40, 120, seed=2))
        oracle, _ = make_oracle(query, db)
        depth = db.domain.depth
        rng = random.Random(9)
        points = [
            tuple(
                (1 << depth) | rng.getrandbits(depth)
                for _ in range(len(oracle.attrs))
            )
            for _ in range(15)
        ]
        # Sibling pair, the engine's prefetch shape.
        points.append(points[0][:-1] + (points[0][-1] ^ 1,))
        batch = oracle.containing_many(points)
        for p, got in zip(points, batch):
            assert sorted(got) == sorted(oracle.containing(p))


class TestLeapfrogGallop:
    def test_seek_boundaries(self):
        rows = [(v,) for v in [1, 1, 2, 5, 5, 5, 9, 12]]
        assert _seek(rows, 0, 0, len(rows), 0) == 0
        assert _seek(rows, 0, 0, len(rows), 1) == 0
        assert _seek(rows, 0, 0, len(rows), 2) == 2
        assert _seek(rows, 0, 0, len(rows), 3) == 3
        assert _seek(rows, 0, 0, len(rows), 5) == 3
        assert _seek(rows, 0, 0, len(rows), 6) == 6
        assert _seek(rows, 0, 0, len(rows), 13) == len(rows)
        # Restricted window.
        assert _seek(rows, 0, 2, 6, 5) == 3
        assert _seek(rows, 0, 4, 6, 9) == 6

    def test_triangle_parity_with_hash(self):
        query, db = graph_triangle_db(random_graph_edges(60, 200, seed=5))
        assert join_leapfrog(query, db) == sorted(set(join_hash(query, db)))

    def test_skewed_instance_parity(self):
        # One hub node with a long sorted run — the galloping seek's
        # target shape.
        edges = [(0, i) for i in range(1, 200)]
        edges += [(i, i + 1) for i in range(1, 199)]
        query, db = graph_triangle_db(edges)
        assert join_leapfrog(query, db) == sorted(set(join_hash(query, db)))

    def test_path_parity_and_streaming(self):
        query, db = random_path_db(3, 400, seed=8, depth=9)
        expected = sorted(set(join_hash(query, db)))
        assert join_leapfrog(query, db) == expected
        # Streaming prefix agrees with the materialized output as a set.
        it = iter_leapfrog(query, db)
        prefix = [next(it) for _ in range(min(5, len(expected)))]
        assert all(row in set(expected) for row in prefix)

    def test_empty_relation(self):
        query, db = random_path_db(2, 0, seed=1, depth=4)
        assert join_leapfrog(query, db) == []

    def test_explicit_gao(self):
        query, db = graph_triangle_db(random_graph_edges(30, 80, seed=7))
        expected = sorted(set(join_hash(query, db)))
        for gao in (("x", "y", "z"), ("z", "y", "x"), ("y", "x", "z")):
            try:
                got = join_leapfrog(query, db, gao=gao)
            except ValueError:
                continue  # not a permutation of this query's variables
            assert got == expected


class TestJoinModeKnob:
    @pytest.mark.parametrize("variant", ["preloaded", "reloaded"])
    def test_all_modes_agree_at_join_level(self, variant):
        query, db = graph_triangle_db(random_graph_edges(50, 150, seed=6))
        results = {
            mode: join_tetris(query, db, variant=variant, mode=mode).tuples
            for mode in ("resume", "onepass", "faithful")
        }
        assert results["resume"] == results["onepass"] == results["faithful"]

    def test_resolvent_limit_at_join_level(self):
        query, db = graph_triangle_db(random_graph_edges(50, 150, seed=6))
        base = join_tetris(query, db).tuples
        capped = join_tetris(query, db, resolvent_limit=16)
        assert capped.tuples == base
        # The one-pass mode caches every resolvent, so a tight bound
        # must evict; the resume default may cache too few to overflow.
        capped_onepass = join_tetris(
            query, db, mode="onepass", resolvent_limit=16
        )
        assert capped_onepass.tuples == base
        assert capped_onepass.stats.evictions > 0
