"""Packed/unpacked parity: the packed pipeline must change nothing.

The packed marker-bit refactor rewired every layer between the indexes
and the engine; these tests pin the end-to-end contract:

* randomized (seeded) cross-validation of ``join_tetris`` against the
  reference evaluator over **all variants × index kinds**;
* ``solve_bcp`` accepting pair-form, packed-form, and mixed-form boxes
  and producing identical outputs;
* the lazy oracle path (reloaded) agreeing with the materialized path
  (preloaded) on the same instance.
"""

import random

import pytest

from repro.core import intervals as dy
from repro.core.tetris import solve_bcp
from repro.joins.tetris_join import join_tetris
from repro.relational.query import (
    Database,
    cycle_query,
    evaluate_reference,
    path_query,
    star_query,
    triangle_query,
)
from repro.relational.relation import Relation
from repro.relational.schema import Domain
from tests.helpers import brute_force_uncovered, random_boxes

DEPTH = 4

QUERIES = {
    "triangle": triangle_query(),
    "path3": path_query(3),
    "star3": star_query(3),
    "cycle4": cycle_query(4),
}

VARIANTS = ("preloaded", "reloaded")
INDEX_KINDS = ("btree", "dyadic", "kdtree")


def random_db(query, seed, tuples_per_relation=10, depth=DEPTH):
    rng = random.Random(seed)
    rels = []
    for atom in query.atoms:
        rows = {
            tuple(rng.randrange(1 << depth) for _ in atom.attrs)
            for _ in range(tuples_per_relation)
        }
        rels.append(Relation(atom, rows, Domain(depth)))
    return Database(rels)


@pytest.mark.parametrize("qname", sorted(QUERIES))
@pytest.mark.parametrize("seed", range(3))
def test_join_parity_all_variants_and_indexes(qname, seed):
    """Every variant × index kind reproduces the reference join output."""
    query = QUERIES[qname]
    db = random_db(query, seed)
    expected = evaluate_reference(query, db)
    for variant in VARIANTS:
        for kind in INDEX_KINDS:
            got = join_tetris(query, db, variant=variant, index_kind=kind)
            assert got.tuples == expected, (qname, seed, variant, kind)


@pytest.mark.parametrize("seed", range(5))
def test_solve_bcp_accepts_pair_and_packed_inputs(seed):
    """Pair, packed, and mixed box forms yield identical BCP outputs."""
    pair_boxes = random_boxes(seed, 20, 3, DEPTH)
    packed_boxes = [dy.pack_box(b) for b in pair_boxes]
    mixed_boxes = [
        p if i % 2 else dy.unpack_box(p)
        for i, p in enumerate(packed_boxes)
    ]
    expected = brute_force_uncovered(pair_boxes, 3, DEPTH)
    assert sorted(solve_bcp(pair_boxes, 3, DEPTH)) == expected
    assert sorted(solve_bcp(packed_boxes, 3, DEPTH)) == expected
    assert sorted(solve_bcp(mixed_boxes, 3, DEPTH)) == expected


@pytest.mark.parametrize("seed", range(3))
def test_lazy_oracle_agrees_with_materialized(seed):
    """Reloaded (lazy packed probes) equals preloaded (materialized)."""
    query = triangle_query()
    db = random_db(seed=seed, query=query, tuples_per_relation=8)
    for kind in INDEX_KINDS:
        pre = join_tetris(query, db, variant="preloaded", index_kind=kind)
        re = join_tetris(query, db, variant="reloaded", index_kind=kind)
        assert pre.tuples == re.tuples, (seed, kind)


def test_empty_and_dense_edges():
    """Depth-0-free edge shapes: empty relation and full cross product."""
    query = triangle_query()
    empty_db = Database(
        [
            Relation(query.atoms[0], [], Domain(2)),
            Relation(query.atoms[1], [(0, 0)], Domain(2)),
            Relation(query.atoms[2], [(0, 0)], Domain(2)),
        ]
    )
    for variant in VARIANTS:
        for kind in INDEX_KINDS:
            assert join_tetris(
                query, empty_db, variant=variant, index_kind=kind
            ).tuples == []

    pairs = [(i, j) for i in range(4) for j in range(4)]
    dense_db = Database(
        [Relation(atom, pairs, Domain(2)) for atom in query.atoms]
    )
    expected = evaluate_reference(query, dense_db)
    assert len(expected) == 64
    for variant in VARIANTS:
        for kind in INDEX_KINDS:
            assert join_tetris(
                query, dense_db, variant=variant, index_kind=kind
            ).tuples == expected
