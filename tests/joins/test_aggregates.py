"""Tests for Boolean and counting joins."""

import pytest

from repro.core.resolution import ResolutionStats
from repro.joins.aggregates import join_count, join_exists, triangle_count
from repro.relational.query import evaluate_reference, triangle_query
from repro.workloads.generators import (
    agm_tight_triangle,
    graph_triangle_db,
    split_path_instance,
)


class TestJoinExists:
    def test_true_on_nonempty(self):
        query, db = agm_tight_triangle(2)
        assert join_exists(query, db)

    def test_false_on_empty(self):
        query, db, gao = split_path_instance(40, depth=8, seed=0)
        assert not join_exists(query, db, gao=gao)

    def test_early_exit_cheaper_than_enumeration(self):
        """The Boolean join must do less work than full enumeration."""
        query, db = agm_tight_triangle(8)  # Z = 512
        s_bool = ResolutionStats()
        s_full = ResolutionStats()
        assert join_exists(query, db, stats=s_bool)
        assert join_count(query, db, stats=s_full) == 512
        assert s_bool.containment_queries < s_full.containment_queries / 4


class TestJoinCount:
    def test_matches_reference(self):
        query, db = agm_tight_triangle(3)
        assert join_count(query, db) == len(evaluate_reference(query, db))

    def test_zero_on_empty(self):
        query, db, gao = split_path_instance(20, depth=6, seed=3)
        assert join_count(query, db, gao=gao) == 0


class TestTriangleCount:
    def test_single_triangle(self):
        _, db = graph_triangle_db([(0, 1), (1, 2), (0, 2), (2, 3)])
        assert triangle_count(db) == 1

    def test_two_triangles(self):
        _, db = graph_triangle_db(
            [(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)]
        )
        assert triangle_count(db) == 2

    def test_triangle_free(self):
        _, db = graph_triangle_db([(0, 1), (1, 2), (2, 3)])
        assert triangle_count(db) == 0

    def test_rejects_asymmetric(self):
        from repro.relational.query import triangle_query
        from repro.relational.relation import Relation
        from repro.relational.schema import Domain

        query = triangle_query()
        # Directed (asymmetric) edges: one directed triangle only.
        edges = [(0, 1), (1, 2), (0, 2)]
        db_relations = [
            Relation(atom, edges, Domain(2)) for atom in query.atoms
        ]
        from repro.relational.query import Database

        with pytest.raises(ValueError, match="divisible"):
            triangle_count(Database(db_relations))
