"""Cross-validation: every join algorithm must agree on every instance.

This is the repository's master correctness test — Tetris (both variants,
all index kinds), Yannakakis, Leapfrog, hash plans, and nested loops are
checked against the reference evaluator on randomized instances of the
paper's query shapes.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.joins.hashjoin import join_hash
from repro.joins.leapfrog import join_leapfrog
from repro.joins.nested_loop import join_nested_loop
from repro.joins.tetris_join import join_tetris
from repro.joins.yannakakis import join_yannakakis
from repro.relational.hypergraph import Hypergraph
from repro.relational.query import (
    Database,
    bowtie_query,
    cycle_query,
    evaluate_reference,
    path_query,
    star_query,
    triangle_query,
)
from repro.relational.relation import Relation
from repro.relational.schema import Domain

DEPTH = 3
DOMAIN = 1 << DEPTH


def random_db(query, seed, tuples_per_relation=8, depth=DEPTH):
    rng = random.Random(seed)
    rels = []
    for atom in query.atoms:
        rows = {
            tuple(rng.randrange(1 << depth) for _ in atom.attrs)
            for _ in range(tuples_per_relation)
        }
        rels.append(Relation(atom, rows, Domain(depth)))
    return Database(rels)


QUERIES = {
    "triangle": triangle_query(),
    "path3": path_query(3),
    "star3": star_query(3),
    "cycle4": cycle_query(4),
    "bowtie": bowtie_query(),
}


@pytest.mark.parametrize("qname", sorted(QUERIES))
@pytest.mark.parametrize("seed", range(4))
def test_all_algorithms_agree(qname, seed):
    query = QUERIES[qname]
    db = random_db(query, seed)
    expected = evaluate_reference(query, db)

    assert join_hash(query, db) == expected
    assert join_nested_loop(query, db) == expected
    assert join_leapfrog(query, db) == expected

    acyclic = Hypergraph.of_query(query).is_alpha_acyclic()
    if acyclic:
        assert join_yannakakis(query, db) == expected

    for variant in ("preloaded", "reloaded"):
        for kind in ("btree", "dyadic", "kdtree"):
            got = join_tetris(query, db, variant=variant, index_kind=kind)
            assert got.tuples == expected, (variant, kind)


@pytest.mark.parametrize("seed", range(3))
def test_tetris_no_cache_agrees(seed):
    query = triangle_query()
    db = random_db(query, seed, tuples_per_relation=5)
    expected = evaluate_reference(query, db)
    got = join_tetris(query, db, cache_resolvents=False)
    assert got.tuples == expected


def test_dense_instance():
    """All algorithms on a dense instance with a large output."""
    query = triangle_query()
    pairs = [(i, j) for i in range(4) for j in range(4)]
    db = Database(
        [Relation(atom, pairs, Domain(DEPTH)) for atom in query.atoms]
    )
    expected = evaluate_reference(query, db)
    assert len(expected) == 64
    assert join_tetris(query, db).tuples == expected
    assert join_leapfrog(query, db) == expected


def test_empty_relation_everywhere():
    query = triangle_query()
    db = Database(
        [
            Relation(query.atoms[0], [], Domain(DEPTH)),
            Relation(query.atoms[1], [(0, 0)], Domain(DEPTH)),
            Relation(query.atoms[2], [(0, 0)], Domain(DEPTH)),
        ]
    )
    assert join_tetris(query, db).tuples == []
    assert join_hash(query, db) == []
    assert join_leapfrog(query, db) == []


def test_explicit_gao_respected():
    query = triangle_query()
    db = random_db(query, 0)
    expected = evaluate_reference(query, db)
    for gao in (("A", "B", "C"), ("C", "B", "A"), ("B", "A", "C")):
        got = join_tetris(query, db, gao=gao)
        assert got.tuples == expected
        assert got.gao == gao


def test_bad_gao_rejected():
    query = triangle_query()
    db = random_db(query, 0)
    with pytest.raises(ValueError):
        join_tetris(query, db, gao=("A", "B"))


def test_yannakakis_rejects_cyclic():
    query = triangle_query()
    db = random_db(query, 0)
    with pytest.raises(ValueError):
        join_yannakakis(query, db)


def test_bad_variant_rejected():
    query = triangle_query()
    db = random_db(query, 0)
    with pytest.raises(ValueError):
        join_tetris(query, db, variant="overloaded")
