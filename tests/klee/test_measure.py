"""Tests for Klee's measure problem over the Boolean semiring."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.boxes import Box
from repro.klee.measure import (
    klee_covers_space,
    klee_measure_sweep,
    klee_uncovered_count,
)
from tests.helpers import brute_force_uncovered, random_boxes

DEPTH = 3


def ivs(max_depth=DEPTH):
    return st.integers(0, max_depth).flatmap(
        lambda length: st.integers(0, (1 << length) - 1).map(
            lambda value: (value, length)
        )
    )


def box_tuples(ndim=3):
    return st.tuples(*([ivs()] * ndim))


class TestMeasureSweep:
    def test_empty(self):
        assert klee_measure_sweep([], 2, DEPTH) == 0

    def test_single_box(self):
        box = Box.from_bits("1", "01").ivs
        assert klee_measure_sweep([box], 2, DEPTH) == 4 * 2

    def test_overlap_counted_once(self):
        a = Box.from_bits("0", "").ivs
        b = Box.from_bits("", "0").ivs
        # |A ∪ B| = 32 + 32 - 16 = 48
        assert klee_measure_sweep([a, b], 2, DEPTH) == 48

    @settings(max_examples=60, deadline=None)
    @given(st.lists(box_tuples(), max_size=8))
    def test_matches_brute_force(self, boxes):
        uncovered = len(brute_force_uncovered(boxes, 3, DEPTH))
        total = 1 << (3 * DEPTH)
        assert klee_measure_sweep(boxes, 3, DEPTH) == total - uncovered
        assert klee_uncovered_count(boxes, 3, DEPTH) == uncovered


class TestBooleanKlee:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(box_tuples(), max_size=8))
    def test_cover_decision_consistent(self, boxes):
        expected = not brute_force_uncovered(boxes, 3, DEPTH)
        assert klee_covers_space(
            boxes, 3, DEPTH, use_load_balancing=True
        ) == expected
        assert klee_covers_space(
            boxes, 3, DEPTH, use_load_balancing=False
        ) == expected

    def test_full_cover(self):
        halves = [Box.from_bits("0", "", "").ivs,
                  Box.from_bits("1", "", "").ivs]
        assert klee_covers_space(halves, 3, DEPTH)
        assert klee_measure_sweep(halves, 3, DEPTH) == 1 << (3 * DEPTH)
