"""Tests for workload generators and hard instances."""

import pytest

from repro.core.certificates import minimal_certificate
from repro.core.resolution import ResolutionStats
from repro.core.tetris import boolean_box_cover, solve_bcp
from repro.joins.tetris_join import join_tetris
from repro.relational.query import evaluate_reference
from repro.workloads.generators import (
    agm_tight_triangle,
    chained_path_db,
    dense_cycle_db,
    graph_triangle_db,
    power_law_graph_edges,
    random_graph_edges,
    random_path_db,
    split_cycle_instance,
    split_path_instance,
)
from repro.workloads.hard_instances import (
    covering_pair_instance,
    example_f1,
    msb_triangle,
    shared_suffix_instance,
    staircase_instance,
)
from tests.helpers import brute_force_uncovered


class TestHardInstances:
    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_example_f1_covers_space(self, d):
        boxes = example_f1(d)
        assert len(boxes) == 6 * (1 << (d - 2))
        assert boolean_box_cover(boxes, 3, d)

    def test_example_f1_too_shallow(self):
        with pytest.raises(ValueError):
            example_f1(2)

    def test_example_f1_exact_complement(self):
        # Independently verify that C1 covers ⟨0,λ,λ⟩ etc. at d=3.
        boxes = example_f1(3)
        assert brute_force_uncovered(boxes, 3, 3) == []

    def test_msb_triangle_empty(self):
        boxes = msb_triangle(3)
        assert boolean_box_cover(boxes, 3, 3)

    def test_msb_triangle_nonempty(self):
        boxes = msb_triangle(2, nonempty=True)
        out = solve_bcp(boxes, 3, 2)
        assert out  # Figure 6 has output tuples
        for a, b, c in out:
            assert (a >> 1) != (b >> 1)
            assert (b >> 1) != (c >> 1)
            assert (a >> 1) == (c >> 1)

    def test_shared_suffix_cache_separation(self):
        """Caching collapses the (B,C) proof; no caching rebuilds per a."""
        d = 2
        boxes = shared_suffix_instance(d)
        cached = ResolutionStats()
        uncached = ResolutionStats()
        assert solve_bcp(boxes, 3, d, stats=cached) == []
        assert solve_bcp(
            boxes, 3, d, cache_resolvents=False, stats=uncached
        ) == []
        # The separation must be at least a factor of ~2^{d-1}.
        assert uncached.resolutions >= 2 * cached.resolutions

    def test_staircase_shape(self):
        boxes = staircase_instance(3, 3)
        assert all(len(b) == 3 for b in boxes)
        assert not boolean_box_cover(boxes, 3, 3)

    def test_staircase_needs_two_dims(self):
        with pytest.raises(ValueError):
            staircase_instance(1, 3)

    def test_covering_pair_certificate(self):
        boxes = covering_pair_instance(4, n=2)
        cert = minimal_certificate(boxes, 2, 4)
        assert len(cert) == 2


class TestGenerators:
    def test_agm_tight_output_size(self):
        query, db = agm_tight_triangle(3)
        out = evaluate_reference(query, db)
        assert len(out) == 27  # m³ = N^{3/2}
        assert db.total_tuples == 3 * 9

    def test_agm_tight_tetris_agrees(self):
        query, db = agm_tight_triangle(2)
        assert join_tetris(query, db).tuples == \
            evaluate_reference(query, db)

    def test_graph_triangle(self):
        # A single triangle 0-1-2 plus a dangling edge.
        query, db = graph_triangle_db([(0, 1), (1, 2), (0, 2), (2, 3)])
        out = join_tetris(query, db).tuples
        # All 6 orientations of the triangle appear.
        assert (0, 1, 2) in out and (2, 1, 0) in out
        assert len(out) == 6

    def test_random_graph_edges(self):
        edges = random_graph_edges(10, 15, seed=1)
        assert len(edges) == 15
        assert all(a < b for a, b in edges)

    def test_power_law_edges(self):
        edges = power_law_graph_edges(30, 2, seed=1)
        assert len(edges) >= 28

    def test_random_path_db(self):
        query, db = random_path_db(3, 10, seed=0, depth=5)
        assert len(query.atoms) == 3
        assert db.total_tuples <= 30

    def test_chained_path_output(self):
        query, db = chained_path_db(3, chain_values=5)
        out = evaluate_reference(query, db)
        assert out == [(v,) * 4 for v in range(5)]

    def test_split_path_empty_join_small_cert(self):
        query, db, gao = split_path_instance(50, depth=6, seed=3)
        result = join_tetris(query, db, variant="reloaded", gao=gao)
        assert result.tuples == []
        # The whole point: only O(1) boxes needed from the oracle.
        assert result.stats.boxes_loaded <= 8

    def test_split_cycle_empty_join(self):
        query, db, gao = split_cycle_instance(30, depth=5, seed=2)
        result = join_tetris(query, db, variant="reloaded", gao=gao)
        assert result.tuples == []

    def test_dense_cycle(self):
        query, db = dense_cycle_db(4, 20, depth=4, seed=0)
        got = join_tetris(query, db).tuples
        assert got == evaluate_reference(query, db)
