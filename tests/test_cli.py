"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def triangle_csvs(tmp_path):
    (tmp_path / "r.csv").write_text("u,v\nu,w\nx,y\n")
    (tmp_path / "s.csv").write_text("v,z\ny,q\n")
    (tmp_path / "t.csv").write_text("u,z\n")
    return tmp_path


class TestJoinCommand:
    def test_join_outputs_tuples(self, triangle_csvs, capsys):
        rc = main([
            "join", "R(A,B), S(B,C), T(A,C)",
            "--csv", f"R={triangle_csvs / 'r.csv'}",
            "--csv", f"S={triangle_csvs / 's.csv'}",
            "--csv", f"T={triangle_csvs / 't.csv'}",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "u,v,z" in out

    def test_join_reloaded_variant(self, triangle_csvs, capsys):
        rc = main([
            "join", "R(A,B), S(B,C), T(A,C)",
            "--variant", "reloaded",
            "--csv", f"R={triangle_csvs / 'r.csv'}",
            "--csv", f"S={triangle_csvs / 's.csv'}",
            "--csv", f"T={triangle_csvs / 't.csv'}",
        ])
        assert rc == 0
        assert "u,v,z" in capsys.readouterr().out

    def test_join_bad_csv_flag(self, capsys):
        rc = main(["join", "R(A,B)", "--csv", "nopath"])
        assert rc == 2

    @pytest.mark.parametrize("algo", [
        "auto", "tetris-preloaded", "tetris-reloaded", "leapfrog", "hash",
        "nested-loop",
    ])
    def test_join_algorithm_selection(self, triangle_csvs, capsys, algo):
        rc = main([
            "join", "R(A,B), S(B,C), T(A,C)", "--algorithm", algo,
            "--csv", f"R={triangle_csvs / 'r.csv'}",
            "--csv", f"S={triangle_csvs / 's.csv'}",
            "--csv", f"T={triangle_csvs / 't.csv'}",
        ])
        assert rc == 0
        assert "u,v,z" in capsys.readouterr().out

    @pytest.mark.parametrize("kind", ["btree", "dyadic", "kdtree"])
    def test_join_index_kind_and_gao(self, triangle_csvs, capsys, kind):
        rc = main([
            "join", "R(A,B), S(B,C), T(A,C)",
            "--algorithm", "tetris-preloaded",
            "--index-kind", kind, "--gao", "C,B,A",
            "--csv", f"R={triangle_csvs / 'r.csv'}",
            "--csv", f"S={triangle_csvs / 's.csv'}",
            "--csv", f"T={triangle_csvs / 't.csv'}",
        ])
        assert rc == 0
        assert "u,v,z" in capsys.readouterr().out

    def test_join_backend_reported(self, triangle_csvs, capsys):
        rc = main([
            "join", "R(A,B), S(B,C), T(A,C)", "--algorithm", "leapfrog",
            "--csv", f"R={triangle_csvs / 'r.csv'}",
            "--csv", f"S={triangle_csvs / 's.csv'}",
            "--csv", f"T={triangle_csvs / 't.csv'}",
        ])
        assert rc == 0
        assert "via leapfrog" in capsys.readouterr().err

    def test_join_inapplicable_backend_errors(self, triangle_csvs, capsys):
        rc = main([
            "join", "R(A,B), S(B,C), T(A,C)", "--algorithm", "yannakakis",
            "--csv", f"R={triangle_csvs / 'r.csv'}",
            "--csv", f"S={triangle_csvs / 's.csv'}",
            "--csv", f"T={triangle_csvs / 't.csv'}",
        ])
        assert rc == 2
        assert "not applicable" in capsys.readouterr().err


class TestTrianglesCommand:
    def test_counts_triangles(self, tmp_path, capsys):
        edges = tmp_path / "e.txt"
        edges.write_text("a b\nb c\na c\nc d\n")
        rc = main(["triangles", str(edges)])
        assert rc == 0
        captured = capsys.readouterr()
        assert "a b c" in captured.out
        assert "1 triangles" in captured.err

    @pytest.mark.parametrize("algo", ["tetris", "leapfrog", "hash"])
    def test_algorithms_agree(self, tmp_path, capsys, algo):
        edges = tmp_path / "e.txt"
        edges.write_text("a b\nb c\na c\nb d\nc d\n")
        rc = main(["triangles", str(edges), "--algorithm", algo,
                   "--count-only"])
        assert rc == 0
        assert "2 triangles" in capsys.readouterr().err


class TestSatCommand:
    def test_count(self, tmp_path, capsys):
        f = tmp_path / "f.cnf"
        f.write_text("p cnf 3 2\n1 2 0\n-1 -2 0\n")
        rc = main(["sat", str(f)])
        assert rc == 0
        assert capsys.readouterr().out.strip() == "4"

    def test_enumerate(self, tmp_path, capsys):
        f = tmp_path / "f.cnf"
        f.write_text("p cnf 2 2\n1 0\n-2 0\n")
        rc = main(["sat", str(f), "--enumerate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 -2" in out
        assert out.strip().endswith("1")

    def test_enumerate_reports_learned_clauses(self, tmp_path, capsys):
        """--enumerate threads stats: same learned-clause count as counting."""
        f = tmp_path / "f.cnf"
        # Needs actual resolution work, not just direct gap covers.
        f.write_text(
            "p cnf 3 4\n1 2 0\n-1 3 0\n-2 -3 0\n1 -3 0\n"
        )
        rc = main(["sat", str(f)])
        assert rc == 0
        count_err = capsys.readouterr().err
        rc = main(["sat", str(f), "--enumerate"])
        assert rc == 0
        enum_err = capsys.readouterr().err
        learned = [
            line.split("(")[-1]
            for line in (count_err, enum_err)
        ]
        assert learned[0] == learned[1]
        assert "0 learned clauses" not in enum_err


class TestAnalyzeCommand:
    def test_triangle_profile(self, capsys):
        rc = main(["analyze", "R(A,B), S(B,C), T(A,C)"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "α-acyclic    : False" in out
        assert "treewidth    : 2" in out
        assert "fhtw         : 1.5" in out
        assert "Õ(|C|^1.5 + Z)" in out

    def test_acyclic_profile(self, capsys):
        rc = main(["analyze", "R(A,B), S(B,C)"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "α-acyclic    : True" in out
        assert "Õ(N + Z)" in out
        assert "Õ(|C| + Z)" in out
