"""Tests for gap extraction from sorted value lists."""

import pytest
from hypothesis import given, strategies as st

from repro.core import intervals as dy
from repro.indexes.gaps import (
    complement_ranges,
    dyadic_gaps,
    gap_piece_containing,
)

DEPTH = 5
DOMAIN = 1 << DEPTH


class TestComplementRanges:
    def test_empty_values(self):
        assert complement_ranges([], 3) == [(0, 7)]

    def test_full_values(self):
        assert complement_ranges(list(range(8)), 3) == []

    def test_interior_gaps(self):
        assert complement_ranges([2, 5], 3) == [(0, 1), (3, 4), (6, 7)]

    def test_edges(self):
        assert complement_ranges([0, 7], 3) == [(1, 6)]


class TestDyadicGaps:
    @given(st.sets(st.integers(0, DOMAIN - 1), max_size=12))
    def test_cover_exact_complement(self, values):
        gaps = dyadic_gaps(values, DEPTH)
        covered = set()
        for g in gaps:
            lo, hi = dy.to_range(g, DEPTH)
            covered.update(range(lo, hi + 1))
        assert covered == set(range(DOMAIN)) - values

    @given(st.sets(st.integers(0, DOMAIN - 1), max_size=12))
    def test_gaps_disjoint(self, values):
        gaps = dyadic_gaps(values, DEPTH)
        total = 0
        for g in gaps:
            lo, hi = dy.to_range(g, DEPTH)
            total += hi - lo + 1
        assert total == DOMAIN - len(values)

    @given(st.sets(st.integers(0, DOMAIN - 1), min_size=1, max_size=12))
    def test_size_linear_in_values(self, values):
        # Each of the ≤ |values|+1 gaps decomposes into ≤ 2d pieces.
        gaps = dyadic_gaps(values, DEPTH)
        assert len(gaps) <= (len(values) + 1) * 2 * DEPTH

    def test_unsorted_input_ok(self):
        assert dyadic_gaps([5, 1, 5], 3) == dyadic_gaps([1, 5], 3)


class TestGapPieceContaining:
    def test_stored_value_returns_none(self):
        assert gap_piece_containing([3], 3, 3) is None

    @given(
        st.sets(st.integers(0, DOMAIN - 1), max_size=10),
        st.integers(0, DOMAIN - 1),
    )
    def test_piece_matches_full_decomposition(self, values, point):
        ordered = sorted(values)
        piece = gap_piece_containing(ordered, point, DEPTH)
        if point in values:
            assert piece is None
        else:
            assert piece is not None
            assert dy.covers_point(piece, point, DEPTH)
            # It must be one of the globally computed gap pieces.
            assert piece in dyadic_gaps(values, DEPTH)
