"""Tests for B-tree, dyadic, and KD-tree indexes and their gap boxes.

The central invariant for every index kind (Section 3.3): the union of an
index's gap boxes is *exactly* the complement of the relation in its own
attribute space.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import intervals as dy
from repro.indexes.btree import BTreeIndex
from repro.indexes.dyadic_index import DyadicTreeIndex, KDTreeIndex
from repro.relational.relation import Relation
from repro.relational.schema import Domain, RelationSchema

DEPTH = 3
DOMAIN = 1 << DEPTH


def make_relation(tuples, arity=2, depth=DEPTH, name="R"):
    attrs = tuple("ABCDE"[:arity])
    return Relation(RelationSchema(name, attrs), tuples, Domain(depth))


def covered_points(gap_boxes, arity, depth):
    # Gap boxes come out of the indexes in packed marker-bit form.
    pts = set()
    for box, _ in gap_boxes:
        ranges = []
        for p in box:
            lo, hi = dy.pto_range(p, depth)
            ranges.append(range(lo, hi + 1))
        pts.update(itertools.product(*ranges))
    return pts


def full_space(arity, depth):
    return set(itertools.product(range(1 << depth), repeat=arity))


pairs = st.sets(
    st.tuples(st.integers(0, DOMAIN - 1), st.integers(0, DOMAIN - 1)),
    max_size=10,
)


class TestBTreeIndex:
    def test_bad_order(self):
        rel = make_relation([(0, 1)])
        with pytest.raises(ValueError):
            BTreeIndex(rel, ("A", "C"))

    def test_contains(self):
        idx = BTreeIndex(make_relation([(1, 2), (3, 0)]), ("B", "A"))
        assert idx.contains((1, 2))
        assert not idx.contains((2, 1))

    def test_gao_consistency_check(self):
        idx = BTreeIndex(make_relation([(0, 0)]), ("B", "A"))
        assert idx.is_consistent_with(("B", "A", "C"))
        assert idx.is_consistent_with(("C", "B", "A"))
        assert not idx.is_consistent_with(("A", "B"))

    @settings(max_examples=40, deadline=None)
    @given(pairs)
    def test_gap_boxes_cover_exact_complement(self, tuples):
        rel = make_relation(tuples)
        for order in (("A", "B"), ("B", "A")):
            idx = BTreeIndex(rel, order)
            pts = covered_points(idx.gap_boxes(), 2, DEPTH)
            # Boxes are in attr_order layout; translate the expected
            # complement accordingly.
            perm = [rel.schema.position(a) for a in order]
            stored = {tuple(t[i] for i in perm) for t in tuples}
            assert pts == full_space(2, DEPTH) - stored

    @settings(max_examples=40, deadline=None)
    @given(pairs, st.tuples(st.integers(0, DOMAIN - 1),
                            st.integers(0, DOMAIN - 1)))
    def test_lazy_probe_matches_materialized(self, tuples, probe):
        rel = make_relation(tuples)
        idx = BTreeIndex(rel, ("A", "B"))
        lazy = idx.gap_boxes_containing(probe)
        if probe in rel.tuples():
            assert lazy == []
        else:
            assert len(lazy) == 1
            box = lazy[0]
            # The probe is inside the returned box and the box is one of
            # the materialized gap boxes.
            for p, c in zip(box, probe):
                assert dy.pcovers_point(p, c, DEPTH)
            materialized = {b for b, _ in idx.gap_boxes()}
            assert box in materialized

    def test_example_1_1_gap_shapes(self):
        """Figure 1b: the (A,B)-ordered B-tree of the running example."""
        tuples = (
            [(3, b) for b in (1, 3, 5, 7)]
            + [(a, 3) for a in (1, 3, 5, 7)]
        )
        rel = make_relation(tuples)
        idx = BTreeIndex(rel, ("A", "B"))
        boxes = [b for b, _ in idx.gap_boxes()]
        # Gap boxes with λ on B correspond to missing A-values
        # (A ∈ {0,2,4,6} have no tuples): e.g. the dyadic piece for A=0.
        lambda_b = [b for b in boxes if b[1] == dy.PLAMBDA]
        a_values = set()
        for b in lambda_b:
            lo, hi = dy.pto_range(b[0], DEPTH)
            a_values.update(range(lo, hi + 1))
        assert a_values == {0, 2, 4, 6}


class TestDyadicTreeIndex:
    @settings(max_examples=30, deadline=None)
    @given(pairs)
    def test_gap_boxes_cover_exact_complement(self, tuples):
        rel = make_relation(tuples)
        idx = DyadicTreeIndex(rel)
        pts = covered_points(idx.gap_boxes(), 2, DEPTH)
        assert pts == full_space(2, DEPTH) - set(map(tuple, tuples))

    @settings(max_examples=30, deadline=None)
    @given(pairs, st.tuples(st.integers(0, DOMAIN - 1),
                            st.integers(0, DOMAIN - 1)))
    def test_lazy_probe(self, tuples, probe):
        rel = make_relation(tuples)
        idx = DyadicTreeIndex(rel)
        lazy = idx.gap_boxes_containing(probe)
        if probe in rel.tuples():
            assert lazy == []
        else:
            assert len(lazy) == 1
            for p, c in zip(lazy[0], probe):
                assert dy.pcovers_point(p, c, DEPTH)

    def test_quadtree_beats_btree_on_msb_relation(self):
        """Footnote 9: the MSB-complement relation of Figure 5a needs 2 gap
        boxes in a dyadic tree but Θ(2^{d-1}) in a B-tree."""
        tuples = [
            (a, b)
            for a in range(DOMAIN)
            for b in range(DOMAIN)
            if (a >> (DEPTH - 1)) != (b >> (DEPTH - 1))
        ]
        rel = make_relation(tuples)
        quad = DyadicTreeIndex(rel).count_gap_boxes()
        bt_ab = BTreeIndex(rel, ("A", "B")).count_gap_boxes()
        assert quad == 2  # ⟨0,0⟩ and ⟨1,1⟩
        assert bt_ab >= DOMAIN  # one gap per A value at least

    def test_empty_relation(self):
        rel = make_relation([])
        boxes = [b for b, _ in DyadicTreeIndex(rel).gap_boxes()]
        assert boxes == [(dy.PLAMBDA, dy.PLAMBDA)]


class TestKDTreeIndex:
    @settings(max_examples=30, deadline=None)
    @given(pairs)
    def test_gap_boxes_cover_exact_complement(self, tuples):
        rel = make_relation(tuples)
        idx = KDTreeIndex(rel)
        pts = covered_points(idx.gap_boxes(), 2, DEPTH)
        assert pts == full_space(2, DEPTH) - set(map(tuple, tuples))

    @settings(max_examples=30, deadline=None)
    @given(pairs, st.tuples(st.integers(0, DOMAIN - 1),
                            st.integers(0, DOMAIN - 1)))
    def test_lazy_probe(self, tuples, probe):
        rel = make_relation(tuples)
        idx = KDTreeIndex(rel)
        lazy = idx.gap_boxes_containing(probe)
        if probe in rel.tuples():
            assert lazy == []
        else:
            assert len(lazy) == 1
            for p, c in zip(lazy[0], probe):
                assert dy.pcovers_point(p, c, DEPTH)

    def test_unary_relation(self):
        rel = make_relation([(3,)], arity=1)
        idx = KDTreeIndex(rel)
        pts = covered_points(idx.gap_boxes(), 1, DEPTH)
        assert pts == {(v,) for v in range(DOMAIN) if v != 3}
