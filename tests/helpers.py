"""Shared test utilities: brute-force references and random generators."""

from __future__ import annotations

import itertools
import random
from typing import Iterable, List, Sequence, Tuple

from repro.core.boxes import BoxTuple
from repro.core.intervals import Interval


def interval_range(iv: Interval, depth: int) -> range:
    """Integer range covered by a dyadic interval on a depth-d domain."""
    value, length = iv
    width = 1 << (depth - length)
    lo = value << (depth - length)
    return range(lo, lo + width)


def box_covers_point(box: BoxTuple, point: Sequence[int], depth: int) -> bool:
    for iv, coord in zip(box, point):
        value, length = iv
        if (coord >> (depth - length)) != value:
            return False
    return True


def brute_force_uncovered(
    boxes: Iterable[BoxTuple], ndim: int, depth: int
) -> List[Tuple[int, ...]]:
    """Reference BCP solver: enumerate all points, filter covered ones."""
    boxes = list(boxes)
    side = range(1 << depth)
    out = []
    for point in itertools.product(side, repeat=ndim):
        if not any(box_covers_point(b, point, depth) for b in boxes):
            out.append(point)
    return out


def random_box(rng: random.Random, ndim: int, depth: int) -> BoxTuple:
    """A uniformly random dyadic box (components of random length)."""
    ivs = []
    for _ in range(ndim):
        length = rng.randint(0, depth)
        value = rng.getrandbits(length) if length else 0
        ivs.append((value, length))
    return tuple(ivs)


def random_boxes(
    seed: int, count: int, ndim: int, depth: int
) -> List[BoxTuple]:
    rng = random.Random(seed)
    return [random_box(rng, ndim, depth) for _ in range(count)]


def random_packed_boxes(seed: int, count: int, ndim: int, depth: int):
    """Random boxes in the engine's packed marker-bit form."""
    return [
        tuple((1 << length) | value for value, length in box)
        for box in random_boxes(seed, count, ndim, depth)
    ]
