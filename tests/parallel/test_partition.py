"""Partitioning invariants: disjoint, covering, balanced, clip-exact."""

import pickle

import pytest

from repro.core.intervals import PLAMBDA
from repro.parallel.partition import (
    Shard,
    attr_distinct_bounds,
    choose_split_attrs,
    clip_database,
    clip_relation,
    clip_slice,
    default_num_shards,
    partition_shards,
)
from repro.parallel.shm import filter_rows
from repro.relational.query import evaluate_reference, triangle_query
from repro.workloads.generators import (
    graph_triangle_db,
    random_graph_edges,
    random_path_db,
)


@pytest.fixture
def triangle_instance():
    edges = random_graph_edges(40, 90, seed=11)
    return graph_triangle_db(edges)


def _in_shard(shard, query, db, row):
    """Does an output row's projection land inside the shard's cell?"""
    assignment = dict(zip(query.variables, row))
    depth = db.domain.depth
    for attr, p in shard.constraints:
        lo, hi = shard.value_range(attr, depth)
        if not (lo <= assignment[attr] <= hi):
            return False
    return True


class TestPartition:
    def test_shards_disjoint_and_cover_output(self, triangle_instance):
        query, db = triangle_instance
        shards = partition_shards(query, db, 8)
        assert 1 < len(shards) <= 8
        reference = evaluate_reference(query, db)
        assert reference  # the instance must exercise the property
        for row in reference:
            owners = [
                s for s in shards if _in_shard(s, query, db, row)
            ]
            assert len(owners) == 1, (row, owners)

    def test_union_of_clipped_joins_is_the_join(self, triangle_instance):
        query, db = triangle_instance
        shards = partition_shards(query, db, 8)
        reference = evaluate_reference(query, db)
        merged = []
        for shard in shards:
            clipped = clip_database(query, db, shard)
            if clipped is None:
                continue
            merged.extend(evaluate_reference(query, clipped))
        assert sorted(merged) == reference
        assert len(merged) == len(reference)  # disjoint: no duplicates

    def test_balanced_loads(self):
        query, db = graph_triangle_db(
            random_graph_edges(120, 500, seed=5)
        )
        shards = partition_shards(query, db, 8)
        weights = []
        for shard in shards:
            clipped = clip_database(query, db, shard)
            weights.append(
                clipped.total_tuples if clipped is not None else 0
            )
        # Heaviest-first splitting must not leave one dominant shard.
        assert max(weights) < 0.5 * sum(weights)

    def test_deterministic(self, triangle_instance):
        query, db = triangle_instance
        assert partition_shards(query, db, 8) == partition_shards(
            query, db, 8
        )

    def test_single_shard_is_root(self, triangle_instance):
        query, db = triangle_instance
        (root,) = partition_shards(query, db, 1)
        assert all(p == PLAMBDA for _, p in root.constraints)

    def test_default_num_shards_oversharded_pow2(self):
        assert default_num_shards(4) == 16
        assert default_num_shards(3) == 16
        assert default_num_shards(1) == 4


class TestSplitChoice:
    def test_split_attrs_cover_all_triangle_atoms(self, triangle_instance):
        query, db = triangle_instance
        attrs = choose_split_attrs(
            query, attr_distinct_bounds(query, db)
        )
        # Two of {A, B, C} cover all three binary atoms.
        assert len(attrs) == 2
        for atom in query.atoms:
            assert any(a in atom.attrs for a in attrs)

    def test_constant_attribute_never_chosen(self):
        query = triangle_query()
        attrs = choose_split_attrs(
            query, {"A": 1, "B": 50, "C": 50}
        )
        assert "A" not in attrs


class TestClipping:
    def test_clip_unconstrained_relation_is_shared(self, triangle_instance):
        query, db = triangle_instance
        shard = Shard((("Z", 0b10),))  # attribute not in the schema
        rel = db["R"]
        assert clip_relation(rel, shard, db.domain.depth) is rel

    def test_clip_matches_filter_semantics(self, triangle_instance):
        query, db = triangle_instance
        depth = db.domain.depth
        shards = partition_shards(query, db, 8)
        rel = db["R"]
        for shard in shards:
            clipped = clip_relation(rel, shard, depth)
            ranges = {
                a: shard.value_range(a, depth)
                for a, p in shard.constraints
                if a in rel.schema.attrs and p != PLAMBDA
            }
            expected = sorted(
                t
                for t in rel.rows()
                if all(
                    lo <= t[rel.schema.position(a)] <= hi
                    for a, (lo, hi) in ranges.items()
                )
            )
            assert clipped.rows() == expected

    def test_clip_on_non_leading_attribute(self):
        query, db = random_path_db(2, 200, seed=3, depth=8)
        depth = db.domain.depth
        # Constrain A1, the *second* attribute of R0(A0, A1): forces the
        # permuted-view path with the re-sort back to schema order.
        shard = Shard((("A1", 0b10),))
        rel = db["R0"]
        clipped = clip_relation(rel, shard, depth)
        half = 1 << (depth - 1)
        expected = sorted(t for t in rel.rows() if t[1] < half)
        assert clipped.rows() == expected


class TestClipSlice:
    """The zero-copy clip: bisect range + residual box ≡ clip_relation."""

    def test_slice_plus_residual_matches_clip(self, triangle_instance):
        query, db = triangle_instance
        depth = db.domain.depth
        shards = partition_shards(query, db, 8)
        sliced = 0
        for shard in shards:
            for name in ("R", "S", "T"):
                rel = db[name]
                rng = clip_slice(rel, shard, depth)
                if rng is None:
                    continue
                sliced += 1
                lo, hi, rest = rng
                expected = clip_relation(rel, shard, depth)
                assert filter_rows(rel.rows()[lo:hi], rest) == (
                    expected.rows()
                )
        assert sliced  # the instance must exercise the slice path

    def test_none_without_leading_constraint(self):
        _query, db = random_path_db(2, 200, seed=3, depth=8)
        # A1 is the *second* attribute of R0(A0, A1): no bisect range
        # over the canonical order exists, the caller must materialize.
        shard = Shard((("A1", 0b10),))
        assert clip_slice(db["R0"], shard, db.domain.depth) is None

    def test_disjoint_residual_prunes_to_empty(self):
        from repro.relational.relation import Relation
        from repro.relational.schema import Domain, RelationSchema

        rel = Relation(
            RelationSchema("R", ("A", "B")),
            {(i, i % 8) for i in range(64)},
            Domain(8),
        )
        # B's column holds only [0, 7]; constraining B to the upper
        # half is provably empty, and the slice says so without rows.
        shard = Shard((("A", 0b10), ("B", 0b11)))
        assert clip_slice(rel, shard, 8) == (0, 0, ())


class TestPickleLeanRelation:
    def test_roundtrip_preserves_content(self, triangle_instance):
        _, db = triangle_instance
        rel = db["R"]
        clone = pickle.loads(pickle.dumps(rel))
        assert clone.rows() == rel.rows()
        assert clone.schema == rel.schema
        assert clone.domain == rel.domain
        assert clone.tuples() == rel.tuples()

    def test_caches_are_dropped_on_the_wire(self, triangle_instance):
        _, db = triangle_instance
        rel = db["R"]
        baseline = len(pickle.dumps(rel))
        # Warm several memoized views, columns and statistics.
        rel.view(("B", "A"))
        rel.columns()
        rel.distinct_counts()
        rel.column_ranges()
        rel.stats_fingerprint()
        assert len(rel.cached_view_orders()) >= 1
        warmed = len(pickle.dumps(rel))
        assert warmed == baseline  # caches never reach the wire
        clone = pickle.loads(pickle.dumps(rel))
        assert clone.cached_view_orders() == ()  # every view is lazy
        # ... and rebuild lazily on demand, identically.
        assert clone.view(("B", "A")).rows == rel.view(("B", "A")).rows

    def test_cache_key_tracks_content(self, triangle_instance):
        _, db = triangle_instance
        rel = db["R"]
        clone = pickle.loads(pickle.dumps(rel))
        assert clone.cache_key() == rel.cache_key()
        assert db["S"].cache_key() != rel.cache_key() or (
            db["S"].rows() == rel.rows() and db["S"].name == rel.name
        )
