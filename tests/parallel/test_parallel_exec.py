"""Parallel-vs-serial parity, merged-cursor semantics, scheduler caching.

The parity matrix is the subsystem's correctness contract: every
backend × workload × worker count must produce *exactly* the serial
result — same rows, same order (both sides sort), same multiplicity
(shards are disjoint, so no dedup happens anywhere).
"""

import pytest

from repro.core.resolution import ResolutionStats
from repro.engine import clear_plan_cache, execute, execute_cursor, plan_query
from repro.parallel import get_pool, shutdown_pools
from repro.relational.io import ValueDictionary
from repro.relational.query import star_query
from repro.workloads.generators import (
    dense_cycle_db,
    graph_triangle_db,
    random_graph_edges,
    random_path_db,
    split_path_instance,
)

BACKENDS = (
    "tetris-preloaded",
    "tetris-reloaded",
    "leapfrog",
    "yannakakis",
    "hash",
    "nested-loop",
)

WORKER_COUNTS = (1, 2, 4)


def _star_db(rays, n, seed, depth):
    import random

    from repro.relational.query import Database
    from repro.relational.relation import Relation
    from repro.relational.schema import Domain

    rng = random.Random(seed)
    query = star_query(rays)
    rels = []
    for atom in query.atoms:
        rows = {
            tuple(rng.randrange(1 << depth) for _ in atom.attrs)
            for _ in range(n)
        }
        rels.append(Relation(atom, rows, Domain(depth)))
    return query, Database(rels)


def _workloads():
    out = []
    query, db = graph_triangle_db(random_graph_edges(40, 100, seed=7))
    out.append(("triangle", query, db))
    query, db = random_path_db(3, 120, seed=5, depth=7)
    out.append(("path3", query, db))
    query, db = _star_db(3, 100, seed=9, depth=7)
    out.append(("star3", query, db))
    query, db = dense_cycle_db(4, 45, depth=6, seed=3)
    out.append(("cycle4", query, db))
    query, db, _ = split_path_instance(150, depth=9, seed=2)
    out.append(("split_empty", query, db))
    return out


WORKLOADS = _workloads()


@pytest.fixture(scope="module", autouse=True)
def _pools():
    yield
    shutdown_pools()


@pytest.fixture(autouse=True)
def _fresh_plans():
    clear_plan_cache()
    yield


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "name,query,db", WORKLOADS, ids=[w[0] for w in WORKLOADS]
)
def test_parallel_serial_parity(name, query, db, backend):
    try:
        serial = execute(query, db, algorithm=backend)
    except ValueError as exc:
        assert "not applicable" in str(exc)
        pytest.skip(f"{backend} inapplicable on {name}")
    for workers in WORKER_COUNTS:
        par = execute(query, db, algorithm=backend, workers=workers)
        assert par.plan.num_shards > 1, "forced backend must go parallel"
        assert par.tuples == serial.tuples, (
            f"{backend} × {workers} workers disagrees on {name}"
        )


class TestMergedCursorSemantics:
    @pytest.fixture()
    def instance(self):
        return graph_triangle_db(random_graph_edges(40, 100, seed=7))

    def test_limit_yields_subset_of_exact_size(self, instance):
        query, db = instance
        full = set(map(tuple, execute(query, db, algorithm="hash").tuples))
        assert len(full) > 10
        cursor = execute_cursor(
            query, db, algorithm="hash", workers=2, limit=7
        )
        rows = cursor.fetchall()
        assert len(rows) == 7
        assert cursor.rows_produced == 7
        assert all(tuple(r) in full for r in rows)
        cursor.close()

    def test_limit_zero(self, instance):
        query, db = instance
        cursor = execute_cursor(
            query, db, algorithm="hash", workers=2, limit=0
        )
        assert cursor.fetchall() == []

    def test_limit_beyond_output_returns_everything(self, instance):
        query, db = instance
        serial = execute(query, db, algorithm="hash")
        par = execute(
            query, db, algorithm="hash", workers=2,
            limit=len(serial.tuples) + 50,
        )
        assert par.tuples == serial.tuples

    def test_decode_through_merged_cursor(self, instance):
        query, db = instance
        dictionary = ValueDictionary()
        # Encode the identity so codes decode to themselves, shifted
        # through the dictionary (enough to prove the wiring).
        domain_top = 1 << db.domain.depth
        for v in range(domain_top):
            dictionary.encode(v)
        cursor = execute_cursor(
            query, db, algorithm="hash", workers=2, decode=dictionary
        )
        decoded = cursor.fetchall()
        plain = execute(query, db, algorithm="hash").tuples
        assert sorted(decoded) == sorted(
            dictionary.decode_row(t) for t in plain
        )

    def test_fetchmany_batches(self, instance):
        query, db = instance
        cursor = execute_cursor(query, db, algorithm="hash", workers=2)
        first = cursor.fetchmany(4)
        rest = cursor.fetchall()
        serial = execute(query, db, algorithm="hash").tuples
        assert sorted(first + rest) == serial

    def test_stats_are_aggregated_across_shards(self, instance):
        query, db = instance
        serial = execute(query, db, algorithm="tetris-preloaded")
        par = execute(
            query, db, algorithm="tetris-preloaded", workers=2
        )
        assert par.stats.resolutions > 0
        assert par.parallel.executed_shards > 1
        # Shard-local engines do at least the output's worth of work.
        assert par.stats.oracle_queries >= 0
        assert len(par.tuples) == len(serial.tuples)


class TestPlannerDecision:
    def test_tiny_instance_stays_serial_under_auto(self):
        query, db = graph_triangle_db([(0, 1), (1, 2), (0, 2)])
        plan = plan_query(query, db, workers=4, use_cache=False)
        assert plan.workers == 1
        assert plan.num_shards == 1

    def test_huge_assumed_instance_goes_parallel_under_auto(self):
        from repro.relational.query import path_query

        plan = plan_query(
            path_query(2), db=None, workers=4,
            assumed_rows=500_000, use_cache=False,
        )
        assert plan.workers == 4
        assert plan.num_shards > 1
        assert plan.split_attrs  # A1 covers both atoms

    def test_no_workers_means_no_parallel_candidates(self):
        query, db = graph_triangle_db(random_graph_edges(20, 40, seed=1))
        plan = plan_query(query, db, use_cache=False)
        assert all(c.workers == 1 for c in plan.candidates)
        assert plan.workers == 1

    def test_workers_in_plan_cache_key(self):
        query, db = graph_triangle_db(random_graph_edges(20, 40, seed=1))
        clear_plan_cache()
        a = plan_query(query, db, algorithm="hash")
        b = plan_query(query, db, algorithm="hash", workers=2)
        assert a.num_shards == 1
        assert b.num_shards > 1
        assert not b.cache_hit


class TestSchedulerCaching:
    def test_repeat_query_converges_to_shipping_no_rows(self):
        query, db = graph_triangle_db(random_graph_edges(40, 100, seed=13))
        first = execute(query, db, algorithm="hash", workers=2)
        assert first.parallel.rows_shipped > 0  # cold caches pay once
        # Worker key sets only grow (nothing here approaches the cache
        # cap), so repeats converge to all-reference dispatch: dynamic
        # dealing may steal a shard from the other worker's cache when
        # it would otherwise idle, but each steal is paid at most once.
        # First ships and steal re-ships are tallied apart, so the
        # convergence target is their sum.
        shipped = None
        for _ in range(6):
            repeat = execute(query, db, algorithm="hash", workers=2)
            shipped = (
                repeat.parallel.rows_shipped
                + repeat.parallel.rows_reshipped
            )
            if shipped == 0:
                break
        assert shipped == 0
        assert repeat.parallel.ref_hits == repeat.parallel.refs_total > 0

    def test_pool_is_persistent(self):
        assert get_pool(2) is get_pool(2)

    def test_pruned_shards_never_dispatch(self):
        query, db, _ = split_path_instance(200, depth=10, seed=4)
        result = execute(query, db, algorithm="hash", workers=2)
        assert result.tuples == []
        assert result.parallel.pruned_shards == result.parallel.num_shards
        assert result.parallel.executed_shards == 0


class TestPoolIsolation:
    """Overlapping runs must never cross-wire the pipe protocol."""

    @pytest.fixture()
    def instances(self):
        q1, db1 = graph_triangle_db(random_graph_edges(40, 100, seed=7))
        q2, db2 = random_path_db(3, 120, seed=5, depth=7)
        s1 = execute(q1, db1, algorithm="hash").tuples
        s2 = execute(q2, db2, algorithm="hash").tuples
        return q1, db1, s1, q2, db2, s2

    def test_interleaved_cursors_get_separate_pools(self, instances):
        q1, db1, s1, q2, db2, s2 = instances
        c1 = execute_cursor(q1, db1, algorithm="hash", workers=2)
        first = next(c1)  # c1's run is now mid-flight on its pool
        c2 = execute_cursor(q2, db2, algorithm="hash", workers=2)
        got2 = sorted(map(tuple, c2.fetchall()))
        got1 = sorted([tuple(first)] + [tuple(r) for r in c1])
        assert got1 == s1
        assert got2 == s2
        c1.close()
        c2.close()

    def test_limit_run_releases_pool_for_next_query(self, instances):
        q1, db1, s1, q2, db2, s2 = instances
        limited = execute(q1, db1, algorithm="hash", workers=2, limit=3)
        assert len(limited.tuples) == 3
        follow = execute(q2, db2, algorithm="hash", workers=2)
        assert follow.tuples == s2

    def test_abandoned_open_cursor_does_not_poison_later_runs(
        self, instances
    ):
        q1, db1, s1, q2, db2, s2 = instances
        dangling = execute_cursor(q1, db1, algorithm="hash", workers=2)
        next(dangling)  # partially consumed, never closed
        follow = execute(q2, db2, algorithm="hash", workers=2)
        assert follow.tuples == s2
        dangling.close()

    def test_limit_exhaustion_releases_pool_without_close(self, instances):
        from repro.parallel.scheduler import _POOLS

        q1, db1, s1, _q2, _db2, _s2 = instances
        cursor = execute_cursor(q1, db1, algorithm="hash", workers=2,
                                limit=2)
        assert len(cursor.fetchall()) == 2
        # The limit's islice ended the stream; the cursor must have
        # closed its source (draining the run) even without close().
        assert all(not p.active for p in _POOLS.get(2, []))

    def test_renamed_relation_schema_still_shards(self):
        import random

        from repro.relational.query import Database, JoinQuery
        from repro.relational.relation import Relation
        from repro.relational.schema import Domain, RelationSchema

        rng = random.Random(0)
        rel_r = Relation(
            RelationSchema("R", ("a", "b")),
            {(rng.randrange(16), rng.randrange(16)) for _ in range(40)},
            Domain(4),
        )
        rel_s = Relation(
            RelationSchema("S", ("x", "y")),
            {(rng.randrange(16), rng.randrange(16)) for _ in range(40)},
            Domain(4),
        )
        # Atom variables (A, B, C) rename the schema attributes — the
        # stats translation must keep distinct counts (and with them
        # split-attribute choice) keyed by query variables.
        query = JoinQuery(
            [RelationSchema("R", ("A", "B")),
             RelationSchema("S", ("B", "C"))]
        )
        db = Database([rel_r, rel_s])
        plan = plan_query(
            query, db, algorithm="hash", workers=2, use_cache=False
        )
        assert plan.split_attrs
        serial = execute(query, db, algorithm="hash")
        par = execute(query, db, algorithm="hash", workers=2)
        assert par.parallel is not None
        assert par.tuples == serial.tuples


class TestResolutionStatsMerge:
    def test_merge_sums_every_counter(self):
        a = ResolutionStats(
            resolutions=3, ordered_resolutions=2,
            by_axis={0: 2, 1: 1}, containment_queries=5,
            oracle_queries=7, skeleton_calls=1, boxes_loaded=4,
            cache_hits=2, resumes=3, evictions=1, witness_depth_sum=12,
        )
        b = ResolutionStats(
            resolutions=5, ordered_resolutions=1,
            by_axis={1: 4, 2: 2}, containment_queries=1,
            oracle_queries=2, skeleton_calls=3, boxes_loaded=1,
            cache_hits=0, resumes=1, evictions=2, witness_depth_sum=4,
        )
        merged = ResolutionStats.merge([a, b])
        assert merged.resolutions == 8
        assert merged.ordered_resolutions == 3
        assert merged.by_axis == {0: 2, 1: 5, 2: 2}
        assert merged.containment_queries == 6
        assert merged.oracle_queries == 9
        assert merged.skeleton_calls == 4
        assert merged.boxes_loaded == 5
        assert merged.cache_hits == 2
        assert merged.resumes == 4
        assert merged.evictions == 3
        assert merged.witness_depth_sum == 16
        # Weighted mean, not mean of means: (12 + 4) / (3 + 1).
        assert merged.mean_witness_depth == 4.0

    def test_merge_of_nothing_is_zero(self):
        merged = ResolutionStats.merge([])
        assert merged.resolutions == 0
        assert merged.mean_witness_depth == 0.0

    def test_inputs_untouched(self):
        a = ResolutionStats(resolutions=1, by_axis={0: 1})
        ResolutionStats.merge([a, a])
        assert a.resolutions == 1
        assert a.by_axis == {0: 1}


class TestExplainRendering:
    def test_parallel_plan_line(self):
        query, db = graph_triangle_db(random_graph_edges(30, 70, seed=3))
        from repro.engine import explain_text

        result = execute(query, db, algorithm="hash", workers=2)
        text = explain_text(result.plan, result)
        assert "parallel: 2 workers" in text
        assert "shards, split on" in text
        assert "→ worker" in text
        assert "makespan" in text

    def test_serial_plan_has_no_parallel_section(self):
        query, db = graph_triangle_db(random_graph_edges(30, 70, seed=3))
        from repro.engine import explain_text

        result = execute(query, db, algorithm="hash")
        assert "parallel" not in explain_text(result.plan, result)
