"""Supervision edge cases the chaos suite doesn't reach: the bounded
abandoned-cursor drain, pipe protocol desync, pool invalidation, and
the serial in-parent quarantine path failing for real.

These exercise the scheduler's failure *branches* directly — a rogue
task injected on a worker pipe, a pool invalidated mid-life, a cursor
closed while a hung worker still owes a reply — and assert the pool
either recovers in place or is replaced, never wedged.
"""

import os
import signal
import time

import pytest

from repro.engine import clear_plan_cache, execute, execute_cursor, plan_query
from repro.parallel import (
    ShardTask,
    WorkerError,
    get_pool,
    run_job_in_parent,
    shutdown_pools,
)
from repro.parallel import faults
from repro.parallel.merge import prepare_jobs
from repro.parallel.scheduler import PendingShard
from repro.parallel.shm import SlicePlan
from repro.workloads.generators import graph_triangle_db, random_graph_edges

_CHAOS_ENV = (
    faults.FAULTS_ENV,
    "REPRO_QUERY_TIMEOUT_MS",
    "REPRO_SHARD_TIMEOUT_MS",
    "REPRO_DRAIN_TIMEOUT_MS",
)


@pytest.fixture(autouse=True)
def _hang_backstop():
    def boom(signum, frame):  # pragma: no cover - only on regression
        raise TimeoutError("supervision test exceeded the 90s backstop")

    old = signal.signal(signal.SIGALRM, boom)
    signal.alarm(90)
    yield
    signal.alarm(0)
    signal.signal(signal.SIGALRM, old)


@pytest.fixture(autouse=True)
def _isolation(monkeypatch):
    for var in _CHAOS_ENV:
        monkeypatch.delenv(var, raising=False)
    faults.reset()
    shutdown_pools()
    clear_plan_cache()
    yield
    for var in _CHAOS_ENV:
        os.environ.pop(var, None)
    faults.reset()
    shutdown_pools()


@pytest.fixture()
def instance():
    query, db = graph_triangle_db(random_graph_edges(40, 100, seed=7))
    serial = execute(query, db, algorithm="hash").tuples
    return query, db, serial


def _jobs(query, db, workers=2):
    plan = plan_query(query, db, algorithm="hash", workers=workers)
    _, jobs, _ = prepare_jobs(query, db, plan)
    assert jobs
    return plan, jobs


class TestAbandonedCursorDrain:
    def test_early_close_leaves_pool_idle_and_reusable(self, instance):
        query, db, serial = instance
        cursor = execute_cursor(query, db, algorithm="hash", workers=2)
        next(cursor)  # shards still in flight
        cursor.close()
        pool = get_pool(2)
        assert not pool.active
        follow = execute(query, db, algorithm="hash", workers=2)
        assert follow.tuples == serial
        assert get_pool(2) is pool

    def test_drain_is_bounded_when_a_worker_hangs(
        self, instance, monkeypatch
    ):
        query, db, serial = instance
        _plan, jobs = _jobs(query, db)
        sid = max(jobs, key=lambda j: j.weight).shard_id
        monkeypatch.setenv(faults.FAULTS_ENV, f"hang@{sid}*inf")
        monkeypatch.setenv("REPRO_DRAIN_TIMEOUT_MS", "300")
        faults.reset()
        shutdown_pools()
        cursor = execute_cursor(query, db, algorithm="hash", workers=2)
        next(cursor)  # the hung shard is in flight, others stream
        t0 = time.monotonic()
        cursor.close()
        # The old drain waited on the hung pipe forever; now it gives
        # the worker the budget, then respawns it.
        assert time.monotonic() - t0 < 5.0
        pool = get_pool(2)
        assert pool.respawns >= 1
        assert not pool.active
        # Same pool, next query: workers forked under the standing hang
        # spec may still honour it, so a stall budget must be armed —
        # the fault is then recovered, not avoided.
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT_MS", "400")
        faults.reset()
        follow = execute(query, db, algorithm="hash", workers=2)
        assert follow.tuples == serial
        assert get_pool(2) is pool


class TestProtocolDesync:
    def test_mismatched_reply_invalidates_the_pool(self, instance):
        query, db, serial = instance
        plan, jobs = _jobs(query, db)
        job = jobs[0]
        payloads = []
        for name, key, ship in job.relations:
            if isinstance(ship, SlicePlan):
                ship = ship.materialize()
            payloads.append((name, key, ship))
        rogue = ShardTask(
            shard_id=999_999,  # no real partition has this id
            atoms=query.atoms,
            payloads=tuple(payloads),
            backend=plan.backend,
            index_kind=plan.index_kind,
            gao=plan.gao,
            limit=None,
        )
        pool = get_pool(2)
        # A task the dealer never sent: worker 0's next reply now
        # answers a shard the run doesn't have in flight.
        pool._conns[0].send(rogue)
        with pytest.raises(WorkerError, match="desync"):
            execute(query, db, algorithm="hash", workers=2)
        # Mismatched replies are unrecoverable by design: the poisoned
        # pool is closed and dropped, never reused.
        assert pool.closed
        fresh = get_pool(2)
        assert fresh is not pool
        follow = execute(query, db, algorithm="hash", workers=2)
        assert follow.tuples == serial

    def test_pool_reuse_after_explicit_invalidate(self, instance):
        query, db, serial = instance
        pool = get_pool(2)
        pool._invalidate()
        assert pool.closed
        fresh = get_pool(2)
        assert fresh is not pool
        assert not fresh.closed
        result = execute(query, db, algorithm="hash", workers=2)
        assert result.tuples == serial
        assert get_pool(2) is fresh


class TestQuarantinePath:
    def test_run_job_in_parent_executes_a_real_job(self, instance):
        query, db, serial = instance
        plan, jobs = _jobs(query, db)
        rows = []
        for job in jobs:
            result = run_job_in_parent(
                job, query.atoms, plan.backend, plan.index_kind,
                plan.gao, None,
            )
            assert result.error is None
            rows.extend(result.rows)
        assert sorted(map(tuple, rows)) == serial

    def test_run_job_in_parent_raises_on_genuine_failure(self, instance):
        query, db, _serial = instance
        plan, jobs = _jobs(query, db)
        job = jobs[0]
        # A cache-reference payload (None) is meaningless in the
        # parent's cold one-shot cache: the shard fails deterministically
        # even serially, which must surface as WorkerError, not recovery.
        broken = PendingShard(
            shard_id=job.shard_id,
            shard=job.shard,
            relations=tuple(
                (name, key, None) for name, key, _ in job.relations
            ),
            weight=job.weight,
        )
        with pytest.raises(WorkerError, match="serial"):
            run_job_in_parent(
                broken, query.atoms, plan.backend, plan.index_kind,
                plan.gao, None,
            )
