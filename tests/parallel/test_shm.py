"""The shared-memory data plane: layout, arena lifecycle, wire parity.

Three layers of contract are pinned here:

* **Layout** — ``Relation.to_shm``/``from_shm`` round-trip bit-identical
  (rows, column bytes, pickles), including empty relations and row
  slices, and reject foreign buffers.
* **Arena** — exports memoize per content key, owners block eviction,
  the byte budget sweeps LRU-first, ``close`` unlinks every name, and a
  worker crash leaves nothing behind in ``/dev/shm``.
* **Wire** — shm and pickle-blob dispatch produce *exactly* the same
  tuples across backends × workloads × worker counts, warm repeats ship
  no bytes while attaching nothing new, and the ship accounting keeps
  first-time ships, re-ships, actual wire bytes and the nominal figure
  apart.
"""

import os
import pickle
import signal

import pytest

from repro.engine import clear_plan_cache, execute, plan_query
from repro.engine.cost import CostModel
from repro.parallel import clear_job_cache, shutdown_pools
from repro.parallel.scheduler import get_pool
from repro.parallel.shm import (
    ARENA,
    ShmArena,
    ShmRef,
    ShmSlice,
    SlicePlan,
    attach_segment,
    shm_enabled,
)
from repro.parallel.workers import RelBlob, WorkerCache
from repro.relational.query import Database, JoinQuery, path_query
from repro.relational.relation import Relation
from repro.relational.schema import Domain, RelationSchema
from repro.workloads.generators import (
    graph_triangle_db,
    random_graph_edges,
    random_path_db,
)

pytestmark = pytest.mark.skipif(
    not shm_enabled() and os.environ.get("REPRO_NO_SHM"),
    reason="REPRO_NO_SHM set in the environment",
)


def _rel(name="R", n=50, seed=0, depth=7, arity=2):
    import random

    rng = random.Random(seed)
    attrs = tuple("abcdef"[:arity])
    rows = {
        tuple(rng.randrange(1 << depth) for _ in attrs) for _ in range(n)
    }
    return Relation(RelationSchema(name, attrs), rows, Domain(depth))


@pytest.fixture(autouse=True)
def _fresh(monkeypatch):
    # Share everything: the default 8 KiB floor would route these small
    # test relations onto the blob path and test nothing.
    monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "0")
    monkeypatch.delenv("REPRO_NO_SHM", raising=False)
    clear_plan_cache()
    clear_job_cache()
    yield


@pytest.fixture(scope="module", autouse=True)
def _pools():
    yield
    shutdown_pools()


class TestShmLayout:
    def test_round_trip_bit_identical(self):
        rel = _rel(n=80, seed=3, arity=3)
        total, header = rel.shm_layout()
        buf = bytearray(total)
        written = rel.to_shm(buf, header=header)
        assert written == total
        back = Relation.from_shm(buf)
        assert back.schema == rel.schema
        assert back.domain == rel.domain
        assert back.rows() == rel.rows()
        assert back.column_bytes() == rel.column_bytes()

    def test_slice_matches_canonical_rows(self):
        rel = _rel(n=60, seed=5)
        total, header = rel.shm_layout()
        buf = bytearray(total)
        rel.to_shm(buf, header=header)
        lo, hi = 10, 37
        sliced = Relation.from_shm(buf, lo, hi)
        assert sliced.rows() == rel.rows()[lo:hi]
        assert len(sliced) == hi - lo

    def test_empty_slice(self):
        rel = _rel(n=20, seed=1)
        total, header = rel.shm_layout()
        buf = bytearray(total)
        rel.to_shm(buf, header=header)
        empty = Relation.from_shm(buf, 7, 7)
        assert empty.rows() == []
        assert len(empty) == 0

    def test_zero_row_relation_round_trips(self):
        rel = Relation(RelationSchema("E", ("a", "b")), set(), Domain(5))
        total, header = rel.shm_layout()
        buf = bytearray(total)
        rel.to_shm(buf, header=header)
        back = Relation.from_shm(buf)
        assert back.rows() == []
        assert back.schema == rel.schema
        # The pickle wire agrees with the shm wire, bit for bit.
        rewire = pickle.loads(pickle.dumps(rel))
        assert rewire.rows() == back.rows()
        assert rewire.column_bytes() == back.column_bytes()

    def test_zero_attribute_schema_is_rejected(self):
        # Nullary relations don't exist in this engine: the schema
        # constructor refuses, so neither wire can ever see one.
        with pytest.raises(ValueError):
            RelationSchema("N", ())

    def test_shm_backed_relation_pickles_identically(self):
        rel = _rel(n=40, seed=9)
        total, header = rel.shm_layout()
        buf = bytearray(total)
        rel.to_shm(buf, header=header)
        back = Relation.from_shm(buf)
        assert pickle.loads(pickle.dumps(back)).rows() == rel.rows()

    def test_foreign_buffer_is_rejected(self):
        with pytest.raises(ValueError):
            Relation.from_shm(bytearray(b"\x00" * 64))

    def test_slice_plan_materializes_the_same_rows(self):
        rel = _rel(n=50, seed=11)
        plan = SlicePlan(rel, 5, 30)
        assert len(plan) == 25
        assert plan.nominal_bytes() == 8 * 25 * 2
        piece = plan.materialize()
        assert piece.rows() == rel.rows()[5:30]


class TestArena:
    def test_export_is_memoized_per_content(self):
        arena = ShmArena(capacity_bytes=1 << 20)
        rel = _rel(n=30, seed=2)
        try:
            a = arena.export(rel)
            b = arena.export(rel)
            assert a == b
            assert arena.created == 1
            # Same content under a different object: still one segment.
            clone = Relation(
                rel.schema, set(map(tuple, rel.rows())), rel.domain
            )
            assert arena.export(clone) == a
            assert arena.created == 1
        finally:
            arena.close()

    def test_export_disabled_returns_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        arena = ShmArena()
        assert arena.export(_rel()) is None
        assert len(arena) == 0

    def test_attached_content_matches(self):
        arena = ShmArena()
        rel = _rel(n=45, seed=7, arity=3)
        try:
            ref = arena.export(rel)
            seg = attach_segment(ref.segment)
            try:
                back = Relation.from_shm(seg.buf)
                assert back.rows() == rel.rows()
            finally:
                del back
                seg.close()
        finally:
            arena.close()

    def test_capacity_sweeps_lru_unowned(self):
        arena = ShmArena(capacity_bytes=1)
        r1, r2 = _rel("A", n=30, seed=1), _rel("B", n=30, seed=2)
        try:
            ref1 = arena.export(r1)
            assert ref1 is not None
            ref2 = arena.export(r2)
            assert ref2 is not None
            # Over budget: the older unowned segment was unlinked, the
            # fresh export survives (its ref is on the wire).
            assert arena.unlinked >= 1
            with pytest.raises(FileNotFoundError):
                attach_segment(ref1.segment)
            attach_segment(ref2.segment).close()
        finally:
            arena.close()

    def test_owners_block_eviction_until_released(self):
        arena = ShmArena(capacity_bytes=1)
        r1, r2 = _rel("A", n=30, seed=3), _rel("B", n=30, seed=4)
        try:
            arena.export(r1, owner=(1, 0))
            arena.export(r2, owner=(1, 1))
            assert len(arena) == 2  # both owned: over budget but pinned
            arena.release_owners(1)
            assert len(arena) == 0  # budget of 1 byte: all swept
            assert arena.unlinked == 2
        finally:
            arena.close()

    def test_close_unlinks_every_name(self):
        arena = ShmArena()
        refs = [
            arena.export(_rel(name, n=25, seed=i))
            for i, name in enumerate(("A", "B", "C"))
        ]
        names = arena.segment_names()
        assert len(names) == 3
        arena.close()
        assert len(arena) == 0
        for ref in refs:
            with pytest.raises(FileNotFoundError):
                attach_segment(ref.segment)

    def test_generation_disambiguates_recreated_segments(self):
        arena = ShmArena()
        rel = _rel(n=20, seed=6)
        try:
            g1 = arena.export(rel).generation
            assert arena.evict(rel)
            g2 = arena.export(rel).generation
            assert g2 > g1
        finally:
            arena.close()


class TestWorkerCache:
    """The worker-side segment table, exercised in-process."""

    def test_ref_and_slice_share_one_attach(self):
        arena = ShmArena()
        rel = _rel(n=60, seed=8)
        cache = WorkerCache()
        evicted = []
        try:
            ref = arena.export(rel)
            whole, attached = cache.store(("k1",), ref, evicted)
            assert attached == ref.nbytes  # first touch maps the segment
            assert whole.rows() == rel.rows()
            piece, attached2 = cache.store(
                ("k2",), ShmSlice(ref, 5, 25), evicted
            )
            assert attached2 == 0  # table hit: no new mapping
            assert piece.rows() == rel.rows()[5:25]
            assert cache.get(("k1",)) is whole
            assert evicted == []
        finally:
            arena.close()

    def test_blob_payloads_bypass_the_segment_table(self):
        rel = _rel(n=15, seed=12)
        cache = WorkerCache()
        blob = RelBlob(pickle.dumps(rel))
        got, attached = cache.store(("k",), blob, [])
        assert attached == 0
        assert got.rows() == rel.rows()

    def test_lru_eviction_reports_keys_home(self):
        cache = WorkerCache(entries=2)
        evicted = []
        for i in range(3):
            cache.store((i,), _rel(n=5, seed=i), evicted)
        assert evicted == [(0,)]
        assert cache.get((0,)) is None
        assert cache.get((2,)) is not None


def _triangle(seed=17, nodes=50, edges=220):
    return graph_triangle_db(random_graph_edges(nodes, edges, seed=seed))


class TestWireParity:
    @pytest.mark.parametrize("backend", ("hash", "tetris-preloaded"))
    @pytest.mark.parametrize("workers", (1, 4))
    def test_shm_vs_blob_same_tuples(self, backend, workers, monkeypatch):
        query, db = _triangle()
        serial = execute(query, db, algorithm=backend)
        with_shm = execute(
            query, db, algorithm=backend, workers=workers
        )
        assert with_shm.tuples == serial.tuples
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        clear_plan_cache()
        without = execute(
            query, db, algorithm=backend, workers=workers
        )
        assert without.tuples == serial.tuples
        assert without.parallel.shm_ships == 0

    @pytest.mark.parametrize("workers", (1, 4))
    def test_empty_relation_instance_parity(self, workers):
        # One relation empty: every shard prunes, output is [] on both
        # wires — the zero-row payload edge the layout tests pin.
        query = path_query(2)
        r = _rel("R0", n=40, seed=3)
        s = Relation(
            RelationSchema("R1", ("a", "b")), set(), Domain(7)
        )
        db = Database([
            Relation(RelationSchema("R0", ("a", "b")),
                     set(map(tuple, r.rows())), Domain(7)),
            s,
        ])
        assert execute(query, db, algorithm="hash").tuples == []
        par = execute(query, db, algorithm="hash", workers=workers)
        assert par.tuples == []

    def test_path_query_parity(self):
        query, db = random_path_db(3, 150, seed=6, depth=8)
        serial = execute(query, db, algorithm="hash")
        par = execute(query, db, algorithm="hash", workers=4)
        assert par.tuples == serial.tuples
        assert par.parallel.shm_ships > 0


class TestShipAccounting:
    def test_cold_run_ships_refs_not_rows(self):
        shutdown_pools()  # cold worker caches AND a cold arena
        query, db = _triangle(seed=23)
        result = execute(query, db, algorithm="hash", workers=2)
        rep = result.parallel
        assert rep.shm_ships > 0
        assert rep.rows_shipped == 0  # everything went by segment ref
        assert rep.shm_attaches > 0
        assert rep.shm_attached_bytes > 0
        # Refs are a few hundred bytes; the rows they stand for are not.
        assert 0 < rep.bytes_shipped < rep.bytes_nominal

    def test_warm_repeats_ship_nothing_and_attach_nothing(self):
        shutdown_pools()
        query, db = _triangle(seed=29)
        cold = execute(query, db, algorithm="hash", workers=2)
        assert cold.parallel.shm_attached_bytes > 0
        warm = None
        for _ in range(6):
            warm = execute(query, db, algorithm="hash", workers=2)
            if warm.parallel.bytes_shipped == 0:
                break
        rep = warm.parallel
        assert rep.bytes_shipped == 0
        assert rep.shm_attached_bytes == 0
        assert rep.ref_hits == rep.refs_total > 0

    def test_blob_wire_reports_actual_and_nominal(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        shutdown_pools()
        query, db = _triangle(seed=31)
        result = execute(query, db, algorithm="hash", workers=2)
        rep = result.parallel
        assert rep.rows_shipped > 0
        assert rep.bytes_shipped > 0
        assert rep.bytes_nominal > 0
        assert rep.shm_ships == 0
        # First run from a fresh pool: nothing can be a re-ship yet.
        later = execute(query, db, algorithm="hash", workers=2)
        assert later.parallel.rows_shipped == 0  # only re-ships remain

    def test_metrics_registry_carries_shm_counters(self):
        shutdown_pools()
        query, db = _triangle(seed=37)
        result = execute(query, db, algorithm="hash", workers=2)
        if result.metrics is None:
            pytest.skip("metrics registry disabled")
        snap = result.metrics
        assert snap["parallel.shm.ships"] > 0
        assert snap["parallel.shm.attached_bytes"] > 0
        assert snap["parallel.ship.bytes_nominal"] > 0

    def test_explain_renders_the_shm_line(self):
        from repro.engine import explain_text

        query, db = _triangle(seed=41)
        result = execute(query, db, algorithm="hash", workers=2)
        text = explain_text(result.plan, result)
        assert "segment refs" in text
        assert "B attached" in text
        assert "nominal" in text


class TestCostModel:
    def test_shm_prices_parallel_cheaper(self):
        query = path_query(2)
        plans = {
            flag: plan_query(
                query, db=None, workers=4, assumed_rows=200_000,
                use_cache=False, cost_model=CostModel(shm=flag),
            )
            for flag in (True, False)
        }

        def par_cost(plan, backend):
            return next(
                c.cost
                for c in plan.candidates
                if c.backend == backend and c.parallel and c.applicable
            )

        for cand in plans[True].candidates:
            if cand.parallel and cand.applicable:
                assert cand.cost <= par_cost(plans[False], cand.backend)
        chosen = plans[True].chosen
        assert chosen.parallel
        assert "shm" in chosen.formula

    def test_shm_moves_the_parallel_threshold_down(self):
        # Scanning input sizes: shm may go parallel where the blob wire
        # stays serial, never the reverse.  The cyclic query replicates
        # partially-covered atoms on the blob wire, so the break moves
        # visibly (around 5k assumed rows the shm plan is parallel
        # while the blob plan still prices serial cheaper).
        from repro.relational.query import triangle_query

        query = triangle_query()
        flipped = 0
        for rows in (1_000, 5_000, 20_000, 80_000, 300_000):
            par = {}
            for flag in (True, False):
                plan = plan_query(
                    query, db=None, workers=4, assumed_rows=rows,
                    use_cache=False, cost_model=CostModel(shm=flag),
                )
                par[flag] = plan.workers > 1
            assert not (par[False] and not par[True])
            if par[True] and not par[False]:
                flipped += 1
        assert flipped >= 1, "shm never moved the serial/parallel break"

    def test_plan_cache_keys_on_the_shm_flag(self, monkeypatch):
        query, db = _triangle(seed=43)
        clear_plan_cache()
        a = plan_query(query, db, algorithm="hash", workers=2)
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        b = plan_query(query, db, algorithm="hash", workers=2)
        assert not b.cache_hit  # a flipped wire must re-price


class TestFaultInjection:
    def test_worker_crash_leaks_no_segments(self):
        shutdown_pools()
        query, db = _triangle(seed=47, nodes=60, edges=300)
        first = execute(query, db, algorithm="hash", workers=2)
        assert first.parallel.shm_ships > 0
        assert len(ARENA) > 0
        names = ARENA.segment_names()
        pool = get_pool(2)
        os.kill(pool._procs[0].pid, signal.SIGKILL)
        pool._procs[0].join(timeout=5.0)
        # Supervision absorbs the crash: the dead worker is respawned in
        # place and the same pool answers bit-identically.
        survived = execute(query, db, algorithm="hash", workers=2)
        assert survived.tuples == first.tuples
        assert survived.parallel.worker_respawns >= 1
        assert get_pool(2) is pool and not pool.closed
        # Full shutdown unlinks every name — nothing left in /dev/shm.
        shutdown_pools()
        assert len(ARENA) == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                attach_segment(name)

    def test_shutdown_after_clean_runs_unlinks_everything(self):
        query, db = _triangle(seed=53)
        execute(query, db, algorithm="hash", workers=2)
        names = ARENA.segment_names()
        assert names
        shutdown_pools()
        assert len(ARENA) == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                attach_segment(name)
