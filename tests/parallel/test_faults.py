"""Chaos suite: every injected fault class must leave the answer
bit-identical to serial execution.

Shards are pure functions of ``(shard, database)``, so the scheduler is
allowed to re-execute them at will — these tests inject every failure
mode :mod:`repro.parallel.faults` can express (worker crashes, hangs,
deterministic errors, unpicklable results, pool spawn failures, shm
export failures) and assert three things each time:

* the query completes with rows **bit-identical** to the serial answer,
* recovery is visible in the :class:`~repro.parallel.merge.
  ParallelReport` (respawns / retries / quarantines / fallbacks),
* the pool stays serviceable — the same process serves the next query.

Fault specs ride on the environment and are read by *forked* workers,
so every re-arm must reset the cached plan **and** recycle the pools
(living workers keep their fork-time environment).  The autouse fixture
below does both around every test; a SIGALRM backstop guarantees a
wedged run fails the test instead of hanging the suite (pytest-timeout
is not a repo dependency).
"""

import os
import signal

import pytest

from repro.engine import clear_plan_cache, execute, plan_query
from repro.parallel import QueryTimeout, get_pool, shutdown_pools
from repro.parallel import faults
from repro.parallel.merge import prepare_jobs
from repro.parallel.shm import ARENA
from repro.workloads.generators import graph_triangle_db, random_graph_edges

WORKER_COUNTS = (2, 4)

#: Every knob a chaos test may set; scrubbed before and after each test.
_CHAOS_ENV = (
    faults.FAULTS_ENV,
    "REPRO_QUERY_TIMEOUT_MS",
    "REPRO_SHARD_TIMEOUT_MS",
    "REPRO_DRAIN_TIMEOUT_MS",
    "REPRO_SHM_MIN_BYTES",
    "REPRO_NO_SHM",
)


@pytest.fixture(autouse=True)
def _hang_backstop():
    """Fail, don't wedge: a chaos bug must not hang the whole suite."""

    def boom(signum, frame):  # pragma: no cover - only on regression
        raise TimeoutError("chaos test exceeded the 90s backstop")

    old = signal.signal(signal.SIGALRM, boom)
    signal.alarm(90)
    yield
    signal.alarm(0)
    signal.signal(signal.SIGALRM, old)


@pytest.fixture(autouse=True)
def _chaos_isolation(monkeypatch):
    """Fault-free pools and env on both sides of every test.

    Workers fork with a snapshot of the parent environment, so pools
    must be recycled whenever the spec changes — a surviving worker
    would keep honouring its fork-time faults forever.
    """
    for var in _CHAOS_ENV:
        monkeypatch.delenv(var, raising=False)
    faults.reset()
    shutdown_pools()
    clear_plan_cache()
    yield
    for var in _CHAOS_ENV:
        os.environ.pop(var, None)
    faults.reset()
    shutdown_pools()


def _arm(monkeypatch, spec=None, **env):
    """Install a fault spec (and knobs), then recycle pools so the next
    pool's workers fork with this environment."""
    if spec is not None:
        monkeypatch.setenv(faults.FAULTS_ENV, spec)
    for key, value in env.items():
        monkeypatch.setenv(key, str(value))
    faults.reset()
    shutdown_pools()


def _disarm(monkeypatch):
    """Clear the fault spec *without* recycling pools — follow-up
    queries then exercise the same (possibly fault-scarred) pool."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()


@pytest.fixture()
def instance():
    query, db = graph_triangle_db(random_graph_edges(40, 100, seed=7))
    serial = execute(query, db, algorithm="hash").tuples
    return query, db, serial


def _victim(query, db, workers):
    """The heaviest dispatchable shard's id — dealt first (LPT), so a
    fault armed on it reliably fires."""
    plan = plan_query(query, db, algorithm="hash", workers=workers)
    _, jobs, _ = prepare_jobs(query, db, plan)
    assert jobs, "workload must produce dispatchable shards"
    return max(jobs, key=lambda j: j.weight).shard_id


@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestCrashRecovery:
    def test_transient_crash_is_retried_to_parity(
        self, instance, workers, monkeypatch
    ):
        query, db, serial = instance
        sid = _victim(query, db, workers)
        _arm(monkeypatch, f"crash@{sid}*2")
        result = execute(query, db, algorithm="hash", workers=workers)
        assert result.tuples == serial
        assert result.parallel.worker_respawns >= 2
        assert result.parallel.shard_retries >= 2
        assert result.parallel.shards_quarantined == 0
        assert not result.parallel.timed_out

    def test_permanent_crash_quarantines_to_serial(
        self, instance, workers, monkeypatch
    ):
        query, db, serial = instance
        sid = _victim(query, db, workers)
        _arm(monkeypatch, f"crash@{sid}*inf")
        result = execute(query, db, algorithm="hash", workers=workers)
        assert result.tuples == serial
        assert result.parallel.shards_quarantined >= 1
        assert result.parallel.worker_respawns >= 1

    def test_same_pool_serves_the_next_query(
        self, instance, workers, monkeypatch
    ):
        query, db, serial = instance
        sid = _victim(query, db, workers)
        _arm(monkeypatch, f"crash@{sid}*2")
        execute(query, db, algorithm="hash", workers=workers)
        pool = get_pool(workers)
        assert not pool.closed
        _disarm(monkeypatch)
        # Workers respawned while the spec was armed keep their
        # fork-time environment; crash faults are still recoverable, so
        # parity must hold on the very same pool object.
        follow = execute(query, db, algorithm="hash", workers=workers)
        assert follow.tuples == serial
        assert get_pool(workers) is pool


@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestDeterministicErrors:
    def test_worker_error_quarantines_without_respawn(
        self, instance, workers, monkeypatch
    ):
        query, db, serial = instance
        sid = _victim(query, db, workers)
        _arm(monkeypatch, f"error@{sid}*inf")
        result = execute(query, db, algorithm="hash", workers=workers)
        assert result.tuples == serial
        # The worker is alive and in protocol: no process churn, the
        # shard goes straight to serial in-parent execution.
        assert result.parallel.shards_quarantined >= 1
        assert result.parallel.worker_respawns == 0
        assert result.parallel.shard_retries == 0

    def test_unpicklable_result_degrades_in_protocol(
        self, instance, workers, monkeypatch
    ):
        query, db, serial = instance
        sid = _victim(query, db, workers)
        _arm(monkeypatch, f"unpicklable@{sid}*inf")
        result = execute(query, db, algorithm="hash", workers=workers)
        assert result.tuples == serial
        # The send fails *after* a full pickle pass, so no partial
        # bytes hit the pipe; the worker's fallback error result keeps
        # the protocol in sync and the shard quarantines cleanly.
        assert result.parallel.shards_quarantined >= 1
        assert result.parallel.worker_respawns == 0


@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestHangs:
    def test_transient_hang_recovered_by_stall_budget(
        self, instance, workers, monkeypatch
    ):
        query, db, serial = instance
        sid = _victim(query, db, workers)
        _arm(
            monkeypatch,
            f"hang@{sid}*1",
            REPRO_SHARD_TIMEOUT_MS=400,
        )
        result = execute(query, db, algorithm="hash", workers=workers)
        assert result.tuples == serial
        assert result.parallel.worker_respawns >= 1
        assert result.parallel.shard_retries >= 1

    def test_permanent_hang_quarantined_by_stall_budget(
        self, instance, workers, monkeypatch
    ):
        query, db, serial = instance
        sid = _victim(query, db, workers)
        _arm(
            monkeypatch,
            f"hang@{sid}*inf",
            REPRO_SHARD_TIMEOUT_MS=300,
        )
        result = execute(query, db, algorithm="hash", workers=workers)
        assert result.tuples == serial
        assert result.parallel.shards_quarantined >= 1

    def test_deadline_raises_query_timeout_with_partial_report(
        self, instance, workers, monkeypatch
    ):
        query, db, serial = instance
        sid = _victim(query, db, workers)
        _arm(monkeypatch, f"hang@{sid}*inf")
        with pytest.raises(QueryTimeout) as exc:
            execute(
                query, db, algorithm="hash", workers=workers,
                timeout_ms=500,
            )
        report = exc.value.report
        assert report is not None
        assert report.timed_out
        # The other shards finished while the victim hung.
        assert 0 < report.executed_shards < report.num_shards
        # The abort respawned the hung workers with the spec still in
        # the parent env; recycle before the parity follow-up.
        _disarm(monkeypatch)
        shutdown_pools()
        follow = execute(query, db, algorithm="hash", workers=workers)
        assert follow.tuples == serial

    def test_env_deadline_is_the_default(
        self, instance, workers, monkeypatch
    ):
        query, db, _serial = instance
        sid = _victim(query, db, workers)
        _arm(
            monkeypatch,
            f"hang@{sid}*inf",
            REPRO_QUERY_TIMEOUT_MS=500,
        )
        with pytest.raises(QueryTimeout):
            execute(query, db, algorithm="hash", workers=workers)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestGracefulDegradation:
    def test_spawn_failure_runs_the_query_serially(
        self, instance, workers, monkeypatch
    ):
        query, db, serial = instance
        _arm(monkeypatch, "spawn*1")
        result = execute(query, db, algorithm="hash", workers=workers)
        assert result.tuples == serial
        assert result.parallel.serial_fallback_shards > 0
        assert (
            result.parallel.serial_fallback_shards
            == result.parallel.executed_shards
        )
        assert result.parallel.worker_respawns == 0
        # The injected spawn budget is spent: the next query gets a
        # real pool and goes parallel again.
        follow = execute(query, db, algorithm="hash", workers=workers)
        assert follow.tuples == serial
        assert follow.parallel.serial_fallback_shards == 0

    def test_shm_export_failure_falls_back_to_blobs(
        self, instance, workers, monkeypatch
    ):
        query, db, serial = instance
        # Force every relation through the arena so the injected
        # export failures actually fire.
        _arm(
            monkeypatch, "shm-export*2", REPRO_SHM_MIN_BYTES=1
        )
        result = execute(query, db, algorithm="hash", workers=workers)
        assert result.tuples == serial
        assert result.parallel.shm_export_errors >= 1
        assert result.parallel.worker_respawns == 0


class TestHygiene:
    def test_crash_chaos_leaves_no_arena_segments(
        self, instance, monkeypatch
    ):
        query, db, serial = instance
        sid = _victim(query, db, 2)
        _arm(
            monkeypatch, f"crash@{sid}*2", REPRO_SHM_MIN_BYTES=1
        )
        result = execute(query, db, algorithm="hash", workers=2)
        assert result.tuples == serial
        assert result.parallel.worker_respawns >= 2
        shutdown_pools()
        assert len(ARENA) == 0

    def test_fault_metrics_flow_into_registry(
        self, instance, monkeypatch
    ):
        query, db, _serial = instance
        sid = _victim(query, db, 2)
        _arm(monkeypatch, f"crash@{sid}*inf")
        result = execute(query, db, algorithm="hash", workers=2)
        if result.metrics is None:
            pytest.skip("metrics disabled")
        delta = result.metrics
        assert delta["parallel.faults.respawns"] >= 1
        assert delta["parallel.faults.retries"] >= 1
        assert delta["parallel.faults.quarantined"] >= 1

    def test_explain_surfaces_the_recovery(self, instance, monkeypatch):
        from repro.engine import explain_text

        query, db, _serial = instance
        sid = _victim(query, db, 2)
        _arm(monkeypatch, f"crash@{sid}*inf")
        result = execute(query, db, algorithm="hash", workers=2)
        text = explain_text(result.plan, result)
        assert "faults" in text
        assert "workers respawned" in text
        assert "run serially in-parent" in text
        assert "parent (serial)" in text

    def test_fault_free_report_stays_silent(self, instance):
        from repro.engine import explain_text

        query, db, _serial = instance
        result = execute(query, db, algorithm="hash", workers=2)
        assert not result.parallel.had_faults
        assert "faults" not in explain_text(result.plan, result)
        assert "respawn" not in result.parallel.summary()


class TestFaultSpecParsing:
    def test_grammar(self):
        fp = faults.parse_faults(
            "crash@3,hang@7*2,error@1*inf,unpicklable@2*always,"
            "spawn*2,shm-export"
        )
        assert fp.crash == {3: 1}
        assert fp.hang == {7: 2}
        assert fp.error == {1: faults.ALWAYS}
        assert fp.unpicklable == {2: faults.ALWAYS}
        assert fp.spawn == 2
        assert fp.shm_export == 1

    def test_attempt_counting(self):
        fp = faults.parse_faults("crash@5*2")
        assert fp.should_crash(5, 0)
        assert fp.should_crash(5, 1)
        assert not fp.should_crash(5, 2)
        assert not fp.should_crash(4, 0)

    def test_countdowns_consume(self):
        fp = faults.parse_faults("spawn*2")
        assert fp.take_spawn_failure()
        assert fp.take_spawn_failure()
        assert not fp.take_spawn_failure()
        always = faults.parse_faults("shm-export*inf")
        for _ in range(5):
            assert always.take_shm_export_failure()

    def test_rejects_unknown_kind_and_missing_shard(self):
        with pytest.raises(ValueError):
            faults.parse_faults("explode@3")
        with pytest.raises(ValueError):
            faults.parse_faults("crash*2")

    def test_empty_spec_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        faults.reset()
        assert faults.plan() is None
