"""Worker metrics shipping: every counter a worker moves comes home.

Workers run in forked processes, so their registry traffic — kernel
compiles, view builds, cache misses — would vanish with the process if
it weren't shipped.  The scheduler piggybacks each shard's registry
delta on its :class:`~repro.parallel.workers.ShardResult` and the
parent folds it in twice: under the aggregate name, and under a
``worker.<wid>.*`` breakdown.  These tests pin the accounting rules:

* Σ over workers of a breakdown counter == the worker-shipped part of
  the aggregate (never more: nothing is double-counted);
* backend-internal counters that travel via shard *stats* (tetris
  resolutions) are counted exactly once, matching the merged stats;
* dispatch attempts vs successes tell the supervision story without
  double-counting quarantined shards (the PR's accounting fix);
* the rules survive crash-respawn recovery.
"""

import os
import signal

import pytest

from repro.engine import clear_plan_cache, execute, plan_query
from repro.obs.metrics import REGISTRY
from repro.parallel import faults, shutdown_pools
from repro.parallel.merge import prepare_jobs
from repro.workloads.generators import graph_triangle_db, random_graph_edges

WORKER_COUNTS = (2, 4)


@pytest.fixture(autouse=True)
def _backstop():
    def boom(signum, frame):  # pragma: no cover - only on regression
        raise TimeoutError("shipping test exceeded the 90s backstop")

    old = signal.signal(signal.SIGALRM, boom)
    signal.alarm(90)
    yield
    signal.alarm(0)
    signal.signal(signal.SIGALRM, old)


@pytest.fixture(autouse=True)
def _isolation(monkeypatch):
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.reset()
    shutdown_pools()
    clear_plan_cache()
    yield
    os.environ.pop(faults.FAULTS_ENV, None)
    faults.reset()
    shutdown_pools()


@pytest.fixture()
def instance():
    query, db = graph_triangle_db(random_graph_edges(40, 100, seed=7))
    serial = execute(query, db, algorithm="hash").tuples
    return query, db, serial


def _delta_around(fn):
    before = REGISTRY.snapshot()
    out = fn()
    return out, REGISTRY.snapshot().since(before)


def _breakdown_sums(delta):
    """{counter name: Σ over workers of its worker.<wid>.* breakdown}"""
    sums = {}
    for name, value in delta.as_dict().items():
        if name.startswith("worker.") and value:
            _, _, rest = name.split(".", 2)
            sums[rest] = sums.get(rest, 0) + value
    return sums


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_worker_deltas_fold_into_aggregates(instance, workers):
    query, db, serial = instance
    result, delta = _delta_around(
        lambda: execute(query, db, algorithm="hash", workers=workers)
    )
    assert result.parallel is not None
    assert result.tuples == serial
    sums = _breakdown_sums(delta)
    assert sums, "workers shipped no counters"
    for rest, total in sums.items():
        # The aggregate holds the shipped traffic plus whatever the
        # parent did itself — never less than the breakdown sum.
        assert delta.as_dict().get(rest, 0) >= total - 1e-9, rest
    assert delta["engine.queries"] == 1
    assert delta["engine.rows.returned"] == len(serial)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_faultfree_kernel_traffic_is_exactly_the_breakdown(
    instance, workers
):
    """On a clean run the parent compiles nothing for dispatched
    shards, so the kernel-compile aggregate is exactly the shipped sum
    — equality catches both a lost delta and a double count."""
    query, db, _ = instance
    _, delta = _delta_around(
        lambda: execute(query, db, algorithm="hash", workers=workers)
    )
    sums = _breakdown_sums(delta)
    kernel_names = [n for n in sums if n.startswith("kernels.compile.")]
    assert kernel_names, "expected workers to ship kernel-cache traffic"
    for rest in kernel_names:
        assert delta.as_dict().get(rest, 0) == sums[rest], rest


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_stats_borne_counters_count_once(workers):
    """tetris.* travels via merged shard stats, not worker registries;
    the registry delta must equal the merged stats exactly (a shipping
    bug here would double it)."""
    query, db = graph_triangle_db(random_graph_edges(30, 80, seed=17))
    result, delta = _delta_around(
        lambda: execute(
            query, db, algorithm="tetris-preloaded", workers=workers
        )
    )
    assert result.stats.resolutions > 0
    assert delta["tetris.resolutions"] == result.stats.resolutions


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_dispatch_accounting_clean_run(instance, workers):
    query, db, _ = instance
    result, delta = _delta_around(
        lambda: execute(query, db, algorithm="hash", workers=workers)
    )
    report = result.parallel
    assert report.dispatch_attempts == report.dispatch_successes > 0
    assert delta["parallel.dispatch.attempts"] == report.dispatch_attempts
    assert (
        delta["parallel.dispatch.successes"] == report.dispatch_successes
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_quarantine_does_not_double_count_dispatches(
    instance, workers, monkeypatch
):
    """A deterministic worker error quarantines the shard to in-parent
    execution; that re-execution is not a dispatch, so attempts −
    successes is exactly the failed protocol exchanges."""
    query, db, serial = instance
    plan = plan_query(query, db, algorithm="hash", workers=workers)
    _, jobs, _ = prepare_jobs(query, db, plan)
    sid = max(jobs, key=lambda j: j.weight).shard_id
    monkeypatch.setenv(faults.FAULTS_ENV, f"error@{sid}*inf")
    faults.reset()
    shutdown_pools()
    result = execute(query, db, algorithm="hash", workers=workers)
    assert result.tuples == serial
    report = result.parallel
    assert report.shards_quarantined >= 1
    failed = report.dispatch_attempts - report.dispatch_successes
    assert failed == report.shards_quarantined


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_crash_respawn_keeps_accounting_consistent(
    instance, workers, monkeypatch
):
    """A crashed worker ships nothing for the lost shard; the respawned
    worker's successful retry ships once.  Attempts exceed successes by
    the crashes, and breakdown sums still never exceed aggregates."""
    query, db, serial = instance
    plan = plan_query(query, db, algorithm="hash", workers=workers)
    _, jobs, _ = prepare_jobs(query, db, plan)
    sid = max(jobs, key=lambda j: j.weight).shard_id
    monkeypatch.setenv(faults.FAULTS_ENV, f"crash@{sid}*2")
    faults.reset()
    shutdown_pools()
    result, delta = _delta_around(
        lambda: execute(query, db, algorithm="hash", workers=workers)
    )
    assert result.tuples == serial
    report = result.parallel
    assert report.worker_respawns >= 2
    failed = report.dispatch_attempts - report.dispatch_successes
    assert failed >= 2
    for rest, total in _breakdown_sums(delta).items():
        assert delta.as_dict().get(rest, 0) >= total - 1e-9, rest
