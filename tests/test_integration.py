"""Integration tests: full pipelines across module boundaries.

Each test exercises a realistic end-to-end path — data loading, index
construction, structural analysis, join evaluation, proof verification —
rather than one module in isolation.
"""

import random

import pytest

from repro.core.certificates import minimal_certificate
from repro.core.resolution import ResolutionStats
from repro.core.trace import TracingResolver
from repro.indexes.oracle import (
    QueryGapOracle,
    build_all_order_btrees,
    build_btree_indexes,
    build_dyadic_indexes,
    default_gao,
)
from repro.joins.leapfrog import join_leapfrog
from repro.joins.tetris_join import join_tetris, make_oracle
from repro.joins.yannakakis import join_yannakakis
from repro.relational.agm import agm_bound
from repro.relational.hypergraph import Hypergraph
from repro.relational.io import ValueDictionary, relation_from_rows
from repro.relational.query import (
    Database,
    JoinQuery,
    evaluate_reference,
    triangle_query,
)
from repro.relational.schema import Domain, RelationSchema
from repro.workloads.generators import (
    agm_tight_triangle,
    graph_triangle_db,
    power_law_graph_edges,
)


class TestGraphPipeline:
    def test_triangle_counting_pipeline(self):
        """Graph → dictionary encoding → indexes → Tetris → decode."""
        edges = power_law_graph_edges(60, 2, seed=3)
        named = [(f"u{a}", f"u{b}") for a, b in edges]
        dictionary = ValueDictionary()
        encoded = [dictionary.encode_row(e) for e in named]
        query, db = graph_triangle_db(encoded)
        tetris = join_tetris(query, db)
        leapfrog = join_leapfrog(query, db)
        assert tetris.tuples == leapfrog
        # Every output decodes back to graph vertices.
        for t in tetris.tuples[:10]:
            decoded = dictionary.decode_row(t)
            assert all(v.startswith("u") for v in decoded)

    def test_agm_bound_respected_on_graphs(self):
        edges = power_law_graph_edges(40, 2, seed=1)
        query, db = graph_triangle_db(edges)
        result = join_tetris(query, db)
        assert len(result) <= agm_bound(query, db) + 1e-6


class TestIndexInterchangeability:
    """Appendix B.2: any mix of indexes yields the same join."""

    def test_mixed_index_oracle(self):
        query = triangle_query()
        rng = random.Random(0)
        depth = 4
        db = Database(
            [
                Relation_(atom, rng, depth)
                for atom in query.atoms
            ]
        )
        expected = evaluate_reference(query, db)
        gao = default_gao(query)
        btrees = build_btree_indexes(query, db, gao)
        dyadics = build_dyadic_indexes(query, db)
        # Mix: R via B-tree, S via dyadic, T via both (two indexes).
        mixed = [btrees[0], dyadics[1], btrees[2], dyadics[2]]
        oracle = QueryGapOracle(query, mixed)
        from repro.core.tetris import TetrisEngine

        engine = TetrisEngine(3, depth)
        out = engine.run(oracle, preload=True, one_pass=True)
        assert sorted(out) == expected

    def test_richer_indexes_shrink_certificate(self):
        """Adding an index can only shrink the *optimal* certificate.

        On the MSB-complement relation (Figure 5a) the (A,B) B-tree alone
        needs Θ(2^{d-1}) boxes while adding the quadtree's two coarse
        boxes collapses the certificate to 2 (Example B.8).
        """
        from repro.indexes.btree import BTreeIndex
        from repro.indexes.dyadic_index import DyadicTreeIndex
        from repro.relational.relation import Relation

        depth, side = 3, 8
        msb = [
            (a, b)
            for a in range(side)
            for b in range(side)
            if (a >> 2) != (b >> 2)
        ]
        rel = Relation(
            RelationSchema("R", ("A", "B")), msb, Domain(depth)
        )
        bt = [b for b, _ in BTreeIndex(rel, ("A", "B")).gap_boxes()]
        quad = [b for b, _ in DyadicTreeIndex(rel).gap_boxes()]
        cert_single = minimal_certificate(bt, 2, depth)
        cert_multi = minimal_certificate(bt + quad, 2, depth)
        assert len(cert_multi) == 2
        assert len(cert_multi) < len(cert_single)

    def test_all_order_btrees_build(self):
        """Every sort order per atom loads into one oracle (Example B.7)."""
        query = triangle_query()
        rng = random.Random(5)
        depth = 3
        db = Database(
            [Relation_(atom, rng, depth) for atom in query.atoms]
        )
        multi = QueryGapOracle(query, build_all_order_btrees(query, db))
        assert len(multi.indexes) == 6  # two orders × three atoms
        expected = evaluate_reference(query, db)
        from repro.core.tetris import TetrisEngine

        engine = TetrisEngine(3, depth)
        out = engine.run(multi, preload=True, one_pass=True)
        assert sorted(out) == expected


def Relation_(atom, rng, depth):
    from repro.relational.relation import Relation

    rows = {
        tuple(rng.randrange(1 << depth) for _ in atom.attrs)
        for _ in range(6)
    }
    return Relation(atom, rows, Domain(depth))


class TestProofPipeline:
    def test_join_produces_verifiable_proof(self):
        """The engine's internal reasoning is a valid resolution proof."""
        query, db = agm_tight_triangle(3)
        oracle, gao = make_oracle(query, db)
        from repro.core.tetris import TetrisEngine

        engine = TetrisEngine(
            3, db.domain.depth,
            sao=tuple(oracle.attrs.index(a) for a in gao),
        )
        tracer = TracingResolver(engine.stats)
        engine._resolver = tracer
        out = engine.run(oracle, preload=True, one_pass=True)
        assert sorted(out) == evaluate_reference(query, db)
        tracer.proof.verify()
        assert tracer.proof.is_ordered()


class TestWidthDrivenDispatch:
    """The structural analysis selects the right SAO per Table 1 row."""

    def test_acyclic_gets_gyo_order(self):
        from repro.relational.query import path_query

        gao = default_gao(path_query(3))
        h = Hypergraph.of_query(path_query(3))
        assert h.induced_width(gao) == 1

    def test_cyclic_gets_treewidth_order(self):
        gao = default_gao(triangle_query())
        h = Hypergraph.of_query(triangle_query())
        assert h.induced_width(gao) == 2


class TestLargerQueries:
    def test_five_atom_query(self):
        """A 5-atom, 5-variable mixed query, all algorithms agree."""
        atoms = [
            RelationSchema("R1", ("A", "B")),
            RelationSchema("R2", ("B", "C")),
            RelationSchema("R3", ("C", "D")),
            RelationSchema("R4", ("D", "E")),
            RelationSchema("R5", ("B", "D")),
        ]
        query = JoinQuery(atoms)
        rng = random.Random(11)
        depth = 3
        db = Database(
            [Relation_(atom, rng, depth) for atom in atoms]
        )
        expected = evaluate_reference(query, db)
        assert join_tetris(query, db).tuples == expected
        assert join_leapfrog(query, db) == expected
        assert (
            join_tetris(query, db, variant="reloaded").tuples == expected
        )

    def test_ternary_relation_query(self):
        """Non-binary atoms: R(A,B,C) ⋈ S(C,D) exercises arity-3 paths."""
        atoms = [
            RelationSchema("R", ("A", "B", "C")),
            RelationSchema("S", ("C", "D")),
        ]
        query = JoinQuery(atoms)
        rng = random.Random(2)
        depth = 3
        db = Database([Relation_(atom, rng, depth) for atom in atoms])
        expected = evaluate_reference(query, db)
        assert join_tetris(query, db).tuples == expected
        assert join_yannakakis(query, db) == expected
        assert join_leapfrog(query, db) == expected
