"""Quickstart: evaluate a triangle join with Tetris.

Builds the running example of the paper — the triangle query
Q△ = R(A,B) ⋈ S(B,C) ⋈ T(A,C) — on a small graph, evaluates it with
every Tetris variant and every baseline, and prints the resolution
statistics that Lemma 4.5 ties to the runtime.

Run:  python examples/quickstart.py
"""

from repro import (
    Database,
    Domain,
    Relation,
    agm_bound,
    join_hash,
    join_leapfrog,
    join_nested_loop,
    join_tetris,
    triangle_query,
)


def main() -> None:
    query = triangle_query()
    print(f"Query: {query}")

    # A small graph: one triangle (0,1,2), one square 3-4-5-6, chords.
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (5, 6), (3, 6),
             (2, 3), (1, 5)]
    sym = sorted({(a, b) for a, b in edges} | {(b, a) for a, b in edges})
    domain = Domain.for_values(6)
    db = Database(
        [Relation(atom, sym, domain) for atom in query.atoms]
    )
    print(f"Input: {db.total_tuples} tuples over domain depth "
          f"{domain.depth}; AGM bound = {agm_bound(query, db):.1f}")

    # Tetris-Preloaded: the worst-case-optimal configuration (§4.3).
    result = join_tetris(query, db, variant="preloaded")
    print(f"\nTetris-Preloaded found {len(result)} output tuples "
          f"(GAO {result.gao}):")
    for t in result:
        print(f"  {dict(zip(result.variables, t))}")
    print(f"  stats: {result.stats.summary()}")

    # Tetris-Reloaded: the certificate-based configuration (§4.4).
    reloaded = join_tetris(query, db, variant="reloaded")
    print(f"\nTetris-Reloaded loaded only "
          f"{reloaded.stats.boxes_loaded} gap boxes on demand "
          f"({reloaded.stats.summary()})")

    # The baselines agree.
    for name, algo in [
        ("Leapfrog Triejoin ", join_leapfrog),
        ("binary hash plan  ", join_hash),
        ("nested loops      ", join_nested_loop),
    ]:
        out = algo(query, db)
        marker = "ok" if out == result.tuples else "MISMATCH"
        print(f"{name}: {len(out)} tuples [{marker}]")


if __name__ == "__main__":
    main()
