"""Triangle listing on a synthetic social network.

The paper's footnote 1 reports that Tetris-style join processing sped up
graph-pattern queries on social-network data in LogicBlox.  This example
reproduces the setup with a synthetic power-law (Barabási–Albert) graph:
triangle listing as the join R(A,B) ⋈ S(B,C) ⋈ T(A,C) with R = S = T the
edge relation.

It contrasts the worst-case-optimal strategies (Tetris, Leapfrog) with a
binary hash-join plan, whose intermediate result — the wedge count — can
dwarf both input and output on skewed graphs.

Run:  python examples/social_network_triangles.py
"""

import time

from repro import Database, Domain, Relation, join_hash, join_leapfrog, \
    join_tetris, triangle_query
from repro.joins.hashjoin import intermediate_sizes
from repro.workloads.generators import power_law_graph_edges


def main() -> None:
    n_vertices, attach = 120, 3
    edges = power_law_graph_edges(n_vertices, attach, seed=7)
    sym = sorted({(a, b) for a, b in edges} | {(b, a) for a, b in edges})

    query = triangle_query()
    domain = Domain.for_values(n_vertices - 1)
    db = Database([Relation(atom, sym, domain) for atom in query.atoms])
    print(
        f"Power-law graph: {n_vertices} vertices, {len(edges)} edges "
        f"({db.total_tuples} directed tuples per relation)"
    )

    t0 = time.perf_counter()
    tetris = join_tetris(query, db, variant="preloaded")
    t_tetris = time.perf_counter() - t0
    print(
        f"\nTetris      : {len(tetris):5d} triangles (×6 orientations) "
        f"in {t_tetris:6.3f}s, {tetris.stats.resolutions} resolutions"
    )

    t0 = time.perf_counter()
    leapfrog = join_leapfrog(query, db)
    t_lf = time.perf_counter() - t0
    print(f"Leapfrog    : {len(leapfrog):5d} triangles in {t_lf:6.3f}s")

    t0 = time.perf_counter()
    hashed = join_hash(query, db)
    t_hash = time.perf_counter() - t0
    sizes = intermediate_sizes(query, db)
    print(
        f"Hash plan   : {len(hashed):5d} triangles in {t_hash:6.3f}s, "
        f"intermediates {sizes}"
    )
    blowup = max(sizes) / max(len(hashed), 1)
    print(
        f"\nThe binary plan materialized {max(sizes)} wedges — "
        f"{blowup:.1f}× the output. Worst-case-optimal joins never do."
    )
    assert tetris.tuples == leapfrog == hashed


if __name__ == "__main__":
    main()
