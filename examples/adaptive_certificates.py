"""Beyond worst-case: work proportional to the certificate, not the data.

Section 4.4's headline: on treewidth-1 queries Tetris-Reloaded runs in
Õ(|C| + Z) where C is the box certificate — which can be O(1) even as the
input grows without bound.  This example builds the *split* family
(R's join-attribute values live in the lower half of the domain, S's in
the upper half, so two coarse gap boxes certify an empty join), sweeps N
over two orders of magnitude, and shows that the number of gap boxes
Tetris-Reloaded touches stays constant while a worst-case-optimal
baseline scans the data.

Run:  python examples/adaptive_certificates.py
"""

import time

from repro import ResolutionStats, join_leapfrog, join_tetris
from repro.workloads.generators import split_path_instance


def main() -> None:
    print("R(A,B) ⋈ S(B,C) with B-values split across domain halves")
    print("(empty output; box certificate has 2 boxes regardless of N)\n")
    header = (
        f"{'N':>7} | {'boxes loaded':>12} {'resolutions':>11} "
        f"{'tetris-reloaded':>15} | {'leapfrog':>9}"
    )
    print(header)
    print("-" * len(header))
    for m in (50, 200, 800, 3200):
        query, db, gao = split_path_instance(m, depth=12, seed=1)
        stats = ResolutionStats()
        t0 = time.perf_counter()
        result = join_tetris(
            query, db, variant="reloaded", gao=gao, stats=stats
        )
        t_tetris = time.perf_counter() - t0
        assert result.tuples == []

        t0 = time.perf_counter()
        lf = join_leapfrog(query, db, gao=gao)
        t_lf = time.perf_counter() - t0
        assert lf == []

        print(
            f"{db.total_tuples:>7} | {stats.boxes_loaded:>12} "
            f"{stats.resolutions:>11} {t_tetris:>14.4f}s | "
            f"{t_lf:>8.4f}s"
        )
    print(
        "\nThe certificate column is flat: Tetris-Reloaded's work is "
        "Õ(|C| + Z), independent of N (Theorem 4.7)."
    )


if __name__ == "__main__":
    main()
