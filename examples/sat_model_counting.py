"""Tetris as DPLL with clause learning: #SAT model counting (§4.2.4).

Encodes CNF clauses as dyadic boxes in the Boolean cube (the negation of
a clause is a box — Example 4.1), then lets Tetris enumerate the points
covered by no clause box: the satisfying assignments.  Cross-checks
against a classic DPLL counter and brute force.

Run:  python examples/sat_model_counting.py
"""

from repro.core.resolution import ResolutionStats
from repro.sat import (
    CNF,
    clause_to_box,
    count_models_dpll,
    count_models_tetris,
    enumerate_models_tetris,
    random_cnf,
)


def main() -> None:
    # The paper's Example 4.1 resolution, as clauses.
    cnf = CNF(4, [[1, 2], [-1, 2, 3, -4]])
    print("Clauses and their falsifying boxes:")
    for clause in cnf.clauses:
        pretty = " ∨ ".join(
            (f"x{l}" if l > 0 else f"¬x{-l}") for l in sorted(clause, key=abs)
        )
        print(f"  ({pretty})  ↦  box {clause_to_box(clause, 4)}")

    stats = ResolutionStats()
    tetris_count = count_models_tetris(cnf, stats=stats)
    print(
        f"\n#SAT via Tetris: {tetris_count} models "
        f"({stats.resolutions} geometric resolutions — "
        f"each one a learned clause)"
    )
    print(f"#SAT via DPLL  : {count_models_dpll(cnf)} models")
    print(f"brute force    : {cnf.count_models_naive()} models")

    # A slightly larger random 3-CNF.
    print("\nRandom 3-CNF sweep (12 variables):")
    print(f"{'clauses':>8} {'tetris #SAT':>12} {'dpll #SAT':>10} "
          f"{'resolutions':>12}")
    for num_clauses in (10, 20, 40, 60):
        rnd = random_cnf(12, num_clauses, width=3, seed=num_clauses)
        stats = ResolutionStats()
        t = count_models_tetris(rnd, stats=stats)
        d = count_models_dpll(rnd)
        assert t == d
        print(f"{num_clauses:>8} {t:>12} {d:>10} {stats.resolutions:>12}")

    models = enumerate_models_tetris(CNF(3, [[1], [2, 3]]))
    print(f"\nModels of x1 ∧ (x2 ∨ x3): {models}")


if __name__ == "__main__":
    main()
