"""The geometry of indexes: gap boxes from B-trees, quadtrees, KD-trees.

Recreates Figures 1 and 3 of the paper: the same relation stored in
different indexes yields completely different gap-box sets, and the
choice changes the achievable box certificate (Examples B.3 / B.7 / B.8).
Renders the 2-D gap boxes as ASCII art and reports per-index box counts
and certificate sizes.

Run:  python examples/index_gap_geometry.py
"""

from repro import Domain, Relation, RelationSchema
from repro.core import intervals as dy
from repro.core.certificates import minimal_certificate
from repro.indexes import BTreeIndex, DyadicTreeIndex, KDTreeIndex

DEPTH = 3
SIDE = 1 << DEPTH


def render(rel, gap_boxes) -> str:
    """ASCII picture: '#' = tuple, digits = how many gap boxes cover."""
    grid = [["·"] * SIDE for _ in range(SIDE)]
    for box, _ in gap_boxes:
        pa, pb = box  # packed marker-bit intervals
        alo, ahi = dy.pto_range(pa, DEPTH)
        blo, bhi = dy.pto_range(pb, DEPTH)
        for a in range(alo, ahi + 1):
            for b in range(blo, bhi + 1):
                cell = grid[SIDE - 1 - b][a]
                grid[SIDE - 1 - b][a] = (
                    "1" if cell == "·" else str(min(int(cell) + 1, 9))
                )
    for a, b in rel:
        grid[SIDE - 1 - b][a] = "#"
    return "\n".join(" ".join(row) for row in grid)


def main() -> None:
    # The running example (Figure 1a): a cross of tuples.
    tuples = [(3, b) for b in (1, 3, 5, 7)] + [
        (a, 3) for a in (1, 3, 5, 7)
    ]
    rel = Relation(RelationSchema("R", ("A", "B")), tuples, Domain(DEPTH))

    indexes = {
        "B-tree (A,B)  [Fig 1b]": BTreeIndex(rel, ("A", "B")),
        "B-tree (B,A)  [Fig 3a]": BTreeIndex(rel, ("B", "A")),
        "quadtree      [Fig 3b]": DyadicTreeIndex(rel),
        "KD-tree              ": KDTreeIndex(rel),
    }
    for name, idx in indexes.items():
        boxes = list(idx.gap_boxes())
        cert = minimal_certificate([b for b, _ in boxes], 2, DEPTH)
        print(f"\n{name}: {len(boxes)} gap boxes, "
              f"minimal certificate {len(cert)}")
        # B-tree (B,A) boxes come in (B,A) order; swap for rendering.
        if name.startswith("B-tree (B,A)"):
            rendered = [((b[1], b[0]), a) for b, a in boxes]
        else:
            rendered = boxes
        print(render(rel, rendered))

    # Example B.7/B.8: on the MSB-complement relation, the dyadic index's
    # 2 boxes beat every B-tree.
    msb = [
        (a, b)
        for a in range(SIDE)
        for b in range(SIDE)
        if (a >> (DEPTH - 1)) != (b >> (DEPTH - 1))
    ]
    rel2 = Relation(RelationSchema("M", ("A", "B")), msb, Domain(DEPTH))
    print("\nMSB-complement relation (Figure 5a's R):")
    for name, idx in [
        ("B-tree (A,B)", BTreeIndex(rel2, ("A", "B"))),
        ("quadtree    ", DyadicTreeIndex(rel2)),
    ]:
        print(f"  {name}: {idx.count_gap_boxes()} gap boxes")
    print(
        "  → a richer index can shrink the certificate from Θ(N) to O(1)\n"
        "    (Proposition B.6; this is why the paper's certificates are\n"
        "    index-dependent)."
    )


if __name__ == "__main__":
    main()
