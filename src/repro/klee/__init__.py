"""Klee's measure problem over the Boolean semiring."""

from repro.klee.measure import (
    klee_covers_space,
    klee_measure_sweep,
    klee_uncovered_count,
)

__all__ = [
    "klee_covers_space",
    "klee_measure_sweep",
    "klee_uncovered_count",
]
