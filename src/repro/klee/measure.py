"""Klee's measure problem over the Boolean semiring (§2, Corollary F.8).

Given n-dimensional boxes, decide whether their union covers the whole
space (the Boolean box cover problem) and compute the measure of the
union.  Tetris solves the Boolean question in Õ(|C|^{n/2}) via load
balancing; we also provide a classical coordinate-compression sweep as an
exact reference for the measure itself.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core import intervals as dy
from repro.core.balance import tetris_preloaded_lb
from repro.core.boxes import BoxTuple
from repro.core.resolution import ResolutionStats
from repro.core.tetris import boolean_box_cover


def klee_covers_space(
    boxes: Sequence[BoxTuple],
    ndim: int,
    depth: int,
    use_load_balancing: bool = True,
    stats: Optional[ResolutionStats] = None,
) -> bool:
    """Boolean Klee: does the union of boxes cover the whole space?

    With load balancing this is the Õ(|C|^{n/2}) bound of Corollary F.8
    (matching Chan's O(m^{n/2}) but in certificate size).
    """
    if not use_load_balancing or ndim <= 2:
        return boolean_box_cover(boxes, ndim, depth, stats=stats)
    uncovered = tetris_preloaded_lb(boxes, ndim, depth, stats=stats)
    return not uncovered


def klee_measure_sweep(
    boxes: Sequence[BoxTuple], ndim: int, depth: int
) -> int:
    """Exact measure of the union by coordinate-compression sweeping.

    Recursive slab decomposition: split on the distinct coordinates of
    the first dimension, recurse on the remaining dimensions.  O(m^n)
    worst case; the classical baseline the Overmars–Yap / Chan line
    improves on.
    """
    ranges = [
        tuple(dy.to_range(iv, depth) for iv in box) for box in boxes
    ]
    side = 1 << depth

    def measure(dim: int, active: List[Tuple[Tuple[int, int], ...]]) -> int:
        if not active:
            return 0
        if dim == ndim - 1:
            # 1-D: merge intervals.
            spans = sorted(r[dim] for r in active)
            total = 0
            cur_lo, cur_hi = spans[0]
            for lo, hi in spans[1:]:
                if lo > cur_hi + 1:
                    total += cur_hi - cur_lo + 1
                    cur_lo, cur_hi = lo, hi
                else:
                    cur_hi = max(cur_hi, hi)
            total += cur_hi - cur_lo + 1
            return total
        cuts = sorted(
            {r[dim][0] for r in active}
            | {r[dim][1] + 1 for r in active}
        )
        total = 0
        for lo, hi_excl in zip(cuts, cuts[1:]):
            slab = [
                r for r in active if r[dim][0] <= lo and r[dim][1] >= hi_excl - 1
            ]
            if slab:
                total += (hi_excl - lo) * measure(dim + 1, slab)
        return total

    return measure(0, ranges)


def klee_uncovered_count(
    boxes: Sequence[BoxTuple], ndim: int, depth: int
) -> int:
    """Points *not* covered by the union (measure of the complement)."""
    return (1 << (depth * ndim)) - klee_measure_sweep(boxes, ndim, depth)
