"""Index structures that expose their gaps as dyadic boxes."""

from repro.indexes.btree import BTreeIndex
from repro.indexes.dyadic_index import DyadicTreeIndex, KDTreeIndex
from repro.indexes.gaps import complement_ranges, dyadic_gaps
from repro.indexes.oracle import (
    QueryGapOracle,
    build_all_order_btrees,
    build_btree_indexes,
    build_dyadic_indexes,
    build_kdtree_indexes,
    default_gao,
)

__all__ = [
    "BTreeIndex",
    "DyadicTreeIndex",
    "KDTreeIndex",
    "QueryGapOracle",
    "build_all_order_btrees",
    "build_btree_indexes",
    "build_dyadic_indexes",
    "build_kdtree_indexes",
    "complement_ranges",
    "default_gao",
    "dyadic_gaps",
]
