"""Quadtree-style dyadic index (Figure 3b) — gap boxes as empty cells.

A *dyadic index* recursively subdivides the relation's box space into
2^k equal sub-cells (a quadtree for binary relations, an octree for
ternary, ...).  A cell containing no tuples is emitted as a single gap box
— this is how Figure 3b covers the running-example relation with far fewer
boxes than either B-tree order, and how Example B.8's "non-B-tree gap
boxes" arise.

The index also answers lazy probes: the gap box containing a non-tuple
point is the *largest* empty cell on the point's root-to-leaf path.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.core.boxes import BoxTuple
from repro.core.intervals import Interval
from repro.relational.relation import Relation


class DyadicTreeIndex:
    """Quadtree-like index: all components subdivide in lock-step."""

    def __init__(self, relation: Relation):
        self.relation = relation
        self.depth = relation.domain.depth
        self.arity = relation.arity
        self._tuples = sorted(relation.tuples())

    def _cell_tuples(
        self, cell: Tuple[Interval, ...], tuples: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[int, ...]]:
        depth = self.depth
        out = []
        for t in tuples:
            for (value, length), coord in zip(cell, t):
                if (coord >> (depth - length)) != value:
                    break
            else:
                out.append(t)
        return out

    def gap_boxes(self) -> Iterator[Tuple[Tuple[Interval, ...], Tuple[str, ...]]]:
        """Empty cells of the recursive 2^k-ary subdivision, maximal first."""
        depth = self.depth
        arity = self.arity
        attrs = self.relation.attrs

        def walk(cell: Tuple[Interval, ...], level: int, tuples):
            if not tuples:
                yield cell
                return
            if level == depth:
                return  # a unit cell holding a tuple
            children_count = 1 << arity
            for mask in range(children_count):
                child = tuple(
                    ((value << 1) | ((mask >> i) & 1), length + 1)
                    for i, (value, length) in enumerate(cell)
                )
                sub = self._cell_tuples(child, tuples)
                yield from walk(child, level + 1, sub)

        root = ((0, 0),) * arity
        if not self._tuples and depth == 0:
            yield root, attrs
            return
        for box in walk(root, 0, self._tuples):
            yield box, attrs

    def gap_boxes_containing(
        self, point: Sequence[int]
    ) -> List[Tuple[Interval, ...]]:
        """The maximal empty cell containing the probe point, or ``[]``."""
        depth = self.depth
        cell: Tuple[Interval, ...] = ((0, 0),) * self.arity
        tuples = self._tuples
        for level in range(depth + 1):
            tuples = self._cell_tuples(cell, tuples)
            if not tuples:
                return [cell]
            if level == depth:
                return []
            cell = tuple(
                (
                    (value << 1)
                    | ((point[i] >> (depth - length - 1)) & 1),
                    length + 1,
                )
                for i, (value, length) in enumerate(cell)
            )
        return []

    def count_gap_boxes(self) -> int:
        return sum(1 for _ in self.gap_boxes())


class KDTreeIndex:
    """KD-tree index: subdivide one dimension at a time, round-robin.

    Cells are dyadic boxes whose component lengths differ by at most one;
    empty cells are gap boxes.  Sits between the B-tree (one long
    dimension) and the quadtree (all dimensions at once) in the index
    taxonomy of Section 1.
    """

    def __init__(self, relation: Relation):
        self.relation = relation
        self.depth = relation.domain.depth
        self.arity = relation.arity
        self._tuples = sorted(relation.tuples())

    def _in_cell(self, cell, t) -> bool:
        depth = self.depth
        for (value, length), coord in zip(cell, t):
            if (coord >> (depth - length)) != value:
                return False
        return True

    def gap_boxes(self) -> Iterator[Tuple[Tuple[Interval, ...], Tuple[str, ...]]]:
        attrs = self.relation.attrs
        depth = self.depth
        arity = self.arity
        total = depth * arity

        def walk(cell, level, tuples):
            if not tuples:
                yield cell
                return
            if level == total:
                return
            axis = level % arity
            value, length = cell[axis]
            for bit in (0, 1):
                child = (
                    cell[:axis]
                    + (((value << 1) | bit, length + 1),)
                    + cell[axis + 1:]
                )
                sub = [t for t in tuples if self._in_cell(child, t)]
                yield from walk(child, level + 1, sub)

        root = ((0, 0),) * arity
        for box in walk(root, 0, self._tuples):
            yield box, attrs

    def gap_boxes_containing(
        self, point: Sequence[int]
    ) -> List[Tuple[Interval, ...]]:
        depth = self.depth
        arity = self.arity
        cell: Tuple[Interval, ...] = ((0, 0),) * arity
        tuples = [t for t in self._tuples]
        for level in range(depth * arity + 1):
            tuples = [t for t in tuples if self._in_cell(cell, t)]
            if not tuples:
                return [cell]
            if level == depth * arity:
                return []
            axis = level % arity
            value, length = cell[axis]
            bit = (point[axis] >> (depth - length - 1)) & 1
            cell = (
                cell[:axis]
                + (((value << 1) | bit, length + 1),)
                + cell[axis + 1:]
            )
        return []

    def count_gap_boxes(self) -> int:
        return sum(1 for _ in self.gap_boxes())
