"""Quadtree-style dyadic index (Figure 3b) — gap boxes as empty cells.

A *dyadic index* recursively subdivides the relation's box space into
2^k equal sub-cells (a quadtree for binary relations, an octree for
ternary, ...).  A cell containing no tuples is emitted as a single gap box
— this is how Figure 3b covers the running-example relation with far fewer
boxes than either B-tree order, and how Example B.8's "non-B-tree gap
boxes" arise.

The index also answers lazy probes: the gap box containing a non-tuple
point is the *largest* empty cell on the point's root-to-leaf path.

Cells and gap boxes are **packed** marker-bit tuples (see
:mod:`repro.core.intervals`): descending into a child cell is one shift
per component, and membership of a tuple in a cell is a shift + compare
against the point's packed form — no pair tuples anywhere on the path to
the Tetris oracle.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.core.boxes import PackedBox
from repro.core.intervals import PLAMBDA
from repro.relational.relation import Relation


class DyadicTreeIndex:
    """Quadtree-like index: all components subdivide in lock-step."""

    def __init__(self, relation: Relation):
        self.relation = relation
        self.depth = relation.domain.depth
        self.arity = relation.arity
        # The canonical sorted rows, shared zero-copy with the relation
        # (and every other schema-order consumer) — no per-build sort.
        self._tuples = relation.rows()

    def _cell_tuples(
        self, cell: PackedBox, level: int, tuples: Sequence[Tuple[int, ...]]
    ) -> List[Tuple[int, ...]]:
        # Every component of a lock-step cell has length == level.
        unit = 1 << self.depth
        shift = self.depth - level
        out = []
        for t in tuples:
            for p, coord in zip(cell, t):
                if (unit | coord) >> shift != p:
                    break
            else:
                out.append(t)
        return out

    def gap_boxes(self) -> Iterator[Tuple[PackedBox, Tuple[str, ...]]]:
        """Empty cells of the recursive 2^k-ary subdivision, maximal first."""
        depth = self.depth
        arity = self.arity
        attrs = self.relation.attrs

        def walk(cell: PackedBox, level: int, tuples):
            if not tuples:
                yield cell
                return
            if level == depth:
                return  # a unit cell holding a tuple
            children_count = 1 << arity
            for mask in range(children_count):
                child = tuple(
                    (p << 1) | ((mask >> i) & 1)
                    for i, p in enumerate(cell)
                )
                sub = self._cell_tuples(child, level + 1, tuples)
                yield from walk(child, level + 1, sub)

        root = (PLAMBDA,) * arity
        if not self._tuples and depth == 0:
            yield root, attrs
            return
        for box in walk(root, 0, self._tuples):
            yield box, attrs

    def gap_boxes_containing(
        self, point: Sequence[int]
    ) -> List[PackedBox]:
        """The maximal empty cell containing the probe point, or ``[]``."""
        depth = self.depth
        cell: PackedBox = (PLAMBDA,) * self.arity
        tuples = self._tuples
        for level in range(depth + 1):
            tuples = self._cell_tuples(cell, level, tuples)
            if not tuples:
                return [cell]
            if level == depth:
                return []
            shift = depth - level - 1
            cell = tuple(
                (p << 1) | ((point[i] >> shift) & 1)
                for i, p in enumerate(cell)
            )
        return []

    def count_gap_boxes(self) -> int:
        return sum(1 for _ in self.gap_boxes())


class KDTreeIndex:
    """KD-tree index: subdivide one dimension at a time, round-robin.

    Cells are dyadic boxes whose component lengths differ by at most one;
    empty cells are gap boxes.  Sits between the B-tree (one long
    dimension) and the quadtree (all dimensions at once) in the index
    taxonomy of Section 1.
    """

    def __init__(self, relation: Relation):
        self.relation = relation
        self.depth = relation.domain.depth
        self.arity = relation.arity
        self._tuples = relation.rows()  # shared zero-copy canonical view

    def _in_cell(self, cell: PackedBox, t) -> bool:
        depth = self.depth
        unit = 1 << depth
        for p, coord in zip(cell, t):
            if (unit | coord) >> (depth + 1 - p.bit_length()) != p:
                return False
        return True

    def gap_boxes(self) -> Iterator[Tuple[PackedBox, Tuple[str, ...]]]:
        attrs = self.relation.attrs
        depth = self.depth
        arity = self.arity
        total = depth * arity

        def walk(cell, level, tuples):
            if not tuples:
                yield cell
                return
            if level == total:
                return
            axis = level % arity
            half = cell[axis] << 1
            for bit in (0, 1):
                child = (
                    cell[:axis] + (half | bit,) + cell[axis + 1:]
                )
                sub = [t for t in tuples if self._in_cell(child, t)]
                yield from walk(child, level + 1, sub)

        root = (PLAMBDA,) * arity
        for box in walk(root, 0, self._tuples):
            yield box, attrs

    def gap_boxes_containing(
        self, point: Sequence[int]
    ) -> List[PackedBox]:
        depth = self.depth
        arity = self.arity
        cell: PackedBox = (PLAMBDA,) * arity
        tuples = list(self._tuples)
        for level in range(depth * arity + 1):
            tuples = [t for t in tuples if self._in_cell(cell, t)]
            if not tuples:
                return [cell]
            if level == depth * arity:
                return []
            axis = level % arity
            length = cell[axis].bit_length() - 1
            bit = (point[axis] >> (depth - length - 1)) & 1
            cell = (
                cell[:axis]
                + ((cell[axis] << 1) | bit,)
                + cell[axis + 1:]
            )
        return []

    def count_gap_boxes(self) -> int:
        return sum(1 for _ in self.gap_boxes())
