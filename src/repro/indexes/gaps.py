"""Gap extraction helpers: from stored values to dyadic gap intervals.

An index over an ordered domain exposes, for free, the *gaps* between the
values it stores (Section 3.2).  These helpers turn sorted value lists into
the dyadic intervals covering their complement — the raw material every
index in :mod:`repro.indexes` feeds into gap boxes.

The ``p``-prefixed variants emit **packed** marker-bit intervals (see
:mod:`repro.core.intervals`) and are what the indexes use on the hot
path, so gap boxes reach the Tetris engine without a pair-tuple
round-trip.  The pair-based helpers remain as the documented public form
(:func:`dyadic_boxes_from_ranges` is how a user hands arbitrary integer
ranges to the BCP machinery).
"""

from __future__ import annotations

import bisect

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core import intervals as dy
from repro.core.intervals import Interval, Packed


def complement_ranges(
    values: Sequence[int], depth: int
) -> List[Tuple[int, int]]:
    """Inclusive integer ranges of ``[0, 2^d)`` minus a sorted value list."""
    top = (1 << depth) - 1
    out: List[Tuple[int, int]] = []
    prev = -1
    for v in values:
        if v > prev + 1:
            out.append((prev + 1, v - 1))
        prev = v
    if prev < top:
        out.append((prev + 1, top))
    return out


def dyadic_gaps(values: Iterable[int], depth: int) -> List[Interval]:
    """Dyadic intervals covering everything *not* in ``values``.

    The input need not be sorted; duplicates are fine.  Output intervals
    are disjoint and each maximal within its gap (Proposition B.14 keeps
    the count at most ``2d`` per gap).
    """
    ordered = sorted(set(values))
    pieces: List[Interval] = []
    for lo, hi in complement_ranges(ordered, depth):
        pieces.extend(dy.decompose_range(lo, hi, depth))
    return pieces


def dyadic_boxes_from_ranges(
    ranges: Sequence[Tuple[int, int]], depth: int
) -> List[Tuple[Interval, ...]]:
    """Decompose an axis-aligned integer box into disjoint dyadic boxes.

    ``ranges`` gives one inclusive ``(lo, hi)`` range per dimension.  The
    cross product of the per-dimension decompositions realizes
    Proposition B.14's bound of at most ``(2d)^n`` dyadic boxes; an empty
    range yields no boxes.  This is how a user hands arbitrary
    (non-dyadic) gap boxes to the BCP machinery.
    """
    import itertools

    per_dim = [dy.decompose_range(lo, hi, depth) for lo, hi in ranges]
    if any(not pieces for pieces in per_dim):
        return []
    return [tuple(combo) for combo in itertools.product(*per_dim)]


def gap_piece_containing(
    values: Sequence[int], point: int, depth: int
) -> Optional[Interval]:
    """The dyadic gap interval containing ``point``, or ``None`` if stored.

    ``values`` must be sorted.  This is the O(log N + d) probe that lazy
    index oracles use: binary-search the neighbours of ``point``, decompose
    the single surrounding gap, and pick the piece containing the point.
    """
    p = pgap_piece_containing(values, point, depth)
    return None if p is None else dy.unpack(p)


# -- packed emission (hot path) ----------------------------------------------


def pdyadic_gaps(values: Iterable[int], depth: int) -> List[Packed]:
    """Packed dyadic intervals covering everything *not* in ``values``."""
    ordered = sorted(set(values))
    pieces: List[Packed] = []
    for lo, hi in complement_ranges(ordered, depth):
        pieces.extend(dy.pdecompose_range(lo, hi, depth))
    return pieces


def pgap_piece_containing(
    values: Sequence[int], point: int, depth: int
) -> Optional[Packed]:
    """Packed variant of :func:`gap_piece_containing` (sorted ``values``).

    The canonical decomposition's pieces are exactly the maximal dyadic
    intervals inside the gap, so the piece containing the probe is found
    directly: grow the probe's unit interval parent by parent while it
    still fits between the neighbouring stored values — O(piece length)
    int steps, no materialized decomposition.
    """
    i = bisect.bisect_left(values, point)
    if i < len(values) and values[i] == point:
        return None
    lo = values[i - 1] + 1 if i > 0 else 0
    hi = values[i] - 1 if i < len(values) else (1 << depth) - 1
    p = (1 << depth) | point
    plo = phi = point
    size = 1
    while p > 1:
        if p & 1:
            nlo = plo - size
            nhi = phi
        else:
            nlo = plo
            nhi = phi + size
        if nlo < lo or nhi > hi:
            break
        p >>= 1
        plo = nlo
        phi = nhi
        size <<= 1
    return p
