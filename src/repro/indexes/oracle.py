"""Gap-box oracles: the bridge from indexed relations to BCP instances.

``QueryGapOracle`` aggregates the gap boxes of every index of every input
relation (multiple indexes per relation are explicitly supported — that is
the Appendix B.2 generalization the paper advertises) and lifts them into
the query's output space with λ wildcards on the missing attributes
(Section 3.3).  It implements the interface the Tetris engine expects:

* ``containing(unit_box)`` — all gap boxes containing a probe point,
  answered *lazily* by the underlying indexes in Õ(1) per index;
* ``boxes()`` — the full materialized set B(Q), used by Tetris-Preloaded.

Everything is **packed** end to end: the indexes emit packed gap boxes,
lifting pads with the packed λ (``1``), and probe coordinates are read
straight off the packed unit components — no pair tuples between the
index layer and the Tetris engine.

Index *builds* ride the relation's order-cached columnar core: every
B-tree build reads the memoized sorted view for its attribute order and
the dyadic/kd trees share the canonical rows zero-copy, so constructing
the same oracle for repeated executions of a served workload never
re-sorts the data plane.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.boxes import PackedBox
from repro.core.intervals import PLAMBDA
from repro.indexes.btree import BTreeIndex
from repro.indexes.dyadic_index import DyadicTreeIndex, KDTreeIndex
from repro.relational.hypergraph import Hypergraph, gao_for_acyclic
from repro.relational.query import Database, JoinQuery


class QueryGapOracle:
    """Oracle access to B(Q) = ∪_R B(R) lifted into the output space."""

    def __init__(
        self,
        query: JoinQuery,
        indexes: Iterable[object],
        attrs: Optional[Sequence[str]] = None,
    ):
        self.query = query
        self.attrs: Tuple[str, ...] = (
            tuple(attrs) if attrs is not None else query.variables
        )
        self._axis = {a: i for i, a in enumerate(self.attrs)}
        self.indexes: List[object] = list(indexes)
        if not self.indexes:
            raise ValueError("at least one index is required")
        self._materialized: Optional[List[PackedBox]] = None
        # Pre-compute per-index lifting info.
        self._lift_axes: List[Tuple[int, ...]] = []
        for idx in self.indexes:
            order = self._index_attr_order(idx)
            self._lift_axes.append(tuple(self._axis[a] for a in order))

    @staticmethod
    def _index_attr_order(index: object) -> Tuple[str, ...]:
        if hasattr(index, "attr_order"):
            return tuple(index.attr_order)
        return tuple(index.relation.attrs)

    @property
    def ndim(self) -> int:
        return len(self.attrs)

    def _lift(self, box, axes) -> PackedBox:
        lifted = [PLAMBDA] * len(self.attrs)
        for p, axis in zip(box, axes):
            lifted[axis] = p
        return tuple(lifted)

    def containing(self, unit_box: PackedBox) -> List[PackedBox]:
        """All gap boxes containing the probe point, straight off the indexes.

        ``unit_box`` is packed; each probe coordinate is the packed unit
        component with its marker bit cleared.
        """
        out: List[PackedBox] = []
        for idx, axes in zip(self.indexes, self._lift_axes):
            point = tuple(
                [p ^ (1 << (p.bit_length() - 1))
                 for p in [unit_box[a] for a in axes]]
            )
            for box in idx.gap_boxes_containing(point):
                out.append(self._lift(box, axes))
        return out

    def containing_many(
        self, unit_boxes: Sequence[PackedBox]
    ) -> List[List[PackedBox]]:
        """Per-point container lists for a batch of probe points.

        Each index is visited once per *distinct* restricted probe point:
        batch points that agree on an index's attributes (sibling unit
        boxes differ in one attribute only) share the index walk and the
        lifting of its gap boxes.
        """
        results: List[List[PackedBox]] = [[] for _ in unit_boxes]
        for idx, axes in zip(self.indexes, self._lift_axes):
            memo: dict = {}
            for out, unit_box in zip(results, unit_boxes):
                point = tuple(
                    [p ^ (1 << (p.bit_length() - 1))
                     for p in [unit_box[a] for a in axes]]
                )
                lifted = memo.get(point)
                if lifted is None:
                    lifted = [
                        self._lift(box, axes)
                        for box in idx.gap_boxes_containing(point)
                    ]
                    memo[point] = lifted
                out.extend(lifted)
        return results

    def boxes(self) -> List[PackedBox]:
        """Materialize the full lifted gap-box set (cached)."""
        if self._materialized is None:
            seen = set()
            out: List[PackedBox] = []
            for idx, axes in zip(self.indexes, self._lift_axes):
                for box, _ in idx.gap_boxes():
                    lifted = self._lift(box, axes)
                    if lifted not in seen:
                        seen.add(lifted)
                        out.append(lifted)
            self._materialized = out
        return self._materialized

    def __len__(self) -> int:
        return len(self.boxes())


def build_btree_indexes(
    query: JoinQuery, db: Database, gao: Sequence[str]
) -> List[BTreeIndex]:
    """One GAO-consistent B-tree per atom (the Minesweeper setting)."""
    indexes = []
    for atom in query.atoms:
        order = tuple(a for a in gao if a in atom.attrs)
        indexes.append(BTreeIndex(db[atom.name], order))
    return indexes


def build_dyadic_indexes(
    query: JoinQuery, db: Database
) -> List[DyadicTreeIndex]:
    """One quadtree-style dyadic index per atom."""
    return [DyadicTreeIndex(db[atom.name]) for atom in query.atoms]


def build_kdtree_indexes(
    query: JoinQuery, db: Database
) -> List[KDTreeIndex]:
    """One KD-tree index per atom."""
    return [KDTreeIndex(db[atom.name]) for atom in query.atoms]


def build_all_order_btrees(
    query: JoinQuery, db: Database
) -> List[BTreeIndex]:
    """Every possible B-tree order for every atom (Example B.7's setting).

    Exponential in arity — meant for the small-arity relations of the
    paper's examples, where multiple indexes per relation shrink the box
    certificate.
    """
    import itertools

    indexes = []
    for atom in query.atoms:
        for order in itertools.permutations(atom.attrs):
            indexes.append(BTreeIndex(db[atom.name], order))
    return indexes


def default_gao(query: JoinQuery) -> Tuple[str, ...]:
    """A good global attribute order: reverse-GYO for α-acyclic queries,
    otherwise a minimum-induced-width elimination order."""
    h = Hypergraph.of_query(query)
    if h.is_alpha_acyclic():
        return gao_for_acyclic(h)
    _, order = h.treewidth()
    return tuple(order)
