"""B-tree / trie index with GAO-consistent gap boxes (Sections 3.2, B.1).

The paper's "B-tree with sort order σ" is, for gap-extraction purposes, a
trie that branches on the attributes of the relation in σ-order (Figure 11:
an unbounded-fanout B-tree).  Between any two consecutive children of a
trie node lies a *gap*: no tuple of the relation extends the node's path
with a value in that gap.  Each gap becomes a family of dyadic gap boxes

    ⟨v_1, ..., v_{k-1}, g, λ, ..., λ⟩

with unit components pinning the path, one (possibly non-trivial) dyadic
gap interval ``g``, and wildcards after — exactly the σ-consistent shape of
Definition 3.11 (Figures 1b and 3a show the two sort orders of the running
example).

Gap boxes are emitted directly in **packed** marker-bit form (see
:mod:`repro.core.intervals`): the Tetris oracle consumes them without a
pair-tuple round-trip.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core import intervals as dy
from repro.core.boxes import PackedBox
from repro.core.intervals import PLAMBDA, Packed
from repro.indexes.gaps import pdyadic_gaps, pgap_piece_containing
from repro.relational.relation import Relation


class _TrieNode:
    """One trie level: sorted child values and their subtrees."""

    __slots__ = ("keys", "children")

    def __init__(self):
        self.keys: List[int] = []
        self.children: List[Optional["_TrieNode"]] = []

    def child(self, value: int) -> Optional["_TrieNode"]:
        i = bisect.bisect_left(self.keys, value)
        if i < len(self.keys) and self.keys[i] == value:
            return self.children[i]
        return None


#: Shared terminal for the deepest trie level: its subtree is never
#: descended into, so every leaf can point at one sentinel node.
_LEAF = _TrieNode()


class BTreeIndex:
    """A trie index on a relation with a fixed attribute search order.

    ``attr_order`` must be a permutation of the relation's attributes; the
    index is *consistent with a GAO* σ when ``attr_order`` lists the
    relation's attributes in σ's relative order.
    """

    def __init__(self, relation: Relation, attr_order: Sequence[str]):
        self.relation = relation
        self.attr_order: Tuple[str, ...] = tuple(attr_order)
        self.depth = relation.domain.depth
        self._perm = list(relation.schema.permutation(self.attr_order))
        # Build from the relation's cached sorted view for this order:
        # the rows arrive already permuted and sorted (computed once per
        # (relation, order) and shared zero-copy), so each trie node's
        # keys arrive in increasing order and construction is append-only
        # — O(N · arity) with no per-build sort and no per-tuple
        # bisect/insert churn.  attr_order is a full permutation, so the
        # projection is injective and needs no dedup.
        arity = len(self._perm)
        rows = relation.sorted_by(self.attr_order)
        self._root = _TrieNode()
        path: List[_TrieNode] = [self._root] + [None] * arity
        last = arity - 1
        prev: Optional[Tuple[int, ...]] = None
        for row in rows:
            level = 0
            if prev is not None:
                while row[level] == prev[level]:
                    level += 1
            for lv in range(level, last):
                node = path[lv]
                child = _TrieNode()
                node.keys.append(row[lv])
                node.children.append(child)
                path[lv + 1] = child
            node = path[last]
            node.keys.append(row[last])
            node.children.append(_LEAF)
            prev = row

    @property
    def arity(self) -> int:
        return len(self.attr_order)

    def contains(self, tuple_in_schema_order: Sequence[int]) -> bool:
        """Membership probe following the trie."""
        node = self._root
        for pos in self._perm:
            node = node.child(tuple_in_schema_order[pos])
            if node is None:
                return False
        return True

    def is_consistent_with(self, gao: Sequence[str]) -> bool:
        """True when the search order follows the global attribute order."""
        positions = [gao.index(a) for a in self.attr_order]
        return positions == sorted(positions)

    # -- gap boxes -------------------------------------------------------------

    def gap_boxes(self) -> Iterator[Tuple[PackedBox, Tuple[str, ...]]]:
        """All dyadic gap boxes, as (packed box in attr_order, attrs).

        Yields packed boxes over the *relation's* attributes (in
        ``attr_order``); callers lift them into the query space.  The
        union of the yielded boxes is exactly the complement of the
        relation in its own space — the B(R) property of Section 3.3.
        """
        depth = self.depth
        arity = self.arity
        unit = 1 << depth

        def walk(node: _TrieNode, prefix: PackedBox, level: int):
            tail = (PLAMBDA,) * (arity - level - 1)
            for gap in pdyadic_gaps(node.keys, depth):
                yield prefix + (gap,) + tail
            if level + 1 < arity:
                for key, child in zip(node.keys, node.children):
                    yield from walk(
                        child, prefix + (unit | key,), level + 1
                    )

        for box in walk(self._root, (), 0):
            yield box, self.attr_order

    def gap_boxes_containing(
        self, point_in_order: Sequence[int]
    ) -> List[PackedBox]:
        """The maximal dyadic gap box around a probe point, lazily.

        ``point_in_order`` gives values in ``attr_order``.  Returns ``[]``
        when the point is a tuple of the relation.  For a σ-consistent
        index there is exactly one maximal gap box containing any non-tuple
        (Appendix B.3); we return the dyadic piece of it that contains the
        probe, computed in O(arity · (log N + d)) without materializing
        anything.  Boxes are packed.
        """
        depth = self.depth
        unit = 1 << depth
        node = self._root
        for level, value in enumerate(point_in_order):
            piece = pgap_piece_containing(node.keys, value, depth)
            if piece is not None:
                prefix = tuple(
                    unit | v for v in point_in_order[:level]
                )
                tail = (PLAMBDA,) * (self.arity - level - 1)
                return [prefix + (piece,) + tail]
            node = node.child(value)
        return []

    def count_gap_boxes(self) -> int:
        """Total number of dyadic gap boxes this index generates."""
        return sum(1 for _ in self.gap_boxes())
