"""CNF formulas and the clause ↔ dyadic box encoding (Example 4.1, App I).

A truth assignment over n variables is a point of the n-dimensional
depth-1 output space.  The *negation* of a clause is a conjunction — a box
in the Boolean cube: the clause ``(x1 ∨ ¬x3)`` excludes exactly the
assignments with ``x1 = 0`` and ``x3 = 1``, i.e. the box ⟨0, λ, 1, λ...⟩.
Under this encoding geometric resolution *is* propositional resolution
(Figure 8), and Tetris enumerating the uncovered points of the clause
boxes is a #SAT model counter — a DPLL with clause learning (§4.2.4).
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.boxes import BoxTuple
from repro.core.intervals import LAMBDA

#: A literal: positive ``v+1`` or negative ``-(v+1)`` for variable index v.
Literal = int
#: A clause: a set of literals (disjunction).
Clause = FrozenSet[Literal]


class CNF:
    """A CNF formula over ``num_vars`` variables (DIMACS-style literals)."""

    def __init__(self, num_vars: int, clauses: Iterable[Sequence[int]]):
        if num_vars < 1:
            raise ValueError("a CNF needs at least one variable")
        self.num_vars = num_vars
        normalized: List[Clause] = []
        for clause in clauses:
            lits = frozenset(clause)
            if 0 in lits:
                raise ValueError("0 is not a valid literal")
            for lit in lits:
                if abs(lit) > num_vars:
                    raise ValueError(
                        f"literal {lit} out of range for {num_vars} vars"
                    )
            if any(-lit in lits for lit in lits):
                continue  # tautological clause constrains nothing
            normalized.append(lits)
        self.clauses: Tuple[Clause, ...] = tuple(normalized)

    def is_satisfied_by(self, assignment: Sequence[int]) -> bool:
        """Evaluate under a 0/1 assignment indexed by variable."""
        for clause in self.clauses:
            if not any(
                (assignment[abs(lit) - 1] == 1) == (lit > 0)
                for lit in clause
            ):
                return False
        return True

    def count_models_naive(self) -> int:
        """Brute-force model count (tests only)."""
        count = 0
        for mask in range(1 << self.num_vars):
            assignment = [
                (mask >> v) & 1 for v in range(self.num_vars)
            ]
            if self.is_satisfied_by(assignment):
                count += 1
        return count


def clause_to_box(clause: Clause, num_vars: int) -> BoxTuple:
    """The box of assignments *falsifying* the clause.

    Variable v is pinned to 0 when the clause contains the positive
    literal (the clause fails when the literal is false) and to 1 for a
    negative literal; unmentioned variables are λ.
    """
    ivs = [LAMBDA] * num_vars
    for lit in clause:
        v = abs(lit) - 1
        ivs[v] = (0, 1) if lit > 0 else (1, 1)
    return tuple(ivs)


def box_to_clause(box: BoxTuple) -> Clause:
    """Inverse encoding: a depth-1 box back to the clause it falsifies."""
    lits = set()
    for v, (value, length) in enumerate(box):
        if length == 0:
            continue
        if length != 1:
            raise ValueError(
                "only depth-1 boxes encode clauses over single bits"
            )
        lits.add((v + 1) if value == 0 else -(v + 1))
    return frozenset(lits)


def cnf_to_boxes(cnf: CNF) -> List[BoxTuple]:
    """All clause boxes of a formula — a BCP whose output is the models."""
    return [clause_to_box(c, cnf.num_vars) for c in cnf.clauses]


def random_cnf(
    num_vars: int, num_clauses: int, width: int, seed: int
) -> CNF:
    """Uniform random k-CNF (distinct variables per clause)."""
    rng = random.Random(seed)
    clauses = []
    for _ in range(num_clauses):
        variables = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clauses.append(
            [v if rng.random() < 0.5 else -v for v in variables]
        )
    return CNF(num_vars, clauses)
