"""#SAT solvers: classic DPLL and Tetris-as-DPLL (Section 4.2.4).

``count_models_dpll`` is a textbook DPLL with unit propagation, counting
models by weighting free variables.  ``count_models_tetris`` encodes the
clauses as boxes and lets Tetris enumerate the uncovered points — the
paper's observation that Tetris *is* DPLL with clause learning under the
geometric encoding.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.resolution import ResolutionStats
from repro.core.tetris import solve_bcp
from repro.sat.clauses import CNF, Clause, cnf_to_boxes


def count_models_tetris(
    cnf: CNF, stats: Optional[ResolutionStats] = None
) -> int:
    """Model count via Tetris on the clause-box BCP.

    The output points of the BCP are exactly the satisfying assignments
    (each variable is one depth-1 dimension).
    """
    boxes = cnf_to_boxes(cnf)
    models = solve_bcp(boxes, ndim=cnf.num_vars, depth=1, stats=stats)
    return len(models)


def enumerate_models_tetris(
    cnf: CNF, stats: Optional[ResolutionStats] = None
) -> List[tuple]:
    """All satisfying assignments as 0/1 tuples, via Tetris."""
    boxes = cnf_to_boxes(cnf)
    return sorted(solve_bcp(boxes, ndim=cnf.num_vars, depth=1, stats=stats))


def count_models_dpll(cnf: CNF) -> int:
    """Classic DPLL #SAT with unit propagation.

    Branches on the first unassigned variable (mirroring Tetris's fixed
    SAO) and multiplies by 2^{#free} at fully-satisfied leaves.
    """

    def propagate(
        clauses: List[Clause], assignment: Dict[int, int]
    ) -> Optional[List[Clause]]:
        """Apply unit propagation; None signals a conflict."""
        changed = True
        clauses = list(clauses)
        while changed:
            changed = False
            next_clauses: List[Clause] = []
            for clause in clauses:
                satisfied = False
                remaining = []
                for lit in clause:
                    var = abs(lit)
                    if var in assignment:
                        if (assignment[var] == 1) == (lit > 0):
                            satisfied = True
                            break
                    else:
                        remaining.append(lit)
                if satisfied:
                    continue
                if not remaining:
                    return None  # falsified clause
                if len(remaining) == 1:
                    lit = remaining[0]
                    assignment[abs(lit)] = 1 if lit > 0 else 0
                    changed = True
                else:
                    next_clauses.append(frozenset(remaining))
            clauses = next_clauses
        return clauses

    def count(clauses: List[Clause], assignment: Dict[int, int]) -> int:
        assignment = dict(assignment)
        reduced = propagate(clauses, assignment)
        if reduced is None:
            return 0
        if not reduced:
            free = cnf.num_vars - len(assignment)
            return 1 << free
        var = next(
            v
            for v in range(1, cnf.num_vars + 1)
            if v not in assignment
        )
        total = 0
        for value in (0, 1):
            branch = dict(assignment)
            branch[var] = value
            total += count(reduced, branch)
        return total

    return count(list(cnf.clauses), {})
