"""The DPLL / #SAT connection: clauses as boxes, Tetris as DPLL."""

from repro.sat.clauses import (
    CNF,
    box_to_clause,
    clause_to_box,
    cnf_to_boxes,
    random_cnf,
)
from repro.sat.dpll import (
    count_models_dpll,
    count_models_tetris,
    enumerate_models_tetris,
)

__all__ = [
    "CNF",
    "box_to_clause",
    "clause_to_box",
    "cnf_to_boxes",
    "count_models_dpll",
    "count_models_tetris",
    "enumerate_models_tetris",
    "random_cnf",
]
