"""Workload generators: databases for the benchmark harness.

Covers the regimes the paper's evaluation needs:

* AGM-tight triangle instances (worst-case output, Table 1 row 2),
* random graphs (incl. power-law) for subgraph/triangle queries — the
  footnote-1 social-network workloads, synthesized (DESIGN.md subst. 2),
* acyclic path/star instances with controllable output size (row 1),
* *split* instances whose box certificate is O(1) while N grows without
  bound (rows 4–5, the beyond-worst-case regime),
* dense cycle instances for the fhtw experiments (row 3).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.relational.query import (
    Database,
    JoinQuery,
    cycle_query,
    path_query,
    triangle_query,
)
from repro.relational.relation import Relation
from repro.relational.schema import Domain, RelationSchema


def db_from_tuples(
    query: JoinQuery,
    tuples_by_name: Dict[str, Sequence[Tuple[int, ...]]],
    depth: int,
) -> Database:
    """Assemble a database for a query from per-atom tuple lists."""
    return Database(
        [
            Relation(atom, tuples_by_name[atom.name], Domain(depth))
            for atom in query.atoms
        ]
    )


def agm_tight_triangle(m: int) -> Tuple[JoinQuery, Database]:
    """The AGM-tight triangle family: output exactly N^{3/2}.

    R = S = T = [m] × [m], so each relation has N = m² tuples and the
    output is the full cube of m³ = N^{3/2} tuples — the instance family
    with which [6] proved the AGM bound tight.
    """
    query = triangle_query()
    pairs = [(i, j) for i in range(m) for j in range(m)]
    depth = Domain.for_values(max(m - 1, 1)).depth
    return query, db_from_tuples(
        query, {"R": pairs, "S": pairs, "T": pairs}, depth
    )


def graph_triangle_db(
    edges: Sequence[Tuple[int, int]], depth: Optional[int] = None
) -> Tuple[JoinQuery, Database]:
    """Triangle listing on a graph: R = S = T = symmetrized edge set."""
    query = triangle_query()
    sym = sorted({(a, b) for a, b in edges} | {(b, a) for a, b in edges})
    if depth is None:
        top = max((max(a, b) for a, b in sym), default=1)
        depth = Domain.for_values(top).depth
    return query, db_from_tuples(
        query, {"R": sym, "S": sym, "T": sym}, depth
    )


def random_graph_edges(
    n_vertices: int, n_edges: int, seed: int
) -> List[Tuple[int, int]]:
    """A simple Erdős–Rényi-style random edge list (no self loops)."""
    rng = random.Random(seed)
    edges = set()
    while len(edges) < n_edges:
        a = rng.randrange(n_vertices)
        b = rng.randrange(n_vertices)
        if a != b:
            edges.add((min(a, b), max(a, b)))
    return sorted(edges)


def power_law_graph_edges(
    n_vertices: int, attach: int, seed: int
) -> List[Tuple[int, int]]:
    """Barabási–Albert preferential-attachment edges (skewed degrees)."""
    g = nx.barabasi_albert_graph(n_vertices, attach, seed=seed)
    return sorted((min(a, b), max(a, b)) for a, b in g.edges())


def random_path_db(
    length: int, tuples_per_relation: int, seed: int, depth: int = 8
) -> Tuple[JoinQuery, Database]:
    """A random instance of the path query (acyclic, treewidth 1)."""
    rng = random.Random(seed)
    query = path_query(length)
    data = {}
    for atom in query.atoms:
        data[atom.name] = sorted(
            {
                (rng.randrange(1 << depth), rng.randrange(1 << depth))
                for _ in range(tuples_per_relation)
            }
        )
    return query, db_from_tuples(query, data, depth)


def chained_path_db(
    length: int, chain_values: int, depth: int = 8
) -> Tuple[JoinQuery, Database]:
    """A path instance with output exactly ``chain_values`` tuples.

    Every relation holds the identity pairs {(v, v)}, so the join output
    is the diagonal — output size is controlled independently of N.
    """
    query = path_query(length)
    diag = [(v, v) for v in range(chain_values)]
    data = {atom.name: diag for atom in query.atoms}
    return query, db_from_tuples(query, data, depth)


def split_path_instance(
    m: int, depth: int, seed: int = 0
) -> Tuple[JoinQuery, Database, Tuple[str, ...]]:
    """R(A,B) ⋈ S(B,C) with N = 2m tuples but a box certificate of O(1).

    R's B-values live in the lower half of the domain, S's in the upper
    half, so the join is empty and — under the returned GAO (B, A, C),
    which makes both B-trees branch on B first — two gap boxes
    (⟨upper⟩ from R and ⟨lower⟩ from S) certify emptiness, independent of
    m.  The beyond-worst-case regime of Theorem 4.7.
    """
    if depth < 2:
        raise ValueError("need depth at least 2")
    rng = random.Random(seed)
    half = 1 << (depth - 1)
    query = path_query(2)  # R0(A0,A1) ⋈ R1(A1,A2)
    r_rows = sorted(
        {(rng.randrange(1 << depth), rng.randrange(half))
         for _ in range(m)}
    )
    s_rows = sorted(
        {(half + rng.randrange(half), rng.randrange(1 << depth))
         for _ in range(m)}
    )
    db = db_from_tuples(query, {"R0": r_rows, "R1": s_rows}, depth)
    gao = ("A1", "A0", "A2")
    return query, db, gao


def split_cycle_instance(
    m: int, depth: int, seed: int = 0
) -> Tuple[JoinQuery, Database, Tuple[str, ...]]:
    """A 4-cycle (treewidth 2) instance with an O(1) box certificate.

    Domain-splits two opposite cycle attributes so two coarse gap boxes
    certify emptiness — the Theorem 4.9 regime with w = 2.
    """
    rng = random.Random(seed)
    half = 1 << (depth - 1)
    query = cycle_query(4)  # R0(A0,A1) R1(A1,A2) R2(A2,A3) R3(A3,A0)
    rows = {
        # R0: A1 lower; R1: A1 upper (split on A1 ⇒ empty join).
        "R0": sorted({(rng.randrange(1 << depth), rng.randrange(half))
                      for _ in range(m)}),
        "R1": sorted({(half + rng.randrange(half),
                       rng.randrange(1 << depth)) for _ in range(m)}),
        "R2": sorted({(rng.randrange(1 << depth),
                       rng.randrange(1 << depth)) for _ in range(m)}),
        "R3": sorted({(rng.randrange(1 << depth),
                       rng.randrange(1 << depth)) for _ in range(m)}),
    }
    db = db_from_tuples(query, rows, depth)
    gao = ("A1", "A0", "A2", "A3")
    return query, db, gao


def dense_cycle_db(
    length: int, m: int, depth: int = 6, seed: int = 0
) -> Tuple[JoinQuery, Database]:
    """Random dense cycle instance (the fhtw = 2 workload of row 3)."""
    rng = random.Random(seed)
    query = cycle_query(length)
    data = {}
    for atom in query.atoms:
        data[atom.name] = sorted(
            {
                (rng.randrange(1 << depth), rng.randrange(1 << depth))
                for _ in range(m)
            }
        )
    return query, db_from_tuples(query, data, depth)
