"""Hard instances: the constructions behind the paper's lower bounds.

These box families realize the separations of Figure 2:

* :func:`example_f1` — Example F.1 verbatim: a 3-dimensional BCP with
  empty output where *every* SAO forces Ω(|C|²) ordered resolutions,
  while out-of-order (load-balanced) resolution finishes in Õ(|C|) —
  the phenomenon behind Theorem 5.4's Ω(|C|^{n-1}) bound;
* :func:`msb_triangle` — the Figure 5 / Figure 6 triangle instances
  (MSB-complement relations) with empty and non-empty outputs;
* :func:`shared_suffix_instance` — a treewidth-1 supporting hypergraph
  where resolvent caching collapses the proof from Ω(N^{3/2}) to Õ(N)
  (the Theorem 5.2 separation between Tree Ordered and Ordered
  resolution, realized for the natural A-first SAO);
* :func:`staircase_instance` — anti-diagonal slabs in n dimensions in the
  spirit of Theorem 5.5's volume argument: every resolvent has small
  volume, so many resolutions are unavoidable.

The Appendix G gadgets for Theorems 5.2–5.5 are only sketched in our
source text; these families reproduce the *measured* separations (see
DESIGN.md, substitution 3).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.boxes import BoxTuple
from repro.core.intervals import LAMBDA


def example_f1(d: int) -> List[BoxTuple]:
    """Example F.1: C = C1 ∪ C2 ∪ C3 over attributes (X, Y, W), depth d.

    * C1 = {⟨0x, λ, 0⟩ : x ∈ {0,1}^{d-2}} ∪ {⟨0, y, 1⟩ : y ∈ {0,1}^{d-2}}
    * C2 = {⟨10x, 0, λ⟩ : x}                ∪ {⟨10, 1, z⟩ : z}
    * C3 = {⟨110, y, λ⟩ : y}                ∪ {⟨111, λ, z⟩ : z}

    |C| = 6·2^{d-2}; the union covers the whole space (empty output), but
    ordered geometric resolution needs Ω(|C|²) steps for every SAO.
    """
    if d < 3:
        raise ValueError("Example F.1 needs depth at least 3")
    half = 1 << (d - 2)
    boxes: List[BoxTuple] = []
    # C1: covers ⟨0, λ, λ⟩.
    for x in range(half):
        boxes.append(((x, d - 1), LAMBDA, (0, 1)))  # 0x has MSB 0
    for y in range(half):
        boxes.append(((0, 1), (y, d - 2), (1, 1)))
    # C2: covers ⟨10, λ, λ⟩.
    for x in range(half):
        boxes.append((((0b10 << (d - 2)) | x, d), (0, 1), LAMBDA))
    for z in range(half):
        boxes.append(((0b10, 2), (1, 1), (z, d - 2)))
    # C3: covers ⟨11, λ, λ⟩.
    for y in range(half):
        boxes.append(((0b110, 3), (y, d - 2), LAMBDA))
    for z in range(half):
        boxes.append(((0b111, 3), LAMBDA, (z, d - 2)))
    return boxes


def msb_triangle(d: int, nonempty: bool = False) -> List[BoxTuple]:
    """The Figure 5 (empty) / Figure 6 (non-empty) triangle BCP instances.

    Gap boxes over (A, B, C): R forbids MSB(a) = MSB(b), S forbids
    MSB(b) = MSB(c); T forbids MSB(a) = MSB(c) (Figure 5, empty output)
    or T' forbids MSB(a) ≠ MSB(c) (Figure 6, output non-empty).
    """
    if d < 1:
        raise ValueError("depth must be at least 1")
    boxes = [
        ((0, 1), (0, 1), LAMBDA),  # R gap: MSBs equal (0,0)
        ((1, 1), (1, 1), LAMBDA),  # R gap: MSBs equal (1,1)
        (LAMBDA, (0, 1), (0, 1)),  # S gap
        (LAMBDA, (1, 1), (1, 1)),  # S gap
    ]
    if nonempty:
        boxes += [
            ((0, 1), LAMBDA, (1, 1)),  # T' gap: MSBs differ
            ((1, 1), LAMBDA, (0, 1)),
        ]
    else:
        boxes += [
            ((0, 1), LAMBDA, (0, 1)),  # T gap: MSBs equal
            ((1, 1), LAMBDA, (1, 1)),
        ]
    return boxes


def shared_suffix_instance(d: int) -> List[BoxTuple]:
    """Caching separation on a treewidth-1 hypergraph (Theorem 5.2 flavor).

    Over attributes (A, B, C) with depth ``d``:

    * per-A boxes ⟨a, 0, λ⟩ for every value a — support {A, B};
    * shared boxes ⟨λ, b, c⟩ for every b in the upper half and every c —
      support {B, C}.

    Supports form the path {A,B}, {B,C}: treewidth 1.  Each A-column is
    covered by its ⟨a, 0, λ⟩ box plus the *same* (B, C) sub-proof of
    ⟨λ, 1, λ⟩ from the 2^{2d-1} shared unit boxes:

    * with resolvent caching the sub-proof is derived once and every later
      column hits the cache — Õ(N) resolutions (N ≈ 2^{2d-1});
    * without caching (Tree Ordered resolution) it is rebuilt for every
      column — Ω(2^d · N) = Ω(N^{3/2}) = Ω(N^{n/2}) resolutions.
    """
    side = 1 << d
    half = side >> 1
    boxes: List[BoxTuple] = [
        ((a, d), (0, 1), LAMBDA) for a in range(side)
    ]
    boxes += [
        (LAMBDA, (b, d), (c, d))
        for b in range(half, side)
        for c in range(side)
    ]
    return boxes


def staircase_instance(n: int, d: int) -> List[BoxTuple]:
    """Anti-diagonal slabs: every pairwise resolvent has small volume.

    For each level ``k`` of the first dimension's dyadic tree, pair the
    two siblings with opposite halves of the second dimension, recursing
    the pattern through the remaining dimensions.  Concretely, box ``j``
    (for j in [2^d]) pins dimension 0 to the unit interval ``j`` and
    dimension 1 to the *bit-reversed complement* prefix of ``j``, leaving
    the rest λ — a staircase whose boxes only resolve into thin slabs
    (the volume-argument flavor of Theorem 5.5).

    The union does not cover the space; the instance is meant for
    resolution-count measurements, not for cover checks.
    """
    if n < 2:
        raise ValueError("staircase needs at least 2 dimensions")
    side = 1 << d
    boxes: List[BoxTuple] = []
    for j in range(side):
        complement = side - 1 - j
        box = [(j, d), (complement, d)] + [LAMBDA] * (n - 2)
        boxes.append(tuple(box))
    # Add coarse slabs that interlock with the staircase in the remaining
    # dimensions, one family per extra dimension.
    for axis in range(2, n):
        for j in range(side):
            box = [LAMBDA] * n
            box[0] = (j, d)
            box[axis] = (j & 1, 1)
            boxes.append(tuple(box))
    return boxes


def covering_pair_instance(d: int, n: int = 3) -> List[BoxTuple]:
    """A trivially-covered instance with |C| = 2 and arbitrarily fine noise.

    The two halves of dimension 0 cover everything; 2^d fine unit-column
    boxes are redundant noise.  Certificate machinery should find |C| = 2
    regardless of d — the "certificate much smaller than input" regime
    (Proposition B.6).
    """
    boxes: List[BoxTuple] = [
        ((0, 1),) + (LAMBDA,) * (n - 1),
        ((1, 1),) + (LAMBDA,) * (n - 1),
    ]
    for v in range(1 << d):
        boxes.append(((v, d),) + (LAMBDA,) * (n - 1))
    return boxes
