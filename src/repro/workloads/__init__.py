"""Workload generators and the paper's hard-instance constructions."""

from repro.workloads.generators import (
    agm_tight_triangle,
    chained_path_db,
    db_from_tuples,
    dense_cycle_db,
    graph_triangle_db,
    power_law_graph_edges,
    random_graph_edges,
    random_path_db,
    split_cycle_instance,
    split_path_instance,
)
from repro.workloads.hard_instances import (
    covering_pair_instance,
    example_f1,
    msb_triangle,
    shared_suffix_instance,
    staircase_instance,
)

__all__ = [
    "agm_tight_triangle",
    "chained_path_db",
    "covering_pair_instance",
    "db_from_tuples",
    "dense_cycle_db",
    "example_f1",
    "graph_triangle_db",
    "msb_triangle",
    "power_law_graph_edges",
    "random_graph_edges",
    "random_path_db",
    "shared_suffix_instance",
    "split_cycle_instance",
    "split_path_instance",
    "staircase_instance",
]
