"""repro — a reproduction of "Joins via Geometric Resolutions" (PODS 2015).

The package implements the Tetris join algorithm and its geometric
resolution framework end to end:

* :mod:`repro.core` — dyadic boxes, geometric resolution, the Tetris
  engine (Preloaded / Reloaded / load-balanced), box certificates;
* :mod:`repro.relational` — schemas, relations, join queries, hypergraph
  widths, AGM bounds;
* :mod:`repro.indexes` — B-tree/trie, quadtree and KD-tree indexes that
  expose their gaps as dyadic boxes;
* :mod:`repro.joins` — join evaluation via Tetris plus the classical
  baselines (Yannakakis, Leapfrog/worst-case-optimal, hash, nested loop);
* :mod:`repro.engine` — the adaptive planner and unified execution
  engine: ``execute(query, db)`` picks the cost-optimal backend, with
  plan caching and EXPLAIN;
* :mod:`repro.sat` — the DPLL/#SAT connection;
* :mod:`repro.klee` — Klee's measure problem over the Boolean semiring;
* :mod:`repro.workloads` — generators incl. the paper's hard instances.

Quickstart::

    from repro import join_tetris, triangle_query, Database, Relation, Domain

    query = triangle_query()
    db = Database([
        Relation(query.atom("R"), [(0, 1)], Domain(4)),
        Relation(query.atom("S"), [(1, 2)], Domain(4)),
        Relation(query.atom("T"), [(0, 2)], Domain(4)),
    ])
    result = join_tetris(query, db)
    print(result.tuples)  # [(0, 1, 2)]
"""

from repro.core import (
    Box,
    BoxSetOracle,
    ResolutionStats,
    Space,
    TetrisEngine,
    boolean_box_cover,
    solve_bcp,
    tetris_preloaded,
    tetris_reloaded,
)
from repro.core.balance import tetris_preloaded_lb, tetris_reloaded_lb
from repro.core.certificates import (
    certificate_size,
    minimal_certificate,
    minimum_certificate,
)
from repro.engine import (
    ExecutionResult,
    Plan,
    execute,
    explain_text,
    plan_query,
)
from repro.joins import (
    join_hash,
    join_leapfrog,
    join_nested_loop,
    join_tetris,
    join_yannakakis,
)
from repro.relational import (
    Database,
    Domain,
    Hypergraph,
    JoinQuery,
    Relation,
    RelationSchema,
    agm_bound,
    fhtw,
    triangle_query,
)

__version__ = "1.0.0"

__all__ = [
    "Box",
    "BoxSetOracle",
    "Database",
    "Domain",
    "ExecutionResult",
    "Hypergraph",
    "JoinQuery",
    "Plan",
    "Relation",
    "RelationSchema",
    "ResolutionStats",
    "Space",
    "TetrisEngine",
    "agm_bound",
    "boolean_box_cover",
    "certificate_size",
    "execute",
    "explain_text",
    "fhtw",
    "join_hash",
    "join_leapfrog",
    "join_nested_loop",
    "join_tetris",
    "join_yannakakis",
    "minimal_certificate",
    "minimum_certificate",
    "plan_query",
    "solve_bcp",
    "tetris_preloaded",
    "tetris_preloaded_lb",
    "tetris_reloaded",
    "tetris_reloaded_lb",
    "triangle_query",
]
