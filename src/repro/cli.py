"""Command-line interface for the Tetris reproduction.

Subcommands::

    python -m repro join "R(A,B), S(B,C)" --csv R=r.csv --csv S=s.csv
    python -m repro explain "R(A,B), S(B,C)" [--csv ...] [--execute]
    python -m repro explain "..." --csv ... --analyze [--trace-out t.json]
    python -m repro calibrate [--log PATH] [--out PATH]
    python -m repro triangles edges.txt [--algorithm auto|tetris|...]
    python -m repro sat formula.cnf [--enumerate]
    python -m repro analyze "R(A,B), S(B,C), T(A,C)"
    python -m repro metrics ["R(A,B), S(B,C)" --csv ... --workers 4]
    python -m repro metrics --serve 9100

``join`` evaluates an arbitrary natural join over CSV files through the
adaptive engine (``--algorithm auto`` picks the cost-optimal backend;
naming one forces it; ``--limit K`` streams just the first K rows
through the cursor API), decoding result rows back to the original CSV
values; ``explain`` prints the planner's decision tree
for a query, with or without data; ``triangles`` lists/counts triangles
in an edge list; ``sat`` counts models of a DIMACS CNF via
Tetris-as-DPLL; ``analyze`` prints a query's structural profile
(acyclicity, treewidth, fhtw, recommended GAO) and which Table 1 runtime
row applies; ``metrics`` dumps the process metrics registry — optionally
after running a query to populate it — as aligned text (quantiles
included) or OpenMetrics (``--openmetrics``), serves it for scraping
(``--serve PORT``), or prints the flight-recorder ring (``--last N``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

#: Algorithm names the engine-backed subcommands accept.
_ALGORITHMS = (
    "auto", "tetris", "tetris-preloaded", "tetris-reloaded",
    "leapfrog", "yannakakis", "hash", "nested-loop",
)


def _parse_gao(spec: Optional[str]) -> Optional[Tuple[str, ...]]:
    if spec is None:
        return None
    return tuple(a.strip() for a in spec.split(",") if a.strip())


def _load_join_db(args: argparse.Namespace):
    """(query, db, dictionary) from a join/explain namespace, or an error."""
    from repro.relational.io import database_from_csvs, parse_query

    query = parse_query(args.query)
    paths: Dict[str, str] = {}
    for item in args.csv:
        name, _, path = item.partition("=")
        if not path:
            raise ValueError(f"--csv expects NAME=PATH, got {item!r}")
        paths[name] = path
    if not paths:
        return query, None, None
    db, dictionary = database_from_csvs(
        query, paths, delimiter=args.delimiter,
        skip_header=args.skip_header,
    )
    return query, db, dictionary


def _apply_shm_flag(args: argparse.Namespace) -> None:
    """``--no-shm`` is sugar for the ``REPRO_NO_SHM`` escape hatch."""
    if getattr(args, "no_shm", False):
        from repro.parallel.shm import NO_SHM_ENV

        os.environ[NO_SHM_ENV] = "1"


def _cmd_join(args: argparse.Namespace) -> int:
    from repro.engine import execute
    from repro.parallel import QueryTimeout

    _apply_shm_flag(args)
    try:
        query, db, dictionary = _load_join_db(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if db is None:
        print("error: join needs --csv NAME=PATH for every relation",
              file=sys.stderr)
        return 2
    algorithm = args.algorithm
    if args.variant is not None and algorithm in ("auto", "tetris"):
        # Backwards-compatible alias for the pre-engine interface.
        algorithm = f"tetris-{args.variant}"
    t0 = time.perf_counter()
    try:
        result = execute(
            query, db, algorithm=algorithm,
            index_kind=args.index_kind, gao=_parse_gao(args.gao),
            limit=args.limit, decode=dictionary, workers=args.workers,
            timeout_ms=args.timeout_ms,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except QueryTimeout as exc:
        print(f"error: {exc}", file=sys.stderr)
        if exc.report is not None:
            print(f"# partial: {exc.report.summary()}", file=sys.stderr)
        return 3
    elapsed = time.perf_counter() - t0
    print(f"# query: {query}")
    print(f"# variables: {', '.join(result.variables)}")
    for row in result.decoded_rows():  # lazy: decode as rows print
        print(args.delimiter.join(str(v) for v in row))
    limited = f" (limit {args.limit})" if args.limit is not None else ""
    print(
        f"# {len(result)} tuples{limited} in {elapsed:.3f}s "
        f"via {result.backend} ({result.stats.summary()})",
        file=sys.stderr,
    )
    if result.parallel is not None:
        print(f"# parallel: {result.parallel.summary()}", file=sys.stderr)
    return 0


def _write_trace(tracer, path: str) -> None:
    """Export a run's spans: ``.jsonl`` → raw log, else Chrome trace."""
    from repro.obs.tracing import write_chrome_trace, write_jsonl

    spans = tracer.serialized()
    if path.endswith(".jsonl"):
        write_jsonl(spans, path)
    else:
        write_chrome_trace(spans, path)


def _write_profile(path: str) -> None:
    """Export the process profiler's samples as a flamegraph file."""
    from repro.obs import profiler as _profiler

    prof = _profiler.active()
    if prof is None:
        return
    if path.endswith((".folded", ".txt")):
        prof.write_folded(path)
    else:
        prof.write_speedscope(path)
    print(f"# profile written to {path}", file=sys.stderr)


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.engine import execute, explain_text, plan_query

    _apply_shm_flag(args)
    if args.profile or args.profile_out:
        from repro.obs import profiler as _profiler

        _profiler.install()
    try:
        query, db, dictionary = _load_join_db(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.analyze:
            if db is None:
                print("error: --analyze needs --csv data", file=sys.stderr)
                return 2
            from repro.obs.analyze import analyze, render_analyze

            report = analyze(
                query, db, algorithm=args.algorithm,
                index_kind=args.index_kind, gao=_parse_gao(args.gao),
                workers=args.workers, decode=dictionary,
                probe_certificate=args.probe_certificate,
            )
            print(f"# query: {query}")
            print(explain_text(report.result.plan, report.result))
            print(render_analyze(report))
            if args.trace_out:
                _write_trace(report.tracer, args.trace_out)
                print(f"# trace written to {args.trace_out}",
                      file=sys.stderr)
            if args.profile_out:
                _write_profile(args.profile_out)
            return 0
        plan = plan_query(
            query, db, algorithm=args.algorithm,
            index_kind=args.index_kind, gao=_parse_gao(args.gao),
            probe_certificate=args.probe_certificate and db is not None,
            assumed_rows=args.assume_rows, workers=args.workers,
        )
        result = None
        if args.execute:
            if db is None:
                print("error: --execute needs --csv data", file=sys.stderr)
                return 2
            result = execute(
                query, db, plan=plan, decode=dictionary,
                timeout_ms=args.timeout_ms,
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"# query: {query}")
    print(explain_text(plan, result))
    if args.trace_out and result is not None and result.trace is not None:
        _write_trace(result.trace, args.trace_out)
        print(f"# trace written to {args.trace_out}", file=sys.stderr)
    if args.profile_out:
        _write_profile(args.profile_out)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.flight import RECORDER
    from repro.obs.metrics import REGISTRY, render_metrics

    _apply_shm_flag(args)
    if args.query:
        from repro.engine import execute
        from repro.parallel import QueryTimeout

        try:
            query, db, dictionary = _load_join_db(args)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if db is None:
            print("error: a query needs --csv NAME=PATH for every "
                  "relation", file=sys.stderr)
            return 2
        try:
            for _ in range(max(1, args.repeat)):
                execute(
                    query, db, algorithm=args.algorithm,
                    index_kind=args.index_kind, gao=_parse_gao(args.gao),
                    workers=args.workers, timeout_ms=args.timeout_ms,
                )
        except (ValueError, QueryTimeout) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.last is not None:
        for rec in RECORDER.last(args.last):
            print(_json.dumps(rec.to_dict()))
        return 0
    if args.serve is not None:
        from repro.obs.export import start_metrics_server

        server = start_metrics_server(args.serve)
        host, port = server.server_address[:2]
        print(
            f"# serving OpenMetrics on http://{host}:{port}/metrics "
            f"(flight ring at /flight; Ctrl-C to stop)",
            file=sys.stderr,
        )
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            server.shutdown()
        return 0
    if args.openmetrics:
        from repro.obs.export import render_openmetrics

        sys.stdout.write(render_openmetrics())
    else:
        print("\n".join(render_metrics(REGISTRY.snapshot())))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.obs.analyze import calibrate_from_log

    model, info, saved = calibrate_from_log(args.log, args.out)
    print(
        f"calibration log : {info['usable_runs']} usable of "
        f"{info['runs']} runs"
    )
    for backend, count in info["samples_per_backend"].items():
        print(f"  {backend:<18s} {count} samples")
    if saved is None:
        print("nothing to fit — run `repro explain --analyze` first",
              file=sys.stderr)
        return 1
    print(
        f"cost error      : {info['error_before']:.3f} → "
        f"{info['error_after']:.3f} bits (mean |log₂ actual/predicted|)"
    )
    print(f"unit_seconds    : {model.unit_seconds:.3e}")
    print(f"saved           : {saved}")
    return 0


def _cmd_triangles(args: argparse.Namespace) -> int:
    from repro.engine import execute
    from repro.relational.io import ValueDictionary, read_edge_list
    from repro.workloads.generators import graph_triangle_db

    raw_edges = read_edge_list(args.edges)
    dictionary = ValueDictionary()
    edges = [dictionary.encode_row(e) for e in raw_edges]
    query, db = graph_triangle_db(edges)
    t0 = time.perf_counter()
    try:
        result = execute(query, db, algorithm=args.algorithm)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tuples = result.tuples
    elapsed = time.perf_counter() - t0
    # Each undirected triangle appears as 6 ordered tuples.
    unique = {tuple(sorted(t)) for t in tuples}
    if not args.count_only:
        for a, b, c in sorted(unique):
            print(dictionary.decode(a), dictionary.decode(b),
                  dictionary.decode(c))
    print(
        f"# {len(unique)} triangles ({len(tuples)} ordered embeddings) "
        f"in {elapsed:.3f}s via {result.backend}",
        file=sys.stderr,
    )
    return 0


def _cmd_sat(args: argparse.Namespace) -> int:
    from repro.core.resolution import ResolutionStats
    from repro.relational.io import read_dimacs
    from repro.sat.dpll import count_models_tetris, enumerate_models_tetris

    cnf = read_dimacs(args.formula)
    stats = ResolutionStats()
    t0 = time.perf_counter()
    if args.enumerate:
        models = enumerate_models_tetris(cnf, stats=stats)
        count = len(models)
        for model in models:
            print(" ".join(
                str(v + 1 if bit else -(v + 1))
                for v, bit in enumerate(model)
            ))
    else:
        count = count_models_tetris(cnf, stats=stats)
    elapsed = time.perf_counter() - t0
    print(
        f"# {count} models of {len(cnf.clauses)} clauses over "
        f"{cnf.num_vars} vars in {elapsed:.3f}s "
        f"({stats.resolutions} learned clauses)",
        file=sys.stderr,
    )
    print(count)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.relational.agm import fhtw
    from repro.relational.hypergraph import Hypergraph, gao_for_acyclic
    from repro.relational.io import parse_query

    query = parse_query(args.query)
    h = Hypergraph.of_query(query)
    print(f"query        : {query}")
    print(f"variables    : {', '.join(query.variables)}")
    acyclic = h.is_alpha_acyclic()
    print(f"α-acyclic    : {acyclic}")
    if acyclic:
        print(f"β-acyclic    : {h.is_beta_acyclic()}")
        gao = gao_for_acyclic(h)
        print(f"GAO (rev-GYO): {', '.join(gao)}")
    width, order = h.treewidth()
    print(f"treewidth    : {width}  (elimination order "
          f"{', '.join(order)})")
    if len(query.variables) <= 7:
        value, fh_order = fhtw(h)
        print(f"fhtw         : {value:g}  (elimination order "
              f"{', '.join(fh_order)})")
    else:
        value, fh_order = fhtw(h)  # treewidth-order upper bound
        print(f"fhtw ≤       : {value:g}  (treewidth-order bound, "
              f"{', '.join(fh_order)})")
    from repro.relational.agm import bag_cover_number

    decomposition = h.tree_decomposition(fh_order)
    print("tree decomposition (bag ← parent, ρ* per bag):")
    for v in decomposition.order:
        bag = decomposition.bags[v]
        parent = decomposition.parent[v]
        cover = bag_cover_number(bag, h.edges)
        link = f" ← {parent}" if parent is not None else " (root)"
        print(
            f"  {v}: {{{', '.join(sorted(bag))}}}{link}  ρ*={cover:g}"
        )
    print("\nTable 1 guarantees for this query:")
    if acyclic:
        print("  Tetris-Preloaded : Õ(N + Z)        [Yannakakis bound]")
    else:
        print(f"  Tetris-Preloaded : Õ(N^{value:g} + Z)   [fhtw bound]")
    if width == 1:
        print("  Tetris-Reloaded  : Õ(|C| + Z)      [Theorem 4.7]")
    else:
        print(
            f"  Tetris-Reloaded  : Õ(|C|^{width + 1} + Z)  [Theorem 4.9]"
        )
    n = len(query.variables)
    print(f"  Tetris-LB        : Õ(|C|^{n / 2:g} + Z)  [Theorem 4.11]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Joins via geometric resolutions (Tetris, PODS 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_query_options(
        p: argparse.ArgumentParser, query_required: bool = True
    ) -> None:
        if query_required:
            p.add_argument("query", help='e.g. "R(A,B), S(B,C)"')
        else:
            p.add_argument(
                "query", nargs="?", default=None,
                help='optional query to run first, e.g. "R(A,B), S(B,C)"',
            )
        p.add_argument(
            "--csv", action="append", default=[], metavar="NAME=PATH",
            help="CSV file for a relation (repeatable)",
        )
        p.add_argument(
            "--algorithm", default="auto", choices=_ALGORITHMS,
            help="backend to run ('auto' lets the planner choose)",
        )
        p.add_argument(
            "--index-kind", default=None,
            choices=("btree", "dyadic", "kdtree"),
            help="index family for the Tetris backends (default btree)",
        )
        p.add_argument(
            "--gao", default=None, metavar="A,B,C",
            help="comma-separated global attribute order override",
        )
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="shard-parallel execution on a pool of N worker "
                 "processes (with --algorithm auto the planner decides "
                 "serial vs. parallel; a named backend forces parallel)",
        )
        p.add_argument(
            "--no-shm", action="store_true",
            help="disable the shared-memory data plane for parallel "
                 "execution (ship relations by value instead; same as "
                 "REPRO_NO_SHM=1)",
        )
        p.add_argument(
            "--timeout-ms", type=int, default=None, metavar="MS",
            help="per-query deadline for parallel runs: past it the "
                 "query aborts with a timeout error and hung workers "
                 "are killed and respawned (default "
                 "REPRO_QUERY_TIMEOUT_MS; serial plans ignore it)",
        )
        p.add_argument("--delimiter", default=",")
        p.add_argument("--skip-header", action="store_true")

    p_join = sub.add_parser("join", help="evaluate a natural join on CSVs")
    add_query_options(p_join)
    p_join.add_argument(
        "--variant", default=None, choices=("preloaded", "reloaded"),
        help="deprecated alias for --algorithm tetris-{preloaded,reloaded}",
    )
    p_join.add_argument(
        "--limit", type=int, default=None, metavar="K",
        help="stop after K output rows (streamed early termination)",
    )
    p_join.set_defaults(func=_cmd_join)

    p_explain = sub.add_parser(
        "explain", help="show the planner's decision tree for a query"
    )
    add_query_options(p_explain)
    p_explain.add_argument(
        "--assume-rows", type=int, default=1000,
        help="per-relation cardinality assumed when no --csv data is given",
    )
    p_explain.add_argument(
        "--probe-certificate", action="store_true",
        help="run the bounded Tetris-Reloaded certificate probe (needs data)",
    )
    p_explain.add_argument(
        "--execute", action="store_true",
        help="run the plan and append predicted-vs-actual stats",
    )
    p_explain.add_argument(
        "--analyze", action="store_true",
        help="execute traced and annotate: per-stage wall time, "
             "actual-vs-predicted cardinality and cost, metrics delta; "
             "appends to the calibration log (see `repro calibrate`)",
    )
    p_explain.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the run's spans (.jsonl → raw log, anything else → "
             "Chrome trace-event JSON for Perfetto)",
    )
    p_explain.add_argument(
        "--profile", action="store_true",
        help="run the sampling wall-clock profiler during the query "
             "(same as REPRO_PROFILE=1); with --analyze the report "
             "gains sampled per-stage self-time",
    )
    p_explain.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="write the profile as a flamegraph (.folded/.txt → "
             "collapsed stacks, anything else → speedscope JSON); "
             "implies --profile",
    )
    p_explain.set_defaults(func=_cmd_explain)

    p_cal = sub.add_parser(
        "calibrate",
        help="refit the cost model from accumulated --analyze runs",
    )
    p_cal.add_argument(
        "--log", default=None, metavar="PATH",
        help="calibration log to replay (default .repro/analyze_log.jsonl "
             "or $REPRO_ANALYZE_LOG)",
    )
    p_cal.add_argument(
        "--out", default=None, metavar="PATH",
        help="where to save the fitted constants (default "
             ".repro/calibration.json or $REPRO_CALIBRATION)",
    )
    p_cal.set_defaults(func=_cmd_calibrate)

    p_tri = sub.add_parser("triangles", help="list triangles in a graph")
    p_tri.add_argument("edges", help="edge-list file (u v per line)")
    p_tri.add_argument(
        "--algorithm", default="auto",
        choices=_ALGORITHMS,
        help="backend to run ('auto' lets the planner choose)",
    )
    p_tri.add_argument("--count-only", action="store_true")
    p_tri.set_defaults(func=_cmd_triangles)

    p_sat = sub.add_parser("sat", help="count models of a DIMACS CNF")
    p_sat.add_argument("formula", help="DIMACS .cnf file")
    p_sat.add_argument("--enumerate", action="store_true",
                       help="print every model")
    p_sat.set_defaults(func=_cmd_sat)

    p_an = sub.add_parser("analyze", help="structural profile of a query")
    p_an.add_argument("query", help='e.g. "R(A,B), S(B,C), T(A,C)"')
    p_an.set_defaults(func=_cmd_analyze)

    p_met = sub.add_parser(
        "metrics",
        help="dump or serve the process metrics registry "
             "(quantile histograms, worker counters, flight records)",
    )
    add_query_options(p_met, query_required=False)
    p_met.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run the query N times before dumping (warms caches and "
             "populates the latency histograms)",
    )
    p_met.add_argument(
        "--openmetrics", action="store_true",
        help="emit OpenMetrics/Prometheus exposition text instead of "
             "the aligned human-readable dump",
    )
    p_met.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="serve GET /metrics (OpenMetrics) and /flight (JSON "
             "lines) on PORT until interrupted",
    )
    p_met.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="print the newest N flight-recorder records as JSON lines "
             "(run a query in the same invocation to populate the ring)",
    )
    p_met.set_defaults(func=_cmd_metrics)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
