"""Command-line interface for the Tetris reproduction.

Subcommands::

    python -m repro join "R(A,B), S(B,C)" --csv R=r.csv --csv S=s.csv
    python -m repro triangles edges.txt [--algorithm tetris|leapfrog|hash]
    python -m repro sat formula.cnf [--enumerate]
    python -m repro analyze "R(A,B), S(B,C), T(A,C)"

``join`` evaluates an arbitrary natural join over CSV files; ``triangles``
lists/counts triangles in an edge list; ``sat`` counts models of a DIMACS
CNF via Tetris-as-DPLL; ``analyze`` prints a query's structural profile
(acyclicity, treewidth, fhtw, recommended GAO) and which Table 1 runtime
row applies.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence


def _cmd_join(args: argparse.Namespace) -> int:
    from repro.joins.tetris_join import join_tetris
    from repro.relational.io import database_from_csvs, parse_query

    query = parse_query(args.query)
    paths: Dict[str, str] = {}
    for item in args.csv:
        name, _, path = item.partition("=")
        if not path:
            print(f"error: --csv expects NAME=PATH, got {item!r}",
                  file=sys.stderr)
            return 2
        paths[name] = path
    db, dictionary = database_from_csvs(
        query, paths, delimiter=args.delimiter,
        skip_header=args.skip_header,
    )
    t0 = time.perf_counter()
    result = join_tetris(query, db, variant=args.variant)
    elapsed = time.perf_counter() - t0
    print(f"# query: {query}")
    print(f"# variables: {', '.join(result.variables)}")
    for row in result.tuples:
        print(args.delimiter.join(
            str(v) for v in dictionary.decode_row(row)
        ))
    print(
        f"# {len(result)} tuples in {elapsed:.3f}s "
        f"({result.stats.summary()})",
        file=sys.stderr,
    )
    return 0


def _cmd_triangles(args: argparse.Namespace) -> int:
    from repro.joins.hashjoin import join_hash
    from repro.joins.leapfrog import join_leapfrog
    from repro.joins.tetris_join import join_tetris
    from repro.relational.io import ValueDictionary, read_edge_list
    from repro.workloads.generators import graph_triangle_db

    raw_edges = read_edge_list(args.edges)
    dictionary = ValueDictionary()
    edges = [dictionary.encode_row(e) for e in raw_edges]
    query, db = graph_triangle_db(edges)
    t0 = time.perf_counter()
    if args.algorithm == "tetris":
        tuples = join_tetris(query, db).tuples
    elif args.algorithm == "leapfrog":
        tuples = join_leapfrog(query, db)
    else:
        tuples = join_hash(query, db)
    elapsed = time.perf_counter() - t0
    # Each undirected triangle appears as 6 ordered tuples.
    unique = {tuple(sorted(t)) for t in tuples}
    if not args.count_only:
        for a, b, c in sorted(unique):
            print(dictionary.decode(a), dictionary.decode(b),
                  dictionary.decode(c))
    print(
        f"# {len(unique)} triangles ({len(tuples)} ordered embeddings) "
        f"in {elapsed:.3f}s via {args.algorithm}",
        file=sys.stderr,
    )
    return 0


def _cmd_sat(args: argparse.Namespace) -> int:
    from repro.core.resolution import ResolutionStats
    from repro.relational.io import read_dimacs
    from repro.sat.dpll import count_models_tetris, enumerate_models_tetris

    cnf = read_dimacs(args.formula)
    stats = ResolutionStats()
    t0 = time.perf_counter()
    if args.enumerate:
        models = enumerate_models_tetris(cnf)
        count = len(models)
        for model in models:
            print(" ".join(
                str(v + 1 if bit else -(v + 1))
                for v, bit in enumerate(model)
            ))
    else:
        count = count_models_tetris(cnf, stats=stats)
    elapsed = time.perf_counter() - t0
    print(
        f"# {count} models of {len(cnf.clauses)} clauses over "
        f"{cnf.num_vars} vars in {elapsed:.3f}s "
        f"({stats.resolutions} learned clauses)",
        file=sys.stderr,
    )
    print(count)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.relational.agm import fhtw
    from repro.relational.hypergraph import Hypergraph, gao_for_acyclic
    from repro.relational.io import parse_query

    query = parse_query(args.query)
    h = Hypergraph.of_query(query)
    print(f"query        : {query}")
    print(f"variables    : {', '.join(query.variables)}")
    acyclic = h.is_alpha_acyclic()
    print(f"α-acyclic    : {acyclic}")
    if acyclic:
        print(f"β-acyclic    : {h.is_beta_acyclic()}")
        gao = gao_for_acyclic(h)
        print(f"GAO (rev-GYO): {', '.join(gao)}")
    width, order = h.treewidth()
    print(f"treewidth    : {width}  (elimination order "
          f"{', '.join(order)})")
    if len(query.variables) <= 7:
        value, fh_order = fhtw(h)
        print(f"fhtw         : {value:g}")
    else:
        value = None
    print("\nTable 1 guarantees for this query:")
    if acyclic:
        print("  Tetris-Preloaded : Õ(N + Z)        [Yannakakis bound]")
    elif value is not None:
        print(f"  Tetris-Preloaded : Õ(N^{value:g} + Z)   [fhtw bound]")
    if width == 1:
        print("  Tetris-Reloaded  : Õ(|C| + Z)      [Theorem 4.7]")
    else:
        print(
            f"  Tetris-Reloaded  : Õ(|C|^{width + 1} + Z)  [Theorem 4.9]"
        )
    n = len(query.variables)
    print(f"  Tetris-LB        : Õ(|C|^{n / 2:g} + Z)  [Theorem 4.11]")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Joins via geometric resolutions (Tetris, PODS 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_join = sub.add_parser("join", help="evaluate a natural join on CSVs")
    p_join.add_argument("query", help='e.g. "R(A,B), S(B,C)"')
    p_join.add_argument(
        "--csv", action="append", default=[], metavar="NAME=PATH",
        help="CSV file for a relation (repeatable)",
    )
    p_join.add_argument("--variant", default="preloaded",
                        choices=("preloaded", "reloaded"))
    p_join.add_argument("--delimiter", default=",")
    p_join.add_argument("--skip-header", action="store_true")
    p_join.set_defaults(func=_cmd_join)

    p_tri = sub.add_parser("triangles", help="list triangles in a graph")
    p_tri.add_argument("edges", help="edge-list file (u v per line)")
    p_tri.add_argument("--algorithm", default="tetris",
                       choices=("tetris", "leapfrog", "hash"))
    p_tri.add_argument("--count-only", action="store_true")
    p_tri.set_defaults(func=_cmd_triangles)

    p_sat = sub.add_parser("sat", help="count models of a DIMACS CNF")
    p_sat.add_argument("formula", help="DIMACS .cnf file")
    p_sat.add_argument("--enumerate", action="store_true",
                       help="print every model")
    p_sat.set_defaults(func=_cmd_sat)

    p_an = sub.add_parser("analyze", help="structural profile of a query")
    p_an.add_argument("query", help='e.g. "R(A,B), S(B,C), T(A,C)"')
    p_an.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
