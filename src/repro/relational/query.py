"""Natural join queries and databases (Section 3.1).

``JoinQuery`` is a set of relation schemas; evaluating it over a
``Database`` produces every tuple over ``vars(Q)`` whose projection onto
each relation's attributes is a tuple of that relation.  A slow reference
evaluator (`evaluate_reference`) is included for cross-checking the real
join algorithms in tests.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.relational.relation import Relation
from repro.relational.schema import Domain, RelationSchema


class Database:
    """A collection of relation instances sharing one domain."""

    def __init__(self, relations: Iterable[Relation]):
        rels = list(relations)
        if not rels:
            raise ValueError("a database needs at least one relation")
        self._relations: Dict[str, Relation] = {}
        self.domain: Domain = rels[0].domain
        for rel in rels:
            if rel.name in self._relations:
                raise ValueError(f"duplicate relation name {rel.name}")
            if rel.domain != self.domain:
                raise ValueError(
                    "all relations in a database must share a domain"
                )
            self._relations[rel.name] = rel

    def __getitem__(self, name: str) -> Relation:
        return self._relations[name]

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self):
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def total_tuples(self) -> int:
        """The paper's N: total number of input tuples."""
        return sum(len(r) for r in self._relations.values())

    def sorted_view(self, name: str, attr_order: Sequence[str]):
        """A relation's memoized :class:`~repro.relational.relation.SortedView`.

        The shared per-permutation cache every order-sensitive consumer
        (index builds, Leapfrog tries, prefix probes) reads through —
        one sort per (relation, order) for the database's lifetime.
        """
        return self._relations[name].view(attr_order)

    def stats_fingerprint(self) -> Tuple:
        """Signature of every relation's statistics, for plan-cache keys."""
        return tuple(
            self._relations[name].stats_fingerprint()
            for name in sorted(self._relations)
        )


class JoinQuery:
    """A natural join query ⋈_{R ∈ atoms(Q)} R."""

    def __init__(self, atoms: Sequence[RelationSchema]):
        if not atoms:
            raise ValueError("a join query needs at least one atom")
        names = [a.name for a in atoms]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate atom names in {names}")
        self.atoms: Tuple[RelationSchema, ...] = tuple(atoms)
        seen: List[str] = []
        for atom in self.atoms:
            for attr in atom.attrs:
                if attr not in seen:
                    seen.append(attr)
        self.variables: Tuple[str, ...] = tuple(seen)

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    def atom(self, name: str) -> RelationSchema:
        for a in self.atoms:
            if a.name == name:
                return a
        raise KeyError(name)

    def edges(self) -> List[frozenset]:
        """The query hypergraph's edge multiset (attribute sets of atoms)."""
        return [frozenset(a.attrs) for a in self.atoms]

    def __repr__(self) -> str:
        return " ⋈ ".join(repr(a) for a in self.atoms)


def evaluate_reference(
    query: JoinQuery, db: Database
) -> List[Tuple[int, ...]]:
    """Slow but obviously-correct join evaluation used as a test oracle.

    Extends partial assignments atom by atom.  Each atom's rows are
    bucketed once on the attributes shared with the variables already
    bound, so extending costs O(|partials| + |rows| + |matches|) per atom
    instead of the O(|partials| · |rows|) all-pairs scan — the difference
    between toy-only and usable on cross-validation-sized instances.
    """
    variables = query.variables
    # Start with the tuples of the first atom as partial assignments.
    first = query.atoms[0]
    partials: List[Dict[str, int]] = [
        dict(zip(first.attrs, t)) for t in db[first.name]
    ]
    bound = set(first.attrs)
    for atom in query.atoms[1:]:
        shared = tuple(a for a in dict.fromkeys(atom.attrs) if a in bound)
        # Bucket the atom's rows by their shared-attribute key.  dict(zip)
        # collapses repeated attributes (last occurrence wins), matching
        # how a row constrains an assignment.
        buckets: Dict[Tuple[int, ...], List[Dict[str, int]]] = {}
        for row in db[atom.name]:
            candidate = dict(zip(atom.attrs, row))
            key = tuple(candidate[a] for a in shared)
            buckets.setdefault(key, []).append(candidate)
        extended: List[Dict[str, int]] = []
        for partial in partials:
            key = tuple(partial[a] for a in shared)
            for candidate in buckets.get(key, ()):
                merged = dict(partial)
                merged.update(candidate)
                extended.append(merged)
        partials = extended
        bound |= set(atom.attrs)
    # Any variable not bound by the atoms... cannot happen (vars come from
    # atoms), so every partial is total.
    out = sorted(
        {tuple(p[v] for v in variables) for p in partials}
    )
    return out


def triangle_query() -> JoinQuery:
    """The running example: Q△ = R(A,B) ⋈ S(B,C) ⋈ T(A,C)."""
    return JoinQuery(
        [
            RelationSchema("R", ("A", "B")),
            RelationSchema("S", ("B", "C")),
            RelationSchema("T", ("A", "C")),
        ]
    )


def path_query(length: int) -> JoinQuery:
    """P_k: R1(A0,A1) ⋈ R2(A1,A2) ⋈ ... — an acyclic treewidth-1 query."""
    if length < 1:
        raise ValueError("path length must be at least 1")
    return JoinQuery(
        [
            RelationSchema(f"R{i}", (f"A{i}", f"A{i + 1}"))
            for i in range(length)
        ]
    )


def star_query(rays: int) -> JoinQuery:
    """Star: R1(H,A1) ⋈ ... ⋈ Rk(H,Ak) — acyclic, treewidth 1."""
    if rays < 1:
        raise ValueError("star needs at least one ray")
    return JoinQuery(
        [RelationSchema(f"R{i}", ("H", f"A{i}")) for i in range(1, rays + 1)]
    )


def cycle_query(length: int) -> JoinQuery:
    """C_k: binary relations around a cycle (treewidth 2 for k ≥ 3)."""
    if length < 3:
        raise ValueError("cycles need at least 3 edges")
    return JoinQuery(
        [
            RelationSchema(
                f"R{i}", (f"A{i}", f"A{(i + 1) % length}")
            )
            for i in range(length)
        ]
    )


def clique_query(n: int) -> JoinQuery:
    """K_n: one binary relation per vertex pair (treewidth n-1)."""
    if n < 2:
        raise ValueError("cliques need at least 2 vertices")
    atoms = []
    for i, j in itertools.combinations(range(n), 2):
        atoms.append(RelationSchema(f"R{i}{j}", (f"A{i}", f"A{j}")))
    return JoinQuery(atoms)


def bowtie_query() -> JoinQuery:
    """The bowtie of Example B.3: R(A) ⋈ S(A,B) ⋈ T(B)."""
    return JoinQuery(
        [
            RelationSchema("R", ("A",)),
            RelationSchema("S", ("A", "B")),
            RelationSchema("T", ("B",)),
        ]
    )
