"""AGM bounds and width measures built on fractional edge covers (App A).

* :func:`fractional_edge_cover` — solve the covering LP with scipy;
* :func:`agm_bound` — the instance-specific AGM output-size bound
  ``∏ |R_F|^{x_F}`` (Definition A.1), minimized by weighting the LP
  objective with ``log |R_F|``;
* :func:`fractional_edge_cover_number` — ρ*(H) with unit weights
  (Definition A.2);
* :func:`fhtw` — fractional hypertree width: the minimum over tree
  decompositions (enumerated through elimination orders) of the maximum
  bag cover number.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.relational.hypergraph import Hypergraph


def fractional_edge_cover(
    vertices: Sequence[str],
    edges: Sequence[FrozenSet[str]],
    weights: Optional[Sequence[float]] = None,
) -> Tuple[float, Tuple[float, ...]]:
    """Solve ``min Σ w_F x_F  s.t.  Σ_{F ∋ v} x_F ≥ 1 ∀v, x ≥ 0``.

    Returns ``(objective, x)``.  Vertices not covered by any edge make the
    LP infeasible and raise ``ValueError``.
    """
    missing = [v for v in vertices if not any(v in e for e in edges)]
    if missing:
        raise ValueError(f"vertices {missing} appear in no edge")
    if not edges:
        if vertices:
            raise ValueError("no edges to cover the vertices with")
        return 0.0, ()
    w = list(weights) if weights is not None else [1.0] * len(edges)
    if len(w) != len(edges):
        raise ValueError("one weight per edge required")
    # linprog minimizes c @ x with A_ub @ x <= b_ub; coverage constraints
    # Σ x_F ≥ 1 become -Σ x_F ≤ -1.
    a_ub = np.zeros((len(vertices), len(edges)))
    for i, v in enumerate(vertices):
        for j, e in enumerate(edges):
            if v in e:
                a_ub[i, j] = -1.0
    b_ub = -np.ones(len(vertices))
    result = linprog(
        c=np.array(w), A_ub=a_ub, b_ub=b_ub, bounds=(0, None),
        method="highs",
    )
    if not result.success:
        raise ValueError(f"edge cover LP failed: {result.message}")
    return float(result.fun), tuple(float(x) for x in result.x)


def fractional_edge_cover_number(h: Hypergraph) -> float:
    """ρ*(H): optimal unit-weight fractional edge cover (Definition A.2)."""
    value, _ = fractional_edge_cover(h.vertices, h.edges)
    return value


def agm_bound(query, db) -> float:
    """The best AGM bound 2^{ρ*(Q, D)} for a query on a database instance.

    Relations of size 0 make the output empty; we return 0 in that case
    (the LP weight log2(0) is -inf, which the paper's formulation sidesteps
    by the trivial bound |Q| ≤ 0).
    """
    sizes = [len(db[a.name]) for a in query.atoms]
    if any(s == 0 for s in sizes):
        return 0.0
    weights = [math.log2(s) if s > 1 else 0.0 for s in sizes]
    edges = [frozenset(a.attrs) for a in query.atoms]
    value, _ = fractional_edge_cover(query.variables, edges, weights)
    return 2.0 ** value


def bag_cover_number(
    bag: FrozenSet[str], edges: Sequence[FrozenSet[str]]
) -> float:
    """ρ* of a hypergraph restricted to a bag (edges intersected with it)."""
    restricted = [e & bag for e in edges if e & bag]
    return fractional_edge_cover(sorted(bag), restricted)[0]


def fhtw_of_order(h: Hypergraph, order: Sequence[str]) -> float:
    """Max bag cover number of the decomposition induced by an order."""
    decomposition = h.tree_decomposition(order)
    return max(
        bag_cover_number(bag, h.edges)
        for bag in decomposition.bags.values()
    )


def fhtw(
    h: Hypergraph, exact_limit: int = 7
) -> Tuple[float, Tuple[str, ...]]:
    """Fractional hypertree width with a witnessing elimination order.

    Exact by enumerating all elimination orders for ≤ ``exact_limit``
    vertices (decompositions induced by elimination orders suffice to reach
    fhtw up to the usual caveats for these small queries); otherwise falls
    back to the treewidth-optimal order as an upper bound.
    """
    n = len(h.vertices)
    if n <= exact_limit:
        best = math.inf
        best_order: Tuple[str, ...] = tuple(h.vertices)
        for perm in itertools.permutations(h.vertices):
            value = fhtw_of_order(h, perm)
            if value < best - 1e-9:
                best = value
                best_order = perm
        return best, best_order
    _, order = h.treewidth()
    return fhtw_of_order(h, order), tuple(order)


def agm_per_bag(
    query, db, order: Sequence[str]
) -> Dict[str, float]:
    """Instance AGM bound of every bag of an elimination-order decomposition.

    The max over bags is the AGM_TD(Q) of Theorem D.9.
    """
    h = Hypergraph.of_query(query)
    decomposition = h.tree_decomposition(order)
    sizes = {a.name: len(db[a.name]) for a in query.atoms}
    out: Dict[str, float] = {}
    for v, bag in decomposition.bags.items():
        edges = []
        weights = []
        for atom in query.atoms:
            inter = frozenset(atom.attrs) & bag
            if inter:
                edges.append(inter)
                size = sizes[atom.name]
                if size == 0:
                    out[v] = 0.0
                    break
                weights.append(math.log2(size) if size > 1 else 0.0)
        else:
            value, _ = fractional_edge_cover(sorted(bag), edges, weights)
            out[v] = 2.0 ** value
    return out
