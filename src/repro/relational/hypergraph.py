"""Query hypergraphs: GYO elimination, acyclicity, widths, decompositions.

Implements the structural machinery of Appendices A.2, D and E:

* **GYO elimination** and α-acyclicity (Definition A.3), including the
  elimination order that Tetris-Preloaded reverses into its SAO
  (Theorem D.8);
* **β-acyclicity** (every sub-hypergraph α-acyclic);
* **vertex elimination / induced width** (Definition E.5), giving the
  treewidth as the minimum induced width over all orders, plus the
  per-attribute ``support(A_k)`` sets used in the witness-counting proofs;
* **tree decompositions** derived from elimination orders (Definition A.4).

Exact treewidth uses a dynamic program over vertex subsets (QuickBB-style
Held–Karp recurrence), fine for the ≤ 15-attribute queries of the paper;
a min-fill greedy heuristic covers anything larger.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

Edge = FrozenSet[str]


class Hypergraph:
    """An undirected hypergraph over named vertices (query attributes)."""

    def __init__(
        self,
        vertices: Sequence[str],
        edges: Sequence[Sequence[str]],
    ):
        self.vertices: Tuple[str, ...] = tuple(vertices)
        vertex_set = set(self.vertices)
        self.edges: List[Edge] = []
        for e in edges:
            edge = frozenset(e)
            if not edge <= vertex_set:
                raise ValueError(
                    f"edge {set(e)} uses vertices outside {vertex_set}"
                )
            self.edges.append(edge)

    @classmethod
    def of_query(cls, query) -> "Hypergraph":
        """The hypergraph H(Q) of a join query (Appendix A)."""
        return cls(query.variables, [tuple(e) for e in query.edges()])

    @classmethod
    def of_boxes(cls, boxes, attrs: Sequence[str]) -> "Hypergraph":
        """Supporting hypergraph H(A) of a box set (Definition 3.8)."""
        edges = set()
        for box in boxes:
            support = frozenset(
                attrs[i] for i, (_, length) in enumerate(box) if length > 0
            )
            if support:
                edges.add(support)
        return cls(attrs, [tuple(e) for e in edges])

    # -- GYO elimination and acyclicity ---------------------------------------

    def gyo_elimination(self) -> Tuple[List[str], List[Edge]]:
        """Run GYO; returns (vertex elimination order, residual edges).

        The hypergraph is α-acyclic iff the residual edge list is empty.
        Each GYO step removes an *ear* vertex (in at most one maximal edge)
        or an edge contained in another.
        """
        edges: List[Set[str]] = [set(e) for e in self.edges if e]
        order: List[str] = []
        alive = set(v for e in edges for v in e)
        changed = True
        while changed:
            changed = False
            # Drop empty edges, duplicates, and edges contained in others.
            kept: List[Set[str]] = []
            for e in edges:
                if not e:
                    changed = True
                    continue
                if any(e < f for f in edges):
                    changed = True
                    continue
                if any(e == f for f in kept):
                    changed = True
                    continue
                kept.append(e)
            edges = kept
            # Remove private vertices (appearing in at most one edge).
            for v in sorted(alive):
                count = sum(1 for e in edges if v in e)
                if count <= 1:
                    for e in edges:
                        e.discard(v)
                    alive.discard(v)
                    order.append(v)
                    changed = True
            edges = [e for e in edges if e]
        # Vertices never touched by any edge are trivially removable.
        for v in self.vertices:
            if v not in order and all(v not in e for e in edges):
                order.append(v)
        return order, [frozenset(e) for e in edges]

    def is_alpha_acyclic(self) -> bool:
        """α-acyclicity: GYO reduces the hypergraph to nothing."""
        _, residual = self.gyo_elimination()
        return not residual

    def is_beta_acyclic(self) -> bool:
        """β-acyclicity: every subset of edges forms an α-acyclic hypergraph.

        Exponential in the number of edges — only for the small queries of
        the paper.
        """
        for k in range(1, len(self.edges) + 1):
            for subset in itertools.combinations(self.edges, k):
                sub = Hypergraph(
                    self.vertices, [tuple(e) for e in subset]
                )
                if not sub.is_alpha_acyclic():
                    return False
        return True

    # -- primal graph, elimination orders, widths -----------------------------

    def primal_neighbors(self) -> Dict[str, Set[str]]:
        """Adjacency of the primal (Gaifman) graph."""
        adj: Dict[str, Set[str]] = {v: set() for v in self.vertices}
        for e in self.edges:
            for a in e:
                for b in e:
                    if a != b:
                        adj[a].add(b)
        return adj

    def induced_width(self, order: Sequence[str]) -> int:
        """Induced width of an elimination order (Definition E.5).

        The order lists attributes as ``(A_1, ..., A_n)``; vertices are
        eliminated from the *end* (A_n first), matching the paper's GAO
        convention.  Returns ``max_k |support(A_k)| - 1``.
        """
        supports = self.elimination_supports(order)
        return max(len(s) for s in supports.values()) - 1 if supports else 0

    def elimination_supports(
        self, order: Sequence[str]
    ) -> Dict[str, FrozenSet[str]]:
        """The ``support(A_k)`` sets of Definition E.5 for a given order.

        ``support(A_k)`` is the union of all hyperedges containing ``A_k``
        in the hypergraph ``H_k`` obtained after eliminating
        ``A_n, ..., A_{k+1}`` (each elimination adds its support back as a
        new edge minus the eliminated vertex).
        """
        if sorted(order) != sorted(self.vertices):
            raise ValueError(
                f"{order} is not a permutation of {self.vertices}"
            )
        edges: Set[Edge] = {e for e in self.edges if e}
        supports: Dict[str, FrozenSet[str]] = {}
        for k in range(len(order) - 1, -1, -1):
            v = order[k]
            touching = [e for e in edges if v in e]
            support = frozenset().union(*touching) if touching else frozenset({v})
            support = support | {v}
            supports[v] = support
            edges = {e for e in edges if v not in e}
            reduced = frozenset(support - {v})
            if reduced:
                edges.add(reduced)
        return supports

    def treewidth_exact(self) -> Tuple[int, Tuple[str, ...]]:
        """Exact treewidth via the Held–Karp elimination DP.

        Returns ``(width, elimination order)`` where the order achieves the
        width as its induced width (vertices eliminated from the end, per
        our convention).  O(2^n · n^2); fine for n ≤ ~16.
        """
        verts = tuple(sorted(self.vertices))
        n = len(verts)
        index = {v: i for i, v in enumerate(verts)}
        base_adj = [0] * n
        for e in self.edges:
            for a in e:
                for b in e:
                    if a != b:
                        base_adj[index[a]] |= 1 << index[b]

        @lru_cache(maxsize=None)
        def solve(remaining: int) -> Tuple[int, Tuple[int, ...]]:
            """Min over elimination sequences of `remaining`: (width, order).

            The returned order lists eliminated vertices first-to-last.
            """
            if remaining == 0:
                return -1, ()
            best_width = n
            best_order: Tuple[int, ...] = ()
            for i in range(n):
                if not (remaining >> i) & 1:
                    continue
                # Degree of i in the graph induced on `remaining` with all
                # already-eliminated vertices' fill edges — computed by
                # saturating: neighbors of i within remaining, where
                # adjacency includes paths through eliminated vertices.
                degree = bin(self._reach(i, remaining, base_adj, n)).count("1")
                if degree >= best_width:
                    continue
                sub_width, sub_order = solve(remaining & ~(1 << i))
                width = max(degree, sub_width)
                if width < best_width:
                    best_width = width
                    best_order = (i,) + sub_order
            return best_width, best_order

        width, elim = solve((1 << n) - 1)
        solve.cache_clear()
        # elim lists first-eliminated first; our convention eliminates from
        # the end of the order, so reverse it.
        order = tuple(verts[i] for i in reversed(elim))
        return max(width, 0), order

    @staticmethod
    def _reach(i: int, remaining: int, base_adj: List[int], n: int) -> int:
        """Neighbors of i in `remaining` via paths through eliminated vertices.

        Classic fact: after eliminating S = complement(remaining), vertex i's
        neighborhood is every remaining j reachable from i through eliminated
        vertices only.
        """
        eliminated = ~remaining
        seen = 1 << i
        frontier = base_adj[i]
        result = 0
        while frontier:
            new = frontier & ~seen
            if not new:
                break
            seen |= new
            result |= new & remaining
            spread = new & eliminated
            frontier = 0
            j = spread
            while j:
                low = j & -j
                frontier |= base_adj[low.bit_length() - 1]
                j ^= low
        return result & ~(1 << i)

    def treewidth_greedy(self) -> Tuple[int, Tuple[str, ...]]:
        """Min-fill greedy elimination: an upper bound on treewidth."""
        adj = {v: set(ns) for v, ns in self.primal_neighbors().items()}
        remaining = set(self.vertices)
        elim: List[str] = []
        width = 0
        while remaining:
            def fill_cost(v: str) -> int:
                ns = adj[v] & remaining
                return sum(
                    1
                    for a, b in itertools.combinations(sorted(ns), 2)
                    if b not in adj[a]
                )

            v = min(sorted(remaining), key=fill_cost)
            ns = adj[v] & remaining
            width = max(width, len(ns))
            for a in ns:
                for b in ns:
                    if a != b:
                        adj[a].add(b)
            remaining.discard(v)
            elim.append(v)
        return width, tuple(reversed(elim))

    def treewidth(self) -> Tuple[int, Tuple[str, ...]]:
        """Treewidth with a matching elimination order (exact for n ≤ 16)."""
        if len(self.vertices) <= 16:
            return self.treewidth_exact()
        return self.treewidth_greedy()

    # -- tree decompositions ----------------------------------------------------

    def tree_decomposition(
        self, order: Optional[Sequence[str]] = None
    ) -> "TreeDecomposition":
        """Tree decomposition induced by an elimination order.

        Bags are the ``support(A_k)`` sets; each bag connects to the bag of
        the earliest-later eliminated vertex it contains — the standard
        elimination-order construction.
        """
        if order is None:
            _, order = self.treewidth()
        supports = self.elimination_supports(order)
        position = {v: i for i, v in enumerate(order)}
        bags = {v: supports[v] for v in order}
        parent: Dict[str, Optional[str]] = {}
        for v in order:
            rest = bags[v] - {v}
            if rest:
                # Vertices are eliminated from the end of the order, so the
                # member of rest eliminated next after v is the one with the
                # largest position; its bag is the parent (the standard
                # elimination-order construction).
                parent[v] = max(rest, key=lambda u: position[u])
            else:
                parent[v] = None
        return TreeDecomposition(self, bags, parent, tuple(order))


@dataclass
class TreeDecomposition:
    """A tree decomposition keyed by elimination vertex (Definition A.4)."""

    hypergraph: Hypergraph
    bags: Dict[str, FrozenSet[str]]
    parent: Dict[str, Optional[str]]
    order: Tuple[str, ...] = ()

    @property
    def width(self) -> int:
        return max(len(b) for b in self.bags.values()) - 1

    def validate(self) -> None:
        """Check the two tree-decomposition properties; raise on violation."""
        # (a) every hyperedge inside some bag
        for e in self.hypergraph.edges:
            if not any(e <= bag for bag in self.bags.values()):
                raise ValueError(f"edge {set(e)} not covered by any bag")
        # (b) bags containing each vertex form a connected subtree
        for v in self.hypergraph.vertices:
            holders = {k for k, bag in self.bags.items() if v in bag}
            if not holders:
                raise ValueError(f"vertex {v} in no bag")
            # walk up from each holder; the meeting structure must connect
            root_hits = set()
            for h in holders:
                cur: Optional[str] = h
                chain = []
                while cur is not None and cur in holders:
                    chain.append(cur)
                    cur = self.parent.get(cur)
                root_hits.add(chain[-1])
            if len(root_hits) > 1:
                raise ValueError(
                    f"bags containing {v} are not connected: {holders}"
                )


def gao_for_acyclic(h: Hypergraph) -> Tuple[str, ...]:
    """Reverse GYO elimination order — the SAO of Theorem D.8.

    Raises when the hypergraph is not α-acyclic.
    """
    order, residual = h.gyo_elimination()
    if residual:
        raise ValueError("hypergraph is not α-acyclic")
    return tuple(reversed(order))
