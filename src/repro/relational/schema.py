"""Relational schemas: attributes, domains, relation symbols (Section 3.1).

The paper assumes every attribute ranges over a finite, discrete, ordered
domain; for the geometric encoding all domains are ``{0, 1}^d`` (integers
``0 .. 2^d - 1``).  ``Domain`` records the bit-depth; ``RelationSchema``
names a relation symbol and its attribute tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class Domain:
    """An attribute domain: the integers ``0 .. 2**depth - 1``."""

    depth: int

    def __post_init__(self):
        if self.depth < 0:
            raise ValueError("domain depth must be non-negative")

    @property
    def size(self) -> int:
        return 1 << self.depth

    def __contains__(self, value: int) -> bool:
        return 0 <= value < self.size

    @classmethod
    def for_values(cls, max_value: int) -> "Domain":
        """The smallest power-of-two domain containing ``0 .. max_value``."""
        if max_value < 0:
            raise ValueError("max_value must be non-negative")
        return cls(max(1, max_value).bit_length() if max_value else 0)


@dataclass(frozen=True)
class RelationSchema:
    """A relation symbol with its ordered attribute tuple, e.g. ``R(A, B)``."""

    name: str
    attrs: Tuple[str, ...]

    def __init__(self, name: str, attrs: Sequence[str]):
        if len(set(attrs)) != len(attrs):
            raise ValueError(f"duplicate attributes in {name}{tuple(attrs)}")
        if not attrs:
            raise ValueError("relations must have at least one attribute")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attrs", tuple(attrs))

    @property
    def arity(self) -> int:
        return len(self.attrs)

    def position(self, attr: str) -> int:
        """Index of an attribute within the schema."""
        try:
            return self.attrs.index(attr)
        except ValueError:
            raise KeyError(f"{attr} not in {self}") from None

    def permutation(self, attr_order: Sequence[str]) -> Tuple[int, ...]:
        """Schema positions realizing ``attr_order``, validated.

        The shared check behind every order-keyed consumer (sorted views,
        B-tree builds): ``attr_order`` must be a permutation of the
        schema's attributes.
        """
        if sorted(attr_order) != sorted(self.attrs):
            raise ValueError(
                f"{tuple(attr_order)} is not a permutation of {self.attrs}"
            )
        return tuple(self.attrs.index(a) for a in attr_order)

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self.attrs)})"
