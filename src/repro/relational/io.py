"""Loading real data: value dictionaries, CSV / edge-list readers.

The geometric machinery works over integer domains ``[0, 2^d)``; real
datasets have strings, floats, sparse ids.  ``ValueDictionary`` provides
the standard dictionary encoding (dense ints in first-seen order, with
decode for presenting results), and the readers build
:class:`~repro.relational.relation.Relation` objects directly from
delimited files.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.relational.query import Database, JoinQuery
from repro.relational.relation import Relation
from repro.relational.schema import Domain, RelationSchema


class ValueDictionary:
    """Dictionary encoding: arbitrary hashable values ↔ dense integers.

    Every attribute shares one dictionary by default, which keeps natural
    joins meaningful (equal values encode equally across relations).
    """

    def __init__(self):
        self._encode: Dict[Hashable, int] = {}
        self._decode: List[Hashable] = []

    def __len__(self) -> int:
        return len(self._decode)

    def encode(self, value: Hashable) -> int:
        code = self._encode.get(value)
        if code is None:
            code = len(self._decode)
            self._encode[value] = code
            self._decode.append(value)
        return code

    def encode_row(self, row: Sequence[Hashable]) -> Tuple[int, ...]:
        return tuple(self.encode(v) for v in row)

    def decode(self, code: int) -> Hashable:
        if not 0 <= code < len(self._decode):
            raise KeyError(f"code {code} not in dictionary")
        return self._decode[code]

    def decode_row(self, row: Sequence[int]) -> Tuple[Hashable, ...]:
        return tuple(self.decode(c) for c in row)

    def decode_rows(
        self, rows: Iterable[Sequence[int]]
    ) -> Iterator[Tuple[Hashable, ...]]:
        """Lazily decode a stream of rows (cursor-friendly: no list)."""
        for row in rows:
            yield self.decode_row(row)

    def domain(self) -> Domain:
        """The smallest power-of-two domain holding every code."""
        return Domain.for_values(max(len(self) - 1, 0))


def relation_from_rows(
    name: str,
    attrs: Sequence[str],
    rows: Iterable[Sequence[Hashable]],
    dictionary: ValueDictionary,
    domain: Optional[Domain] = None,
) -> Relation:
    """Encode raw rows through the dictionary into a Relation.

    When ``domain`` is omitted the caller must finish feeding the
    dictionary first (the domain is sized to the dictionary at call time).
    """
    encoded = [dictionary.encode_row(row) for row in rows]
    dom = domain if domain is not None else dictionary.domain()
    return Relation(RelationSchema(name, tuple(attrs)), encoded, dom)


def read_csv_rows(
    path: str | Path, delimiter: str = ",", skip_header: bool = False
) -> List[Tuple[str, ...]]:
    """Raw string rows of a delimited file (blank lines skipped)."""
    out: List[Tuple[str, ...]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for i, row in enumerate(reader):
            if skip_header and i == 0:
                continue
            if not row or all(not cell.strip() for cell in row):
                continue
            out.append(tuple(cell.strip() for cell in row))
    return out


def database_from_csvs(
    query: JoinQuery,
    paths: Dict[str, str | Path],
    delimiter: str = ",",
    skip_header: bool = False,
) -> Tuple[Database, ValueDictionary]:
    """Load one CSV per query atom into a Database with a shared dictionary.

    Column order in each file must match the atom's attribute order.
    Returns the database and the dictionary for decoding results.
    """
    dictionary = ValueDictionary()
    raw: Dict[str, List[Tuple[str, ...]]] = {}
    for atom in query.atoms:
        if atom.name not in paths:
            raise ValueError(f"no file given for relation {atom.name}")
        rows = read_csv_rows(
            paths[atom.name], delimiter=delimiter, skip_header=skip_header
        )
        for row in rows:
            if len(row) != atom.arity:
                raise ValueError(
                    f"{atom.name}: row {row} has {len(row)} columns, "
                    f"schema expects {atom.arity}"
                )
            dictionary.encode_row(row)
        raw[atom.name] = rows
    domain = dictionary.domain()
    relations = [
        relation_from_rows(
            atom.name, atom.attrs, raw[atom.name], dictionary, domain
        )
        for atom in query.atoms
    ]
    return Database(relations), dictionary


def read_edge_list(path: str | Path) -> List[Tuple[str, str]]:
    """Parse a whitespace-separated edge list (comments start with #)."""
    edges: List[Tuple[str, str]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            edges.append((parts[0], parts[1]))
    return edges


def parse_query(spec: str) -> JoinQuery:
    """Parse a query like ``"R(A,B), S(B,C), T(A,C)"`` into a JoinQuery."""
    atoms: List[RelationSchema] = []
    spec = spec.strip()
    if not spec:
        raise ValueError("empty query specification")
    depth = 0
    start = 0
    chunks: List[str] = []
    for i, ch in enumerate(spec):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced parentheses in {spec!r}")
        elif ch == "," and depth == 0:
            chunks.append(spec[start:i])
            start = i + 1
    chunks.append(spec[start:])
    for chunk in chunks:
        chunk = chunk.strip()
        if "(" not in chunk or not chunk.endswith(")"):
            raise ValueError(f"malformed atom {chunk!r}")
        name, _, body = chunk.partition("(")
        name = name.strip()
        if not name:
            raise ValueError(f"atom missing a relation name: {chunk!r}")
        attrs = [a.strip() for a in body[:-1].split(",")]
        if any(not a for a in attrs):
            raise ValueError(f"atom {chunk!r} has an empty attribute")
        atoms.append(RelationSchema(name, tuple(attrs)))
    return JoinQuery(atoms)


def read_dimacs(path: str | Path):
    """Parse a DIMACS CNF file into a :class:`repro.sat.clauses.CNF`."""
    from repro.sat.clauses import CNF

    num_vars = None
    clauses: List[List[int]] = []
    current: List[int] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(("c", "%")):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"malformed problem line: {line!r}")
                num_vars = int(parts[2])
                continue
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    if current:
                        clauses.append(current)
                        current = []
                else:
                    current.append(lit)
    if current:
        clauses.append(current)
    if num_vars is None:
        raise ValueError("missing DIMACS problem line")
    return CNF(num_vars, clauses)
