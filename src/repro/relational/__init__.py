"""Relational substrate: schemas, relations, queries, hypergraph analysis."""

from repro.relational.agm import (
    agm_bound,
    fhtw,
    fractional_edge_cover,
    fractional_edge_cover_number,
)
from repro.relational.hypergraph import (
    Hypergraph,
    TreeDecomposition,
    gao_for_acyclic,
)
from repro.relational.query import (
    Database,
    JoinQuery,
    bowtie_query,
    clique_query,
    cycle_query,
    evaluate_reference,
    path_query,
    star_query,
    triangle_query,
)
from repro.relational.relation import Relation
from repro.relational.schema import Domain, RelationSchema

__all__ = [
    "Database",
    "Domain",
    "Hypergraph",
    "JoinQuery",
    "Relation",
    "RelationSchema",
    "TreeDecomposition",
    "agm_bound",
    "bowtie_query",
    "clique_query",
    "cycle_query",
    "evaluate_reference",
    "fhtw",
    "fractional_edge_cover",
    "fractional_edge_cover_number",
    "gao_for_acyclic",
    "path_query",
    "star_query",
    "triangle_query",
]
