"""Relation instances: finite sets of integer tuples over a schema."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.relational.schema import Domain, RelationSchema

Tuple_ = Tuple[int, ...]


class Relation:
    """A relation instance: a set of tuples over a schema and shared domain.

    Tuples are kept both as a set (membership) and as a sorted list
    (the indexes build tries from sorted orders).  Instances are immutable
    after construction.
    """

    def __init__(
        self,
        schema: RelationSchema,
        tuples: Iterable[Sequence[int]],
        domain: Domain,
    ):
        self.schema = schema
        self.domain = domain
        seen = set()
        for t in tuples:
            t = tuple(t)
            if len(t) != schema.arity:
                raise ValueError(
                    f"tuple {t} has arity {len(t)}, schema {schema} expects "
                    f"{schema.arity}"
                )
            for v in t:
                if v not in domain:
                    raise ValueError(
                        f"value {v} outside domain [0, {domain.size}) "
                        f"in relation {schema.name}"
                    )
            seen.add(t)
        self._tuples = frozenset(seen)
        self._sorted: List[Tuple_] = sorted(seen)
        self._distinct_counts: Optional[Dict[str, int]] = None
        self._fingerprint: Optional[Tuple] = None

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def attrs(self) -> Tuple[str, ...]:
        return self.schema.attrs

    @property
    def arity(self) -> int:
        return self.schema.arity

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, t: Sequence[int]) -> bool:
        return tuple(t) in self._tuples

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self._sorted)

    def tuples(self) -> frozenset:
        return self._tuples

    def sorted_by(self, attr_order: Sequence[str]) -> List[Tuple_]:
        """Tuples re-ordered and sorted by the given attribute order.

        The returned tuples have their components permuted to follow
        ``attr_order`` (which must be a permutation of the schema attrs) —
        the layout a B-tree with that search-key order would store.
        """
        if sorted(attr_order) != sorted(self.schema.attrs):
            raise ValueError(
                f"{attr_order} is not a permutation of {self.schema.attrs}"
            )
        perm = [self.schema.position(a) for a in attr_order]
        return sorted(tuple(t[i] for i in perm) for t in self._tuples)

    def project(self, attrs: Sequence[str]) -> "Relation":
        """π_attrs(R) as a fresh relation (duplicates removed)."""
        positions = [self.schema.position(a) for a in attrs]
        out = {tuple(t[i] for i in positions) for t in self._tuples}
        schema = RelationSchema(f"π({self.name})", tuple(attrs))
        return Relation(schema, out, self.domain)

    def distinct_counts(self) -> Dict[str, int]:
        """Per-attribute number of distinct values, cached.

        The planner's cardinality estimates key off these counts; relations
        are immutable so one pass over the tuples suffices for the lifetime
        of the instance.
        """
        if self._distinct_counts is None:
            seen: List[set] = [set() for _ in self.schema.attrs]
            for t in self._sorted:
                for values, v in zip(seen, t):
                    values.add(v)
            self._distinct_counts = {
                a: len(values)
                for a, values in zip(self.schema.attrs, seen)
            }
        return self._distinct_counts

    def stats_fingerprint(self) -> Tuple:
        """A cheap content signature for plan/stats-cache keys.

        Name, schema, domain depth, cardinality, distinct counts, plus
        the tuple-set hash (computed once and cached by frozenset), so
        content-dependent statistics — the certificate probe above all —
        are never reused across relations that merely share summary
        counts.
        """
        if self._fingerprint is None:
            counts = self.distinct_counts()
            self._fingerprint = (
                self.name,
                self.schema.attrs,
                self.domain.depth,
                len(self._tuples),
                tuple(counts[a] for a in self.schema.attrs),
                hash(self._tuples),
            )
        return self._fingerprint

    def select_prefix(
        self, attr_order: Sequence[str], prefix: Sequence[int]
    ) -> List[Tuple_]:
        """All tuples (in ``attr_order`` layout) extending a value prefix."""
        rows = self.sorted_by(attr_order)
        prefix = tuple(prefix)
        k = len(prefix)
        return [t for t in rows if t[:k] == prefix]

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, |{self.name}|={len(self)})"
