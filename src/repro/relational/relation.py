"""Relation instances: columnar, order-cached sets of integer tuples.

The data plane under every index and join backend.  A ``Relation`` keeps
its tuples once in a canonical sorted row list plus (lazily) one column
tuple per attribute, and memoizes a :class:`SortedView` per attribute
permutation.  Views are computed once and shared **zero-copy** with every
consumer — B-tree builds, the dyadic/kd indexes, Leapfrog's tries and
``select_prefix`` all read the same cached lists instead of re-sorting,
which is what keeps repeated executions of a served workload from paying
O(N log N) per query on the storage layer.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.relational.schema import Domain, RelationSchema

Tuple_ = Tuple[int, ...]


class SortedView:
    """A memoized sorted materialization of a relation in one attribute order.

    ``rows`` holds the relation's tuples permuted into ``attr_order``
    layout and sorted lexicographically — the exact layout a B-tree with
    that search-key order stores.  The list is **shared** by every
    consumer of the owning relation: treat it as read-only.
    """

    __slots__ = ("attr_order", "rows")

    def __init__(self, attr_order: Tuple[str, ...], rows: List[Tuple_]):
        self.attr_order = attr_order
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self.rows)

    def prefix_range(self, prefix: Sequence[int]) -> Tuple[int, int]:
        """``[lo, hi)`` row range whose tuples extend ``prefix``.

        Two bisections on the sorted rows — O(log N), never a scan.
        """
        prefix = tuple(prefix)
        if len(prefix) > len(self.attr_order):
            raise ValueError(
                f"prefix {prefix} longer than attribute order "
                f"{self.attr_order}"
            )
        if not prefix:
            return 0, len(self.rows)
        lo = bisect.bisect_left(self.rows, prefix)
        hi = bisect.bisect_left(
            self.rows, prefix[:-1] + (prefix[-1] + 1,), lo
        )
        return lo, hi

    def select_prefix(self, prefix: Sequence[int]) -> List[Tuple_]:
        """The rows extending ``prefix`` — an O(log N + matches) slice."""
        lo, hi = self.prefix_range(prefix)
        return self.rows[lo:hi]

    def distinct_leading(self) -> int:
        """Distinct values of the leading attribute: one adjacent-change
        pass over the already-sorted rows, no set needed."""
        count = 0
        prev = None
        for row in self.rows:
            if count == 0 or row[0] != prev:
                count += 1
                prev = row[0]
        return count


class Relation:
    """A relation instance: a set of tuples over a schema and shared domain.

    Storage is columnar and order-cached: tuples live once in a canonical
    (schema-order) sorted row list, per-attribute columns materialize
    lazily, and any other sort order is computed on first request and
    memoized as a :class:`SortedView`.  Instances are immutable after
    construction, so every cached artifact is valid for the lifetime of
    the relation.
    """

    def __init__(
        self,
        schema: RelationSchema,
        tuples: Iterable[Sequence[int]],
        domain: Domain,
    ):
        self.schema = schema
        self.domain = domain
        seen = set()
        for t in tuples:
            t = tuple(t)
            if len(t) != schema.arity:
                raise ValueError(
                    f"tuple {t} has arity {len(t)}, schema {schema} expects "
                    f"{schema.arity}"
                )
            for v in t:
                if v not in domain:
                    raise ValueError(
                        f"value {v} outside domain [0, {domain.size}) "
                        f"in relation {schema.name}"
                    )
            seen.add(t)
        self._tuples = frozenset(seen)
        rows: List[Tuple_] = sorted(seen)
        self._rows = rows
        # The canonical (schema-order) view shares the row list zero-copy.
        self._views: Dict[Tuple[str, ...], SortedView] = {
            schema.attrs: SortedView(schema.attrs, rows)
        }
        self._columns: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._distinct_counts: Optional[Dict[str, int]] = None
        self._column_ranges: Optional[Dict[str, Tuple[int, int]]] = None
        self._fingerprint: Optional[Tuple] = None

    @classmethod
    def from_sorted_rows(
        cls,
        schema: RelationSchema,
        rows: List[Tuple_],
        domain: Domain,
    ) -> "Relation":
        """Trusted fast path: build a relation from already-clean rows.

        ``rows`` must be schema-order tuples, sorted, duplicate-free and
        inside ``domain`` — the invariants every bisect slice of an
        existing relation's canonical view satisfies.  Skips the per-value
        validation pass of ``__init__``; used by shard clipping and
        unpickling, where the rows come from a relation that was already
        validated once.
        """
        rel = cls.__new__(cls)
        rel.schema = schema
        rel.domain = domain
        rel._tuples = frozenset(rows)
        rel._rows = rows
        rel._views = {schema.attrs: SortedView(schema.attrs, rows)}
        rel._columns = None
        rel._distinct_counts = None
        rel._column_ranges = None
        rel._fingerprint = None
        return rel

    # -- pickling: lean on the wire --------------------------------------------

    def __getstate__(self):
        """Ship only the canonical rows; every cache is dropped.

        Memoized sorted views, columns and statistics are all derivable
        from the rows, and on a busy relation they multiply the payload
        several times over.  Workers rebuild them lazily on first use, so
        a pickled relation costs one row list on the wire no matter how
        many permutations the parent has materialized.
        """
        return (self.schema, self.domain, self._rows)

    def __setstate__(self, state):
        schema, domain, rows = state
        self.schema = schema
        self.domain = domain
        self._tuples = frozenset(rows)
        self._rows = rows
        self._views = {schema.attrs: SortedView(schema.attrs, rows)}
        self._columns = None
        self._distinct_counts = None
        self._column_ranges = None
        self._fingerprint = None

    def cache_key(self) -> Tuple:
        """A cheap content key for the shard workers' relation caches.

        Unlike :meth:`stats_fingerprint` this never forces the distinct
        counts — just name, schema, domain, cardinality and the tuple-set
        hash (which ``frozenset`` memoizes), so keying a clipped shard
        payload costs one hash pass, not a statistics build.
        """
        return (
            self.name,
            self.schema.attrs,
            self.domain.depth,
            len(self._tuples),
            hash(self._tuples),
        )

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def attrs(self) -> Tuple[str, ...]:
        return self.schema.attrs

    @property
    def arity(self) -> int:
        return self.schema.arity

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, t: Sequence[int]) -> bool:
        return tuple(t) in self._tuples

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self._rows)

    def tuples(self) -> frozenset:
        return self._tuples

    def rows(self) -> List[Tuple_]:
        """The canonical schema-order sorted rows, shared zero-copy.

        This is the same list every schema-order consumer (the dyadic and
        kd indexes above all) reads — callers must treat it as read-only.
        """
        return self._rows

    def view(self, attr_order: Sequence[str]) -> SortedView:
        """The memoized :class:`SortedView` for an attribute permutation.

        Computed once per permutation per relation; every later request —
        from any consumer — returns the same object.
        """
        key = tuple(attr_order)
        cached = self._views.get(key)
        if cached is None:
            perm = self.schema.permutation(key)
            rows = sorted(tuple(t[i] for i in perm) for t in self._rows)
            cached = SortedView(key, rows)
            self._views[key] = cached
        return cached

    def cached_view_orders(self) -> Tuple[Tuple[str, ...], ...]:
        """The attribute orders with a materialized view (introspection)."""
        return tuple(self._views)

    def sorted_by(self, attr_order: Sequence[str]) -> List[Tuple_]:
        """Tuples re-ordered and sorted by the given attribute order.

        The returned tuples have their components permuted to follow
        ``attr_order`` (which must be a permutation of the schema attrs) —
        the layout a B-tree with that search-key order would store.  The
        list is the cached view's own storage (zero-copy, read-only):
        repeated calls cost a dict lookup, not a sort.
        """
        return self.view(attr_order).rows

    def columns(self) -> Tuple[Tuple[int, ...], ...]:
        """Per-attribute columns aligned with :meth:`rows`, built lazily."""
        if self._columns is None:
            if self._rows:
                self._columns = tuple(zip(*self._rows))
            else:
                self._columns = tuple(() for _ in self.schema.attrs)
        return self._columns

    def column(self, attr: str) -> Tuple[int, ...]:
        """One attribute's column, aligned with the canonical row order."""
        return self.columns()[self.schema.position(attr)]

    def column_ranges(self) -> Dict[str, Tuple[int, int]]:
        """Per-attribute ``(min, max)`` value ranges, cached.

        The planner's range-overlap selectivity reads these: attributes
        whose value ranges barely intersect across relations join far
        below the independence estimate (the split-certificate family
        is the extreme case — zero overlap, empty join).
        """
        if self._column_ranges is None:
            ranges: Dict[str, Tuple[int, int]] = {}
            if self._rows:
                for attr, col in zip(self.schema.attrs, self.columns()):
                    ranges[attr] = (min(col), max(col))
            self._column_ranges = ranges
        return self._column_ranges

    def project(self, attrs: Sequence[str]) -> "Relation":
        """π_attrs(R) as a fresh relation (duplicates removed)."""
        positions = [self.schema.position(a) for a in attrs]
        out = {tuple(t[i] for i in positions) for t in self._tuples}
        schema = RelationSchema(f"π({self.name})", tuple(attrs))
        return Relation(schema, out, self.domain)

    def distinct_counts(self) -> Dict[str, int]:
        """Per-attribute number of distinct values, cached.

        The planner's cardinality estimates key off these counts.  An
        attribute that leads some already-materialized sorted view is
        counted with one adjacent-change pass over that view; the rest
        are counted off their columns in a single set-building pass.
        Relations are immutable, so the result is cached for the lifetime
        of the instance.
        """
        if self._distinct_counts is None:
            counts: Dict[str, int] = {}
            for attr in self.schema.attrs:
                view = next(
                    (v for o, v in self._views.items() if o[0] == attr),
                    None,
                )
                if view is not None:
                    counts[attr] = view.distinct_leading()
                else:
                    counts[attr] = len(set(self.column(attr)))
            self._distinct_counts = counts
        return self._distinct_counts

    def stats_fingerprint(self) -> Tuple:
        """A cheap content signature for plan/stats-cache keys.

        Name, schema, domain depth, cardinality, distinct counts, plus
        the tuple-set hash (computed once and cached by frozenset), so
        content-dependent statistics — the certificate probe above all —
        are never reused across relations that merely share summary
        counts.
        """
        if self._fingerprint is None:
            counts = self.distinct_counts()
            self._fingerprint = (
                self.name,
                self.schema.attrs,
                self.domain.depth,
                len(self._tuples),
                tuple(counts[a] for a in self.schema.attrs),
                hash(self._tuples),
            )
        return self._fingerprint

    def select_prefix(
        self, attr_order: Sequence[str], prefix: Sequence[int]
    ) -> List[Tuple_]:
        """All tuples (in ``attr_order`` layout) extending a value prefix.

        A bisect range lookup on the cached sorted view — O(log N +
        matches), where the seed core paid a full re-sort plus a linear
        scan per call.
        """
        return self.view(attr_order).select_prefix(prefix)

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, |{self.name}|={len(self)})"
