"""Relation instances: columnar, order-cached sets of integer tuples.

The data plane under every index and join backend.  A ``Relation`` keeps
its data in **flat columnar buffers** — one ``array('q')`` per attribute,
aligned with the canonical (schema-order) sorted row order — plus a
lazily materialized row-tuple list for consumers that walk tuples, and
memoizes a :class:`SortedView` per attribute permutation.  Views are
computed once and shared **zero-copy** with every consumer — B-tree
builds, the dyadic/kd indexes, Leapfrog's tries and ``select_prefix``
all read the same cached lists instead of re-sorting, which is what
keeps repeated executions of a served workload from paying O(N log N)
per query on the storage layer.

The flat buffers are the relation's canonical storage and interchange
format: pickling ships the raw column bytes (a memcpy each way, no
per-tuple encode/decode), the compiled kernels of
:mod:`repro.engine.codegen` gallop over the per-level column arrays
directly, and ``multiprocessing.shared_memory`` can attach to the same
byte layout without a translation step.  The view cache is bounded
(:data:`Relation.VIEW_CACHE_CAP`, LRU) so long-lived server processes
holding many relations cannot grow a per-permutation cache without
bound; the canonical schema-order view is pinned.
"""

from __future__ import annotations

import bisect
import pickle
import struct
from array import array
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.obs.metrics import REGISTRY as _METRICS
from repro.relational.schema import Domain, RelationSchema

Tuple_ = Tuple[int, ...]

#: The array typecode of every flat column buffer: signed 64-bit, the
#: widest value any packed box or domain code needs, and the layout
#: shared-memory attachment expects.
COLUMN_TYPECODE = "q"

#: Leading magic of a relation laid out in a shared-memory segment:
#: 8 bytes of magic, a little-endian ``u64`` header length, the pickled
#: ``(schema, domain, nrows)`` header, padding to 8-byte alignment, then
#: the flat columns back to back (``nrows × 8`` bytes each, schema
#: order, canonical row order).
SHM_MAGIC = b"RPRSHM1\n"

_SHM_LEN_FMT = "<Q"
_SHM_LEN_OFF = len(SHM_MAGIC)
_SHM_HEADER_OFF = _SHM_LEN_OFF + struct.calcsize(_SHM_LEN_FMT)


def _shm_data_offset(header_len: int) -> int:
    """First column byte: the header padded to 8-byte alignment."""
    return (_SHM_HEADER_OFF + header_len + 7) & ~7


def _columns_of(rows: Sequence[Tuple_], arity: int) -> Tuple[array, ...]:
    """Flat per-attribute buffers for a row list (one pass via zip)."""
    if rows:
        return tuple(array(COLUMN_TYPECODE, col) for col in zip(*rows))
    return tuple(array(COLUMN_TYPECODE) for _ in range(arity))


class SortedView:
    """A memoized sorted materialization of a relation in one attribute order.

    ``rows`` holds the relation's tuples permuted into ``attr_order``
    layout and sorted lexicographically — the exact layout a B-tree with
    that search-key order stores.  ``column(k)`` exposes the k-th
    attribute of the same layout as a flat ``array('q')`` buffer (built
    lazily, memoized): the per-level arrays the compiled leapfrog
    kernels gallop over.  Both are **shared** by every consumer of the
    owning relation: treat them as read-only.
    """

    __slots__ = ("attr_order", "rows", "_cols")

    def __init__(self, attr_order: Tuple[str, ...], rows: List[Tuple_]):
        self.attr_order = attr_order
        self.rows = rows
        self._cols: Optional[Tuple[array, ...]] = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self.rows)

    def columns(self) -> Tuple[array, ...]:
        """Flat per-attribute buffers aligned with ``rows`` (lazy, cached)."""
        if self._cols is None:
            self._cols = _columns_of(self.rows, len(self.attr_order))
        return self._cols

    def column(self, k: int) -> array:
        """The k-th attribute's flat buffer in this view's sort order."""
        return self.columns()[k]

    def prefix_range(self, prefix: Sequence[int]) -> Tuple[int, int]:
        """``[lo, hi)`` row range whose tuples extend ``prefix``.

        Two bisections on the sorted rows — O(log N), never a scan.
        """
        prefix = tuple(prefix)
        if len(prefix) > len(self.attr_order):
            raise ValueError(
                f"prefix {prefix} longer than attribute order "
                f"{self.attr_order}"
            )
        if not prefix:
            return 0, len(self.rows)
        lo = bisect.bisect_left(self.rows, prefix)
        hi = bisect.bisect_left(
            self.rows, prefix[:-1] + (prefix[-1] + 1,), lo
        )
        return lo, hi

    def select_prefix(self, prefix: Sequence[int]) -> List[Tuple_]:
        """The rows extending ``prefix`` — an O(log N + matches) slice."""
        lo, hi = self.prefix_range(prefix)
        return self.rows[lo:hi]

    def distinct_leading(self) -> int:
        """Distinct values of the leading attribute: one adjacent-change
        pass over the already-sorted rows, no set needed."""
        count = 0
        prev = None
        for row in self.rows:
            if count == 0 or row[0] != prev:
                count += 1
                prev = row[0]
        return count


class Relation:
    """A relation instance: a set of tuples over a schema and shared domain.

    Storage is columnar and order-cached: the canonical representation
    is one flat ``array('q')`` buffer per attribute in schema order,
    sorted by the canonical row order; the row-tuple list, the tuple
    set and any other sort order materialize lazily and are memoized.
    Instances are immutable after construction, so every cached artifact
    is valid for the lifetime of the relation.

    Sorted-view memoization is a bounded LRU (:data:`VIEW_CACHE_CAP`
    entries; the canonical view is pinned) with an eviction counter, so
    a long-lived process serving many GAOs over one relation keeps a
    working set, not an unbounded history.
    """

    #: Max memoized :class:`SortedView` permutations per relation (the
    #: pinned canonical view does not count against the cap).
    VIEW_CACHE_CAP = 16

    def __init__(
        self,
        schema: RelationSchema,
        tuples: Iterable[Sequence[int]],
        domain: Domain,
    ):
        self.schema = schema
        self.domain = domain
        seen = set()
        for t in tuples:
            t = tuple(t)
            if len(t) != schema.arity:
                raise ValueError(
                    f"tuple {t} has arity {len(t)}, schema {schema} expects "
                    f"{schema.arity}"
                )
            for v in t:
                if v not in domain:
                    raise ValueError(
                        f"value {v} outside domain [0, {domain.size}) "
                        f"in relation {schema.name}"
                    )
            seen.add(t)
        rows: List[Tuple_] = sorted(seen)
        self._init_from_rows(rows, tuples_set=frozenset(seen))

    def _init_from_rows(
        self,
        rows: Optional[List[Tuple_]],
        cols: Optional[Tuple[array, ...]] = None,
        nrows: Optional[int] = None,
        tuples_set: Optional[frozenset] = None,
    ) -> None:
        """Shared constructor tail: seed storage, empty caches."""
        self._rows = rows
        self._cols = cols
        self._nrows = len(rows) if rows is not None else int(nrows or 0)
        self._tuples = tuples_set
        #: Keep-alive for shm-backed relations: the attached
        #: ``SharedMemory`` whose mapping the columns view into.
        self._shm_keep = None
        self._views: "OrderedDict[Tuple[str, ...], SortedView]" = (
            OrderedDict()
        )
        self.view_evictions = 0
        self._distinct_counts: Optional[Dict[str, int]] = None
        self._column_ranges: Optional[Dict[str, Tuple[int, int]]] = None
        self._fingerprint: Optional[Tuple] = None

    @classmethod
    def from_sorted_rows(
        cls,
        schema: RelationSchema,
        rows: List[Tuple_],
        domain: Domain,
    ) -> "Relation":
        """Trusted fast path: build a relation from already-clean rows.

        ``rows`` must be schema-order tuples, sorted, duplicate-free and
        inside ``domain`` — the invariants every bisect slice of an
        existing relation's canonical view satisfies.  Skips the per-value
        validation pass of ``__init__``; used by shard clipping, where
        the rows come from a relation that was already validated once.
        """
        rel = cls.__new__(cls)
        rel.schema = schema
        rel.domain = domain
        rel._init_from_rows(rows)
        return rel

    # -- pickling: flat buffers on the wire ------------------------------------

    def __getstate__(self):
        """Ship the flat column buffers as raw bytes; every cache is dropped.

        A pickled relation costs one ``tobytes`` memcpy per column on
        the way out and one ``frombytes`` on the way in — no per-tuple
        encode/decode — which is what makes shipping a relation to a
        shard worker two orders of magnitude cheaper in CPU than
        pickling the row-tuple list.  Memoized sorted views, columns and
        statistics are all derivable, so workers rebuild them lazily on
        first use.
        """
        return (
            self.schema,
            self.domain,
            self._nrows,
            tuple(c.tobytes() for c in self.columns()),
        )

    def __setstate__(self, state):
        schema, domain, nrows, blobs = state
        self.schema = schema
        self.domain = domain
        cols = []
        for blob in blobs:
            col = array(COLUMN_TYPECODE)
            col.frombytes(blob)
            cols.append(col)
        self._init_from_rows(None, cols=tuple(cols), nrows=nrows)

    def cache_key(self) -> Tuple:
        """A cheap content key for the shard workers' relation caches.

        Unlike :meth:`stats_fingerprint` this never forces the distinct
        counts — just name, schema, domain, cardinality and the tuple-set
        hash (which ``frozenset`` memoizes), so keying a clipped shard
        payload costs one hash pass, not a statistics build.
        """
        return (
            self.name,
            self.schema.attrs,
            self.domain.depth,
            self._nrows,
            hash(self.tuples()),
        )

    # -- shared memory: the zero-copy wire -------------------------------------

    def nominal_bytes(self) -> int:
        """The payload's nominal size: 8 bytes per column value.

        What the shm size threshold and the ``parallel.ship.
        bytes_nominal`` metric measure — pickle framing and the shm
        header vary, this stays comparable across runs.
        """
        return 8 * self._nrows * self.schema.arity

    def shm_layout(self) -> Tuple[int, bytes]:
        """``(total segment bytes, header blob)`` for :meth:`to_shm`."""
        header = pickle.dumps(
            (self.schema, self.domain, self._nrows),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        total = _shm_data_offset(len(header)) + self.nominal_bytes()
        return total, header

    def to_shm(self, buf, header: Optional[bytes] = None) -> int:
        """Lay this relation into a writable buffer (a shm segment).

        Magic + header + the flat columns, one ``tobytes`` memcpy per
        column — the same cost as pickling, paid **once** per relation
        instead of once per worker.  Returns the bytes written.  Every
        sub-view of ``buf`` is transient, so the caller can still
        ``close()`` a ``SharedMemory`` segment afterwards.
        """
        if header is None:
            _, header = self.shm_layout()
        data_off = _shm_data_offset(len(header))
        buf[:_SHM_LEN_OFF] = SHM_MAGIC
        struct.pack_into(_SHM_LEN_FMT, buf, _SHM_LEN_OFF, len(header))
        buf[_SHM_HEADER_OFF:_SHM_HEADER_OFF + len(header)] = header
        colbytes = 8 * self._nrows
        offset = data_off
        for col in self.columns():
            buf[offset:offset + colbytes] = (
                col.tobytes() if self._nrows else b""
            )
            offset += colbytes
        return offset

    @staticmethod
    def parse_shm_header(buf) -> Tuple[RelationSchema, Domain, int, int]:
        """``(schema, domain, nrows, data offset)`` of a laid-out buffer.

        Split out of :meth:`from_shm` so attach-side callers building
        many slices of one segment can unpickle the header once and pass
        it back in, instead of re-parsing per slice.
        """
        mv = memoryview(buf)
        if bytes(mv[:_SHM_LEN_OFF]) != SHM_MAGIC:
            raise ValueError("buffer does not hold a relation layout")
        (header_len,) = struct.unpack_from(_SHM_LEN_FMT, mv, _SHM_LEN_OFF)
        schema, domain, nrows = pickle.loads(
            mv[_SHM_HEADER_OFF:_SHM_HEADER_OFF + header_len]
        )
        return schema, domain, nrows, _shm_data_offset(header_len)

    @classmethod
    def from_shm(
        cls,
        buf,
        lo: Optional[int] = None,
        hi: Optional[int] = None,
        keep=None,
        header: Optional[Tuple[RelationSchema, Domain, int, int]] = None,
    ) -> "Relation":
        """A relation whose columns view ``buf`` zero-copy.

        ``buf`` is a buffer laid out by :meth:`to_shm` (typically
        ``SharedMemory.buf``).  With ``lo``/``hi`` the columns are
        sliced to canonical rows ``[lo, hi)`` — still zero-copy, the
        shard-clip path.  ``keep`` is retained on the relation so the
        mapping outlives it (pass the attached ``SharedMemory``).
        ``header`` is an optional pre-parsed :meth:`parse_shm_header`
        result (workers cache it per attached segment).  Lazy rows,
        sorted views and statistics build on demand exactly as after
        unpickling.
        """
        mv = memoryview(buf)
        if header is None:
            header = cls.parse_shm_header(mv)
        schema, domain, nrows, data_off = header
        colbytes = 8 * nrows
        if lo is None:
            lo2, hi2 = 0, nrows
        else:
            lo2 = max(0, min(lo, nrows))
            hi2 = max(lo2, min(nrows if hi is None else hi, nrows))
        cols = []
        for i in range(schema.arity):
            start = data_off + i * colbytes
            col = mv[start:start + colbytes].cast(COLUMN_TYPECODE)
            if (lo2, hi2) != (0, nrows):
                col = col[lo2:hi2]
            cols.append(col)
        rel = cls.__new__(cls)
        rel.schema = schema
        rel.domain = domain
        rel._init_from_rows(None, cols=tuple(cols), nrows=hi2 - lo2)
        rel._shm_keep = keep
        return rel

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def attrs(self) -> Tuple[str, ...]:
        return self.schema.attrs

    @property
    def arity(self) -> int:
        return self.schema.arity

    def __len__(self) -> int:
        return self._nrows

    def __contains__(self, t: Sequence[int]) -> bool:
        return tuple(t) in self.tuples()

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self.rows())

    def tuples(self) -> frozenset:
        """The tuple set (lazy after unpickling, memoized)."""
        if self._tuples is None:
            self._tuples = frozenset(self.rows())
        return self._tuples

    def rows(self) -> List[Tuple_]:
        """The canonical schema-order sorted rows, shared zero-copy.

        This is the same list every schema-order consumer (the dyadic and
        kd indexes above all) reads — callers must treat it as read-only.
        After unpickling only the flat buffers exist; the row list is
        re-materialized here in one C-level ``zip`` pass and memoized.
        """
        if self._rows is None:
            if self._nrows:
                self._rows = list(zip(*self._cols))
            else:
                self._rows = []
        return self._rows

    def view(self, attr_order: Sequence[str]) -> SortedView:
        """The memoized :class:`SortedView` for an attribute permutation.

        Computed once per permutation per relation and LRU-retained:
        every later request — from any consumer — returns the same
        object while it stays within the :data:`VIEW_CACHE_CAP` working
        set.  The canonical schema-order view shares the row list
        zero-copy and is never evicted.
        """
        key = tuple(attr_order)
        cached = self._views.get(key)
        if cached is not None:
            self._views.move_to_end(key)
            return cached
        if key == self.schema.attrs:
            cached = SortedView(key, self.rows())
            # Pinned: insert at the cold end so LRU eviction (which
            # skips the canonical key) keeps it without inspecting it.
            self._views[key] = cached
            self._views.move_to_end(key, last=False)
            return cached
        perm = self.schema.permutation(key)
        rows = sorted(tuple(t[i] for i in perm) for t in self.rows())
        cached = SortedView(key, rows)
        self._views[key] = cached
        _METRICS.inc("relation.view.builds")
        canonical = self.schema.attrs
        while len(self._views) > self.VIEW_CACHE_CAP + (
            1 if canonical in self._views else 0
        ):
            oldest = next(iter(self._views))
            if oldest == canonical:
                self._views.move_to_end(canonical, last=False)
                oldest = next(
                    k for k in self._views if k != canonical
                )
            del self._views[oldest]
            self.view_evictions += 1
            _METRICS.inc("relation.view.evictions")
        return cached

    def cached_view_orders(self) -> Tuple[Tuple[str, ...], ...]:
        """The attribute orders with a materialized view (introspection)."""
        return tuple(self._views)

    def sorted_by(self, attr_order: Sequence[str]) -> List[Tuple_]:
        """Tuples re-ordered and sorted by the given attribute order.

        The returned tuples have their components permuted to follow
        ``attr_order`` (which must be a permutation of the schema attrs) —
        the layout a B-tree with that search-key order would store.  The
        list is the cached view's own storage (zero-copy, read-only):
        repeated calls cost a dict lookup, not a sort.
        """
        return self.view(attr_order).rows

    def columns(self) -> Tuple[array, ...]:
        """Flat per-attribute buffers aligned with :meth:`rows`.

        These ``array('q')`` buffers are the canonical storage: what
        pickling ships, what compiled kernels index, and the byte layout
        a shared-memory segment can hold.  Built lazily when the
        relation was constructed from rows; present from the start after
        unpickling.
        """
        if self._cols is None:
            self._cols = _columns_of(self.rows(), self.schema.arity)
        return self._cols

    def column(self, attr: str) -> array:
        """One attribute's flat buffer, aligned with the canonical rows."""
        return self.columns()[self.schema.position(attr)]

    def column_bytes(self) -> Tuple[bytes, ...]:
        """The raw per-column byte payloads (the wire / shared-memory form)."""
        return tuple(c.tobytes() for c in self.columns())

    def column_ranges(self) -> Dict[str, Tuple[int, int]]:
        """Per-attribute ``(min, max)`` value ranges, cached.

        The planner's range-overlap selectivity reads these: attributes
        whose value ranges barely intersect across relations join far
        below the independence estimate (the split-certificate family
        is the extreme case — zero overlap, empty join).
        """
        if self._column_ranges is None:
            ranges: Dict[str, Tuple[int, int]] = {}
            if self._nrows:
                for attr, col in zip(self.schema.attrs, self.columns()):
                    ranges[attr] = (min(col), max(col))
            self._column_ranges = ranges
        return self._column_ranges

    def project(self, attrs: Sequence[str]) -> "Relation":
        """π_attrs(R) as a fresh relation (duplicates removed)."""
        positions = [self.schema.position(a) for a in attrs]
        out = {tuple(t[i] for i in positions) for t in self.rows()}
        schema = RelationSchema(f"π({self.name})", tuple(attrs))
        return Relation(schema, out, self.domain)

    def distinct_counts(self) -> Dict[str, int]:
        """Per-attribute number of distinct values, cached.

        The planner's cardinality estimates key off these counts.  An
        attribute that leads some already-materialized sorted view is
        counted with one adjacent-change pass over that view; the rest
        are counted off their columns in a single set-building pass.
        Relations are immutable, so the result is cached for the lifetime
        of the instance.
        """
        if self._distinct_counts is None:
            counts: Dict[str, int] = {}
            for attr in self.schema.attrs:
                view = next(
                    (v for o, v in self._views.items() if o[0] == attr),
                    None,
                )
                if view is not None:
                    counts[attr] = view.distinct_leading()
                else:
                    counts[attr] = len(set(self.column(attr)))
            self._distinct_counts = counts
        return self._distinct_counts

    def stats_fingerprint(self) -> Tuple:
        """A cheap content signature for plan/stats-cache keys.

        Name, schema, domain depth, cardinality, distinct counts, plus
        the tuple-set hash (computed once and cached by frozenset), so
        content-dependent statistics — the certificate probe above all —
        are never reused across relations that merely share summary
        counts.
        """
        if self._fingerprint is None:
            counts = self.distinct_counts()
            self._fingerprint = (
                self.name,
                self.schema.attrs,
                self.domain.depth,
                self._nrows,
                tuple(counts[a] for a in self.schema.attrs),
                hash(self.tuples()),
            )
        return self._fingerprint

    def select_prefix(
        self, attr_order: Sequence[str], prefix: Sequence[int]
    ) -> List[Tuple_]:
        """All tuples (in ``attr_order`` layout) extending a value prefix.

        A bisect range lookup on the cached sorted view — O(log N +
        matches), where the seed core paid a full re-sort plus a linear
        scan per call.
        """
        return self.view(attr_order).select_prefix(prefix)

    def __repr__(self) -> str:
        return f"Relation({self.schema!r}, |{self.name}|={len(self)})"
