"""Load balancing: balanced partitions, the Balance map, and Tetris-LB.

Section 4.5 / Appendix F: plain ordered resolution is stuck at
Ω(|C|^{n-1}) on adversarial inputs (Theorem 5.4; Example F.1 realizes the
bottleneck for n = 3).  The fix lifts the n-dimensional BCP into 2n-2
dimensions through the **Balance map**

    ⟨b_1, ..., b_n⟩  ↦  ⟨b'_1, ..., b'_{n-2}, b_n, b_{n-1},
                          b''_{n-2}, ..., b''_1⟩,

where ``b_i = b'_i · b''_i`` splits at the boundary of a *balanced
partition* P_i of dimension i (Definition 4.13: Õ(√|C|) parts, each with
at most √|C| boxes strictly inside).  Running ordered Tetris on the lifted
boxes with the lifted SAO gives the Õ(|C|^{n/2} + Z) bound of
Theorem 4.11 — the Geometric Resolution upper bound of Figure 2.

The lifted space is *not* a product of fixed-depth domains: a primed
dimension ranges over the code P_i and its double-primed partner holds the
variable-length remainder.  :class:`~repro.core.tetris.CodeDimension` and
:class:`~repro.core.tetris.RemainderDimension` teach the engine where those
dimensions bottom out, and the map is exact on points (each original point
corresponds to exactly one lifted unit box), so outputs translate back
losslessly.

The partition / lifting machinery works on **packed** marker-bit
intervals throughout (splitting a component at a code boundary is two
shifts); the two public solvers accept boxes in pair or packed form and
convert once at entry.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core import intervals as dy
from repro.core.boxes import PackedBox
from repro.core.intervals import PLAMBDA, Packed
from repro.core.resolution import ResolutionStats
from repro.core.tetris import (
    BoxSetOracle,
    CodeDimension,
    FixedDepth,
    RemainderDimension,
    TetrisEngine,
)

Point = Tuple[int, ...]
Partition = Tuple[Packed, ...]


def strictly_inside_count(
    components: Sequence[Packed], part: Packed
) -> int:
    """|C_{⊂x}|: how many packed components have ``part`` as a *strict* prefix."""
    pl = part.bit_length()
    return sum(
        1
        for c in components
        if c.bit_length() > pl and (c >> (c.bit_length() - pl)) == part
    )


def balanced_partition(
    boxes: Sequence[PackedBox], axis: int, depth: int,
    threshold: Optional[float] = None,
) -> Partition:
    """A balanced partition of dimension ``axis`` (Proposition F.4).

    Start from {λ} and split every *heavy* interval — one with more than
    ``threshold`` (default √|C|) boxes strictly inside — until none is
    heavy.  The result is a complete prefix-free code with Õ(√|C|) parts,
    as packed intervals.
    """
    components = [box[axis] for box in boxes]
    if threshold is None:
        threshold = math.sqrt(len(boxes)) if boxes else 1.0
    unit_bit = 1 << depth
    parts: List[Packed] = []
    frontier: List[Packed] = [PLAMBDA]
    while frontier:
        part = frontier.pop()
        if (
            part < unit_bit
            and strictly_inside_count(components, part) > threshold
        ):
            frontier.append(part << 1)
            frontier.append((part << 1) | 1)
        else:
            parts.append(part)
    return tuple(sorted(parts))


def split_by_partition(
    p: Packed, partition: Partition
) -> Tuple[Packed, Packed]:
    """The (s¹(P), s²(P)) split of equations (19)–(20).

    If ``p`` is a prefix of some code element, return ``(p, λ)``;
    otherwise a unique code element ``q`` strictly prefixes ``p`` and we
    return ``(q, suffix)`` with the suffix re-packed.
    """
    pl = p.bit_length()
    for q in partition:
        shift = q.bit_length() - pl
        if shift >= 0:
            if (q >> shift) == p:
                return p, PLAMBDA  # p ∈ prefixes(P)
        else:
            if (p >> -shift) == q:
                suffix_len = -shift
                suffix = (1 << suffix_len) | (p & ((1 << suffix_len) - 1))
                return q, suffix
    raise ValueError(
        f"interval {dy.pto_bits(p)} not consistent with the partition "
        f"{tuple(dy.pto_bits(q) for q in partition)}"
    )


class BalanceMap:
    """The lifting ``Balance_{A_1..A_{n-2}}`` and its inverse on points.

    Lifted attribute order (which is also the SAO Tetris-LB uses):

        A'_1, ..., A'_{n-2}, A_n, A_{n-1}, A''_{n-2}, ..., A''_1
    """

    def __init__(
        self,
        boxes: Sequence[PackedBox],
        ndim: int,
        depth: int,
        threshold: Optional[float] = None,
    ):
        if ndim < 2:
            raise ValueError("the Balance map needs at least 2 dimensions")
        self.ndim = ndim
        self.depth = depth
        self.num_partitioned = max(ndim - 2, 0)
        self.partitions: List[Partition] = [
            balanced_partition(boxes, axis, depth, threshold=threshold)
            for axis in range(self.num_partitioned)
        ]
        self.lifted_ndim = 2 * ndim - 2 if ndim > 2 else ndim

    def lift_box(self, box: PackedBox) -> PackedBox:
        """Map one original packed box into the lifted space."""
        k = self.num_partitioned
        primed: List[Packed] = []
        double_primed: List[Packed] = []
        for axis in range(k):
            first, second = split_by_partition(
                box[axis], self.partitions[axis]
            )
            primed.append(first)
            double_primed.append(second)
        # Lifted order: primed ascending, A_n, A_{n-1}, double-primed
        # descending.
        return tuple(
            primed + [box[self.ndim - 1], box[self.ndim - 2]]
            + list(reversed(double_primed))
        )

    def lift_boxes(self, boxes: Iterable[PackedBox]) -> List[PackedBox]:
        return [self.lift_box(b) for b in boxes]

    def lower_point(self, lifted_unit: PackedBox) -> Point:
        """Map a lifted packed unit box back to the original coordinates."""
        k = self.num_partitioned
        coords: List[int] = [0] * self.ndim
        for axis in range(k):
            p = lifted_unit[axis]
            s = lifted_unit[self.lifted_ndim - 1 - axis]
            pl = p.bit_length() - 1
            sl = s.bit_length() - 1
            if pl + sl != self.depth:
                raise ValueError(
                    f"lifted unit box has inconsistent lengths on axis "
                    f"{axis}: {pl} + {sl} != {self.depth}"
                )
            coords[axis] = ((p ^ (1 << pl)) << sl) | (s ^ (1 << sl))
        coords[self.ndim - 1] = dy.pvalue(lifted_unit[k])
        coords[self.ndim - 2] = dy.pvalue(lifted_unit[k + 1])
        return tuple(coords)

    def dimension_specs(self):
        """Specs for the lifted space, in lifted (SAO) order."""
        k = self.num_partitioned
        specs: List = []
        for axis in range(k):
            specs.append(CodeDimension(self.partitions[axis]))
        specs.append(FixedDepth(self.depth))  # A_n
        specs.append(FixedDepth(self.depth))  # A_{n-1}
        for axis in range(k - 1, -1, -1):
            specs.append(RemainderDimension(axis, self.depth))
        return specs


def tetris_preloaded_lb(
    boxes: Sequence,
    ndim: int,
    depth: int,
    stats: Optional[ResolutionStats] = None,
    threshold: Optional[float] = None,
) -> List[Point]:
    """Algorithm 3 / 5: Balance then Tetris-Preloaded on the lifted boxes.

    Solves BCP in Õ(|C|^{n/2} + Z) when handed a box certificate (the
    offline setting of Section 4.5.1); on arbitrary box sets the bound is
    in terms of |input| instead.  Accepts pair or packed boxes.
    """
    boxes = [dy.pack_box(b) for b in boxes]
    if ndim <= 2:
        # Nothing to balance below 3 dimensions; plain Tetris is already
        # within the bound (Theorem E.11 gives Õ(|C|^{n-1}) = Õ(|C|)).
        from repro.core.tetris import tetris_preloaded

        return tetris_preloaded(boxes, ndim, depth, stats=stats)
    mapping = BalanceMap(boxes, ndim, depth, threshold=threshold)
    lifted = mapping.lift_boxes(boxes)
    engine = TetrisEngine(
        mapping.lifted_ndim,
        depth,
        stats=stats,
        dims=mapping.dimension_specs(),
    )
    oracle = BoxSetOracle(lifted, mapping.lifted_ndim)
    outputs = engine.run(
        oracle, preload=True, one_pass=True, return_boxes=True
    )
    return sorted(mapping.lower_point(b) for b in outputs)


def tetris_reloaded_lb(
    boxes: Sequence,
    ndim: int,
    depth: int,
    stats: Optional[ResolutionStats] = None,
    rebuild_factor: float = 2.0,
) -> List[Point]:
    """Online Tetris-LB (Appendix F.6, simplified).

    The paper's online variant re-adjusts partitions as boxes stream in;
    we approximate the amortized bookkeeping by restarting with fresh
    balanced partitions whenever the number of *loaded* boxes grows by
    ``rebuild_factor`` — total rebalancing work stays within a log factor
    of the final run (each restart's work is dominated by the next).
    Accepts pair or packed boxes.
    """
    boxes = [dy.pack_box(b) for b in boxes]
    if ndim <= 2:
        from repro.core.tetris import tetris_reloaded

        return tetris_reloaded(boxes, ndim, depth, stats=stats)
    stats = stats if stats is not None else ResolutionStats()
    oracle = BoxSetOracle(boxes, ndim)
    unit_bit = 1 << depth
    loaded: List[PackedBox] = []
    loaded_set = set()
    budget = 4
    while True:
        mapping = BalanceMap(
            loaded if loaded else boxes[:1], ndim, depth
        )
        engine = TetrisEngine(
            mapping.lifted_ndim, depth, stats=stats,
            dims=mapping.dimension_specs(),
        )
        for box in loaded:
            engine.add_box(mapping.lift_box(box))
        outputs: List[Point] = []
        restart = False
        # Run the outer loop manually so we can intercept oracle loads.
        covered, witness = engine.skeleton(engine._universe)
        while not covered:
            lowered = mapping.lower_point(engine.to_external(witness))
            unit = tuple(unit_bit | v for v in lowered)
            stats.oracle_queries += 1
            gap_boxes = oracle.containing(unit)
            if not gap_boxes:
                outputs.append(lowered)
                engine.add_box(engine.to_external(witness))
            else:
                fresh = [
                    b for b in gap_boxes if b not in loaded_set
                ]
                for b in fresh:
                    loaded_set.add(b)
                    loaded.append(b)
                    engine.add_box(mapping.lift_box(b))
                if len(loaded) > budget:
                    restart = True
                    break
            covered, witness = engine.skeleton(engine._universe)
        if not restart:
            return sorted(outputs)
        budget = max(budget + 1, int(budget * rebuild_factor))
