"""Multilevel dyadic tree — the Tetris knowledge-base store (Appendix C.1).

The structure stores a set of dyadic boxes over ``n`` dimensions and
answers the one query Tetris needs in Õ(1): *given a box* ``b``, *find a
stored box that contains* ``b``.  A stored box ``a`` contains ``b`` iff
each component of ``a`` is a prefix of the corresponding component of
``b``, so the query walks, level by level, the prefixes of each component
of ``b`` that are actually present in the store — at most ``(d+1)^n``
node visits, the paper's polylog factor (Proposition B.12), and usually
far fewer.

Boxes arrive in **packed** marker-bit form (see
:mod:`repro.core.intervals`), which lets each level be a flat hash map
keyed by the whole packed component: one dict probe replaces the
per-bit binary-trie hops of the classical layout (Figure 16 of the
paper), and the prefixes of a query component are enumerated by shifting
the packed int — ``q >> k`` for ``k = 0..|q|`` — so a level consumes all
its bits in ``|q| + 1`` O(1) probes with no per-bit node chasing or
allocation.  A non-terminal level maps packed components to the next
level's dict; the last level maps them to the stored box itself.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.core.boxes import PackedBox


class MultilevelDyadicTree:
    """A set of packed dyadic boxes with Õ(1) ``find_container`` queries."""

    __slots__ = ("ndim", "_root", "_size")

    def __init__(self, ndim: int):
        if ndim < 1:
            raise ValueError("ndim must be at least 1")
        self.ndim = ndim
        self._root: dict = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, box: PackedBox) -> bool:
        node = self._root
        last = self.ndim - 1
        for level in range(last):
            node = node.get(box[level])
            if node is None:
                return False
        return box[last] in node

    def add(self, box: PackedBox) -> bool:
        """Insert a packed box; returns ``False`` when already present."""
        if len(box) != self.ndim:
            raise ValueError(
                f"box has {len(box)} components, store has {self.ndim}"
            )
        node = self._root
        last = self.ndim - 1
        for level in range(last):
            comp = box[level]
            child = node.get(comp)
            if child is None:
                child = {}
                node[comp] = child
            node = child
        comp = box[last]
        if comp in node:
            return False
        node[comp] = box
        self._size += 1
        return True

    def find_container(self, box: PackedBox) -> Optional[PackedBox]:
        """A stored box containing ``box``, or ``None``.

        DFS over the stored prefixes of each component: at every level
        each packed prefix of the query component (``q >> k``) is one
        dict probe.  The first hit is returned; Tetris only needs *some*
        witness (Algorithm 1, line 1).
        """
        last = self.ndim - 1
        if last == 0:
            node = self._root
            q = box[0]
            while True:
                hit = node.get(q)
                if hit is not None:
                    return hit
                if q == 1:
                    return None
                q >>= 1
        stack = [(0, self._root)]
        push = stack.append
        pop = stack.pop
        while stack:
            level, node = pop()
            q = box[level]
            if level == last:
                get = node.get
                while True:
                    hit = get(q)
                    if hit is not None:
                        return hit
                    if q == 1:
                        break
                    q >>= 1
            else:
                nxt = level + 1
                get = node.get
                while True:
                    child = get(q)
                    if child is not None:
                        push((nxt, child))
                    if q == 1:
                        break
                    q >>= 1
        return None

    def find_all_containers(self, box: PackedBox) -> List[PackedBox]:
        """All stored boxes containing ``box`` (the oracle query of §3.4)."""
        out: List[PackedBox] = []
        last = self.ndim - 1
        stack = [(0, self._root)]
        while stack:
            level, node = stack.pop()
            q = box[level]
            if level == last:
                while True:
                    hit = node.get(q)
                    if hit is not None:
                        out.append(hit)
                    if q == 1:
                        break
                    q >>= 1
            else:
                nxt = level + 1
                while True:
                    child = node.get(q)
                    if child is not None:
                        stack.append((nxt, child))
                    if q == 1:
                        break
                    q >>= 1
        return out

    def __iter__(self) -> Iterator[PackedBox]:
        """Iterate over all stored boxes (test/debug helper)."""

        def walk(level: int, node: dict) -> Iterator[PackedBox]:
            if level == self.ndim - 1:
                yield from node.values()
            else:
                for child in node.values():
                    yield from walk(level + 1, child)

        yield from walk(0, self._root)
