"""Multilevel dyadic tree — the Tetris knowledge-base store (Appendix C.1).

The structure stores a set of dyadic boxes over ``n`` dimensions and
answers the one query Tetris needs in Õ(1): *given a box* ``b``, *find a
stored box that contains* ``b``.  A stored box ``a`` contains ``b`` iff
each component of ``a`` is a prefix of the corresponding component of
``b``, so the query walks, level by level, the prefixes of each component
of ``b`` that are actually present in the store — at most ``(d+1)^n``
node visits, the paper's polylog factor (Proposition B.12), and usually
far fewer.

Boxes arrive in **packed** marker-bit form (see
:mod:`repro.core.intervals`), which lets each level be a flat hash map
keyed by the whole packed component: one dict probe replaces the
per-bit binary-trie hops of the classical layout (Figure 16 of the
paper), and the prefixes of a query component are enumerated by shifting
the packed int — ``q >> k`` for ``k = 0..|q|``.

Every node additionally keeps a **stored-length bitmask**: bit ``k`` is
set when some key of string length ``k`` is present in the node's map.
The probe loop reads it to trim both tails — it starts at the deepest
stored length (probing prefixes longer than anything stored is a
guaranteed miss) and stops at the shallowest, so a level costs one dict
probe per length in the *stored band* instead of ``|q| + 1``.  The mask
lives inside the node's own dict under the sentinel key ``0`` (packed
components are ``>= 1``, so the key is free): no wrapper object, no
extra indirection on the hot path.  After :meth:`discard` the mask is
recomputed exactly, so it is never stale.

Beyond the classic ``find_container`` the store answers:

* :meth:`find_shallowest_container` — a container chosen greedily for
  *short* (large) components, the witness-quality query the
  frontier-resuming Tetris engine uses so resolutions happen against
  big witnesses;
* :meth:`find_all_containers_many` — a batched oracle query that walks
  the tree once for a whole batch of probe points, sharing every common
  prefix of the walk (used by ``BoxSetOracle.containing_many``);
* :meth:`discard` — exact removal with upward pruning, enabling the
  engine's bounded resolvent-admission policy (resolvents are derived
  facts, so evicting them is always safe).

On the last level a node maps each packed component to the stored box
itself; on interior levels it maps to the next level's node dict.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.core.boxes import PackedBox

#: Sentinel key under which a node dict keeps its stored-length bitmask.
_MASK = 0

#: Unrolled probe walks are generated per dimensionality up to this cap;
#: wider boxes fall back to the generic stack DFS.
_UNROLL_CAP = 8

_FINDER_CACHE: dict = {}


def _emit_walker(ndim: int, collect: bool, pinned: Optional[int]) -> str:
    """Source of a specialized containment walker over node dicts.

    The DFS over per-level prefix walks is written out as nested
    ``while`` loops — no stack tuples, no per-node push/pop — with each
    level's walk trimmed to the node's stored band by the length mask
    (interior nodes always hold at least one real key, so only the root
    needs an emptiness check).  With ``pinned`` set, that level probes
    the exact query component once instead of walking its prefixes —
    the first-half query of a split whose parent just missed (see
    :meth:`MultilevelDyadicTree.find_container_pinned`).
    """
    empty = "        return []" if collect else "        return None"
    lines = [
        "def find(root, box):",
        "    if root[0] == 0:",
        empty,
    ]
    if collect:
        lines.append("    out = []")
    indent = "    "
    closers = []
    for i in range(ndim):
        node = "root" if i == 0 else f"n{i}"
        if i == pinned:
            # Exact probe: one get, no walk, nothing to close.
            lines.append(f"{indent}n_{i} = {node}.get(box[{i}])")
            lines.append(f"{indent}if n_{i} is not None:")
            if i == ndim - 1:
                lines.append(
                    f"{indent}    out.append(n_{i})" if collect
                    else f"{indent}    return n_{i}"
                )
            else:
                lines.append(f"{indent}    n{i + 1} = n_{i}")
            indent += "    "
            closers.append(None)
            continue
        lines += [
            f"{indent}q{i} = box[{i}]",
            f"{indent}k = {node}[0].bit_length() - 1",
            f"{indent}shift = q{i}.bit_length() - 1",
            f"{indent}if k < shift:",
            f"{indent}    q{i} >>= shift - k",
            f"{indent}get{i} = {node}.get",
            f"{indent}while True:",
        ]
        inner = indent + "    "
        if i == ndim - 1:
            lines.append(f"{inner}hit = get{i}(q{i})")
            lines.append(f"{inner}if hit is not None:")
            if collect:
                lines.append(f"{inner}    out.append(hit)")
            else:
                lines.append(f"{inner}    return hit")
        else:
            lines.append(f"{inner}n{i + 1} = get{i}(q{i})")
            lines.append(f"{inner}if n{i + 1} is not None:")
        # Tail to append once the nested levels are emitted.
        closers.append(
            f"{inner}if q{i} == 1:\n{inner}    break\n{inner}q{i} >>= 1"
        )
        indent = inner + "    "
    # Close the loops from the innermost outward: each level's tail
    # advances its own walk and breaks at λ; pinned levels have none.
    for tail in reversed(closers):
        if tail is not None:
            lines.append(tail)
    lines.append("    return out" if collect else "    return None")
    return "\n".join(lines)


def _compiled_walker(ndim: int, collect: bool = False,
                     pinned: Optional[int] = None):
    """Compile (and cache) one specialized walker."""
    key = (ndim, collect, pinned)
    cached = _FINDER_CACHE.get(key)
    if cached is None:
        namespace: dict = {}
        exec(  # noqa: S102 - source is generated from static templates
            _emit_walker(ndim, collect, pinned), namespace
        )
        cached = _FINDER_CACHE[key] = namespace["find"]
    return cached


class MultilevelDyadicTree:
    """A set of packed dyadic boxes with Õ(1) ``find_container`` queries."""

    __slots__ = (
        "ndim", "_root", "_size", "_find", "_findall", "_pinned",
        "version", "_frontier",
    )

    def __init__(self, ndim: int):
        if ndim < 1:
            raise ValueError("ndim must be at least 1")
        self.ndim = ndim
        self._root: dict = {_MASK: 0}
        self._size = 0
        #: Monotone mutation counter (adds and discards); lets the engine
        #: prove "no box stored since" for second-half pinned probes.
        self.version = 0
        self._frontier: Optional["TraversalFrontier"] = None
        if ndim <= _UNROLL_CAP:
            self._find = _compiled_walker(ndim)
            self._findall = _compiled_walker(ndim, collect=True)
            self._pinned = tuple(
                _compiled_walker(ndim, pinned=axis) for axis in range(ndim)
            )
        else:
            self._find = self._findall = self._pinned = None

    def attach_frontier(self) -> "TraversalFrontier":
        """Create and register the traversal frontier for one engine run.

        While attached, every successful :meth:`add` updates the
        frontier's cached node sets, so its shared-prefix probes never
        miss a freshly stored box.  At most one frontier is attached at
        a time; call :meth:`detach_frontier` when the run ends.
        """
        frontier = TraversalFrontier(self)
        self._frontier = frontier
        return frontier

    def detach_frontier(self) -> None:
        self._frontier = None

    def __len__(self) -> int:
        return self._size

    def __contains__(self, box: PackedBox) -> bool:
        node = self._root
        last = self.ndim - 1
        for level in range(last):
            node = node.get(box[level])
            if node is None:
                return False
        return box[last] in node

    def add(self, box: PackedBox) -> bool:
        """Insert a packed box; returns ``False`` when already present."""
        if len(box) != self.ndim:
            raise ValueError(
                f"box has {len(box)} components, store has {self.ndim}"
            )
        node = self._root
        last = self.ndim - 1
        for level in range(last):
            comp = box[level]
            child = node.get(comp)
            if child is None:
                child = {_MASK: 0}
                node[comp] = child
                node[_MASK] |= 1 << (comp.bit_length() - 1)
            node = child
        comp = box[last]
        if comp in node:
            return False
        node[comp] = box
        node[_MASK] |= 1 << (comp.bit_length() - 1)
        self._size += 1
        self.version += 1
        frontier = self._frontier
        if frontier is not None:
            frontier.note_add(box)
        return True

    def add_many(self, boxes) -> int:
        """Bulk insert; returns how many were new.

        Consecutive boxes sharing a component prefix (the natural order
        of index-emitted gap boxes) reuse the already-walked path nodes
        instead of re-descending from the root — the preload fast path.
        """
        last = self.ndim - 1
        added = 0
        prev = None
        path = [self._root] * (last + 1)
        for box in boxes:
            j = 0
            if prev is not None:
                while j < last and box[j] == prev[j]:
                    j += 1
            node = path[j]
            for level in range(j, last):
                comp = box[level]
                child = node.get(comp)
                if child is None:
                    child = {_MASK: 0}
                    node[comp] = child
                    node[_MASK] |= 1 << (comp.bit_length() - 1)
                node = child
                path[level + 1] = node
            comp = box[last]
            if comp not in node:
                node[comp] = box
                node[_MASK] |= 1 << (comp.bit_length() - 1)
                self._size += 1
                self.version += 1
                added += 1
                frontier = self._frontier
                if frontier is not None:
                    frontier.note_add(box)
            prev = box
        return added

    @staticmethod
    def _refresh_mask(node: dict) -> None:
        m = 0
        for comp in node:
            if comp:
                m |= 1 << (comp.bit_length() - 1)
        node[_MASK] = m

    def discard(self, box: PackedBox) -> bool:
        """Remove a stored box; returns ``False`` when absent.

        Empty interior nodes are pruned on the way back up and the
        affected masks are recomputed exactly, so probe trimming stays
        tight after evictions.
        """
        path = []
        node = self._root
        last = self.ndim - 1
        for level in range(last):
            child = node.get(box[level])
            if child is None:
                return False
            path.append((node, box[level]))
            node = child
        comp = box[last]
        if comp not in node:
            return False
        del node[comp]
        self._size -= 1
        self.version += 1
        self._refresh_mask(node)
        for parent, pcomp in reversed(path):
            if len(node) > 1:  # anything left besides the mask sentinel?
                break
            del parent[pcomp]
            self._refresh_mask(parent)
            node = parent
        return True

    def find_container(self, box: PackedBox) -> Optional[PackedBox]:
        """A stored box containing ``box``, or ``None``.

        DFS over the stored prefixes of each component: at every level
        each packed prefix of the query component (``q >> k``) is one
        dict probe, with the probe walk trimmed to the node's stored
        band by its length mask.  The first hit is returned; Tetris only
        needs *some* witness (Algorithm 1, line 1).

        Dispatches to an unrolled walk compiled per dimensionality (no
        DFS stack traffic); very wide boxes use the generic stack DFS.
        """
        find = self._find
        if find is not None:
            return find(self._root, box)
        last = self.ndim - 1
        stack = [(0, self._root)]
        push = stack.append
        pop = stack.pop
        while stack:
            level, node = pop()
            q = box[level]
            # Trim the walk to the deepest stored length: probing longer
            # prefixes than anything present is a guaranteed miss.
            k = node[_MASK].bit_length() - 1
            shift = q.bit_length() - 1
            if k < 0:
                continue
            if k < shift:
                q >>= shift - k
            get = node.get
            if level == last:
                while True:
                    hit = get(q)
                    if hit is not None:
                        return hit
                    if q == 1:
                        break
                    q >>= 1
            else:
                nxt = level + 1
                while True:
                    child = get(q)
                    if child is not None:
                        push((nxt, child))
                    if q == 1:
                        break
                    q >>= 1
        return None

    def find_container_pinned(
        self, box: PackedBox, axis: int
    ) -> Optional[PackedBox]:
        """Containment probe for the first half of a split that missed.

        When a box ``b`` has no stored container and is split on
        ``axis``, a container of the half ``b1`` that is *not* a
        container of ``b`` must carry exactly ``b1[axis]`` on the split
        axis (a shorter component would make it contain ``b`` too).  As
        long as no box was stored in between, the ``b1`` probe can
        therefore pin the split axis to one exact dict probe instead of
        walking its prefixes — the axis fan-out of the DFS collapses to
        one.  The engine uses this for every first-half descent, which
        is half of all containment queries on the hot path.
        """
        pinned = self._pinned
        if pinned is not None:
            return pinned[axis](self._root, box)
        return self.find_container(box)

    def find_shallowest_container(
        self, box: PackedBox
    ) -> Optional[PackedBox]:
        """A container biased toward *short* components (a big witness).

        Greedy shallow-first DFS: at every level the shortest stored
        prefix of the query component is explored first, so the first
        hit tends to be a box covering a large region around ``box``.
        The frontier-resuming engine resolves against these witnesses —
        bigger witnesses cover whole subtrees of the traversal at once,
        which means fewer resolution steps and a smaller knowledge base.
        """
        last = self.ndim - 1
        stack = [(0, self._root)]
        push = stack.append
        pop = stack.pop
        while stack:
            level, node = pop()
            q = box[level]
            shift = q.bit_length() - 1
            m = node[_MASK] & ((2 << shift) - 1)
            get = node.get
            if level == last:
                while m:
                    low = m & -m
                    m ^= low
                    hit = get(q >> (shift - low.bit_length() + 1))
                    if hit is not None:
                        return hit
            else:
                nxt = level + 1
                # Push deepest-first so the shallowest child pops first.
                while m:
                    k = m.bit_length() - 1
                    m ^= 1 << k
                    child = get(q >> (shift - k))
                    if child is not None:
                        push((nxt, child))
        return None

    def find_all_containers(self, box: PackedBox) -> List[PackedBox]:
        """All stored boxes containing ``box`` (the oracle query of §3.4)."""
        findall = self._findall
        if findall is not None:
            return findall(self._root, box)
        out: List[PackedBox] = []
        last = self.ndim - 1
        stack = [(0, self._root)]
        while stack:
            level, node = stack.pop()
            q = box[level]
            k = node[_MASK].bit_length() - 1
            shift = q.bit_length() - 1
            if k < 0:
                continue
            if k < shift:
                q >>= shift - k
            get = node.get
            if level == last:
                while True:
                    hit = get(q)
                    if hit is not None:
                        out.append(hit)
                    if q == 1:
                        break
                    q >>= 1
            else:
                nxt = level + 1
                while True:
                    child = get(q)
                    if child is not None:
                        stack.append((nxt, child))
                    if q == 1:
                        break
                    q >>= 1
        return out

    def find_all_containers_many(
        self, boxes: Sequence[PackedBox]
    ) -> List[List[PackedBox]]:
        """Per-point container lists for a batch, in one shared tree walk.

        Probe points that agree on a component prefix share the dict
        probes and node visits for it: at every node the batch's live
        points are grouped by the child key they reach, so each distinct
        key is probed once per node regardless of how many points need
        it.  Sibling unit boxes — the frontier-resuming engine's prefetch
        batch — differ in a single trailing bit, so they share essentially
        the entire walk.
        """
        results: List[List[PackedBox]] = [[] for _ in boxes]
        if not boxes:
            return results
        last = self.ndim - 1
        stack = [(0, self._root, range(len(boxes)))]
        while stack:
            level, node, idxs = stack.pop()
            get = node.get
            kmax = node[_MASK].bit_length() - 1
            if kmax < 0:
                continue
            if level == last:
                for i in idxs:
                    q = boxes[i][level]
                    shift = q.bit_length() - 1
                    if kmax < shift:
                        q >>= shift - kmax
                    out = results[i]
                    while True:
                        hit = get(q)
                        if hit is not None:
                            out.append(hit)
                        if q == 1:
                            break
                        q >>= 1
            else:
                groups: dict = {}
                for i in idxs:
                    q = boxes[i][level]
                    shift = q.bit_length() - 1
                    if kmax < shift:
                        q >>= shift - kmax
                    while True:
                        g = groups.get(q)
                        if g is None:
                            groups[q] = [i]
                        else:
                            g.append(i)
                        if q == 1:
                            break
                        q >>= 1
                nxt = level + 1
                for key, sub in groups.items():
                    child = get(key)
                    if child is not None:
                        stack.append((nxt, child, sub))
        return results

    def __iter__(self) -> Iterator[PackedBox]:
        """Iterate over all stored boxes (test/debug helper)."""

        def walk(level: int, node: dict) -> Iterator[PackedBox]:
            if level == self.ndim - 1:
                for comp, stored in node.items():
                    if comp:
                        yield stored
            else:
                for comp, child in node.items():
                    if comp:
                        yield from walk(level + 1, child)

        yield from walk(0, self._root)


class TraversalFrontier:
    """Shared-prefix containment probes for SAO-ordered traversal boxes.

    The Tetris traversal freezes box components left to right: once the
    splitting cursor passes an axis, that component stays fixed for the
    whole subtree below.  A plain :meth:`MultilevelDyadicTree.find_container`
    re-walks the stored prefixes of those frozen components on *every*
    probe; this helper caches, per frozen level ``j``, the set ``F_j`` of
    tree nodes reachable through prefixes of the frozen components — the
    exact interior states the DFS would recompute — so a probe only
    walks the levels at and beyond the cursor.

    The cache self-synchronizes: :meth:`sync_and_probe` compares the
    probe box's leading components against the frozen ones and
    unfreezes/refreezes the divergent suffix, so the engine never has to
    track traversal transitions explicitly.  Completeness under
    mutation is maintained by the owning tree: while attached (see
    :meth:`MultilevelDyadicTree.attach_frontier`), every successful
    ``add`` calls :meth:`note_add`, which extends the affected ``F_j``
    with the new box's path nodes.  Evictions need no handling — a
    discarded box simply stops being found, and a pruned (empty) node
    lingering in a cached set yields no probes thanks to its zeroed
    mask.
    """

    __slots__ = ("tree", "_comps", "_levels", "_level_ids")

    def __init__(self, tree: MultilevelDyadicTree):
        self.tree = tree
        self._comps: list = []
        self._levels: list = [[tree._root]]
        self._level_ids: list = [{id(tree._root)}]

    def _freeze(self, comp: int) -> None:
        """Extend the frontier one level using a newly frozen component."""
        levels = self._levels
        nxt: list = []
        append = nxt.append
        for node in levels[-1]:
            k = node[_MASK].bit_length() - 1
            if k < 0:
                continue
            q = comp
            shift = q.bit_length() - 1
            if k < shift:
                q >>= shift - k
            get = node.get
            while True:
                child = get(q)
                if child is not None:
                    append(child)
                if q == 1:
                    break
                q >>= 1
        self._comps.append(comp)
        levels.append(nxt)
        self._level_ids.append({id(n) for n in nxt})

    def note_add(self, box: PackedBox) -> None:
        """Register a freshly stored box with the cached node sets."""
        comps = self._comps
        if not comps:
            return
        node = self.tree._root
        levels = self._levels
        for j, frozen in enumerate(comps):
            comp = box[j]
            shift = frozen.bit_length() - comp.bit_length()
            if shift < 0 or (frozen >> shift) != comp:
                return
            node = node.get(comp)
            if node is None:
                return
            ids = self._level_ids[j + 1]
            key = id(node)
            if key not in ids:
                ids.add(key)
                levels[j + 1].append(node)

    def sync_and_probe(
        self,
        box: PackedBox,
        cursor: int,
        pinned: Optional[int] = None,
    ) -> Optional[PackedBox]:
        """``find_container`` for a traversal box, frozen prefix cached.

        ``cursor`` is the box's first non-unit axis (``ndim`` for unit
        leaves); components below it are treated as frozen.  ``pinned``
        marks a level whose probe may use the exact component only (the
        first-half invariant of
        :meth:`MultilevelDyadicTree.find_container_pinned`).
        """
        tree = self.tree
        last = tree.ndim - 1
        target = cursor if cursor < last else last
        comps = self._comps
        levels = self._levels
        depth = len(comps)
        lim = depth if depth < target else target
        j = 0
        while j < lim and comps[j] == box[j]:
            j += 1
        if j < depth:
            del comps[j:]
            del levels[j + 1:]
            del self._level_ids[j + 1:]
        while len(comps) < target:
            self._freeze(box[len(comps)])
        nodes = levels[target]
        if not nodes:
            return None
        if target == last:
            qlast = box[last]
            exact = pinned == last
            for idx, node in enumerate(nodes):
                k = node[_MASK].bit_length() - 1
                if k < 0:
                    continue
                if exact:
                    hit = node.get(qlast)
                    if hit is not None:
                        if idx:
                            # Move-to-front: consecutive probes tend to
                            # hit the same stored region.
                            nodes[idx] = nodes[0]
                            nodes[0] = node
                        return hit
                    continue
                q = qlast
                shift = q.bit_length() - 1
                if k < shift:
                    q >>= shift - k
                get = node.get
                while True:
                    hit = get(q)
                    if hit is not None:
                        if idx:
                            nodes[idx] = nodes[0]
                            nodes[0] = node
                        return hit
                    if q == 1:
                        break
                    q >>= 1
            return None
        if target == last - 1:
            # Two remaining levels — the bulk of deep-traversal probes —
            # walked inline with no DFS stack.
            qmid = box[target]
            qlast = box[last]
            exact_mid = pinned == target
            exact_last = pinned == last
            mshift = qmid.bit_length() - 1
            lshift = qlast.bit_length() - 1
            for idx, node in enumerate(nodes):
                k = node[_MASK].bit_length() - 1
                if k < 0:
                    continue
                q = qmid
                if exact_mid:
                    children = (node.get(q),)
                else:
                    if k < mshift:
                        q >>= mshift - k
                    children = None
                get = node.get
                while True:
                    child = children[0] if children else get(q)
                    if child is not None:
                        kk = child[_MASK].bit_length() - 1
                        if kk >= 0:
                            if exact_last:
                                hit = child.get(qlast)
                                if hit is not None:
                                    if idx:
                                        nodes[idx] = nodes[0]
                                        nodes[0] = node
                                    return hit
                            else:
                                q2 = qlast
                                if kk < lshift:
                                    q2 >>= lshift - kk
                                get2 = child.get
                                while True:
                                    hit = get2(q2)
                                    if hit is not None:
                                        if idx:
                                            nodes[idx] = nodes[0]
                                            nodes[0] = node
                                        return hit
                                    if q2 == 1:
                                        break
                                    q2 >>= 1
                    if children is not None or q == 1:
                        break
                    q >>= 1
            return None
        stack = [(target, node) for node in nodes]
        push = stack.append
        pop = stack.pop
        while stack:
            level, node = pop()
            if level == pinned:
                child = node.get(box[level])
                if child is not None:
                    if level == last:
                        return child
                    push((level + 1, child))
                continue
            k = node[_MASK].bit_length() - 1
            if k < 0:
                continue
            q = box[level]
            shift = q.bit_length() - 1
            if k < shift:
                q >>= shift - k
            get = node.get
            if level == last:
                while True:
                    hit = get(q)
                    if hit is not None:
                        return hit
                    if q == 1:
                        break
                    q >>= 1
            else:
                nxt = level + 1
                while True:
                    child = get(q)
                    if child is not None:
                        push((nxt, child))
                    if q == 1:
                        break
                    q >>= 1
        return None
