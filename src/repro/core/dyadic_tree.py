"""Multilevel dyadic tree — the Tetris knowledge-base store (Appendix C.1).

The structure stores a set of dyadic boxes over ``n`` dimensions and
answers the one query Tetris needs in Õ(1): *given a box* ``b``, *find a
stored box that contains* ``b``.  A stored box ``a`` contains ``b`` iff each
component of ``a`` is a prefix of the corresponding component of ``b``, so
the query walks, level by level, the prefixes of each component of ``b``
that are actually present in the store — at most ``(d+1)^n`` node visits,
the paper's polylog factor (Proposition B.12), and usually far fewer.

One binary trie per dimension; a node that terminates a stored component
points at the root of the next level's trie (Figure 16 of the paper).  The
terminal of the last level records the stored box itself.

Nodes are plain 3-slot lists ``[child0, child1, next_level]`` — the hot
path avoids attribute lookups and object overhead.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.core.boxes import BoxTuple

# Node layout indices.
_ZERO, _ONE, _NEXT = 0, 1, 2


def _new_node() -> list:
    return [None, None, None]


class MultilevelDyadicTree:
    """A set of dyadic boxes supporting Õ(1) ``find_container`` queries."""

    def __init__(self, ndim: int):
        if ndim < 1:
            raise ValueError("ndim must be at least 1")
        self.ndim = ndim
        self._root = _new_node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, box: BoxTuple) -> bool:
        node = self._root
        for value, length in box:
            for shift in range(length - 1, -1, -1):
                node = node[(value >> shift) & 1]
                if node is None:
                    return False
            node = node[_NEXT]
            if node is None:
                return False
        return True

    def add(self, box: BoxTuple) -> bool:
        """Insert a box; returns ``False`` when it was already present."""
        if len(box) != self.ndim:
            raise ValueError(
                f"box has {len(box)} components, store has {self.ndim}"
            )
        node = self._root
        for level, (value, length) in enumerate(box):
            for shift in range(length - 1, -1, -1):
                bit = (value >> shift) & 1
                child = node[bit]
                if child is None:
                    child = _new_node()
                    node[bit] = child
                node = child
            if level < self.ndim - 1:
                nxt = node[_NEXT]
                if nxt is None:
                    nxt = _new_node()
                    node[_NEXT] = nxt
                node = nxt
            else:
                if node[_NEXT] is not None:
                    return False
                node[_NEXT] = box
        self._size += 1
        return True

    def find_container(self, box: BoxTuple) -> Optional[BoxTuple]:
        """A stored box containing ``box``, or ``None``.

        Performs a DFS over stored prefixes of each component.  The first
        hit is returned; Tetris only needs *some* witness (Algorithm 1,
        line 1).
        """
        last = self.ndim - 1
        # Stack of (level, trie_node, remaining_value, remaining_length).
        stack = [(0, self._root, box[0][0], box[0][1])]
        push = stack.append
        pop = stack.pop
        while stack:
            level, node, value, length = pop()
            # A stored component may terminate at this node (it is a prefix
            # of the query component) — descend a level.
            nxt = node[_NEXT]
            if nxt is not None:
                if level == last:
                    return nxt  # the stored box itself
                lv, ll = box[level + 1]
                push((level + 1, nxt, lv, ll))
            # Or keep consuming bits of the query component.
            if length > 0:
                child = node[(value >> (length - 1)) & 1]
                if child is not None:
                    push((level, child, value & ((1 << (length - 1)) - 1),
                          length - 1))
        return None

    def find_all_containers(self, box: BoxTuple) -> List[BoxTuple]:
        """All stored boxes containing ``box`` (the oracle query of §3.4)."""
        out: List[BoxTuple] = []
        last = self.ndim - 1
        stack = [(0, self._root, box[0][0], box[0][1])]
        while stack:
            level, node, value, length = stack.pop()
            nxt = node[_NEXT]
            if nxt is not None:
                if level == last:
                    out.append(nxt)
                else:
                    lv, ll = box[level + 1]
                    stack.append((level + 1, nxt, lv, ll))
            if length > 0:
                child = node[(value >> (length - 1)) & 1]
                if child is not None:
                    stack.append(
                        (level, child, value & ((1 << (length - 1)) - 1),
                         length - 1)
                    )
        return out

    def __iter__(self) -> Iterator[BoxTuple]:
        """Iterate over all stored boxes (test/debug helper)."""

        def walk(level: int, node: list) -> Iterator[BoxTuple]:
            stack = [(node,)]
            # Depth-first over this level's trie; when a terminal is found,
            # either yield (last level) or recurse into the next level.
            frontier = [node]
            while frontier:
                cur = frontier.pop()
                nxt = cur[_NEXT]
                if nxt is not None:
                    if level == self.ndim - 1:
                        yield nxt
                    else:
                        yield from walk(level + 1, nxt)
                for bit in (0, 1):
                    if cur[bit] is not None:
                        frontier.append(cur[bit])

        yield from walk(0, self._root)
