"""Alternative knowledge-base stores, for ablating Appendix C.1.

Stores operate on **packed** boxes (tuples of marker-bit ints); see
:mod:`repro.core.intervals` for the encoding.

The paper stores the knowledge base in a multilevel dyadic tree so the
"find a stored box containing b" query costs Õ(1) (Proposition B.12).
``ListStore`` is the naive alternative — a flat list with O(|A|) linear
scans — retained to measure exactly how much the data structure
contributes (benchmarks/bench_ablation.py).  Both implement the full
protocol :class:`~repro.core.tetris.TetrisEngine` expects of
``knowledge_base``: ``add`` / ``discard`` / ``find_container`` /
``find_shallowest_container`` / ``find_all_containers``, so every engine
mode (including frontier resumption and bounded resolvent admission)
runs unchanged on either store.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set

from repro.core.boxes import PackedBox, box_contains


class ListStore:
    """Flat-list knowledge base: O(n) containment scans, O(1) insert."""

    def __init__(self, ndim: int):
        if ndim < 1:
            raise ValueError("ndim must be at least 1")
        self.ndim = ndim
        self._boxes: List[PackedBox] = []
        self._seen: Set[PackedBox] = set()
        #: Monotone mutation counter (protocol parity with the tree).
        self.version = 0

    def __len__(self) -> int:
        return len(self._boxes)

    def __contains__(self, box: PackedBox) -> bool:
        return box in self._seen

    def __iter__(self) -> Iterator[PackedBox]:
        return iter(self._boxes)

    def add(self, box: PackedBox) -> bool:
        if len(box) != self.ndim:
            raise ValueError(
                f"box has {len(box)} components, store has {self.ndim}"
            )
        if box in self._seen:
            return False
        self._seen.add(box)
        self._boxes.append(box)
        self.version += 1
        return True

    def discard(self, box: PackedBox) -> bool:
        """Remove a stored box; returns ``False`` when absent (O(n))."""
        if box not in self._seen:
            return False
        self._seen.remove(box)
        self._boxes.remove(box)
        self.version += 1
        return True

    def find_container(self, box: PackedBox) -> Optional[PackedBox]:
        for stored in self._boxes:
            if box_contains(stored, box):
                return stored
        return None

    def find_container_pinned(
        self, box: PackedBox, axis: int
    ) -> Optional[PackedBox]:
        """First-half containment probe (protocol parity with the tree).

        The linear scan gains nothing from pinning the split axis, so
        this is the plain scan — returning any container is always a
        correct answer to the pinned query.
        """
        return self.find_container(box)

    def find_shallowest_container(
        self, box: PackedBox
    ) -> Optional[PackedBox]:
        """The container with the fewest total component bits (biggest).

        The linear scan can afford the exact optimum; the dyadic tree
        approximates it greedily.
        """
        best = None
        best_depth = -1
        for stored in self._boxes:
            if box_contains(stored, box):
                depth = sum(c.bit_length() for c in stored)
                if best is None or depth < best_depth:
                    best = stored
                    best_depth = depth
        return best

    def find_all_containers(self, box: PackedBox) -> List[PackedBox]:
        return [s for s in self._boxes if box_contains(s, box)]

    def find_all_containers_many(
        self, boxes: List[PackedBox]
    ) -> List[List[PackedBox]]:
        """Batched oracle query (protocol parity with the dyadic tree)."""
        return [self.find_all_containers(b) for b in boxes]
