"""Alternative knowledge-base stores, for ablating Appendix C.1.

Stores operate on **packed** boxes (tuples of marker-bit ints); see
:mod:`repro.core.intervals` for the encoding.

The paper stores the knowledge base in a multilevel dyadic tree so the
"find a stored box containing b" query costs Õ(1) (Proposition B.12).
``ListStore`` is the naive alternative — a flat list with O(|A|) linear
scans — retained to measure exactly how much the data structure
contributes (benchmarks/bench_ablation.py).  Both implement the protocol
:class:`~repro.core.tetris.TetrisEngine` expects of ``knowledge_base``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set

from repro.core.boxes import PackedBox, box_contains


class ListStore:
    """Flat-list knowledge base: O(n) containment scans, O(1) insert."""

    def __init__(self, ndim: int):
        if ndim < 1:
            raise ValueError("ndim must be at least 1")
        self.ndim = ndim
        self._boxes: List[PackedBox] = []
        self._seen: Set[PackedBox] = set()

    def __len__(self) -> int:
        return len(self._boxes)

    def __contains__(self, box: PackedBox) -> bool:
        return box in self._seen

    def __iter__(self) -> Iterator[PackedBox]:
        return iter(self._boxes)

    def add(self, box: PackedBox) -> bool:
        if len(box) != self.ndim:
            raise ValueError(
                f"box has {len(box)} components, store has {self.ndim}"
            )
        if box in self._seen:
            return False
        self._seen.add(box)
        self._boxes.append(box)
        return True

    def find_container(self, box: PackedBox) -> Optional[PackedBox]:
        for stored in self._boxes:
            if box_contains(stored, box):
                return stored
        return None

    def find_all_containers(self, box: PackedBox) -> List[PackedBox]:
        return [s for s in self._boxes if box_contains(s, box)]
