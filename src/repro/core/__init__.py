"""Core geometric machinery: dyadic boxes, resolution, and Tetris."""

from repro.core.boxes import Box, Space
from repro.core.dyadic_tree import MultilevelDyadicTree
from repro.core.resolution import ResolutionStats, Resolver, resolve
from repro.core.tetris import (
    BoxSetOracle,
    TetrisEngine,
    boolean_box_cover,
    solve_bcp,
    tetris_preloaded,
    tetris_reloaded,
)

__all__ = [
    "Box",
    "BoxSetOracle",
    "MultilevelDyadicTree",
    "ResolutionStats",
    "Resolver",
    "Space",
    "TetrisEngine",
    "boolean_box_cover",
    "resolve",
    "solve_bcp",
    "tetris_preloaded",
    "tetris_reloaded",
]
