"""Core geometric machinery: dyadic boxes, resolution, and Tetris.

Hot paths run on the packed marker-bit interval encoding; the boundary
converters :func:`~repro.core.intervals.pack_box` /
:func:`~repro.core.intervals.unpack_box` are re-exported here.
"""

from repro.core.boxes import Box, Space, pbox_from_bits
from repro.core.dyadic_tree import MultilevelDyadicTree
from repro.core.intervals import pack_box, unpack_box
from repro.core.resolution import ResolutionStats, Resolver, resolve
from repro.core.tetris import (
    BoxSetOracle,
    TetrisEngine,
    boolean_box_cover,
    solve_bcp,
    tetris_preloaded,
    tetris_reloaded,
)

__all__ = [
    "Box",
    "BoxSetOracle",
    "MultilevelDyadicTree",
    "ResolutionStats",
    "Resolver",
    "Space",
    "TetrisEngine",
    "boolean_box_cover",
    "pack_box",
    "pbox_from_bits",
    "resolve",
    "solve_bcp",
    "unpack_box",
    "tetris_preloaded",
    "tetris_reloaded",
]
