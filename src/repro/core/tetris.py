"""Tetris — the paper's join / box-cover algorithm (Algorithms 1 and 2).

``TetrisSkeleton`` solves the *Boolean* box cover problem: given the
knowledge base ``A`` and a target box ``b``, decide whether ``b`` is covered
by the union of ``A`` and produce a witness — a single box covering ``b``
(derived by geometric resolutions, cached back into ``A``), or an uncovered
point of ``b``.

The outer Tetris loop drives the skeleton over the universal box
⟨λ,...,λ⟩; every false witness is either a fresh output tuple (no input
gap box contains it) or triggers loading the containing gap boxes from the
input oracle into ``A``.  Three traversal **modes** implement that loop:

* ``mode="faithful"`` — Algorithm 2 verbatim: after every uncovered
  point the skeleton restarts from the universe.  Kept for paper-parity
  tests; the restart costs a full root-to-leaf re-descent per output.
* ``mode="onepass"`` — the TetrisSkeleton2 optimization from the proof
  of Theorem D.2: outputs are reported inside the skeleton so the
  traversal never restarts.
* ``mode="resume"`` (the default) — the frontier-resuming skeleton: the
  explicit stack is *snapshotted at the uncovered leaf*, the new gap or
  output boxes are patched into the knowledge base in place, and the
  traversal resumes from the frontier.  On top of one-pass semantics it
  picks the **shallowest** stored container as the resolution witness
  (``find_shallowest_container``) — big witnesses cover whole subtrees
  of the traversal at once — and, in on-demand (Reloaded) runs, it
  **corner-probes**: an uncovered region's corner point is checked
  against the oracle *before* descending, so gap boxes land at the
  witness boundary instead of after a depth-``n·d`` needle descent,
  and the pending sibling leaf is prefetched through the oracle's
  batched ``containing_many`` walk.

All three modes emit the same output set; the parity matrix in
``tests/core/test_tetris_modes.py`` proves it over random instances.

Variant flags (Sections 4.3–4.4, 5.1) compose with any mode:

* **Tetris-Preloaded** (``preload=True``): ``A`` starts with every input
  gap box — the worst-case-optimal configuration (AGM / fhtw bounds).
* **Tetris-Reloaded** (``preload=False``): ``A`` starts empty and boxes are
  loaded on demand — the certificate-based, beyond-worst-case
  configuration (Õ(|C|+Z) for treewidth 1, Õ(|C|^{w+1}+Z) for treewidth w).
* **No resolvent caching** (``cache_resolvents=False``): drops line 19 of
  Algorithm 1, restricting the proof to Tree Ordered Geometric Resolution
  (Theorem 5.1 / Corollary D.3).
* **Bounded resolvent admission** (``resolvent_limit=k``): at most ``k``
  cached resolvents are kept, FIFO-evicted beyond that.  Resolvents are
  *derived* facts and every uncovered leaf re-consults the oracle, so
  eviction can never change the output — it only trades re-derivation
  work for knowledge-base size.

The engine is written iteratively (explicit stack) so deep recursions
(depth ``n·d``) never hit the interpreter recursion limit.

Internally every box is a **packed** tuple — one marker-bit int
``(1 << length) | value`` per dimension (see
:mod:`repro.core.intervals`).  The encoding makes the hot-loop
primitives single int operations: splitting a component is ``2p`` /
``2p + 1``, and containment is a shift + compare per dimension.  The
uniform-space unit test is hoisted out of the per-node scan entirely:
the traversal tracks the first thick axis as a *cursor* carried on the
stack, so "is this box a point?" is one int compare (``cursor == ndim``)
instead of a ``min(box)`` scan, and the split axis is the cursor itself
instead of a linear search.  SAO permutations are precomputed tuples
with an identity fast path — an engine whose splitting order matches
space order never copies a box crossing the API boundary.  Public entry
points (:func:`solve_bcp` and friends) keep accepting the documented
``(value, length)`` pair form — conversion happens once at the boundary,
never inside the loops.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core import intervals as dy
from repro.core.boxes import PackedBox, box_contains
from repro.core.dyadic_tree import MultilevelDyadicTree
from repro.core.resolution import (
    ResolutionStats,
    Resolver,
    is_ordered_pair,
)

Point = Tuple[int, ...]

#: The traversal modes of the outer loop, in preference order.
MODES: Tuple[str, ...] = ("resume", "onepass", "faithful")


class DimensionSpec:
    """How one dimension of the output space bottoms out.

    The plain engine treats every dimension as ``{0,1}^d`` (``FixedDepth``).
    The load-balanced engine of Section 4.5 lifts an n-dimensional BCP into
    2n-2 dimensions whose components are *not* fixed-length strings:

    * a partition dimension ``A'`` holds elements of a complete prefix-free
      code P (a balanced partition) — a component is unit when it is in P;
    * its remainder dimension ``A''`` holds the suffix, whose unit length
      depends on the P element chosen on ``A'``.

    Implementations answer, for a packed box in SAO order, whether an axis
    is at its unit (unsplittable) level.
    """

    def is_unit(self, box: PackedBox, axis: int) -> bool:
        raise NotImplementedError


class FixedDepth(DimensionSpec):
    """Ordinary dimension over ``{0,1}^depth``."""

    __slots__ = ("depth", "_unit")

    def __init__(self, depth: int):
        self.depth = depth
        self._unit = 1 << depth

    def is_unit(self, box: PackedBox, axis: int) -> bool:
        return box[axis] >= self._unit


class CodeDimension(DimensionSpec):
    """Dimension whose unit values form a complete prefix-free code.

    ``code`` is the set of packed intervals of a balanced partition P; any
    strict prefix of a code element is splittable, any code element is unit.
    """

    __slots__ = ("code",)

    def __init__(self, code):
        self.code = frozenset(code)

    def is_unit(self, box: PackedBox, axis: int) -> bool:
        return box[axis] in self.code


class RemainderDimension(DimensionSpec):
    """Suffix dimension paired with a code dimension.

    Unit length is ``total_depth`` minus the length of the partner (code)
    component.  Valid because the SAO visits the partner first, so by the
    time this axis is split the partner component is already unit.
    """

    __slots__ = ("partner_axis", "total_depth")

    def __init__(self, partner_axis: int, total_depth: int):
        self.partner_axis = partner_axis
        self.total_depth = total_depth

    def is_unit(self, box: PackedBox, axis: int) -> bool:
        # len(axis) == total_depth - len(partner), via bit_length = len + 1.
        return (
            box[axis].bit_length() + box[self.partner_axis].bit_length()
            == self.total_depth + 2
        )


class BoxSetOracle:
    """Oracle access to a set of gap boxes ``B`` (Section 3.4).

    Given a unit box (a point of the output space), returns all boxes of
    ``B`` containing it in Õ(1) via a multilevel dyadic tree.  This models
    "the pre-built database indices of the input relations".

    Input boxes may be in pair or packed form (packed once here, at the
    boundary); all queries and results are packed.
    """

    def __init__(self, boxes: Iterable, ndim: int):
        self.ndim = ndim
        self._tree = MultilevelDyadicTree(ndim)
        self._boxes: List[PackedBox] = []
        for box in boxes:
            packed = dy.pack_box(box)
            if self._tree.add(packed):
                self._boxes.append(packed)

    def __len__(self) -> int:
        return len(self._boxes)

    def containing(self, unit_box: PackedBox) -> List[PackedBox]:
        """All gap boxes containing the given point (Algorithm 2, line 4)."""
        return self._tree.find_all_containers(unit_box)

    def containing_many(
        self, unit_boxes: Sequence[PackedBox]
    ) -> List[List[PackedBox]]:
        """Per-point container lists for a batch of probe points.

        One shared tree walk serves the whole batch — points that agree
        on a component prefix share its node visits and dict probes (see
        :meth:`MultilevelDyadicTree.find_all_containers_many`).
        """
        return self._tree.find_all_containers_many(unit_boxes)

    def boxes(self) -> Sequence[PackedBox]:
        """The full box set (used by Tetris-Preloaded initialization)."""
        return self._boxes


class TetrisEngine:
    """One Tetris run: a knowledge base, a resolver, and a splitting order.

    ``sao`` is the splitting attribute order as a permutation of dimension
    indices; boxes are stored and split internally in SAO order and
    translated back at the API boundary (an identity SAO skips the
    translation entirely).  All engine-level box arguments and results
    (``skeleton``, ``add_box``, ``return_boxes`` outputs) are **packed**.

    ``resolvent_limit`` bounds how many cached resolvents the knowledge
    base may hold at once (FIFO admission; requires a store with
    ``discard``).  Input gap boxes and output boxes are never evicted.
    """

    def __init__(
        self,
        ndim: int,
        depth: int,
        sao: Optional[Sequence[int]] = None,
        cache_resolvents: bool = True,
        stats: Optional[ResolutionStats] = None,
        dims: Optional[Sequence[DimensionSpec]] = None,
        knowledge_base=None,
        resolvent_limit: Optional[int] = None,
    ):
        if ndim < 1:
            raise ValueError("ndim must be at least 1")
        if depth < 0:
            raise ValueError("depth must be non-negative")
        self.ndim = ndim
        self.depth = depth
        self.sao: Tuple[int, ...] = (
            tuple(range(ndim)) if sao is None else tuple(sao)
        )
        if sorted(self.sao) != list(range(ndim)):
            raise ValueError(
                f"sao must be a permutation of 0..{ndim - 1}, got {self.sao}"
            )
        inv = [0] * ndim
        for pos, dim in enumerate(self.sao):
            inv[dim] = pos
        self._inv_sao = tuple(inv)
        self._sao_identity = self.sao == tuple(range(ndim))
        self.cache_resolvents = cache_resolvents
        self.stats = stats if stats is not None else ResolutionStats()
        # The store behind Algorithm 1's A; any object with
        # add / find_container / find_all_containers works
        # (see repro.core.stores for the linear-scan ablation).
        self.knowledge_base = (
            knowledge_base
            if knowledge_base is not None
            else MultilevelDyadicTree(ndim)
        )
        if resolvent_limit is not None:
            if resolvent_limit < 1:
                raise ValueError("resolvent_limit must be at least 1")
            if getattr(self.knowledge_base, "discard", None) is None:
                raise ValueError(
                    "resolvent_limit requires a knowledge base with discard()"
                )
        self.resolvent_limit = resolvent_limit
        self._resolvent_fifo: deque = deque()
        self._resolver = Resolver(self.stats)
        self._universe: PackedBox = (dy.PLAMBDA,) * ndim
        self._unit_marker = 1 << depth
        self._return_boxes = False
        # Dimension specs are given in *internal (SAO) order*; None means
        # every dimension is a plain {0,1}^depth domain (the fast path).
        self.dims: Optional[Tuple[DimensionSpec, ...]] = (
            tuple(dims) if dims is not None else None
        )
        if self.dims is not None:
            if len(self.dims) != ndim:
                raise ValueError("one dimension spec per dimension")
            for i, spec in enumerate(self.dims):
                if (
                    isinstance(spec, RemainderDimension)
                    and spec.partner_axis >= i
                ):
                    raise ValueError(
                        "a remainder dimension must follow its code "
                        "dimension in SAO order"
                    )

    def _is_unit_box(self, box: PackedBox) -> bool:
        """Unit test under dimension specs (generalized spaces only)."""
        dims = self.dims
        return all(
            dims[i].is_unit(box, i) for i in range(self.ndim)
        )

    def _first_thick_generalized(self, box: PackedBox) -> int:
        dims = self.dims
        for i in range(self.ndim):
            if not dims[i].is_unit(box, i):
                return i
        raise ValueError("unit boxes cannot be split")

    def _initial_cursor(self, box: PackedBox) -> int:
        """First non-unit axis of a uniform-space box (``ndim`` if unit)."""
        unit = self._unit_marker
        cursor = 0
        n = self.ndim
        while cursor < n and box[cursor] >= unit:
            cursor += 1
        return cursor

    # -- SAO translation -----------------------------------------------------

    def to_internal(self, box: PackedBox) -> PackedBox:
        """Permute a space-order box into SAO order (identity: zero copy)."""
        if self._sao_identity:
            return box
        return tuple([box[i] for i in self.sao])

    def to_external(self, box: PackedBox) -> PackedBox:
        """Permute an SAO-order box back into space order (identity: zero
        copy)."""
        if self._sao_identity:
            return box
        return tuple([box[i] for i in self._inv_sao])

    def add_box(self, box) -> bool:
        """Amend the knowledge base with a space-order box.

        Accepts pair or packed form (tolerant boundary conversion).
        """
        added = self.knowledge_base.add(self.to_internal(dy.pack_box(box)))
        if added:
            self.stats.boxes_loaded += 1
        return added

    # -- resolvent admission --------------------------------------------------

    def _cache_resolvent(self, resolvent: PackedBox) -> None:
        """Admit a resolvent into ``A``, honoring the bounded policy.

        With a limit set, admissions are FIFO: the oldest cached resolvent
        is discarded once the bound is exceeded.  Eviction is always safe —
        every uncovered leaf re-consults the oracle, so a dropped resolvent
        can only cost re-derivation work, never correctness.
        """
        kb = self.knowledge_base
        limit = self.resolvent_limit
        if limit is None:
            kb.add(resolvent)
            return
        if kb.add(resolvent):
            fifo = self._resolvent_fifo
            fifo.append(resolvent)
            if len(fifo) > limit:
                if kb.discard(fifo.popleft()):
                    self.stats.evictions += 1

    # -- Algorithm 1: TetrisSkeleton ------------------------------------------

    def skeleton(self, target: PackedBox) -> Tuple[bool, PackedBox]:
        """Algorithm 1 on an SAO-order packed target box.

        Returns ``(True, w)`` with ``w ⊇ target`` covered by the knowledge
        base, or ``(False, p)`` with ``p`` an uncovered unit box inside
        ``target``.  Implemented with an explicit stack; each frame holds
        ``[b, second_half, axis, w1, stage, child_cursor]`` where
        ``child_cursor`` is the halves' first thick axis (uniform spaces).
        """
        kb = self.knowledge_base
        find_container = kb.find_container
        find_pinned = getattr(kb, "find_container_pinned", None)
        versioned = hasattr(kb, "version")
        stats = self.stats
        unit = self._unit_marker
        cache = self.cache_resolvents
        cache_resolvent = (
            kb.add if self.resolvent_limit is None else self._cache_resolvent
        )
        resolver = self._resolver
        # Plain Resolver has no proof-recording side channel, so the
        # resolution rule can run inline; a TracingResolver (or any
        # subclass) keeps the full call path.
        fast_resolve = type(resolver) is Resolver
        record = self.stats.record
        uniform = self.dims is None
        n = self.ndim
        stats.skeleton_calls += 1

        stack: list = []
        current: Optional[PackedBox] = target
        cursor = self._initial_cursor(target) if uniform else 0
        # Split axis of the parent when ``current`` is a first half whose
        # parent just missed — collapses that level's probe fan-out.
        pinned: Optional[int] = None
        result: Tuple[bool, PackedBox] = (False, target)

        while True:
            if current is not None:
                b = current
                stats.containment_queries += 1
                witness = (
                    find_container(b)
                    if pinned is None or find_pinned is None
                    else find_pinned(b, pinned)
                )
                if witness is not None:
                    stats.cache_hits += 1
                    result = (True, witness)
                    current = None
                    continue
                # Unit box check: one compare on uniform spaces (the
                # cursor already skipped every unit component).
                if (cursor == n) if uniform else self._is_unit_box(b):
                    result = (False, b)
                    current = None
                    continue
                axis = cursor if uniform else self._first_thick_generalized(b)
                head = b[:axis]
                tail = b[axis + 1:]
                half = b[axis] << 1
                b1 = head + (half,) + tail
                b2 = head + (half | 1,) + tail
                child_cursor = cursor
                if uniform and half >= unit:
                    child_cursor = axis + 1
                    while child_cursor < n and b[child_cursor] >= unit:
                        child_cursor += 1
                stack.append([
                    b, b2, axis, None, 0, child_cursor,
                    kb.version if versioned else None,
                ])
                current = b1
                cursor = child_cursor
                pinned = axis
                continue

            if not stack:
                return result

            frame = stack[-1]
            covered, witness = result
            if not covered:
                # An uncovered point propagates straight to the root
                # (Algorithm 1, lines 9–10 and 14–15).
                stack.pop()
                continue
            b, b2, axis, w1, stage, child_cursor, ver = frame
            if box_contains(witness, b):
                # Lines 11–12 / 16–17: the half's witness already covers b.
                stack.pop()
                continue
            if stage == 0:
                frame[3] = witness
                frame[4] = 1
                current = b2
                cursor = child_cursor
                # The half b2 inherits b's miss: if nothing was stored
                # since the split, its probe can pin the axis too.
                pinned = axis if ver is not None and ver == kb.version else None
                continue
            # Both halves covered but neither witness covers b: resolve.
            if fast_resolve:
                meet = list(map(max, w1, witness))
                meet[axis] = w1[axis] >> 1
                resolvent = tuple(meet)
                record(axis, is_ordered_pair(w1, witness, axis))
            else:
                resolvent = resolver.resolve(w1, witness, axis)
            if cache:
                cache_resolvent(resolvent)
            stack.pop()
            result = (True, resolvent)

    # -- Algorithm 2: the outer loop -------------------------------------------

    def run(
        self,
        oracle: Optional[BoxSetOracle] = None,
        preload: bool = False,
        one_pass: Optional[bool] = None,
        max_outputs: Optional[int] = None,
        return_boxes: bool = False,
        mode: Optional[str] = None,
        compiled: Optional[bool] = None,
    ):
        """Solve the box cover problem, returning all uncovered points.

        ``oracle`` supplies the input gap boxes in space order; with
        ``preload=True`` they are all loaded into the knowledge base up
        front (Tetris-Preloaded), otherwise they are pulled on demand
        (Tetris-Reloaded).  ``mode`` selects the traversal: ``"resume"``
        (default) is the frontier-resuming skeleton, ``"onepass"`` the
        TetrisSkeleton2 variant, ``"faithful"`` the restart-per-output
        Algorithm 2.  The legacy ``one_pass`` flag maps to
        ``"onepass"``/``"faithful"`` when given explicitly.

        ``return_boxes=True`` yields each output as a full packed unit
        box (space order) rather than a tuple of values — required for
        generalized spaces where components have varying lengths.
        """
        if one_pass is not None:
            legacy = "onepass" if one_pass else "faithful"
            if mode is not None and mode != legacy:
                raise ValueError(
                    f"conflicting mode={mode!r} and one_pass={one_pass!r}"
                )
            mode = legacy
        elif mode is None:
            mode = "resume"
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
        if oracle is not None and preload:
            kb = self.knowledge_base
            boxes = oracle.boxes()
            if not self._sao_identity:
                to_internal = self.to_internal
                boxes = [to_internal(b) for b in boxes]
            add_many = getattr(kb, "add_many", None)
            if add_many is not None:
                loaded = add_many(boxes)
            else:
                kb_add = kb.add
                loaded = 0
                for box in boxes:
                    if kb_add(box):
                        loaded += 1
            self.stats.boxes_loaded += loaded
        self._return_boxes = return_boxes
        if mode == "onepass":
            return self._run_one_pass(oracle, max_outputs)
        if mode == "faithful":
            return self._run_restarting(oracle, max_outputs)
        # Corner probing and sibling prefetch pay when the oracle is
        # pulled on demand; in preloaded runs a leaf probe almost always
        # answers "no gaps", so speculative probes would be pure
        # overhead.  Both also assume uniform fixed-depth dimensions
        # (corner construction, sibling unit-ness).
        on_demand = oracle is not None and not preload and self.dims is None
        try:
            if compiled is not False:
                # Resume mode runs as a per-configuration compiled kernel
                # (mode flags, ndim/depth/SAO, KB capabilities folded to
                # literals) when the shape is supported; the interpreted
                # loop below stays the semantic reference and the
                # fallback for exotic configurations.
                from repro.engine.codegen import tetris_kernel

                kernel = tetris_kernel(
                    self, oracle, on_demand, preload,
                    capped=max_outputs is not None,
                )
                if kernel is not None:
                    return kernel(self, oracle, max_outputs)
            return self._run_resuming(
                oracle, max_outputs, on_demand, trust_kb=preload
            )
        finally:
            # The run attaches a traversal frontier to the knowledge
            # base; detach it even on abnormal exit (budget aborts).
            detach = getattr(self.knowledge_base, "detach_frontier", None)
            if detach is not None:
                detach()

    def _emit(self, unit_internal: PackedBox):
        """Convert an internal unit box to the configured output form."""
        external = (
            unit_internal
            if self._sao_identity
            else self.to_external(unit_internal)
        )
        if self._return_boxes:
            return external
        if self.dims is None:
            unit = self._unit_marker
            return tuple(p ^ unit for p in external)
        return tuple(dy.pvalue(p) for p in external)

    def _oracle_lookup(
        self, oracle: Optional[BoxSetOracle], point_internal: PackedBox
    ) -> List[PackedBox]:
        """Query the oracle with an internal (SAO-order) unit box."""
        if oracle is None:
            return []
        self.stats.oracle_queries += 1
        if self._sao_identity:
            return oracle.containing(point_internal)
        external = self.to_external(point_internal)
        to_internal = self.to_internal
        return [to_internal(b) for b in oracle.containing(external)]

    def _oracle_lookup_many(
        self, oracle: Optional[BoxSetOracle], points: Sequence[PackedBox]
    ) -> List[List[PackedBox]]:
        """Batched oracle query on internal unit boxes.

        Uses the oracle's shared-walk ``containing_many`` when available
        (falling back to per-point probes) and converts each distinct
        returned gap box into SAO order once for the whole batch.
        """
        if oracle is None:
            return [[] for _ in points]
        self.stats.oracle_queries += len(points)
        identity = self._sao_identity
        externals = (
            list(points)
            if identity
            else [self.to_external(p) for p in points]
        )
        many = getattr(oracle, "containing_many", None)
        if many is not None:
            found = many(externals)
        else:
            containing = oracle.containing
            found = [containing(p) for p in externals]
        if identity:
            return found
        to_internal = self.to_internal
        memo: dict = {}
        out: List[List[PackedBox]] = []
        for boxes in found:
            conv = []
            for b in boxes:
                ib = memo.get(b)
                if ib is None:
                    ib = to_internal(b)
                    memo[b] = ib
                conv.append(ib)
            out.append(conv)
        return out

    def _run_restarting(
        self, oracle: Optional[BoxSetOracle], max_outputs: Optional[int]
    ) -> List[Point]:
        """Faithful Algorithm 2: restart the skeleton after every witness."""
        outputs: List[Point] = []
        universe = self._universe
        kb = self.knowledge_base
        covered, witness = self.skeleton(universe)
        while not covered:
            gap_boxes = self._oracle_lookup(oracle, witness)
            if not gap_boxes:
                outputs.append(self._emit(witness))
                gap_boxes = [witness]
                if max_outputs is not None and len(outputs) >= max_outputs:
                    return outputs
            for box in gap_boxes:
                if kb.add(box):
                    self.stats.boxes_loaded += 1
            covered, witness = self.skeleton(universe)
        return outputs

    def _run_one_pass(
        self, oracle: Optional[BoxSetOracle], max_outputs: Optional[int]
    ) -> List[Point]:
        """TetrisSkeleton2: handle uncovered points in place, never restart."""
        kb = self.knowledge_base
        find_container = kb.find_container
        find_pinned = getattr(kb, "find_container_pinned", None)
        versioned = hasattr(kb, "version")
        kb_add = kb.add
        stats = self.stats
        unit = self._unit_marker
        cache = self.cache_resolvents
        cache_resolvent = (
            kb_add if self.resolvent_limit is None else self._cache_resolvent
        )
        resolver = self._resolver
        # Plain Resolver has no proof-recording side channel, so the
        # resolution rule can run inline; a TracingResolver (or any
        # subclass) keeps the full call path.
        fast_resolve = type(resolver) is Resolver
        record = self.stats.record
        uniform = self.dims is None
        n = self.ndim
        outputs: List[Point] = []
        stats.skeleton_calls += 1

        stack: list = []
        current: Optional[PackedBox] = self._universe
        cursor = self._initial_cursor(current) if uniform else 0
        # Split axis of the parent when ``current`` is a first half whose
        # parent just missed — collapses that level's probe fan-out.
        pinned: Optional[int] = None
        result: Tuple[bool, PackedBox] = (True, self._universe)

        while True:
            if current is not None:
                b = current
                stats.containment_queries += 1
                witness = (
                    find_container(b)
                    if pinned is None or find_pinned is None
                    else find_pinned(b, pinned)
                )
                if witness is not None:
                    stats.cache_hits += 1
                    result = (True, witness)
                    current = None
                    continue
                if (cursor == n) if uniform else self._is_unit_box(b):
                    gap_boxes = self._oracle_lookup(oracle, b)
                    if gap_boxes:
                        for box in gap_boxes:
                            if kb_add(box):
                                stats.boxes_loaded += 1
                        result = (True, gap_boxes[0])
                    else:
                        outputs.append(self._emit(b))
                        if (
                            max_outputs is not None
                            and len(outputs) >= max_outputs
                        ):
                            return outputs
                        kb_add(b)
                        stats.boxes_loaded += 1
                        result = (True, b)
                    current = None
                    continue
                axis = cursor if uniform else self._first_thick_generalized(b)
                head = b[:axis]
                tail = b[axis + 1:]
                half = b[axis] << 1
                b1 = head + (half,) + tail
                b2 = head + (half | 1,) + tail
                child_cursor = cursor
                if uniform and half >= unit:
                    child_cursor = axis + 1
                    while child_cursor < n and b[child_cursor] >= unit:
                        child_cursor += 1
                stack.append([
                    b, b2, axis, None, 0, child_cursor,
                    kb.version if versioned else None,
                ])
                current = b1
                cursor = child_cursor
                pinned = axis
                continue

            if not stack:
                return outputs

            frame = stack[-1]
            _, witness = result
            b, b2, axis, w1, stage, child_cursor, ver = frame
            if box_contains(witness, b):
                stack.pop()
                continue
            if stage == 0:
                frame[3] = witness
                frame[4] = 1
                current = b2
                cursor = child_cursor
                # The half b2 inherits b's miss: if nothing was stored
                # since the split, its probe can pin the axis too.
                pinned = axis if ver is not None and ver == kb.version else None
                continue
            if fast_resolve:
                meet = list(map(max, w1, witness))
                meet[axis] = w1[axis] >> 1
                resolvent = tuple(meet)
                record(axis, is_ordered_pair(w1, witness, axis))
            else:
                resolvent = resolver.resolve(w1, witness, axis)
            if cache:
                cache_resolvent(resolvent)
            stack.pop()
            result = (True, resolvent)

    def _run_resuming(
        self,
        oracle: Optional[BoxSetOracle],
        max_outputs: Optional[int],
        on_demand: bool,
        trust_kb: bool = False,
    ) -> List[Point]:
        """The frontier-resuming skeleton (the default outer loop).

        Structurally a one-pass traversal, but each uncovered leaf is a
        *resume point*: the stack is left in place, the gap or output
        boxes are patched into the knowledge base, and the traversal
        continues with the best witness the amended base can offer — the
        shallowest stored container of the leaf, not merely the first
        gap box the oracle happened to return.

        With ``on_demand`` (Reloaded runs over uniform spaces) two more
        frontier tricks apply:

        * **Corner probing** — before splitting an uncovered interior
          box, its corner point (all components extended by zeros — the
          exact point the 0-half descent chain converges to) is checked
          against the knowledge base; if uncovered, the oracle is probed
          *there and then*.  Any gap box containing the corner would
          otherwise only be discovered after descending all the way to
          the unit leaf, so the probe lands the same knowledge at the
          box boundary instead of the bottom of a depth-``n·d`` needle:
          the descent short-circuits where the witness starts, and the
          resolutions that would have rebuilt the sub-box from its
          leaves never happen.  Every such probe is productive — it
          either loads a new gap box or discovers a new output point —
          so the probe count stays within the Õ(|C| + Z) budget.
        * **Sibling prefetch** — at an uncovered first-half leaf the
          pending sibling is probed in the same batched oracle walk
          (``containing_many``) and served from a one-slot cache when
          the traversal reaches it.
        """
        kb = self.knowledge_base
        find_container = kb.find_container
        find_pinned = getattr(kb, "find_container_pinned", None)
        versioned = hasattr(kb, "version")
        find_shallowest = getattr(kb, "find_shallowest_container", None)
        kb_add = kb.add
        stats = self.stats
        unit = self._unit_marker
        cache = self.cache_resolvents
        cache_resolvent = (
            kb_add if self.resolvent_limit is None else self._cache_resolvent
        )
        resolver = self._resolver
        # Plain Resolver has no proof-recording side channel, so the
        # resolution rule can run inline; a TracingResolver (or any
        # subclass) keeps the full call path.
        fast_resolve = type(resolver) is Resolver
        record = self.stats.record
        uniform = self.dims is None
        n = self.ndim
        outputs: List[Point] = []
        stats.skeleton_calls += 1
        # One-slot sibling prefetch cache (see docstring).
        prefetch_key: Optional[PackedBox] = None
        prefetch_boxes: List[PackedBox] = []
        # Shift turning a packed component into its 0-extended unit form,
        # and the memoized corner of the current 0-half descent chain.
        depth_bits = self.depth + 1
        corner: Optional[PackedBox] = None
        corner_covered = False
        # Shared-prefix probe cache for the frozen traversal prefix; the
        # tree keeps it complete while attached (every add is noted).
        frontier = None
        if uniform and hasattr(kb, "attach_frontier"):
            frontier = kb.attach_frontier()
            probe = frontier.sync_and_probe

        stack: list = []
        current: Optional[PackedBox] = self._universe
        cursor = self._initial_cursor(current) if uniform else 0
        # Split axis of the parent when ``current`` is a first half whose
        # parent just missed — collapses that level's probe fan-out.
        pinned: Optional[int] = None
        result: Tuple[bool, PackedBox] = (True, self._universe)

        while True:
            if current is not None:
                b = current
                stats.containment_queries += 1
                if frontier is not None:
                    witness = probe(b, cursor, pinned)
                else:
                    witness = (
                        find_container(b)
                        if pinned is None or find_pinned is None
                        else find_pinned(b, pinned)
                    )
                if witness is not None:
                    stats.cache_hits += 1
                    result = (True, witness)
                    current = None
                    continue
                if (cursor == n) if uniform else self._is_unit_box(b):
                    # Resume point: patch A at the frontier, never restart.
                    stats.resumes += 1
                    if trust_kb:
                        # Preloaded runs hold every input gap box in A, so
                        # an uncovered leaf is an output by construction —
                        # the oracle has nothing to add (the probe the
                        # faithful loop pays here is pure overhead).
                        gap_boxes = ()
                    elif prefetch_key == b:
                        gap_boxes = prefetch_boxes
                        prefetch_key = None
                    else:
                        sibling = None
                        if on_demand and stack:
                            frame = stack[-1]
                            if frame[4] == 0:
                                # b is the first half; its sibling is a
                                # unit leaf of identical shape and the
                                # next box the traversal can visit.
                                sibling = frame[1]
                        if sibling is not None:
                            batch = self._oracle_lookup_many(
                                oracle, (b, sibling)
                            )
                            gap_boxes = batch[0]
                            prefetch_key = sibling
                            prefetch_boxes = batch[1]
                        else:
                            gap_boxes = self._oracle_lookup(oracle, b)
                    if gap_boxes:
                        loaded = 0
                        for box in gap_boxes:
                            if kb_add(box):
                                loaded += 1
                        stats.boxes_loaded += loaded
                        witness = (
                            find_shallowest(b)
                            if find_shallowest is not None
                            else None
                        )
                        if witness is None:
                            witness = gap_boxes[0]
                        stats.witness_depth_sum += (
                            sum(p.bit_length() for p in witness) - n
                        )
                        result = (True, witness)
                    else:
                        outputs.append(self._emit(b))
                        if (
                            max_outputs is not None
                            and len(outputs) >= max_outputs
                        ):
                            return outputs
                        kb_add(b)
                        stats.boxes_loaded += 1
                        result = (True, b)
                    current = None
                    continue
                if on_demand:
                    # Frontier witness probe: the 0-half descent chain
                    # below b converges to b's corner point.  If the
                    # knowledge base does not cover the corner yet, pull
                    # its gap boxes now — the same boxes the leaf probe
                    # would fetch after a full-depth descent — so the
                    # chain short-circuits at the witness boundary.  The
                    # corner is invariant along a 0-half descent, so its
                    # covered state is memoized until the traversal
                    # turns into a second half (coverage is monotone:
                    # the knowledge base only grows mid-run).
                    if corner is None:
                        corner = tuple(
                            [p << (depth_bits - p.bit_length()) for p in b]
                        )
                        corner_covered = False
                    if not corner_covered:
                        stats.containment_queries += 1
                        covered = (
                            probe(corner, cursor)
                            if frontier is not None
                            else find_container(corner)
                        )
                        if covered is not None:
                            corner_covered = True
                        else:
                            gap_boxes = self._oracle_lookup(oracle, corner)
                            corner_covered = True
                            if gap_boxes:
                                loaded = 0
                                for box in gap_boxes:
                                    if kb_add(box):
                                        loaded += 1
                                stats.boxes_loaded += loaded
                                # Any container of b must be among the
                                # fresh boxes — everything older missed.
                                witness = None
                                for box in gap_boxes:
                                    if box_contains(box, b):
                                        witness = box
                                        break
                                if witness is not None:
                                    # A corner box covers all of b:
                                    # resume without descending at all.
                                    stats.resumes += 1
                                    stats.witness_depth_sum += (
                                        sum(
                                            p.bit_length()
                                            for p in witness
                                        )
                                        - n
                                    )
                                    result = (True, witness)
                                    current = None
                                    continue
                            else:
                                # The corner is an output point, found
                                # a whole descent early.
                                outputs.append(self._emit(corner))
                                if (
                                    max_outputs is not None
                                    and len(outputs) >= max_outputs
                                ):
                                    return outputs
                                kb_add(corner)
                                stats.boxes_loaded += 1
                axis = cursor if uniform else self._first_thick_generalized(b)
                head = b[:axis]
                tail = b[axis + 1:]
                half = b[axis] << 1
                b1 = head + (half,) + tail
                b2 = head + (half | 1,) + tail
                child_cursor = cursor
                if uniform and half >= unit:
                    child_cursor = axis + 1
                    while child_cursor < n and b[child_cursor] >= unit:
                        child_cursor += 1
                stack.append([
                    b, b2, axis, None, 0, child_cursor,
                    kb.version if versioned else None,
                ])
                current = b1
                cursor = child_cursor
                pinned = axis
                continue

            if not stack:
                return outputs

            frame = stack[-1]
            _, witness = result
            b, b2, axis, w1, stage, child_cursor, ver = frame
            if box_contains(witness, b):
                stack.pop()
                continue
            if stage == 0:
                frame[3] = witness
                frame[4] = 1
                current = b2
                cursor = child_cursor
                # The half b2 inherits b's miss: if nothing was stored
                # since the split, its probe can pin the axis too.
                pinned = axis if ver is not None and ver == kb.version else None
                corner = None
                continue
            if fast_resolve:
                meet = list(map(max, w1, witness))
                meet[axis] = w1[axis] >> 1
                resolvent = tuple(meet)
                record(axis, is_ordered_pair(w1, witness, axis))
            else:
                resolvent = resolver.resolve(w1, witness, axis)
            if cache and resolvent != b:
                # A resolvent no wider than its frame box can never be
                # probed again — the resuming traversal never revisits a
                # resolved region — so only witnesses that extend beyond
                # the frame earn a slot in A.  (The restarting modes must
                # keep every resolvent: their re-descents depend on it.)
                cache_resolvent(resolvent)
            stack.pop()
            result = (True, resolvent)


# -- Convenience entry points ---------------------------------------------------


def solve_bcp(
    boxes: Iterable,
    ndim: int,
    depth: int,
    sao: Optional[Sequence[int]] = None,
    preload: bool = True,
    cache_resolvents: bool = True,
    one_pass: Optional[bool] = None,
    stats: Optional[ResolutionStats] = None,
    mode: Optional[str] = None,
    resolvent_limit: Optional[int] = None,
) -> List[Point]:
    """Solve a Box Cover Problem instance: list points not covered by ``boxes``.

    ``boxes`` may use the documented ``(value, length)`` pair components
    or packed ints (converted once at this boundary).  Defaults to the
    frontier-resuming preloaded configuration; pass ``mode="faithful"``
    (optionally with ``preload=False``) for the restart-per-output
    Algorithm 2, or ``mode="onepass"`` for TetrisSkeleton2.  The legacy
    ``one_pass`` boolean is still honored when given explicitly.
    """
    oracle = BoxSetOracle(boxes, ndim)
    engine = TetrisEngine(
        ndim, depth, sao=sao, cache_resolvents=cache_resolvents, stats=stats,
        resolvent_limit=resolvent_limit,
    )
    return engine.run(oracle, preload=preload, one_pass=one_pass, mode=mode)


def tetris_preloaded(
    boxes: Iterable,
    ndim: int,
    depth: int,
    sao: Optional[Sequence[int]] = None,
    stats: Optional[ResolutionStats] = None,
    one_pass: Optional[bool] = None,
    mode: Optional[str] = None,
) -> List[Point]:
    """Tetris-Preloaded (Section 4.3): worst-case-optimal configuration."""
    return solve_bcp(
        boxes, ndim, depth, sao=sao, preload=True, one_pass=one_pass,
        stats=stats, mode=mode,
    )


def tetris_reloaded(
    boxes: Iterable,
    ndim: int,
    depth: int,
    sao: Optional[Sequence[int]] = None,
    stats: Optional[ResolutionStats] = None,
    one_pass: Optional[bool] = None,
    mode: Optional[str] = None,
) -> List[Point]:
    """Tetris-Reloaded (Section 4.4): certificate-based configuration."""
    return solve_bcp(
        boxes, ndim, depth, sao=sao, preload=False, one_pass=one_pass,
        stats=stats, mode=mode,
    )


def boolean_box_cover(
    boxes: Iterable,
    ndim: int,
    depth: int,
    sao: Optional[Sequence[int]] = None,
    stats: Optional[ResolutionStats] = None,
) -> bool:
    """Boolean BCP (Definition 3.5): does the union cover the whole space?

    Stops at the first uncovered point, so an uncovered instance exits early.
    """
    oracle = BoxSetOracle(boxes, ndim)
    engine = TetrisEngine(ndim, depth, sao=sao, stats=stats)
    uncovered = engine.run(oracle, preload=True, max_outputs=1)
    return not uncovered
