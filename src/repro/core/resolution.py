"""Geometric resolution of dyadic boxes (Section 4.1 of the paper).

Two boxes ``w1 = ⟨y1..yn⟩`` and ``w2 = ⟨z1..zn⟩`` resolve on dimension ℓ
when

1. ``y_ℓ = x·0`` and ``z_ℓ = x·1`` for some string ``x`` (the components are
   dyadic *siblings*), and
2. on every other dimension the components are comparable (one is a prefix
   of the other).

The resolvent keeps ``x`` on dimension ℓ and the meet (longer string) on
every other dimension.  Every point covered by neither input is outside the
resolvent, and the resolvent is maximal with that property — the geometric
analogue of propositional resolution (Figure 7 / Example 4.1).

Three nested classes of resolution appear in the paper:

* **Geometric Resolution** — the general rule above;
* **Ordered Geometric Resolution** (Definition 4.3) — inputs have the
  special staircase shape of equations (1)–(2): full freedom only up to the
  resolved dimension, λ after it;
* **Tree Ordered Geometric Resolution** — ordered resolution whose proof
  DAG is a tree (no caching / reuse of resolvents).  Tetris realizes this
  class when resolvent caching is disabled.

The :class:`Resolver` wrapper counts resolutions so that Lemma 4.5
("runtime is bounded by #resolutions") is observable in tests and benches.

All functions below operate on **packed** boxes (tuples of marker-bit
ints, see :mod:`repro.core.intervals`); the packed encoding makes each
rule check one or two int operations per dimension:

* siblings ``x·0`` / ``x·1`` pack to ``2x`` / ``2x+1``, so the sibling
  test is ``y ^ z == 1`` and the shared parent is ``y >> 1``;
* for comparable components the longer (the meet) is numerically larger,
  so the meet is ``max``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.core.boxes import Box, PackedBox


def find_resolvable_dimension(w1: PackedBox, w2: PackedBox) -> Optional[int]:
    """The unique dimension on which the two boxes can resolve, or ``None``.

    There can be at most one sibling dimension if all other dimensions are
    comparable; if two dimensions are siblings simultaneously the pair is
    not resolvable (their union is not a box) and we return ``None``.
    """
    axis = None
    for i, (y, z) in enumerate(zip(w1, w2)):
        if (y ^ z) == 1:
            # Dyadic siblings: same length, last bit differs (packed ints
            # are >= 1, so the only xor-1 pairs are 2x vs 2x+1).
            if axis is not None:
                return None
            axis = i
        else:
            shift = z.bit_length() - y.bit_length()
            if shift >= 0:
                if (z >> shift) != y:
                    return None
            elif (y >> -shift) != z:
                return None
    return axis


def resolvable(w1: PackedBox, w2: PackedBox) -> bool:
    """True when the two boxes satisfy the geometric-resolution preconditions."""
    return find_resolvable_dimension(w1, w2) is not None


def resolve_tuples(w1: PackedBox, w2: PackedBox) -> PackedBox:
    """Resolvent of two packed boxes; raises ``ValueError`` when impossible."""
    axis = find_resolvable_dimension(w1, w2)
    if axis is None:
        raise ValueError(f"boxes {w1} and {w2} are not resolvable")
    return resolve_on_axis(w1, w2, axis)


def resolve_on_axis(w1: PackedBox, w2: PackedBox, axis: int) -> PackedBox:
    """Resolvent on a known sibling dimension (no precondition re-checking).

    On ``axis`` the output is the shared parent ``x``; elsewhere it is the
    longer (more specific) of the two components — the meet ``y_i ∩ z_i``.
    For comparable packed components the longer one is numerically
    larger, so the meet row is one C-level ``map(max, ...)`` pass.
    """
    out = list(map(max, w1, w2))
    out[axis] = w1[axis] >> 1
    return tuple(out)


def is_ordered_pair(w1: PackedBox, w2: PackedBox, axis: int) -> bool:
    """Check the Definition 4.3 shape: λ on every dimension after ``axis``.

    Ordered geometric resolution additionally requires the inputs to look
    like equations (1)–(2) of the paper: the resolved dimension holds the
    sibling pair and all later dimensions are λ.
    """
    for j in range(axis + 1, len(w1)):
        if w1[j] != 1 or w2[j] != 1:
            return False
    return (w1[axis] ^ w2[axis]) == 1


@dataclass
class ResolutionStats:
    """Counters behind Lemma 4.5: runtime ≈ number of resolutions.

    ``by_axis`` buckets resolutions by the resolved dimension, which is what
    the per-attribute witness counting arguments of Appendix D–F track.

    The frontier-resuming engine adds three counters: ``resumes`` (leaves
    handled in place, where the faithful variant would restart from the
    universe), ``evictions`` (resolvents dropped by the bounded admission
    policy), and ``witness_depth_sum`` (total component bits of the
    witnesses chosen at resumed leaves — lower means bigger witnesses,
    hence fewer resolution steps; divide by ``resumes`` for the mean).
    """

    resolutions: int = 0
    ordered_resolutions: int = 0
    by_axis: dict = field(default_factory=dict)
    containment_queries: int = 0
    oracle_queries: int = 0
    skeleton_calls: int = 0
    boxes_loaded: int = 0
    cache_hits: int = 0
    resumes: int = 0
    evictions: int = 0
    witness_depth_sum: int = 0

    def record(self, axis: int, ordered: bool) -> None:
        self.resolutions += 1
        if ordered:
            self.ordered_resolutions += 1
        self.by_axis[axis] = self.by_axis.get(axis, 0) + 1

    def reset(self) -> None:
        """Zero every counter, dicts included.

        Field-driven (like :meth:`absorb`): a counter added to the
        dataclass is reset without touching this method.
        """
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, dict):
                value.clear()
            else:
                setattr(self, f.name, 0)

    def absorb(self, other: "ResolutionStats") -> None:
        """Add another stats object's counters into this one, in place.

        Iterates the dataclass fields rather than naming them: every
        numeric field sums, every dict field merges key-wise sums.  A
        counter added by a future PR is therefore absorbed — and
        survives the parallel shard merge — by construction; the
        field-introspection test pins the two supported field kinds so
        an incompatible field type fails loudly instead of silently.
        """
        for f in dataclasses.fields(self):
            mine = getattr(self, f.name)
            if isinstance(mine, dict):
                theirs = getattr(other, f.name)
                for key, count in theirs.items():
                    mine[key] = mine.get(key, 0) + count
            else:
                setattr(self, f.name, mine + getattr(other, f.name))

    @classmethod
    def merge(cls, parts: "Iterable[ResolutionStats]") -> "ResolutionStats":
        """Sum every counter across per-shard stats objects.

        The shard merger aggregates with this: the merged object reports
        the total resolution work of a parallel run exactly as a serial
        run over the union would (resolutions, oracle loads, resumes,
        evictions, witness depth all add; ``mean_witness_depth`` stays a
        weighted mean because both the sum and the resume count add).
        """
        merged = cls()
        for part in parts:
            merged.absorb(part)
        return merged

    @property
    def mean_witness_depth(self) -> float:
        """Mean total component bits of resumed-leaf witnesses (0 if none)."""
        if self.resumes == 0:
            return 0.0
        return self.witness_depth_sum / self.resumes

    def as_metrics(self, prefix: str = "tetris") -> Dict[str, int]:
        """The counters as registry-namespace entries.

        Field-driven like :meth:`absorb`: scalar fields become
        ``<prefix>.<field>`` and dict fields fan out one entry per key
        (``tetris.resolutions.by_axis.2``), so new counters surface in
        the unified metrics block without touching this method.
        """
        out: Dict[str, int] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, dict):
                base = (
                    f"{prefix}.resolutions.{f.name}"
                    if f.name == "by_axis"
                    else f"{prefix}.{f.name}"
                )
                for key, count in value.items():
                    out[f"{base}.{key}"] = count
            else:
                out[f"{prefix}.{f.name}"] = value
        return out

    def summary(self) -> str:
        return (
            f"resolutions={self.resolutions} "
            f"(ordered={self.ordered_resolutions}) "
            f"containment_queries={self.containment_queries} "
            f"oracle_queries={self.oracle_queries} "
            f"boxes_loaded={self.boxes_loaded} "
            f"resumes={self.resumes} "
            f"evictions={self.evictions}"
        )


class Resolver:
    """Instrumented resolution engine shared by all Tetris variants."""

    def __init__(self, stats: Optional[ResolutionStats] = None):
        self.stats = stats if stats is not None else ResolutionStats()

    def resolve(self, w1: PackedBox, w2: PackedBox, axis: int) -> PackedBox:
        """Resolve two witnesses on a known axis, recording the step."""
        self.stats.record(axis, ordered=is_ordered_pair(w1, w2, axis))
        return resolve_on_axis(w1, w2, axis)


def resolve(w1: Box, w2: Box) -> Box:
    """Public, Box-typed geometric resolution (validating preconditions)."""
    return Box.from_packed(resolve_tuples(w1.packed, w2.packed))


def resolvent_covers(w1: Box, w2: Box, target: Box) -> bool:
    """Convenience check: does the resolvent of ``w1, w2`` contain ``target``?"""
    return resolve(w1, w2).contains(target)
