"""Box certificates (Definitions 3.1 / 3.4) and certificate computation.

A box certificate of a BCP instance ``A`` is a subset ``C ⊆ A`` whose
union equals the union of ``A``; the *optimal* certificate is a smallest
one.  Certificate size — not input size — is the complexity measure of the
paper's beyond-worst-case results.

Finding a minimum certificate is a set-cover problem; we provide

* :func:`is_redundant` / :func:`minimal_certificate` — an irredundant
  subset via covered-by-the-rest checks, each check answered by a Boolean
  Tetris run on the box's complement (so no point enumeration happens);
* :func:`minimum_certificate` — exact minimum by branch-and-bound over
  subsets, for the small instances the experiments study;
* :func:`complement_boxes` — the dyadic complement of a box, the gadget
  the redundancy check is built from.

All entry points accept boxes in the documented ``(value, length)`` pair
form *or* in packed marker-bit form (the form index layers emit); inputs
are normalized to packed once and results are returned in whichever form
the caller supplied.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Sequence

from repro.core import intervals as dy
from repro.core.boxes import BoxTuple, PackedBox, box_contains
from repro.core.intervals import LAMBDA, PLAMBDA
from repro.core.tetris import boolean_box_cover


def complement_boxes(box: BoxTuple, depth: int) -> List[BoxTuple]:
    """Dyadic boxes whose union is the complement of ``box``.

    For each dimension i and each proper prefix p of the component, the
    sibling of the next bit of p spans everything that diverges from the
    component at that bit (with λ on later dimensions restricted... on all
    other dimensions the original components up to i-1 are kept so the
    pieces are disjoint).  At most n·d boxes.  Pair-form public helper;
    the packed equivalent is :func:`pcomplement_boxes`.
    """
    return [
        tuple(dy.unpack(p) for p in piece)
        for piece in pcomplement_boxes(dy.pack_box(box))
    ]


def pcomplement_boxes(box: PackedBox) -> List[PackedBox]:
    """Packed complement: for every proper prefix, flip its next bit.

    In packed form the piece for cut ``k`` of component ``p`` is simply
    ``(p >> k) ^ 1`` — the sibling of the length-``|p|-k`` prefix.
    """
    out: List[PackedBox] = []
    n = len(box)
    for i in range(n):
        p = box[i]
        tail = (PLAMBDA,) * (n - i - 1)
        head = box[:i]
        for k in range(p.bit_length() - 1):
            out.append(head + ((p >> k) ^ 1,) + tail)
    return out


def _pcovers(
    candidate: Sequence[PackedBox],
    target: PackedBox,
    ndim: int,
    depth: int,
) -> bool:
    """Packed-level cover check shared by every certificate routine.

    Reduction: ``target ⊆ ∪ candidate`` iff ``candidate ∪ complement(target)``
    covers the whole space — a Boolean BCP solved by Tetris.
    """
    return boolean_box_cover(
        list(candidate) + pcomplement_boxes(target), ndim, depth
    )


def covers(
    candidate: Sequence,
    target,
    ndim: int,
    depth: int,
) -> bool:
    """Does the union of ``candidate`` cover every point of ``target``?"""
    packed = [dy.pack_box(b) for b in candidate]
    return _pcovers(packed, dy.pack_box(target), ndim, depth)


def is_redundant(
    boxes: Sequence, index: int, ndim: int, depth: int
) -> bool:
    """Is ``boxes[index]`` covered by the union of the other boxes?"""
    packed = [dy.pack_box(b) for b in boxes]
    target = packed[index]
    rest = [b for i, b in enumerate(packed) if i != index]
    # Cheap pre-check: another box contains it outright.
    if any(box_contains(other, target) for other in rest):
        return True
    return _pcovers(rest, target, ndim, depth)


def minimal_certificate(
    boxes: Iterable, ndim: int, depth: int
) -> List:
    """An irredundant certificate: greedily drop covered boxes.

    Scans smallest-first so big boxes survive; the result is *minimal*
    (no box can be removed) but not necessarily *minimum*.  Size is an
    upper bound on |C|.  Returned boxes are the caller's own objects.
    """
    # Deduplicate and drop boxes strictly contained in another box.
    unique = list(dict.fromkeys(boxes))
    packed_of = {b: dy.pack_box(b) for b in unique}
    kept = [
        b
        for b in unique
        if not any(
            box_contains(packed_of[other], packed_of[b]) and other != b
            for other in unique
        )
    ]

    # Smallest volume first: prefer to delete little boxes.
    def volume_key(box) -> int:
        return sum(
            depth - (p.bit_length() - 1) for p in packed_of[box]
        )

    result = list(kept)
    for box in sorted(kept, key=volume_key):
        trial = [b for b in result if b != box]
        if trial and _pcovers(
            [packed_of[b] for b in trial], packed_of[box], ndim, depth
        ):
            result = trial
    return result


def minimum_certificate(
    boxes: Sequence,
    ndim: int,
    depth: int,
    limit: int = 18,
) -> List:
    """Exact minimum certificate by subset search (small instances only).

    Starts from the greedy minimal certificate as an upper bound and
    searches all smaller subsets of the (deduplicated, maximal) boxes.
    Raises when more than ``limit`` candidate boxes remain.
    """
    upper = minimal_certificate(boxes, ndim, depth)
    unique = list(dict.fromkeys(boxes))
    packed_of = {b: dy.pack_box(b) for b in unique}
    maximal = [
        b
        for b in unique
        if not any(
            box_contains(packed_of[other], packed_of[b]) and other != b
            for other in unique
        )
    ]
    if len(maximal) > limit:
        raise ValueError(
            f"{len(maximal)} candidate boxes exceed the exact-search limit "
            f"({limit}); use minimal_certificate instead"
        )

    def union_equal(subset: Sequence) -> bool:
        packed_subset = [packed_of[b] for b in subset]
        return all(
            _pcovers(packed_subset, packed_of[b], ndim, depth)
            for b in maximal
        )

    best = upper
    for size in range(1, len(best)):
        for subset in combinations(maximal, size):
            if union_equal(subset):
                return list(subset)
    return best


def certificate_size(
    boxes: Iterable,
    ndim: int,
    depth: int,
    exact: bool = False,
) -> int:
    """|C| (exact) or an irredundant upper bound on it."""
    boxes = list(boxes)
    if exact:
        return len(minimum_certificate(boxes, ndim, depth))
    return len(minimal_certificate(boxes, ndim, depth))


def is_gao_consistent(box, sao: Sequence[int], depth: int) -> bool:
    """Definition 3.11: at most one non-trivial component, λ after it.

    ``sao`` orders the dimensions by the global attribute order.  A
    component is *non-trivial* when it is neither λ nor a unit interval.
    """
    packed = dy.pack_box(box)
    seen_nontrivial = False
    for axis in sao:
        length = packed[axis].bit_length() - 1
        if seen_nontrivial:
            if length != 0:
                return False
        elif 0 < length < depth:
            seen_nontrivial = True
    return True


def gao_consistent_certificate(
    boxes: Iterable,
    sao: Sequence[int],
    ndim: int,
    depth: int,
) -> List:
    """A minimal certificate using only GAO-consistent boxes (Def B.1).

    Restricting to σ-consistent boxes models the Minesweeper setting of
    [50]; Proposition B.6's gap — |C| ≪ |C_gao| on some instances — is
    observable by comparing this against :func:`minimal_certificate`.
    Raises when the σ-consistent subset does not cover the full union.
    """
    boxes = list(boxes)
    consistent = [b for b in boxes if is_gao_consistent(b, sao, depth)]
    packed_consistent = [dy.pack_box(b) for b in consistent]
    for box in boxes:
        if not _pcovers(packed_consistent, dy.pack_box(box), ndim, depth):
            raise ValueError(
                "the GAO-consistent boxes do not cover the union; no "
                "σ-consistent certificate exists for this box set"
            )
    return minimal_certificate(consistent, ndim, depth)
