"""Dyadic intervals encoded as ``(value, length)`` bitstring pairs.

The paper (Definition 3.2) encodes the domain of every attribute as the set
of binary strings of length ``d``; a *dyadic interval* is a binary string
``x`` with ``|x| <= d`` and represents every length-``d`` string having
``x`` as a prefix.  On the integer domain ``[0, 2**d)`` the interval with
value ``i`` and length ``k`` covers ``[i * 2**(d-k), (i+1) * 2**(d-k))``.

We represent an interval as the plain tuple ``(value, length)``:

* ``LAMBDA == (0, 0)`` is the empty string λ (the wildcard spanning the
  whole domain),
* a *unit* interval has ``length == d`` and represents a single point.

Keeping intervals as tuples (rather than a class) makes the hot loops of
Tetris cheap: containment and prefix tests are two integer operations,
which is exactly the paper's "string operations take time linear in the
length of strings" claim, and hashing/equality come for free.

Packed (marker-bit) encoding
----------------------------

The ``(value, length)`` pair is the *documented* form used at API
boundaries, but the engine's hot loops run on a **packed** encoding that
folds both fields into a single int::

    packed = (1 << length) | value

i.e. the bitstring with a leading marker ``1`` bit.  λ packs to ``1``,
``'0'`` to ``0b10``, ``'101'`` to ``0b1101``.  Invariants:

* every packed interval is ``>= 1``; the length is
  ``packed.bit_length() - 1`` and the value is ``packed`` with the top
  bit cleared;
* appending a bit is ``(packed << 1) | bit`` — so the two dyadic halves
  of ``p`` are ``2p`` and ``2p + 1`` and the parent is ``p >> 1``;
* ``a`` is a prefix of ``b`` iff ``b >> (len(b) - len(a)) == a`` — one
  shift and one compare, no tuple allocation;
* two intervals are dyadic siblings iff ``a ^ b == 1``;
* for *comparable* intervals the longer one is numerically larger, so
  the meet (intersection) is ``max(a, b)``.

The ``p``-prefixed functions below mirror the pair-based API one-to-one.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

#: A dyadic interval: ``(value, length)`` with ``0 <= value < 2**length``.
Interval = Tuple[int, int]

#: The empty string λ — the wildcard interval covering the whole domain.
LAMBDA: Interval = (0, 0)


def make(value: int, length: int) -> Interval:
    """Build an interval, validating the ``0 <= value < 2**length`` invariant."""
    if length < 0:
        raise ValueError(f"interval length must be non-negative, got {length}")
    if not 0 <= value < (1 << length) and length > 0:
        raise ValueError(f"value {value} does not fit in {length} bits")
    if length == 0 and value != 0:
        raise ValueError("the empty interval must have value 0")
    return (value, length)


def from_bits(bits: str) -> Interval:
    """Parse an interval from its bitstring notation, e.g. ``'10'`` or ``''``."""
    if bits and set(bits) - {"0", "1"}:
        raise ValueError(f"bitstring may only contain 0/1, got {bits!r}")
    return (int(bits, 2) if bits else 0, len(bits))


def to_bits(iv: Interval) -> str:
    """Render an interval as its bitstring; λ renders as ``'λ'``."""
    value, length = iv
    if length == 0:
        return "λ"
    return format(value, f"0{length}b")


def from_point(point: int, depth: int) -> Interval:
    """The unit interval for a domain value at the given domain depth."""
    if not 0 <= point < (1 << depth):
        raise ValueError(f"point {point} outside domain of depth {depth}")
    return (point, depth)


def is_unit(iv: Interval, depth: int) -> bool:
    """True when the interval is a single point of a depth-``depth`` domain."""
    return iv[1] == depth


def is_prefix(a: Interval, b: Interval) -> bool:
    """True when ``a`` is a prefix of ``b`` (equivalently, ``a`` contains ``b``).

    λ is a prefix of everything.  As dyadic segments this is the containment
    order of the paper's poset (Definition 3.3): shorter strings are bigger
    boxes.
    """
    av, al = a
    bv, bl = b
    return al <= bl and (bv >> (bl - al)) == av


#: Containment of dyadic segments coincides with the prefix relation.
contains = is_prefix


def overlaps(a: Interval, b: Interval) -> bool:
    """True when the two dyadic segments intersect (one is a prefix of the other)."""
    return is_prefix(a, b) or is_prefix(b, a)


def meet(a: Interval, b: Interval) -> Interval:
    """Intersection of two comparable intervals: the *longer* of the two.

    This is the ``y_i ∩ z_i`` operation of the resolution definition in
    Section 4.1.  Raises if the segments are disjoint.
    """
    if is_prefix(a, b):
        return b
    if is_prefix(b, a):
        return a
    raise ValueError(f"intervals {to_bits(a)} and {to_bits(b)} are disjoint")


def split(iv: Interval) -> Tuple[Interval, Interval]:
    """Split an interval into its two dyadic halves ``x0`` and ``x1``."""
    value, length = iv
    return (value << 1, length + 1), ((value << 1) | 1, length + 1)


def extend(iv: Interval, bit: int) -> Interval:
    """Append one bit to the interval (the string concatenation ``x·b``)."""
    value, length = iv
    return ((value << 1) | (bit & 1), length + 1)


def parent(iv: Interval) -> Interval:
    """Drop the last bit (the dyadic parent); λ has no parent."""
    value, length = iv
    if length == 0:
        raise ValueError("λ has no parent")
    return (value >> 1, length - 1)


def last_bit(iv: Interval) -> int:
    """The final bit of a non-empty interval."""
    value, length = iv
    if length == 0:
        raise ValueError("λ has no last bit")
    return value & 1


def are_siblings(a: Interval, b: Interval) -> bool:
    """True when ``a = x·0`` and ``b = x·1`` (or vice versa) for some ``x``.

    This is condition (1) of geometric resolution in Section 4.1.
    """
    av, al = a
    bv, bl = b
    return al == bl and al > 0 and (av ^ bv) == 1


def prefixes(iv: Interval) -> Iterator[Interval]:
    """All prefixes of ``iv`` from λ down to ``iv`` itself (inclusive)."""
    value, length = iv
    for cut in range(length + 1):
        yield (value >> (length - cut), cut)


def to_range(iv: Interval, depth: int) -> Tuple[int, int]:
    """The inclusive integer range ``[lo, hi]`` covered on a depth-d domain."""
    value, length = iv
    if length > depth:
        raise ValueError(f"interval deeper ({length}) than domain ({depth})")
    width = depth - length
    lo = value << width
    return lo, lo + (1 << width) - 1


def width(iv: Interval, depth: int) -> int:
    """Number of domain points covered on a depth-``depth`` domain."""
    return 1 << (depth - iv[1])


def covers_point(iv: Interval, point: int, depth: int) -> bool:
    """True when the interval contains the given domain point."""
    return is_prefix(iv, (point, depth))


# -- packed (marker-bit) encoding -------------------------------------------

#: A packed dyadic interval: ``(1 << length) | value``.
Packed = int

#: λ in packed form: the lone marker bit.
PLAMBDA: Packed = 1


def pack(iv: Interval) -> Packed:
    """Pack a ``(value, length)`` pair into its marker-bit int."""
    return (1 << iv[1]) | iv[0]


def unpack(p: Packed) -> Interval:
    """Unpack a marker-bit int back into the ``(value, length)`` pair."""
    length = p.bit_length() - 1
    return (p ^ (1 << length), length)


def pack_box(box) -> Tuple[Packed, ...]:
    """Pack a box given in pair form; packed components pass through.

    This is the tolerant boundary converter: public entry points accept
    boxes whose components are either ``(value, length)`` pairs or
    already-packed ints (mixing is allowed per component).
    """
    return tuple(
        c if type(c) is int else (1 << c[1]) | c[0] for c in box
    )


def unpack_box(pbox) -> Tuple[Interval, ...]:
    """Unpack a packed box into pair form; pair components pass through."""
    return tuple(unpack(c) if type(c) is int else c for c in pbox)


def pmake(value: int, length: int) -> Packed:
    """Build a packed interval, validating ``0 <= value < 2**length``."""
    return pack(make(value, length))


def pfrom_bits(bits: str) -> Packed:
    """Parse a packed interval from bitstring notation (λ is ``''``)."""
    if bits and set(bits) - {"0", "1"}:
        raise ValueError(f"bitstring may only contain 0/1, got {bits!r}")
    return int("1" + bits, 2)


def pto_bits(p: Packed) -> str:
    """Render a packed interval as its bitstring; λ renders as ``'λ'``."""
    if p == PLAMBDA:
        return "λ"
    return bin(p)[3:]  # strip '0b' and the marker bit


def plength(p: Packed) -> int:
    """The string length of a packed interval."""
    return p.bit_length() - 1


def pvalue(p: Packed) -> int:
    """The value bits of a packed interval (marker bit cleared)."""
    return p ^ (1 << (p.bit_length() - 1))


def pfrom_point(point: int, depth: int) -> Packed:
    """The packed unit interval of a domain value at the given depth."""
    if not 0 <= point < (1 << depth):
        raise ValueError(f"point {point} outside domain of depth {depth}")
    return (1 << depth) | point


def pis_unit(p: Packed, depth: int) -> bool:
    """True when the packed interval is a single depth-``depth`` point."""
    return p >> depth == 1


def pis_prefix(a: Packed, b: Packed) -> bool:
    """Packed prefix/containment test: one shift and one compare."""
    shift = b.bit_length() - a.bit_length()
    return shift >= 0 and (b >> shift) == a


#: Containment of packed dyadic segments coincides with the prefix test.
pcontains = pis_prefix


def poverlaps(a: Packed, b: Packed) -> bool:
    """True when two packed segments intersect (one prefixes the other)."""
    shift = b.bit_length() - a.bit_length()
    if shift >= 0:
        return (b >> shift) == a
    return (a >> -shift) == b


def pmeet(a: Packed, b: Packed) -> Packed:
    """Intersection of two comparable packed intervals: the longer one.

    For comparable packed intervals the longer is numerically larger,
    so the meet is simply ``max``.  Raises when disjoint.
    """
    if poverlaps(a, b):
        return a if a >= b else b
    raise ValueError(
        f"intervals {pto_bits(a)} and {pto_bits(b)} are disjoint"
    )


def psplit(p: Packed) -> Tuple[Packed, Packed]:
    """The two dyadic halves of a packed interval: ``2p`` and ``2p + 1``."""
    q = p << 1
    return q, q | 1


def pextend(p: Packed, bit: int) -> Packed:
    """Append one bit (string concatenation ``x·b``) in packed form."""
    return (p << 1) | (bit & 1)


def pparent(p: Packed) -> Packed:
    """Drop the last bit; λ has no parent."""
    if p <= PLAMBDA:
        raise ValueError("λ has no parent")
    return p >> 1


def plast_bit(p: Packed) -> int:
    """The final bit of a non-λ packed interval."""
    if p <= PLAMBDA:
        raise ValueError("λ has no last bit")
    return p & 1


def pare_siblings(a: Packed, b: Packed) -> bool:
    """True when the packed intervals are ``x·0`` and ``x·1``: one XOR."""
    return (a ^ b) == 1 and a > 1 and b > 1


def pprefixes(p: Packed) -> Iterator[Packed]:
    """All packed prefixes from λ down to ``p`` itself (inclusive)."""
    for shift in range(p.bit_length() - 1, -1, -1):
        yield p >> shift


def pto_range(p: Packed, depth: int) -> Tuple[int, int]:
    """Inclusive integer range ``[lo, hi]`` covered on a depth-d domain."""
    length = p.bit_length() - 1
    if length > depth:
        raise ValueError(f"interval deeper ({length}) than domain ({depth})")
    width = depth - length
    lo = (p ^ (1 << length)) << width
    return lo, lo + (1 << width) - 1


def pwidth(p: Packed, depth: int) -> int:
    """Number of domain points covered on a depth-``depth`` domain."""
    return 1 << (depth - p.bit_length() + 1)


def pcovers_point(p: Packed, point: int, depth: int) -> bool:
    """True when the packed interval contains the given domain point."""
    shift = depth + 1 - p.bit_length()
    return shift >= 0 and ((1 << depth) | point) >> shift == p


def pdecompose_range(lo: int, hi: int, depth: int) -> List[Packed]:
    """Packed variant of :func:`decompose_range` (no pair round-trip)."""
    if lo > hi:
        return []
    if lo < 0 or hi >= (1 << depth):
        raise ValueError(f"range [{lo}, {hi}] outside domain of depth {depth}")
    pieces: List[Packed] = []
    cursor = lo
    remaining = hi - lo + 1
    while remaining > 0:
        align = cursor & -cursor if cursor else 1 << depth
        size = min(align, 1 << remaining.bit_length() - 1)
        length = depth - size.bit_length() + 1
        pieces.append((1 << length) | (cursor >> (depth - length)))
        cursor += size
        remaining -= size
    return pieces


def decompose_range(lo: int, hi: int, depth: int) -> List[Interval]:
    """Decompose the inclusive integer range ``[lo, hi]`` into dyadic intervals.

    This is Proposition B.14: every closed interval over a depth-``d`` domain
    is a disjoint union of at most ``2d`` dyadic segments.  Returns the
    canonical (greedy, left-to-right, maximal) decomposition in increasing
    order; an empty range (``lo > hi``) yields ``[]``.
    """
    if lo > hi:
        return []
    if lo < 0 or hi >= (1 << depth):
        raise ValueError(f"range [{lo}, {hi}] outside domain of depth {depth}")
    pieces: List[Interval] = []
    cursor = lo
    remaining = hi - lo + 1
    while remaining > 0:
        # Largest power-of-two block that is aligned at `cursor` and fits.
        align = cursor & -cursor if cursor else 1 << depth
        size = min(align, 1 << remaining.bit_length() - 1)
        length = depth - size.bit_length() + 1
        pieces.append((cursor >> (depth - length), length))
        cursor += size
        remaining -= size
    return pieces
