"""Dyadic intervals encoded as ``(value, length)`` bitstring pairs.

The paper (Definition 3.2) encodes the domain of every attribute as the set
of binary strings of length ``d``; a *dyadic interval* is a binary string
``x`` with ``|x| <= d`` and represents every length-``d`` string having
``x`` as a prefix.  On the integer domain ``[0, 2**d)`` the interval with
value ``i`` and length ``k`` covers ``[i * 2**(d-k), (i+1) * 2**(d-k))``.

We represent an interval as the plain tuple ``(value, length)``:

* ``LAMBDA == (0, 0)`` is the empty string λ (the wildcard spanning the
  whole domain),
* a *unit* interval has ``length == d`` and represents a single point.

Keeping intervals as tuples (rather than a class) makes the hot loops of
Tetris cheap: containment and prefix tests are two integer operations,
which is exactly the paper's "string operations take time linear in the
length of strings" claim, and hashing/equality come for free.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

#: A dyadic interval: ``(value, length)`` with ``0 <= value < 2**length``.
Interval = Tuple[int, int]

#: The empty string λ — the wildcard interval covering the whole domain.
LAMBDA: Interval = (0, 0)


def make(value: int, length: int) -> Interval:
    """Build an interval, validating the ``0 <= value < 2**length`` invariant."""
    if length < 0:
        raise ValueError(f"interval length must be non-negative, got {length}")
    if not 0 <= value < (1 << length) and length > 0:
        raise ValueError(f"value {value} does not fit in {length} bits")
    if length == 0 and value != 0:
        raise ValueError("the empty interval must have value 0")
    return (value, length)


def from_bits(bits: str) -> Interval:
    """Parse an interval from its bitstring notation, e.g. ``'10'`` or ``''``."""
    if bits and set(bits) - {"0", "1"}:
        raise ValueError(f"bitstring may only contain 0/1, got {bits!r}")
    return (int(bits, 2) if bits else 0, len(bits))


def to_bits(iv: Interval) -> str:
    """Render an interval as its bitstring; λ renders as ``'λ'``."""
    value, length = iv
    if length == 0:
        return "λ"
    return format(value, f"0{length}b")


def from_point(point: int, depth: int) -> Interval:
    """The unit interval for a domain value at the given domain depth."""
    if not 0 <= point < (1 << depth):
        raise ValueError(f"point {point} outside domain of depth {depth}")
    return (point, depth)


def is_unit(iv: Interval, depth: int) -> bool:
    """True when the interval is a single point of a depth-``depth`` domain."""
    return iv[1] == depth


def is_prefix(a: Interval, b: Interval) -> bool:
    """True when ``a`` is a prefix of ``b`` (equivalently, ``a`` contains ``b``).

    λ is a prefix of everything.  As dyadic segments this is the containment
    order of the paper's poset (Definition 3.3): shorter strings are bigger
    boxes.
    """
    av, al = a
    bv, bl = b
    return al <= bl and (bv >> (bl - al)) == av


#: Containment of dyadic segments coincides with the prefix relation.
contains = is_prefix


def overlaps(a: Interval, b: Interval) -> bool:
    """True when the two dyadic segments intersect (one is a prefix of the other)."""
    return is_prefix(a, b) or is_prefix(b, a)


def meet(a: Interval, b: Interval) -> Interval:
    """Intersection of two comparable intervals: the *longer* of the two.

    This is the ``y_i ∩ z_i`` operation of the resolution definition in
    Section 4.1.  Raises if the segments are disjoint.
    """
    if is_prefix(a, b):
        return b
    if is_prefix(b, a):
        return a
    raise ValueError(f"intervals {to_bits(a)} and {to_bits(b)} are disjoint")


def split(iv: Interval) -> Tuple[Interval, Interval]:
    """Split an interval into its two dyadic halves ``x0`` and ``x1``."""
    value, length = iv
    return (value << 1, length + 1), ((value << 1) | 1, length + 1)


def extend(iv: Interval, bit: int) -> Interval:
    """Append one bit to the interval (the string concatenation ``x·b``)."""
    value, length = iv
    return ((value << 1) | (bit & 1), length + 1)


def parent(iv: Interval) -> Interval:
    """Drop the last bit (the dyadic parent); λ has no parent."""
    value, length = iv
    if length == 0:
        raise ValueError("λ has no parent")
    return (value >> 1, length - 1)


def last_bit(iv: Interval) -> int:
    """The final bit of a non-empty interval."""
    value, length = iv
    if length == 0:
        raise ValueError("λ has no last bit")
    return value & 1


def are_siblings(a: Interval, b: Interval) -> bool:
    """True when ``a = x·0`` and ``b = x·1`` (or vice versa) for some ``x``.

    This is condition (1) of geometric resolution in Section 4.1.
    """
    av, al = a
    bv, bl = b
    return al == bl and al > 0 and (av ^ bv) == 1


def prefixes(iv: Interval) -> Iterator[Interval]:
    """All prefixes of ``iv`` from λ down to ``iv`` itself (inclusive)."""
    value, length = iv
    for cut in range(length + 1):
        yield (value >> (length - cut), cut)


def to_range(iv: Interval, depth: int) -> Tuple[int, int]:
    """The inclusive integer range ``[lo, hi]`` covered on a depth-d domain."""
    value, length = iv
    if length > depth:
        raise ValueError(f"interval deeper ({length}) than domain ({depth})")
    width = depth - length
    lo = value << width
    return lo, lo + (1 << width) - 1


def width(iv: Interval, depth: int) -> int:
    """Number of domain points covered on a depth-``depth`` domain."""
    return 1 << (depth - iv[1])


def covers_point(iv: Interval, point: int, depth: int) -> bool:
    """True when the interval contains the given domain point."""
    return is_prefix(iv, (point, depth))


def decompose_range(lo: int, hi: int, depth: int) -> List[Interval]:
    """Decompose the inclusive integer range ``[lo, hi]`` into dyadic intervals.

    This is Proposition B.14: every closed interval over a depth-``d`` domain
    is a disjoint union of at most ``2d`` dyadic segments.  Returns the
    canonical (greedy, left-to-right, maximal) decomposition in increasing
    order; an empty range (``lo > hi``) yields ``[]``.
    """
    if lo > hi:
        return []
    if lo < 0 or hi >= (1 << depth):
        raise ValueError(f"range [{lo}, {hi}] outside domain of depth {depth}")
    pieces: List[Interval] = []
    cursor = lo
    remaining = hi - lo + 1
    while remaining > 0:
        # Largest power-of-two block that is aligned at `cursor` and fits.
        align = cursor & -cursor if cursor else 1 << depth
        size = min(align, 1 << remaining.bit_length() - 1)
        length = depth - size.bit_length() + 1
        pieces.append((cursor >> (depth - length), length))
        cursor += size
        remaining -= size
    return pieces
