"""Dyadic boxes and the output space they live in.

A *dyadic box* (Definition 3.3) is an n-tuple of dyadic intervals, one per
attribute of the output space.  A box whose components are all unit
intervals is a point (a potential output tuple).  Boxes form a poset under
component-wise prefix containment.

``Box`` is a thin immutable wrapper over a tuple of
:data:`repro.core.intervals.Interval`; the hot paths of Tetris operate on
raw **packed** tuples — one marker-bit int per attribute (see the packed
encoding section of :mod:`repro.core.intervals`) — obtained via
``Box.packed`` / :func:`repro.core.intervals.pack_box` at the boundary.
``Space`` pins down the ambient output space — the attribute names and
the shared bit-depth ``d`` of every domain.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

from repro.core import intervals as dy
from repro.core.intervals import LAMBDA, Interval, Packed

#: Documented (pair-form) representation of a box: one interval per attribute.
BoxTuple = Tuple[Interval, ...]

#: Hot-path representation of a box: one packed marker-bit int per attribute.
PackedBox = Tuple[Packed, ...]


def pbox_from_bits(*components: str) -> PackedBox:
    """Packed box from bitstring components (``''``/``'λ'``/``'*'`` = λ)."""
    return tuple(
        dy.PLAMBDA if comp in ("", "λ", "*") else dy.pfrom_bits(comp)
        for comp in components
    )


class Box:
    """An immutable dyadic box: a tuple of dyadic intervals.

    Boxes are hashable and compare by value, so they can live in the sets
    and dicts that make up the Tetris knowledge base.
    """

    __slots__ = ("ivs",)

    def __init__(self, ivs: Iterable[Interval]):
        self.ivs: BoxTuple = tuple(ivs)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_bits(cls, *components: str) -> "Box":
        """Build a box from bitstring components, e.g. ``Box.from_bits('10', '', '0')``.

        An empty string (or ``'λ'``/``'*'``) denotes the wildcard λ.
        """
        ivs = []
        for comp in components:
            if comp in ("", "λ", "*"):
                ivs.append(LAMBDA)
            else:
                ivs.append(dy.from_bits(comp))
        return cls(ivs)

    @classmethod
    def from_packed(cls, pbox: Iterable[Packed]) -> "Box":
        """Build a box from a packed marker-bit tuple."""
        return cls(dy.unpack(p) for p in pbox)

    @classmethod
    def point(cls, coords: Sequence[int], depth: int) -> "Box":
        """The unit box of a tuple of domain values."""
        return cls(dy.from_point(c, depth) for c in coords)

    @classmethod
    def universe(cls, ndim: int) -> "Box":
        """The box ⟨λ, ..., λ⟩ covering the entire output space."""
        return cls((LAMBDA,) * ndim)

    # -- poset / geometry ----------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.ivs)

    @property
    def packed(self) -> PackedBox:
        """The hot-path marker-bit form of this box."""
        return tuple((1 << length) | value for value, length in self.ivs)

    def contains(self, other: "Box") -> bool:
        """Component-wise prefix containment (Definition 3.3)."""
        return all(
            dy.is_prefix(a, b) for a, b in zip(self.ivs, other.ivs)
        )

    def overlaps(self, other: "Box") -> bool:
        """True when the two boxes share at least one point."""
        return all(dy.overlaps(a, b) for a, b in zip(self.ivs, other.ivs))

    def intersect(self, other: "Box") -> "Box":
        """Component-wise meet; raises when the boxes are disjoint."""
        return Box(dy.meet(a, b) for a, b in zip(self.ivs, other.ivs))

    def support(self, attrs: Sequence[str] | None = None):
        """The set of positions (or attribute names) with non-λ components.

        This is Definition 3.7.  With ``attrs`` given, returns a frozenset of
        names; otherwise a frozenset of dimension indices.
        """
        if attrs is None:
            return frozenset(i for i, iv in enumerate(self.ivs) if iv[1] > 0)
        return frozenset(attrs[i] for i, iv in enumerate(self.ivs) if iv[1] > 0)

    def is_unit(self, depth: int) -> bool:
        """True when every component is a point of a depth-``depth`` domain."""
        return all(length == depth for _, length in self.ivs)

    def to_point(self, depth: int) -> Tuple[int, ...]:
        """The coordinates of a unit box; raises if the box is not a point."""
        if not self.is_unit(depth):
            raise ValueError(f"{self} is not a unit box at depth {depth}")
        return tuple(value for value, _ in self.ivs)

    def covers_point(self, coords: Sequence[int], depth: int) -> bool:
        """True when the box contains the given tuple of domain values."""
        return all(
            dy.covers_point(iv, c, depth) for iv, c in zip(self.ivs, coords)
        )

    def volume(self, depth: int) -> int:
        """Number of points of the depth-``depth`` output space inside the box."""
        vol = 1
        for iv in self.ivs:
            vol *= dy.width(iv, depth)
        return vol

    def points(self, depth: int) -> Iterator[Tuple[int, ...]]:
        """Enumerate every point in the box (exponential — tests only)."""

        def expand(i: int, prefix: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
            if i == len(self.ivs):
                yield prefix
                return
            lo, hi = dy.to_range(self.ivs[i], depth)
            for v in range(lo, hi + 1):
                yield from expand(i + 1, prefix + (v,))

        yield from expand(0, ())

    # -- value semantics -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Box) and self.ivs == other.ivs

    def __hash__(self) -> int:
        return hash(self.ivs)

    def __repr__(self) -> str:
        body = ", ".join(dy.to_bits(iv) for iv in self.ivs)
        return f"⟨{body}⟩"


def box_contains(outer: PackedBox, inner: PackedBox) -> bool:
    """Packed containment test used on the Tetris hot path.

    ``outer`` contains ``inner`` iff every outer component is a prefix
    of the matching inner component — one shift + compare per axis.
    """
    for a, b in zip(outer, inner):
        shift = b.bit_length() - a.bit_length()
        if shift < 0 or (b >> shift) != a:
            return False
    return True


def box_overlaps(a: PackedBox, b: PackedBox) -> bool:
    """Packed overlap test (every pair of components comparable)."""
    for x, y in zip(a, b):
        shift = y.bit_length() - x.bit_length()
        if shift >= 0:
            if (y >> shift) != x:
                return False
        elif (x >> -shift) != y:
            return False
    return True


class Space:
    """The ambient output space: named attributes over depth-``d`` domains.

    The paper assumes every attribute domain is ``{0,1}^d`` (Section 3.3);
    ``Space`` records the attribute order used to index box components and
    offers the box constructors that need to know ``d``.
    """

    __slots__ = ("attrs", "depth", "_index")

    def __init__(self, attrs: Sequence[str], depth: int):
        if depth < 0:
            raise ValueError("domain depth must be non-negative")
        if len(set(attrs)) != len(attrs):
            raise ValueError(f"duplicate attributes in {attrs}")
        self.attrs: Tuple[str, ...] = tuple(attrs)
        self.depth = depth
        self._index = {a: i for i, a in enumerate(self.attrs)}

    @property
    def ndim(self) -> int:
        return len(self.attrs)

    @property
    def domain_size(self) -> int:
        return 1 << self.depth

    def axis(self, attr: str) -> int:
        """Dimension index of an attribute name."""
        return self._index[attr]

    def universe(self) -> Box:
        return Box.universe(self.ndim)

    def point(self, coords: Sequence[int]) -> Box:
        if len(coords) != self.ndim:
            raise ValueError(
                f"expected {self.ndim} coordinates, got {len(coords)}"
            )
        return Box.point(coords, self.depth)

    def box(self, **components: str) -> Box:
        """Build a box from per-attribute bitstrings; omitted attributes are λ.

        Example: ``space.box(A='10', C='0')`` over attributes (A, B, C).
        """
        ivs = [LAMBDA] * self.ndim
        for attr, bits in components.items():
            ivs[self.axis(attr)] = dy.from_bits(bits)
        return Box(ivs)

    def embed(
        self, box: Box, source_attrs: Sequence[str]
    ) -> Box:
        """Lift a box over a subset of attributes into this space with λ padding.

        This is the paper's "filling out the coordinates not in vars(R) with
        wild cards" (Section 3.3).
        """
        ivs = [LAMBDA] * self.ndim
        for iv, attr in zip(box.ivs, source_attrs):
            ivs[self.axis(attr)] = iv
        return Box(ivs)

    def project(self, box: Box, attrs: Sequence[str]) -> Box:
        """Projection π_V(b) of Definition E.2: keep V's components, λ elsewhere."""
        keep = {self.axis(a) for a in attrs}
        return Box(
            iv if i in keep else LAMBDA for i, iv in enumerate(box.ivs)
        )

    def __repr__(self) -> str:
        return f"Space(attrs={self.attrs}, depth={self.depth})"
