"""Resolution proofs: recording, classification, and verification.

The paper frames Tetris as building a *geometric resolution proof*: a DAG
whose leaves are input gap boxes (and output unit boxes) and whose
internal nodes are resolvents; the root derives ⟨λ,...,λ⟩ when the cover
is complete.  The three resolution classes of Figure 2 correspond to
structural properties of this DAG:

* **Geometric Resolution** — any valid DAG;
* **Ordered Geometric Resolution** — every step has the Definition 4.3
  staircase shape;
* **Tree Ordered Geometric Resolution** — additionally, every resolvent
  is used at most once (the DAG is a forest).

Proof boxes are recorded in the engine's internal **packed** form
(tuples of marker-bit ints; see :mod:`repro.core.intervals`).

``TracingResolver`` is a drop-in resolver that records the proof;
``ResolutionProof`` verifies every step (soundness) and classifies the
proof.  Used by tests to certify that Tetris's internal reasoning really
is a resolution proof, and by the proof-complexity benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.boxes import PackedBox
from repro.core.resolution import (
    ResolutionStats,
    Resolver,
    find_resolvable_dimension,
    is_ordered_pair,
    resolve_on_axis,
)


@dataclass(frozen=True)
class ProofStep:
    """One resolution: two premise boxes, the resolved axis, the resolvent."""

    left: PackedBox
    right: PackedBox
    axis: int
    resolvent: PackedBox
    ordered: bool


@dataclass
class ResolutionProof:
    """A recorded sequence of resolution steps (in derivation order)."""

    steps: List[ProofStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def resolvents(self) -> Set[PackedBox]:
        return {s.resolvent for s in self.steps}

    def verify(self) -> None:
        """Re-check every step against the resolution rule; raise on error."""
        for i, step in enumerate(self.steps):
            axis = find_resolvable_dimension(step.left, step.right)
            if axis is None:
                raise ValueError(
                    f"step {i}: premises are not resolvable"
                )
            if axis != step.axis:
                raise ValueError(
                    f"step {i}: recorded axis {step.axis}, actual {axis}"
                )
            expected = resolve_on_axis(step.left, step.right, axis)
            if expected != step.resolvent:
                raise ValueError(
                    f"step {i}: resolvent mismatch: recorded "
                    f"{step.resolvent}, rule gives {expected}"
                )

    def is_ordered(self) -> bool:
        """Does every step have the Definition 4.3 staircase shape?"""
        return all(s.ordered for s in self.steps)

    def is_tree(self) -> bool:
        """Is every *derivation* used as a premise at most once?

        Input boxes (never derived) may be reused freely; tree-ordered
        resolution forbids reusing a resolvent without re-deriving it
        (Section 5.1, footnote 10).  Since boxes are recorded by value,
        a box derived k times may appear as a premise up to k times.
        """
        derivations: Dict[PackedBox, int] = {}
        for step in self.steps:
            derivations[step.resolvent] = (
                derivations.get(step.resolvent, 0) + 1
            )
        used: Dict[PackedBox, int] = {}
        for step in self.steps:
            for premise in (step.left, step.right):
                if premise in derivations:
                    used[premise] = used.get(premise, 0) + 1
        return all(
            used.get(box, 0) <= count
            for box, count in derivations.items()
        )

    def classify(self) -> str:
        """Name the smallest Figure 2 class containing this proof."""
        if not self.is_ordered():
            return "geometric"
        if not self.is_tree():
            return "ordered"
        return "tree-ordered"

    def derives(self, goal: PackedBox) -> bool:
        """Does some resolvent contain the goal box?"""
        from repro.core.boxes import box_contains

        return any(
            box_contains(s.resolvent, goal) for s in self.steps
        )

    def leaves(self) -> Set[PackedBox]:
        """Premises that are never themselves derived (inputs + outputs)."""
        derived = self.resolvents
        out: Set[PackedBox] = set()
        for step in self.steps:
            for premise in (step.left, step.right):
                if premise not in derived:
                    out.add(premise)
        return out

    def to_dot(self, max_steps: int = 200) -> str:
        """Render the proof DAG in Graphviz DOT (for small proofs)."""
        from repro.core import intervals as dy

        def label(box: PackedBox) -> str:
            return "⟨" + ",".join(dy.pto_bits(p) for p in box) + "⟩"

        lines = ["digraph proof {", "  rankdir=BT;"]
        for step in self.steps[:max_steps]:
            for premise in (step.left, step.right):
                lines.append(
                    f'  "{label(premise)}" -> "{label(step.resolvent)}";'
                )
        lines.append("}")
        return "\n".join(lines)


class TracingResolver(Resolver):
    """A resolver that additionally records every step into a proof.

    The engine's run loops inline the resolution rule only when the
    attached resolver is exactly :class:`Resolver`; any subclass — this
    tracer above all — keeps the full ``resolve`` call path, so every
    traversal mode (including the default frontier-resuming one) yields
    a complete recorded proof.  Counters shared through
    :class:`ResolutionStats` (resolutions, resumes, evictions, witness
    depth) accumulate identically either way.
    """

    def __init__(self, stats: Optional[ResolutionStats] = None):
        super().__init__(stats)
        self.proof = ResolutionProof()

    def resolve(self, w1: PackedBox, w2: PackedBox, axis: int) -> PackedBox:
        resolvent = super().resolve(w1, w2, axis)
        self.proof.steps.append(
            ProofStep(
                left=w1,
                right=w2,
                axis=axis,
                resolvent=resolvent,
                ordered=is_ordered_pair(w1, w2, axis),
            )
        )
        return resolvent


def traced_solve_bcp(
    boxes: Sequence[PackedBox],
    ndim: int,
    depth: int,
    sao: Optional[Sequence[int]] = None,
    cache_resolvents: bool = True,
) -> Tuple[List[tuple], ResolutionProof]:
    """Run Tetris-Preloaded and return (outputs, full resolution proof)."""
    from repro.core.tetris import BoxSetOracle, TetrisEngine

    engine = TetrisEngine(
        ndim, depth, sao=sao, cache_resolvents=cache_resolvents
    )
    tracer = TracingResolver(engine.stats)
    engine._resolver = tracer
    oracle = BoxSetOracle(boxes, ndim)
    outputs = engine.run(oracle, preload=True, one_pass=True)
    return outputs, tracer.proof
