"""The zero-copy shared-memory data plane for shard-parallel execution.

PR 5's pipe protocol shipped every relation to every worker as a pickled
column blob — one copy per worker, priced into the cost model as the
``PARALLEL_SHIP_INPUT`` replication term.  This module replaces the blob
with a **named shared-memory segment per relation**: the parent-side
:class:`ShmArena` lays a relation's canonical flat columns into one
``multiprocessing.shared_memory`` segment (header + columns, the layout
``Relation.to_shm`` writes and ``Relation.from_shm`` attaches to), and
the wire then carries :class:`ShmRef` / :class:`ShmSlice` payloads —
segment *names*, not bytes.  Workers attach once per segment and build
relations whose columns are zero-copy ``memoryview``\\ s over the mapped
pages; a shard's clip becomes a ``(lo, hi)`` row range over the shared
canonical order (:class:`SlicePlan` → :class:`ShmSlice`) instead of a
materialized copy.

Fallback, not failure: anything that can't go through shared memory —
the platform lacks it, the relation is below :func:`shm_min_bytes`,
segment creation fails, or the ``REPRO_NO_SHM`` escape hatch is set —
ships as a pickled blob exactly as before.  Parity is bit-exact either
way.

Lifecycle safety is the hard part and is handled here:

* The arena **ref-counts** each segment by ``(pool, worker)`` owner;
  owners are acquired when a ref is shipped and released when the
  worker acknowledges evicting the keyed relation or the pool closes.
  Unowned segments are unlinked LRU-first when the arena exceeds its
  byte budget, and ``close()`` (pool shutdown / ``atexit``) unlinks
  everything — no leaked ``/dev/shm`` entries even after a worker
  crash, because only the parent ever creates or unlinks.
* Workers attach with :func:`attach_segment`, which keeps Python's
  ``resource_tracker`` from registering (and later double-unlinking)
  segments the parent owns.
* ``SharedMemory.close()`` raises ``BufferError`` while a relation
  still exports views over the mapping; the worker-side segment table
  ref-counts cached relations per segment and tolerates late closes by
  leaving the final unmap to the garbage collector.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.obs.metrics import REGISTRY as _METRICS
from repro.parallel import faults as _faults
from repro.relational.relation import Relation


class ShmExportError(OSError):
    """A segment export failed by *raising* (injected or truly broken
    platform state) rather than by the ordinary ``None`` fallback; the
    scheduler treats it exactly like the fallback — ship a blob."""

#: Escape hatch: set ``REPRO_NO_SHM=1`` to force the pickle-blob wire
#: everywhere (tests, platforms with constrained /dev/shm, debugging).
NO_SHM_ENV = "REPRO_NO_SHM"

#: Relations whose nominal payload (8 bytes × rows × attrs) is below
#: this ship as pickle blobs: segment create + attach has a fixed cost
#: that tiny relations never amortize.  Override with
#: ``REPRO_SHM_MIN_BYTES`` (``0`` shares everything — tests use this).
MIN_BYTES_ENV = "REPRO_SHM_MIN_BYTES"
DEFAULT_MIN_BYTES = 8192

#: Arena byte budget before unowned segments are unlinked LRU-first.
CAPACITY_ENV = "REPRO_SHM_CAPACITY_BYTES"
DEFAULT_CAPACITY_BYTES = 1 << 28  # 256 MiB


def _shared_memory_module():
    try:
        from multiprocessing import shared_memory
        return shared_memory
    except ImportError:  # pragma: no cover - stripped-down platforms
        return None


def shm_available() -> bool:
    """Whether this platform offers ``multiprocessing.shared_memory``."""
    return _shared_memory_module() is not None


def shm_enabled() -> bool:
    """Shared-memory shipping is on: available and not escape-hatched.

    Read dynamically (not cached at import) so tests and the CLI's
    ``--no-shm`` can flip ``REPRO_NO_SHM`` per run.
    """
    if os.environ.get(NO_SHM_ENV, "").lower() in ("1", "true", "on", "yes"):
        return False
    return shm_available()


def shm_min_bytes() -> int:
    """The nominal-size threshold below which relations ship as blobs."""
    raw = os.environ.get(MIN_BYTES_ENV)
    if raw is None:
        return DEFAULT_MIN_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_MIN_BYTES


class _MappedSegment:
    """A read-only ``mmap`` attach of a POSIX shm segment.

    Duck-types the two members workers touch on a ``SharedMemory``
    (``buf``, ``close()``), including the ``BufferError`` a close raises
    while relation views still reference the mapping.
    """

    __slots__ = ("name", "buf", "_mm")

    def __init__(self, name: str, mm):
        self.name = name
        self._mm = mm
        self.buf = memoryview(mm)

    def close(self) -> None:
        self.buf.release()  # BufferError while sub-views are alive
        self._mm.close()


def attach_segment(name: str):
    """Attach to a parent-created segment without tracker side effects.

    The parent is the sole owner of every segment's lifetime, so an
    attach has no business talking to the resource tracker — but before
    Python 3.13's ``track=False``, ``SharedMemory(name=...)`` *does*
    register the name, and every register is a lock + liveness probe +
    pipe write: hundreds of microseconds a worker pays per segment.  On
    Linux the segment is a plain file under ``/dev/shm``, so the fast
    path here maps it read-only with ``mmap`` directly — no tracker
    traffic at all, the same semantics ``track=False`` provides.

    Elsewhere (or when the mapping fails) the ``SharedMemory`` attach is
    used as-is; its tracker registration is harmless because
    multiprocessing children share the parent's tracker process, whose
    registry is a per-name set — the duplicate register is idempotent
    and the parent's eventual ``unlink()`` clears the single entry.
    (Unregistering here instead would strip the *parent's* registration
    — losing the tracker's crash safety-net and making the parent's own
    unregister a KeyError.)
    """
    try:
        import mmap as _mmap

        fd = os.open("/dev/shm/" + name.lstrip("/"), os.O_RDONLY)
        try:
            size = os.fstat(fd).st_size
            mm = _mmap.mmap(fd, size, prot=_mmap.PROT_READ)
        finally:
            os.close(fd)
        return _MappedSegment(name, mm)
    except (OSError, ImportError, AttributeError, ValueError):
        pass
    shared_memory = _shared_memory_module()
    if shared_memory is None:
        raise RuntimeError("shared memory is unavailable on this platform")
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return shared_memory.SharedMemory(name=name)


# -- wire payloads -------------------------------------------------------------


@dataclass(frozen=True)
class ShmRef:
    """A whole relation by reference: attach ``segment`` and read it all.

    ``generation`` disambiguates re-created segments: the OS may reuse a
    name after an unlink, so worker segment tables key on
    ``(segment, generation)``, never the bare name.
    """

    segment: str
    generation: int
    nbytes: int


@dataclass(frozen=True)
class ShmSlice:
    """A clipped relation by reference: canonical rows ``[lo, hi)`` of
    the base segment, optionally restricted further by a residual box.

    ``rest`` holds ``(column index, lo value, hi value)`` inclusive range
    filters for shard constraints beyond the leading attribute: the
    worker bisected nothing for those, so it filters the slice's rows on
    arrival.  Empty ``rest`` is the fully zero-copy form — the relation's
    columns stay memoryviews over the mapped segment."""

    base: ShmRef
    lo: int
    hi: int
    rest: Tuple[Tuple[int, int, int], ...] = ()


def filter_rows(rows, rest: Tuple[Tuple[int, int, int], ...]):
    """Apply a residual box to schema-order rows (shared by both ends:
    the worker materializing an :class:`ShmSlice` and the parent's
    pickle fallback must select byte-identical content)."""
    if not rest:
        return rows
    return [
        r
        for r in rows
        if all(lo <= r[i] <= hi for i, lo, hi in rest)
    ]


@dataclass(frozen=True)
class SlicePlan:
    """Parent-side intent to ship a clip as a slice (never on the wire).

    ``prepare_jobs`` emits these where :func:`~repro.parallel.partition.
    clip_slice` applies; the scheduler resolves them at dispatch time —
    into an :class:`ShmSlice` over the base relation's segment, or, when
    export falls back, into a materialized clipped relation.  ``rest``
    carries the residual box exactly as :class:`ShmSlice` does; for
    filtered plans ``__len__``/:meth:`nominal_bytes` are the slice's
    *upper bound* (the parent never counts the filtered rows — not
    materializing them is the point).
    """

    base: Relation
    lo: int
    hi: int
    rest: Tuple[Tuple[int, int, int], ...] = ()

    def __len__(self) -> int:
        return max(0, self.hi - self.lo)

    def nominal_bytes(self) -> int:
        return 8 * len(self) * self.base.schema.arity

    def materialize(self) -> Relation:
        """The equivalent clipped relation (the pickle-fallback form)."""
        rows = filter_rows(self.base.rows()[self.lo:self.hi], self.rest)
        return Relation.from_sorted_rows(
            self.base.schema, rows, self.base.domain
        )


# -- the parent-side arena -----------------------------------------------------


class _Segment:
    __slots__ = ("shm", "generation", "nbytes", "owners")

    def __init__(self, shm, generation: int, nbytes: int):
        self.shm = shm
        self.generation = generation
        self.nbytes = nbytes
        #: ``(pool id, worker id)`` pairs holding cached relations that
        #: reference this segment.
        self.owners: Set[Tuple[int, int]] = set()


class ShmArena:
    """Parent-side store of relation segments, keyed by content.

    One segment per exported relation (``Relation.cache_key()``), laid
    out by ``Relation.to_shm``.  ``export`` is memoized: re-shipping the
    same content to another worker returns the existing ref without
    touching the bytes.  Segments are unlinked when evicted with no
    owners, and unconditionally at :meth:`close` — unlinking only
    removes the *name*; workers that already attached keep their mapping
    until they drop it, so eviction can never corrupt an in-flight
    shard.
    """

    def __init__(self, capacity_bytes: Optional[int] = None):
        if capacity_bytes is None:
            raw = os.environ.get(CAPACITY_ENV)
            try:
                capacity_bytes = int(raw) if raw else DEFAULT_CAPACITY_BYTES
            except ValueError:
                capacity_bytes = DEFAULT_CAPACITY_BYTES
        self.capacity_bytes = capacity_bytes
        self._segments: "OrderedDict[Tuple, _Segment]" = OrderedDict()
        self._generation = 0
        self.created = 0
        self.unlinked = 0
        self.fallbacks = 0
        self.exported_bytes = 0
        self.export_seconds = 0.0

    # -- exporting -------------------------------------------------------------

    def export(
        self,
        rel: Relation,
        owner: Optional[Tuple[int, int]] = None,
    ) -> Optional[ShmRef]:
        """The relation's segment ref, creating the segment on first use.

        Returns ``None`` — *ship a blob instead* — when shared memory is
        disabled or segment creation fails (exhausted /dev/shm, exotic
        platforms); the caller records the fallback.  May also *raise*
        :class:`ShmExportError` (fault injection stands in for the
        platform states where ``SharedMemory`` raises something the
        ``(OSError, ValueError)`` net below doesn't cover); callers must
        treat a raising export as a fallback, never as query failure.
        """
        if not shm_enabled():
            return None
        fault_plan = _faults.plan()
        if fault_plan is not None and fault_plan.take_shm_export_failure():
            self.fallbacks += 1
            raise ShmExportError(
                "injected shm export failure (REPRO_FAULTS)"
            )
        key = rel.cache_key()
        seg = self._segments.get(key)
        if seg is None:
            shared_memory = _shared_memory_module()
            t0 = time.perf_counter()
            nbytes, header = rel.shm_layout()
            try:
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, nbytes)
                )
                rel.to_shm(shm.buf, header=header)
            except (OSError, ValueError):
                self.fallbacks += 1
                return None
            self._generation += 1
            seg = _Segment(shm, self._generation, nbytes)
            self._segments[key] = seg
            self.created += 1
            self.exported_bytes += nbytes
            self.export_seconds += time.perf_counter() - t0
        self._segments.move_to_end(key)
        if owner is not None:
            seg.owners.add(owner)
        # Never sweep the segment whose ref is about to go on the wire.
        self._sweep(exclude=key)
        return ShmRef(seg.shm.name, seg.generation, seg.nbytes)

    # -- ownership -------------------------------------------------------------

    def release(self, seg_id: Tuple[str, int], owner: Tuple[int, int]) -> None:
        """Drop one owner of a segment (worker evicted the relation)."""
        for key, seg in self._segments.items():
            if (seg.shm.name, seg.generation) == seg_id:
                seg.owners.discard(owner)
                break
        self._sweep()

    def release_owner(self, owner: Tuple[int, int]) -> None:
        """Drop one ``(pool, worker)`` owner from every segment (the
        worker died: its attachments died with it)."""
        for seg in self._segments.values():
            seg.owners.discard(owner)
        self._sweep()

    def release_owners(self, pool_id: int) -> None:
        """Drop every owner belonging to a pool (pool closed/crashed)."""
        for seg in self._segments.values():
            seg.owners = {o for o in seg.owners if o[0] != pool_id}
        self._sweep()

    # -- eviction / shutdown ---------------------------------------------------

    def total_bytes(self) -> int:
        return sum(seg.nbytes for seg in self._segments.values())

    def _unlink(self, seg: _Segment) -> None:
        try:
            seg.shm.close()
        except BufferError:  # pragma: no cover - parent holds no views
            pass
        try:
            seg.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self.unlinked += 1

    def _sweep(self, exclude: Optional[Tuple] = None) -> None:
        """Unlink LRU unowned segments until under the byte budget."""
        if self.total_bytes() <= self.capacity_bytes:
            return
        for key in list(self._segments):
            seg = self._segments[key]
            if seg.owners or key == exclude:
                continue
            del self._segments[key]
            self._unlink(seg)
            if self.total_bytes() <= self.capacity_bytes:
                return

    def evict(self, rel: Relation) -> bool:
        """Explicitly unlink one relation's segment (tests, memory pressure)."""
        seg = self._segments.pop(rel.cache_key(), None)
        if seg is None:
            return False
        self._unlink(seg)
        return True

    def close(self) -> None:
        """Unlink every segment (pool shutdown, atexit)."""
        while self._segments:
            _, seg = self._segments.popitem(last=False)
            self._unlink(seg)

    def segment_names(self) -> Tuple[str, ...]:
        """Live segment names, oldest first (introspection/tests)."""
        return tuple(seg.shm.name for seg in self._segments.values())

    def __len__(self) -> int:
        return len(self._segments)


#: The process-wide arena the scheduler exports through.  Forked workers
#: inherit a snapshot but never touch it — only the parent creates or
#: unlinks (multiprocessing children exit via ``os._exit`` and skip
#: ``atexit``, so a worker can't tear these segments down by accident).
ARENA = ShmArena()

atexit.register(ARENA.close)


def _collect_arena_metrics() -> Dict[str, float]:
    return {
        "parallel.shm.arena.entries": len(ARENA),
        "parallel.shm.segments.created": ARENA.created,
        "parallel.shm.segments.unlinked": ARENA.unlinked,
        "parallel.shm.export.bytes": ARENA.exported_bytes,
        "parallel.shm.export.fallbacks": ARENA.fallbacks,
    }


_METRICS.register_collector("shm_arena", _collect_arena_metrics)
