"""repro.parallel — the shard-parallel execution subsystem.

Splits a join's **output box space** into disjoint dyadic shards
(:mod:`~repro.parallel.partition`), runs each shard on a persistent
multiprocess worker pool with pickle-lean payloads and per-worker
relation caches (:mod:`~repro.parallel.workers`,
:mod:`~repro.parallel.scheduler`), and merges the per-shard results back
into the engine's streaming-cursor shape with aggregated resolution
statistics (:mod:`~repro.parallel.merge`).

The sharding primitive is the paper's own: Section 4.5's balanced
partitions split a dyadic space into load-balanced, prefix-free cells.
Here the same splitting *rule* (halve the heaviest dyadic interval
until the load is level — cf. ``repro.core.balance.balanced_partition``,
whose single-axis threshold form stays untouched) is applied to
planner-chosen split attributes of the *output* space, each shard clips
every relation by bisect ranges on the PR-3 cached sorted views, and
the shards — disjoint by construction — are dealt dynamically to
workers so skewed shards don't straggle.

The subsystem is reached through the engine: ``execute(query, db,
workers=4)`` (the planner's parallel-plan candidate decides
serial-vs-parallel under ``algorithm="auto"``), ``execute_cursor(...,
workers=4)`` for streaming consumption, and ``repro join --workers 4``
on the command line.
"""

from repro.parallel.merge import (
    ParallelReport,
    ShardOutcome,
    clear_job_cache,
    run_shards,
)
from repro.parallel.partition import (
    Shard,
    choose_split_attrs,
    clip_database,
    clip_range,
    clip_relation,
    clip_slice,
    partition_shards,
)
from repro.parallel.faults import FaultPlan, InjectedFault, parse_faults
from repro.parallel.scheduler import (
    QueryTimeout,
    WorkerError,
    WorkerPool,
    get_pool,
    run_job_in_parent,
    shutdown_pools,
)
from repro.parallel.shm import (
    ARENA,
    ShmArena,
    ShmRef,
    ShmSlice,
    SlicePlan,
    shm_enabled,
    shm_min_bytes,
)
from repro.parallel.workers import ShardResult, ShardTask

__all__ = [
    "ARENA",
    "FaultPlan",
    "InjectedFault",
    "ParallelReport",
    "QueryTimeout",
    "Shard",
    "ShardOutcome",
    "ShardResult",
    "ShardTask",
    "ShmArena",
    "ShmRef",
    "ShmSlice",
    "SlicePlan",
    "WorkerError",
    "WorkerPool",
    "choose_split_attrs",
    "clear_job_cache",
    "clip_database",
    "clip_range",
    "clip_relation",
    "clip_slice",
    "get_pool",
    "parse_faults",
    "partition_shards",
    "run_job_in_parent",
    "run_shards",
    "shm_enabled",
    "shm_min_bytes",
    "shutdown_pools",
]
