"""Shard worker processes: the remote end of the scheduler's pipes.

Each worker is a long-lived process running :func:`worker_main` on its
end of a duplex pipe.  The protocol is strictly one-in/one-out: every
:class:`ShardTask` received produces exactly one :class:`ShardResult`
(errors included, as a formatted traceback) — the scheduler relies on
this to keep its per-worker bookkeeping exact, even while draining an
abandoned run.

Relation payloads arrive in one of three forms, and only the *first*
time a given content key reaches a given worker:

* :class:`~repro.parallel.shm.ShmRef` — attach the named shared-memory
  segment and build a zero-copy relation over it
  (``Relation.from_shm``);
* :class:`~repro.parallel.shm.ShmSlice` — the same, restricted to a
  canonical row range (the zero-copy form of a shard clip);
* :class:`RelBlob` — the pickle fallback: the relation as one blob,
  sized at ship time for the actual-wire accounting.

The worker keeps an LRU **relation cache keyed by content**
(:class:`WorkerCache`), so repeated queries over the same data ship
references, no rows.  Cached shm relations ref-count their attached
segment; the segment detaches when its last relation is evicted
(tolerating Python's ``BufferError`` on still-exported views by
leaving the unmap to the garbage collector).  Evictions are reported
back with each result so the scheduler's cache mirror and the arena's
segment ref-counts never drift.

Workers execute through the engine's backend registry directly (the
parent already planned: backend, index kind and GAO arrive in the task),
skipping the per-shard planning pass — no treewidth search, no AGM LP in
the hot loop.
"""

from __future__ import annotations

import itertools
import pickle
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs.metrics import REGISTRY as _METRICS, wire_delta
from repro.parallel import faults as _faults

Row = Tuple[int, ...]

#: Worker-side relation cache capacity (entries).  Evicted keys ride
#: back on the next result so the scheduler stops sending references to
#: them.
CACHE_ENTRIES = 256


@dataclass(frozen=True)
class RelBlob:
    """A relation pre-pickled at dispatch time (the shm fallback wire).

    Pickling in the scheduler — instead of letting ``Connection.send``
    embed the live object — costs nothing extra (one dumps either way)
    and gives the report the *actual* wire size, not the nominal
    ``8 × rows × attrs`` estimate.
    """

    blob: bytes

    def load(self):
        return pickle.loads(self.blob)


@dataclass(frozen=True)
class ShardTask:
    """One shard's work order, self-contained on the wire.

    ``payloads`` holds, per query atom, ``(name, cache key, payload)``
    where the payload is ``None`` ("you have this one cached"), a
    :class:`RelBlob`, or an ``ShmRef``/``ShmSlice`` segment reference.
    ``trace`` is the propagated span context of a traced query:
    ``(trace id, parent span id)``; the worker's spans open under that
    parent so the merged trace renders one tree across processes.
    ``None`` (the default) keeps the worker's hot path untouched.
    ``attempt`` counts prior dispatches of this shard in this run (a
    retry after a worker death arrives as attempt 1, 2, …): shards are
    pure functions of their inputs so the worker ignores it, but the
    fault-injection harness keys on it to make "fail N times, then
    succeed" deterministic without any cross-process counter.
    ``metrics`` asks the worker to snapshot its metrics registry around
    the shard and ship the movement home on the result (the same
    piggyback pattern as ``trace``/``spans``); ``False`` — the default,
    and always the value for in-parent quarantine runs, whose counters
    already land in the parent registry — keeps the hot path untouched.
    """

    shard_id: int
    atoms: Tuple  # RelationSchema, in query-atom order
    payloads: Tuple[Tuple[str, Tuple, Optional[object]], ...]
    backend: str
    index_kind: str
    gao: Optional[Tuple[str, ...]]
    limit: Optional[int]
    trace: Optional[Tuple[str, Optional[str]]] = None
    attempt: int = 0
    metrics: bool = False


@dataclass
class ShardResult:
    """One shard's answer: rows, engine stats, and cache bookkeeping."""

    shard_id: int
    rows: List[Row]
    stats: object  # ResolutionStats (kept untyped: workers import lazily)
    compute_seconds: float
    ref_hits: int
    evicted: Tuple[Tuple, ...] = field(default_factory=tuple)
    error: Optional[str] = None
    #: Serialized worker-side spans (dicts), present only when the task
    #: carried a trace context; the scheduler's parent tracer adopts
    #: them verbatim.
    spans: Tuple = field(default_factory=tuple)
    #: Shared-memory accounting: segments newly attached by this task,
    #: the bytes they map, and the wall time spent attaching + building
    #: the zero-copy relations.
    shm_attaches: int = 0
    shm_attached_bytes: int = 0
    attach_seconds: float = 0.0
    #: The worker registry's movement during this task, as a
    #: :func:`repro.obs.metrics.wire_delta` tuple (``None`` when the
    #: task didn't ask or nothing moved).  The scheduler folds it into
    #: the parent registry on receipt — error results included, so a
    #: failing shard's cache traffic isn't lost telemetry.
    metrics: Optional[tuple] = None


class WorkerCache:
    """The worker's relation LRU plus its attached-segment table.

    Relations are keyed by the parent-assigned content key; each
    shm-backed relation holds a reference into ``_segments``, a
    ``(name, generation) → [mapping, refcount, header]`` table, so one
    segment shared by many slices attaches exactly once — and its
    layout header (schema, domain, row count) is unpickled exactly
    once, no matter how many slices of it the run ships.  Evicting the
    last relation of a segment detaches it.
    """

    def __init__(self, entries: int = CACHE_ENTRIES):
        self.entries = entries
        #: key → (relation, segment id or None)
        self._rels: "OrderedDict[Tuple, Tuple[object, Optional[Tuple]]]" = (
            OrderedDict()
        )
        self._segments: dict = {}

    def __len__(self) -> int:
        return len(self._rels)

    def get(self, key: Tuple):
        """The cached relation for a key, or ``None`` (LRU-touched)."""
        hit = self._rels.get(key)
        if hit is None:
            return None
        self._rels.move_to_end(key)
        return hit[0]

    def _attach(self, ref) -> Tuple[list, int]:
        """The segment's table entry, attaching on first use.

        Returns ``([mapping, refcount, header], newly attached bytes)``
        — the bytes are zero on a table hit, which is what makes warm
        repeats report ``shm_attached_bytes == 0``.  The header slot
        starts ``None`` and is filled by the first relation built over
        the segment, so later slices skip the unpickle.
        """
        from repro.parallel.shm import attach_segment

        seg_id = (ref.segment, ref.generation)
        entry = self._segments.get(seg_id)
        if entry is not None:
            return entry, 0
        entry = [attach_segment(ref.segment), 0, None]
        self._segments[seg_id] = entry
        return entry, ref.nbytes

    @staticmethod
    def _from_entry(entry: list, lo=None, hi=None):
        """A zero-copy relation over an attached entry, header-cached."""
        from repro.relational.relation import Relation

        shm = entry[0]
        if entry[2] is None:
            entry[2] = Relation.parse_shm_header(shm.buf)
        return Relation.from_shm(shm.buf, lo, hi, keep=shm, header=entry[2])

    def store(self, key: Tuple, payload, evicted: List[Tuple]):
        """Materialize a payload, cache it, evict LRU overflow.

        Returns ``(relation, newly attached bytes)``.  Evicted keys are
        appended to ``evicted`` for the result's bookkeeping ride home.
        """
        from repro.parallel.shm import ShmRef, ShmSlice, filter_rows
        from repro.relational.relation import Relation

        seg_id = None
        attached = 0
        if isinstance(payload, RelBlob):
            rel = payload.load()
        elif isinstance(payload, ShmSlice):
            entry, attached = self._attach(payload.base)
            rel = self._from_entry(entry, payload.lo, payload.hi)
            if payload.rest:
                # A residual box beyond the leading-attribute bisect:
                # filter the slice here, where it runs in parallel —
                # the parent shipped a range, never the rows.
                rel = Relation.from_sorted_rows(
                    rel.schema,
                    filter_rows(rel.rows(), payload.rest),
                    rel.domain,
                )
            seg_id = (payload.base.segment, payload.base.generation)
        elif isinstance(payload, ShmRef):
            entry, attached = self._attach(payload)
            rel = self._from_entry(entry)
            seg_id = (payload.segment, payload.generation)
        else:  # a bare Relation (direct calls in tests)
            rel = payload
        self._rels[key] = (rel, seg_id)
        self._rels.move_to_end(key)
        if seg_id is not None:
            self._segments[seg_id][1] += 1
        while len(self._rels) > self.entries:
            old_key, (_, old_seg) = self._rels.popitem(last=False)
            evicted.append(old_key)
            if old_seg is not None:
                self._release_segment(old_seg)
        return rel, attached

    def _release_segment(self, seg_id: Tuple) -> None:
        entry = self._segments.get(seg_id)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] > 0:
            return
        del self._segments[seg_id]
        try:
            entry[0].close()
        except BufferError:
            # A live relation (this task's own database, typically)
            # still exports views over the mapping; dropping our
            # reference leaves the unmap to the garbage collector.
            pass


#: The worker's last-shipped registry snapshot (rolling baseline for
#: per-shard wire deltas).  ``None`` whenever shipping is off, so a
#: re-enable never charges a disabled period's collector traffic.
_SHIP_BASELINE = None


def _ship_delta() -> Optional[tuple]:
    """This shard's registry movement, advancing the rolling baseline."""
    global _SHIP_BASELINE
    now = _METRICS.snapshot()
    wire = wire_delta(_SHIP_BASELINE, now)
    _SHIP_BASELINE = now
    return wire


class _ShardPlan:
    """The minimal plan shape the registered backend runners read."""

    __slots__ = ("index_kind", "gao")

    def __init__(self, index_kind: str, gao: Optional[Tuple[str, ...]]):
        self.index_kind = index_kind
        self.gao = gao


def execute_shard(task: ShardTask, cache: WorkerCache) -> ShardResult:
    """Run one shard against the backend registry; never raises."""
    from repro.core.resolution import ResolutionStats
    from repro.engine.executor import _REGISTRY
    from repro.parallel.shm import ShmRef, ShmSlice
    from repro.relational.query import Database, JoinQuery

    tracer = None
    span = None
    if task.trace is not None:
        from repro.obs.tracing import Tracer

        tracer = Tracer(trace_id=task.trace[0], parent_id=task.trace[1])
        span = tracer.start(
            f"shard[{task.shard_id}]",
            shard=task.shard_id,
            backend=task.backend,
        )

    global _SHIP_BASELINE
    ship_metrics = task.metrics and _METRICS.enabled
    if ship_metrics:
        # Rolling baseline: one snapshot per shard, not two.  The delta
        # shipped with this shard is everything since the previous
        # shard's ship (or since shipping was enabled), which is
        # exactly this shard's traffic — workers do nothing between
        # shards.
        if _SHIP_BASELINE is None:
            _SHIP_BASELINE = _METRICS.snapshot()
    else:
        _SHIP_BASELINE = None

    # CPU time, not wall: on a host where workers outnumber free cores
    # the OS time-slices them, and wall clocks would double-count the
    # contention.  process_time is what the shard costs on any host.
    t0 = time.process_time()
    evicted: List[Tuple] = []
    attach_seconds = 0.0
    attached_bytes = 0
    attaches = 0
    try:
        relations = []
        hits = 0
        attach_span = None
        if tracer is not None and any(
            isinstance(p, (ShmRef, ShmSlice)) for _, _, p in task.payloads
        ):
            attach_span = tracer.start("shm.attach")
        for _name, key, payload in task.payloads:
            if payload is None:
                rel = cache.get(key)
                if rel is None:
                    raise KeyError(
                        f"scheduler referenced {key!r} but it is not cached"
                    )
                hits += 1
            else:
                is_shm = isinstance(payload, (ShmRef, ShmSlice))
                ta = time.perf_counter() if is_shm else 0.0
                rel, new_bytes = cache.store(key, payload, evicted)
                if is_shm:
                    attach_seconds += time.perf_counter() - ta
                    if new_bytes:
                        attached_bytes += new_bytes
                        attaches += 1
            relations.append(rel)
        if attach_span is not None:
            tracer.finish(
                attach_span, attaches=attaches, bytes=attached_bytes
            )
        fault_plan = _faults.plan()
        if fault_plan is not None:
            # After materialization, before compute: a crash here leaves
            # the scheduler's cache mirror genuinely diverged from the
            # (dead) worker — the case supervision must clean up.
            _faults.maybe_fire(fault_plan, task.shard_id, task.attempt)
        query = JoinQuery(task.atoms)
        db = Database(relations)
        spec = _REGISTRY[task.backend]
        plan = _ShardPlan(task.index_kind, task.gao)
        if task.limit is not None and spec.streamer is not None:
            rows_iter, stats, _gao = spec.streamer(
                query, db, plan, task.limit
            )
            rows = list(itertools.islice(rows_iter, task.limit))
            close = getattr(rows_iter, "close", None)
            if close is not None:
                close()
        else:
            rows, stats, _gao = spec.runner(query, db, plan)
            if task.limit is not None:
                rows = rows[: task.limit]
        if tracer is not None:
            tracer.finish(span, rows=len(rows), ref_hits=hits)
        return ShardResult(
            shard_id=task.shard_id,
            rows=rows,
            stats=stats,
            compute_seconds=time.process_time() - t0,
            ref_hits=hits,
            evicted=tuple(evicted),
            spans=tuple(tracer.serialized()) if tracer is not None else (),
            shm_attaches=attaches,
            shm_attached_bytes=attached_bytes,
            attach_seconds=attach_seconds,
            metrics=_ship_delta() if ship_metrics else None,
        )
    except Exception:
        if tracer is not None:
            tracer.finish(span, error=True)
        return ShardResult(
            shard_id=task.shard_id,
            rows=[],
            stats=ResolutionStats(),
            compute_seconds=time.process_time() - t0,
            ref_hits=0,
            evicted=tuple(evicted),
            error=traceback.format_exc(),
            spans=tuple(tracer.serialized()) if tracer is not None else (),
            shm_attaches=attaches,
            shm_attached_bytes=attached_bytes,
            attach_seconds=attach_seconds,
            metrics=_ship_delta() if ship_metrics else None,
        )


def _fallback_result(task: ShardTask, result: ShardResult) -> ShardResult:
    """An error-result standing in for one that failed to pickle.

    Carries the original result's eviction acks — the worker's cache
    *did* change, and dropping the acks would desynchronize the
    scheduler's mirror — but none of the unpicklable content.
    """
    from repro.core.resolution import ResolutionStats

    return ShardResult(
        shard_id=task.shard_id,
        rows=[],
        stats=ResolutionStats(),
        compute_seconds=result.compute_seconds,
        ref_hits=result.ref_hits,
        evicted=result.evicted,
        error=(
            "shard result failed to serialize on the pipe:\n"
            + traceback.format_exc()
        ),
        # The wire delta is plain tuples of str/float — always
        # picklable — so the worker's telemetry survives even when the
        # result payload itself could not.
        metrics=result.metrics,
    )


def worker_main(conn) -> None:
    """The worker process loop: recv task / send result until ``None``."""
    _faults.mark_worker()
    cache = WorkerCache()
    try:
        while True:
            task = conn.recv()
            if task is None:
                break
            result = execute_shard(task, cache)
            fault_plan = _faults.plan()
            if fault_plan is not None and fault_plan.should_unpickle_fail(
                task.shard_id, task.attempt
            ):
                result.stats = _faults.Unpicklable()
            try:
                conn.send(result)
            except Exception:
                # One-in/one-out must hold even when the result itself
                # is unsendable (an unpicklable stats object, say):
                # answer with a fallback error-result instead of dying
                # and desynchronizing the whole pipe.  Connection.send
                # pickles fully before writing, so the failed send left
                # no partial bytes on the wire.
                conn.send(_fallback_result(task, result))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    finally:
        conn.close()
