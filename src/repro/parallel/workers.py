"""Shard worker processes: the remote end of the scheduler's pipes.

Each worker is a long-lived process running :func:`worker_main` on its
end of a duplex pipe.  The protocol is strictly one-in/one-out: every
:class:`ShardTask` received produces exactly one :class:`ShardResult`
(errors included, as a formatted traceback) — the scheduler relies on
this to keep its per-worker bookkeeping exact, even while draining an
abandoned run.

Payloads are pickle-lean: a relation ships as schema + canonical rows
only (``Relation.__getstate__`` drops every memoized view/column), and
only the *first* time a given content key reaches a given worker — the
worker keeps an LRU **relation cache keyed by content**
(``Relation.cache_key``), so repeated queries over the same data ship
references, no rows.  Evictions are reported back with each result so
the scheduler's view of the cache never drifts.

Workers execute through the engine's backend registry directly (the
parent already planned: backend, index kind and GAO arrive in the task),
skipping the per-shard planning pass — no treewidth search, no AGM LP in
the hot loop.
"""

from __future__ import annotations

import itertools
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

Row = Tuple[int, ...]

#: Worker-side relation cache capacity (entries).  Evicted keys ride
#: back on the next result so the scheduler stops sending references to
#: them.
CACHE_ENTRIES = 256


@dataclass(frozen=True)
class ShardTask:
    """One shard's work order, self-contained on the wire.

    ``payloads`` holds, per query atom, ``(name, cache key, relation or
    None)`` — ``None`` means "you have this one cached".  ``trace`` is
    the propagated span context of a traced query: ``(trace id, parent
    span id)``; the worker's spans open under that parent so the merged
    trace renders one tree across processes.  ``None`` (the default)
    keeps the worker's hot path untouched.
    """

    shard_id: int
    atoms: Tuple  # RelationSchema, in query-atom order
    payloads: Tuple[Tuple[str, Tuple, Optional[object]], ...]
    backend: str
    index_kind: str
    gao: Optional[Tuple[str, ...]]
    limit: Optional[int]
    trace: Optional[Tuple[str, Optional[str]]] = None


@dataclass
class ShardResult:
    """One shard's answer: rows, engine stats, and cache bookkeeping."""

    shard_id: int
    rows: List[Row]
    stats: object  # ResolutionStats (kept untyped: workers import lazily)
    compute_seconds: float
    ref_hits: int
    evicted: Tuple[Tuple, ...] = field(default_factory=tuple)
    error: Optional[str] = None
    #: Serialized worker-side spans (dicts), present only when the task
    #: carried a trace context; the scheduler's parent tracer adopts
    #: them verbatim.
    spans: Tuple = field(default_factory=tuple)


class _ShardPlan:
    """The minimal plan shape the registered backend runners read."""

    __slots__ = ("index_kind", "gao")

    def __init__(self, index_kind: str, gao: Optional[Tuple[str, ...]]):
        self.index_kind = index_kind
        self.gao = gao


def execute_shard(task: ShardTask, cache: OrderedDict) -> ShardResult:
    """Run one shard against the backend registry; never raises."""
    from repro.core.resolution import ResolutionStats
    from repro.engine.executor import _REGISTRY
    from repro.relational.query import Database, JoinQuery

    tracer = None
    span = None
    if task.trace is not None:
        from repro.obs.tracing import Tracer

        tracer = Tracer(trace_id=task.trace[0], parent_id=task.trace[1])
        span = tracer.start(
            f"shard[{task.shard_id}]",
            shard=task.shard_id,
            backend=task.backend,
        )

    # CPU time, not wall: on a host where workers outnumber free cores
    # the OS time-slices them, and wall clocks would double-count the
    # contention.  process_time is what the shard costs on any host.
    t0 = time.process_time()
    evicted: List[Tuple] = []
    try:
        relations = []
        hits = 0
        for _name, key, rel in task.payloads:
            if rel is None:
                rel = cache[key]
                cache.move_to_end(key)
                hits += 1
            else:
                cache[key] = rel
                cache.move_to_end(key)
                while len(cache) > CACHE_ENTRIES:
                    old_key, _ = cache.popitem(last=False)
                    evicted.append(old_key)
            relations.append(rel)
        query = JoinQuery(task.atoms)
        db = Database(relations)
        spec = _REGISTRY[task.backend]
        plan = _ShardPlan(task.index_kind, task.gao)
        if task.limit is not None and spec.streamer is not None:
            rows_iter, stats, _gao = spec.streamer(
                query, db, plan, task.limit
            )
            rows = list(itertools.islice(rows_iter, task.limit))
            close = getattr(rows_iter, "close", None)
            if close is not None:
                close()
        else:
            rows, stats, _gao = spec.runner(query, db, plan)
            if task.limit is not None:
                rows = rows[: task.limit]
        if tracer is not None:
            tracer.finish(span, rows=len(rows), ref_hits=hits)
        return ShardResult(
            shard_id=task.shard_id,
            rows=rows,
            stats=stats,
            compute_seconds=time.process_time() - t0,
            ref_hits=hits,
            evicted=tuple(evicted),
            spans=tuple(tracer.serialized()) if tracer is not None else (),
        )
    except Exception:
        if tracer is not None:
            tracer.finish(span, error=True)
        return ShardResult(
            shard_id=task.shard_id,
            rows=[],
            stats=ResolutionStats(),
            compute_seconds=time.process_time() - t0,
            ref_hits=0,
            evicted=tuple(evicted),
            error=traceback.format_exc(),
            spans=tuple(tracer.serialized()) if tracer is not None else (),
        )


def worker_main(conn) -> None:
    """The worker process loop: recv task / send result until ``None``."""
    cache: OrderedDict = OrderedDict()
    try:
        while True:
            task = conn.recv()
            if task is None:
                break
            conn.send(execute_shard(task, cache))
    except (EOFError, BrokenPipeError, KeyboardInterrupt):
        pass
    finally:
        conn.close()
