"""The shard scheduler: persistent worker pools and dynamic dealing.

A :class:`WorkerPool` owns N worker processes connected by duplex pipes
and deals shards **dynamically**: every worker holds exactly one
outstanding shard, and the next shard is dealt the moment a worker's
result arrives.  With the partitioner's oversharding (more shards than
workers) this is classic LPT-style list scheduling — a skewed shard
delays one worker by one shard, never the whole run.

Dealing is **cache-affine**: the pool mirrors each worker's relation
cache (exactly — inserts are decided here, evictions are acknowledged on
the next result from that worker, and a worker never holds two tasks, so
the mirror cannot race).  A pending shard whose relations a free worker
already holds is preferred, and known relations ship as content-key
references instead of rows — the "repeated queries on the same data ship
no rows" path.

Cold payloads go through :meth:`WorkerPool._encode_payload`: relations
above the shm size threshold export into the process-wide
:data:`~repro.parallel.shm.ARENA` and ship as segment *refs*
(``ShmRef``/``ShmSlice`` — a few hundred wire bytes however large the
relation); everything else ships as a pre-pickled :class:`RelBlob`,
sized at dispatch for the actual-wire accounting.  The pool holds one
arena owner per ``(pool, worker, segment)``; eviction acks and pool
close release them, which is what lets the arena unlink safely.

Pools persist for the process lifetime (:func:`get_pool` memoizes per
worker count; ``atexit`` shuts them down and closes the arena), so a
served workload pays process spawn once, not per query.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from multiprocessing.reduction import ForkingPickler
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.parallel import shm as _shm
from repro.parallel.partition import Shard
from repro.parallel.workers import (
    RelBlob,
    ShardResult,
    ShardTask,
    worker_main,
)


class WorkerError(RuntimeError):
    """A shard failed in a worker (carries the worker's traceback)."""


@dataclass
class PendingShard:
    """A clipped shard ready to deal.

    ``relations`` holds ``(name, cache key, ship)`` per query atom,
    where ``ship`` is a clipped :class:`Relation` or a
    :class:`~repro.parallel.shm.SlicePlan` (a bisect range over the base
    relation, resolved at dispatch).  ``weight`` is the clipped input
    size: the LPT priority.
    """

    shard_id: int
    shard: Shard
    relations: Tuple[Tuple[str, Tuple, object], ...]
    weight: int


def _preferred_start_method() -> str:
    # fork shares the warm parent image (no re-import per worker); fall
    # back to spawn where fork is unavailable (Windows, some macOS).
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _wire_size(payload) -> int:
    """The payload's actual pickled size on the task wire."""
    return len(ForkingPickler.dumps(payload))


class WorkerPool:
    """N persistent shard workers plus the parent-side cache mirror."""

    def __init__(
        self, num_workers: int, start_method: Optional[str] = None
    ):
        if num_workers < 1:
            raise ValueError(f"need at least 1 worker, got {num_workers}")
        # Start the resource tracker *before* forking: children then
        # share the parent's tracker (idempotent re-registers on shm
        # attach), instead of each lazily starting a private tracker
        # that would unlink parent-owned segments when the worker exits.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - exotic platforms
            pass
        ctx = mp.get_context(start_method or _preferred_start_method())
        self.num_workers = num_workers
        self._conns: List = []
        self._procs: List = []
        for i in range(num_workers):
            parent_end, child_end = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(child_end,),
                daemon=True,
                name=f"repro-shard-worker-{i}",
            )
            proc.start()
            child_end.close()
            self._conns.append(parent_end)
            self._procs.append(proc)
        #: Mirror of each worker's relation cache, by content key.
        self._known: List[set] = [set() for _ in range(num_workers)]
        #: Per-worker map of cached key → arena segment id, so an
        #: eviction ack releases the matching arena owner.
        self._seg_refs: List[Dict[Tuple, Tuple[str, int]]] = [
            {} for _ in range(num_workers)
        ]
        #: Content keys ever shipped by value through this pool — how
        #: the report tells a first ship from a steal-induced re-ship.
        self._shipped_keys: set = set()
        self.closed = False
        #: True while a run owns the pipes.  The one-in/one-out protocol
        #: cannot multiplex runs: a second concurrent run would receive
        #: the first run's in-flight replies as its own shards.
        self.active = False

    # -- dealing ---------------------------------------------------------------

    def _pick_job(
        self, wid: int, pending: List[PendingShard]
    ) -> Tuple[PendingShard, bool]:
        """Pop the best pending shard for a worker: affinity, then LPT.

        ``pending`` is kept heaviest-first.  Score prefers shards this
        worker already caches, then unclaimed shards, then shards cached
        by *another* worker — stealing re-ships rows, so it's the last
        resort (and the right one: when only another worker's shards
        remain, idling would straggle the run).  Ties break toward the
        heavier shard.  Returns ``(job, stolen)`` — stolen meaning the
        pick holds relations resident on another worker but none on this
        one, so any by-value payloads it ships are genuine re-ships.
        """
        known = self._known[wid]
        others = [k for i, k in enumerate(self._known) if i != wid]
        best_i = 0
        best_score = None
        for i, job in enumerate(pending):
            own = sum(1 for _, key, _ in job.relations if key in known)
            stolen = max(
                (
                    sum(1 for _, key, _ in job.relations if key in o)
                    for o in others
                ),
                default=0,
            )
            # Own-cached first, then unclaimed, then steal (stealing
            # re-ships rows — last resort, but better than idling).
            score = (own, -stolen)
            if best_score is None or score > best_score:
                best_i, best_score = i, score
                if own == len(job.relations):
                    break  # fully cached and heaviest such — done
        job = pending.pop(best_i)
        own, stolen = (best_score if best_score is not None
                       else (0, 0))
        return job, own == 0 and -stolen > 0

    def run_shards(
        self,
        jobs: Sequence[PendingShard],
        atoms: Tuple,
        backend: str,
        index_kind: str,
        gao: Optional[Tuple[str, ...]],
        limit: Optional[int],
        report=None,
        trace: Optional[Tuple[str, Optional[str]]] = None,
    ) -> Iterator[Tuple[ShardResult, int, PendingShard]]:
        """Deal shards dynamically; yield results in completion order.

        Yields ``(result, worker_id, job)``.  Raises :class:`WorkerError`
        on a shard failure or a dead worker.  Closing the generator early
        (a merged cursor hitting its limit) stops dealing and *drains*
        the in-flight shards so the one-in/one-out pipe protocol stays in
        sync for the next run.

        A pool runs one shard set at a time: the generator marks the
        pool ``active`` while it owns the pipes, and every received
        result is checked against the shard it was paired with —
        callers acquire pools through :func:`get_pool`, which never
        hands out an active one, so overlapping cursors each get their
        own pool instead of cross-wiring each other's replies.
        """
        if self.closed:
            raise WorkerError("worker pool is closed")
        if self.active:
            raise WorkerError(
                "worker pool is already running a shard set "
                "(acquire pools via get_pool)"
            )
        self.active = True
        pending = sorted(jobs, key=lambda j: -j.weight)
        free = list(range(self.num_workers))
        busy: Dict[int, PendingShard] = {}
        try:
            while pending or busy:
                while free and pending:
                    wid = free.pop()
                    job, stolen = self._pick_job(wid, pending)
                    if stolen and report is not None:
                        report.shards_stolen += 1
                    self._dispatch(
                        wid, job, atoms, backend, index_kind, gao, limit,
                        report, trace,
                    )
                    busy[wid] = job
                ready = mp_connection.wait(
                    [self._conns[w] for w in busy]
                )
                for conn in ready:
                    wid = self._conns.index(conn)
                    result = self._receive(wid)
                    job = busy.pop(wid)
                    free.append(wid)
                    if result.error is not None:
                        raise WorkerError(
                            f"shard {result.shard_id} failed in worker "
                            f"{wid}:\n{result.error}"
                        )
                    if result.shard_id != job.shard_id:
                        # Desynchronized pipe: never serve mismatched
                        # results as if they belonged to this run.
                        self._invalidate()
                        raise WorkerError(
                            f"worker {wid} answered shard "
                            f"{result.shard_id} while {job.shard_id} "
                            f"was in flight (protocol desync)"
                        )
                    if report is not None:
                        report.shm_attaches += result.shm_attaches
                        report.shm_attached_bytes += (
                            result.shm_attached_bytes
                        )
                        report.shm_attach_seconds += result.attach_seconds
                    yield result, wid, job
        finally:
            # Drain in-flight replies (dispatched but not yet received)
            # so the next run starts from a synchronized protocol state.
            for wid in list(busy):
                try:
                    self._receive(wid)
                except WorkerError:
                    pass
            self.active = False

    def _encode_payload(self, wid: int, key: Tuple, ship, report):
        """One cold payload's wire form, with ship accounting.

        Slices and large relations go by segment ref through the arena
        (fallback: materialize / blob); everything else ships as a
        pre-pickled blob whose length is the *actual* wire size — the
        nominal ``8 × rows × attrs`` figure is kept separately.
        """
        owner = (id(self), wid)
        if isinstance(ship, _shm.SlicePlan):
            ref = _shm.ARENA.export(ship.base, owner=owner)
            if ref is not None:
                payload = _shm.ShmSlice(ref, ship.lo, ship.hi, ship.rest)
                self._seg_refs[wid][key] = (ref.segment, ref.generation)
                if report is not None:
                    report.shm_ships += 1
                    report.bytes_shipped += _wire_size(payload)
                    report.bytes_nominal += ship.nominal_bytes()
                return payload
            if report is not None and _shm.shm_enabled():
                report.shm_fallbacks += 1
            ship = ship.materialize()
        if (
            _shm.shm_enabled()
            and ship.nominal_bytes() >= _shm.shm_min_bytes()
        ):
            ref = _shm.ARENA.export(ship, owner=owner)
            if ref is not None:
                self._seg_refs[wid][key] = (ref.segment, ref.generation)
                if report is not None:
                    report.shm_ships += 1
                    report.bytes_shipped += _wire_size(ref)
                    report.bytes_nominal += ship.nominal_bytes()
                return ref
            if report is not None:
                report.shm_fallbacks += 1
        payload = RelBlob(bytes(ForkingPickler.dumps(ship)))
        if report is not None:
            if key in self._shipped_keys:
                # This content is already resident on another worker:
                # a steal-induced re-ship, tallied apart so the
                # first-ship row count stays meaningful.
                report.rows_reshipped += len(ship)
            else:
                report.rows_shipped += len(ship)
            report.bytes_shipped += len(payload.blob)
            report.bytes_nominal += ship.nominal_bytes()
        self._shipped_keys.add(key)
        return payload

    def _dispatch(
        self, wid, job, atoms, backend, index_kind, gao, limit, report,
        trace=None,
    ) -> None:
        known = self._known[wid]
        payloads = []
        for name, key, ship in job.relations:
            if key in known:
                payloads.append((name, key, None))
                if report is not None:
                    report.ref_hits += 1
            else:
                payloads.append(
                    (name, key, self._encode_payload(wid, key, ship, report))
                )
                known.add(key)
            if report is not None:
                report.refs_total += 1
        task = ShardTask(
            shard_id=job.shard_id,
            atoms=atoms,
            payloads=tuple(payloads),
            backend=backend,
            index_kind=index_kind,
            gao=gao,
            limit=limit,
            trace=trace,
        )
        try:
            self._conns[wid].send(task)
        except (BrokenPipeError, OSError) as exc:
            self._invalidate()
            raise WorkerError(f"worker {wid} is gone: {exc}") from exc

    def _receive(self, wid: int) -> ShardResult:
        try:
            result = self._conns[wid].recv()
        except (EOFError, OSError) as exc:
            self._invalidate()
            raise WorkerError(
                f"worker {wid} died mid-shard: {exc}"
            ) from exc
        for key in result.evicted:
            self._known[wid].discard(key)
            seg_id = self._seg_refs[wid].pop(key, None)
            if seg_id is not None and seg_id not in (
                self._seg_refs[wid].values()
            ):
                _shm.ARENA.release(seg_id, (id(self), wid))
        return result

    # -- lifecycle -------------------------------------------------------------

    def _invalidate(self) -> None:
        """Tear down after a protocol failure; drop from the registry."""
        self.close(graceful=False)
        pools = _POOLS.get(self.num_workers)
        if pools is not None and self in pools:
            pools.remove(self)

    def close(self, graceful: bool = True) -> None:
        if self.closed:
            return
        self.closed = True
        for conn in self._conns:
            if graceful:
                try:
                    conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + (2.0 if graceful else 0.2)
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
        for conn in self._conns:
            conn.close()
        # Workers are gone (or going): their segment attachments die
        # with them, so every arena owner this pool held is released.
        for refs in self._seg_refs:
            refs.clear()
        _shm.ARENA.release_owners(id(self))


_POOLS: Dict[int, List[WorkerPool]] = {}


def get_pool(num_workers: int) -> WorkerPool:
    """An *idle* persistent pool for a worker count.

    Pools are memoized and reused across queries (that's what keeps the
    per-worker relation caches warm), but a pool mid-run is never handed
    out again: a second parallel cursor consumed while the first is
    still open gets its own pool, because the pipe protocol cannot carry
    two runs at once.  Idle pools are recycled; extra pools accumulate
    only while that many parallel runs are genuinely open at once.
    """
    pools = _POOLS.setdefault(num_workers, [])
    pools[:] = [p for p in pools if not p.closed]
    for pool in pools:
        if not pool.active:
            return pool
    pool = WorkerPool(num_workers)
    pools.append(pool)
    return pool


def shutdown_pools() -> None:
    """Close every memoized pool and unlink the arena's segments
    (registered atexit; callable in tests)."""
    for pools in _POOLS.values():
        for pool in pools:
            pool.close()
    _POOLS.clear()
    _shm.ARENA.close()


atexit.register(shutdown_pools)
