"""The shard scheduler: persistent worker pools, dynamic dealing, and
worker supervision.

A :class:`WorkerPool` owns N worker processes connected by duplex pipes
and deals shards **dynamically**: every worker holds exactly one
outstanding shard, and the next shard is dealt the moment a worker's
result arrives.  With the partitioner's oversharding (more shards than
workers) this is classic LPT-style list scheduling — a skewed shard
delays one worker by one shard, never the whole run.

Dealing is **cache-affine**: the pool mirrors each worker's relation
cache (exactly — inserts are decided here, evictions are acknowledged on
the next result from that worker, and a worker never holds two tasks, so
the mirror cannot race).  A pending shard whose relations a free worker
already holds is preferred, and known relations ship as content-key
references instead of rows — the "repeated queries on the same data ship
no rows" path.

Cold payloads go through :meth:`WorkerPool._encode_payload`: relations
above the shm size threshold export into the process-wide
:data:`~repro.parallel.shm.ARENA` and ship as segment *refs*
(``ShmRef``/``ShmSlice`` — a few hundred wire bytes however large the
relation); everything else ships as a pre-pickled :class:`RelBlob`,
sized at dispatch for the actual-wire accounting.  The pool holds one
arena owner per ``(pool, worker, segment)``; eviction acks and pool
close release them, which is what lets the arena unlink safely.

Dealing is also **supervised**.  Shards are disjoint dyadic output boxes
whose results are pure functions of ``(shard, database)``, so every
shard is safely re-executable — the engine is embarrassingly
recoverable, and this module exploits it:

* The wait set includes each busy worker's ``Process.sentinel``, so a
  worker death (crash, OOM-kill) is noticed the moment it happens, not
  when a pipe read fails.  The dead worker is **respawned in place**
  (its arena owners released, its cache mirror reset) and the lost
  in-flight shard is re-dealt with bounded retries.
* A shard that keeps killing workers (:data:`SHARD_RETRY_LIMIT`
  dispatches), or any deterministic worker-side ``ShardResult.error``,
  is **quarantined**: re-executed serially in-parent over the clipped
  relations the job already holds.  One poisoned shard degrades to
  serial; the query still answers.
* A per-query **deadline** (``run_shards(..., deadline=)``) bounds the
  wait; on expiry busy workers are killed-and-respawned and
  :class:`QueryTimeout` carries the partial report out.  A per-shard
  stall budget (``REPRO_SHARD_TIMEOUT_MS``) treats a silent worker as
  hung — kill, respawn, retry — without failing the query.
* Exceeding the run's **respawn budget** flips the run into degraded
  mode: remaining shards execute serially in-parent.  ``workers=N`` is
  a performance hint, never a correctness risk.
* The abandoned-cursor drain in the ``finally`` block is **bounded**
  (``REPRO_DRAIN_TIMEOUT_MS``): a dead or hung worker can no longer
  wedge the parent; it is respawned and the pool stays serviceable.

Pools persist for the process lifetime (:func:`get_pool` memoizes per
worker count; ``atexit`` shuts them down and closes the arena), so a
served workload pays process spawn once, not per query.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from multiprocessing.reduction import ForkingPickler
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.parallel import faults as _faults
from repro.parallel import shm as _shm
from repro.parallel.partition import Shard
from repro.parallel.workers import (
    RelBlob,
    ShardResult,
    ShardTask,
    WorkerCache,
    execute_shard,
    worker_main,
)

#: Dispatch attempts per shard before it is quarantined to serial
#: in-parent execution (first try + retries).
SHARD_RETRY_LIMIT = 3

#: Per-shard stall budget, milliseconds.  Unset/0 disables the check
#: (the fault-free wait then blocks with no timeout at all — zero
#: supervision overhead).  A busy worker silent past the budget is
#: treated as hung: killed, respawned, its shard retried.
SHARD_TIMEOUT_ENV = "REPRO_SHARD_TIMEOUT_MS"

#: Bound on the abandoned-run drain (cursor closed with shards still in
#: flight).  A worker that doesn't answer within the budget is respawned
#: instead of wedging the parent.
DRAIN_TIMEOUT_ENV = "REPRO_DRAIN_TIMEOUT_MS"
DEFAULT_DRAIN_TIMEOUT_MS = 5000


class WorkerError(RuntimeError):
    """A shard failed for real (carries the worker's traceback) or the
    pipe protocol desynchronized beyond repair."""


class QueryTimeout(RuntimeError):
    """A parallel query exceeded its deadline.

    ``report`` holds the partial :class:`~repro.parallel.merge.
    ParallelReport` at abort time — shards executed so far, respawns,
    ship accounting — so callers can see how far the run got.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class _WorkerDied(Exception):
    """Internal: a pipe endpoint failed — the worker process is gone."""


@dataclass
class PendingShard:
    """A clipped shard ready to deal.

    ``relations`` holds ``(name, cache key, ship)`` per query atom,
    where ``ship`` is a clipped :class:`Relation` or a
    :class:`~repro.parallel.shm.SlicePlan` (a bisect range over the base
    relation, resolved at dispatch).  ``weight`` is the clipped input
    size: the LPT priority.
    """

    shard_id: int
    shard: Shard
    relations: Tuple[Tuple[str, Tuple, object], ...]
    weight: int


@dataclass
class _InFlight:
    """One dispatched shard: what's riding on a busy worker's pipe."""

    job: PendingShard
    attempt: int
    started: float  # monotonic dispatch time (stall detection)


def _preferred_start_method() -> str:
    # fork shares the warm parent image (no re-import per worker); fall
    # back to spawn where fork is unavailable (Windows, some macOS).
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _wire_size(payload) -> int:
    """The payload's actual pickled size on the task wire."""
    return len(ForkingPickler.dumps(payload))


def _env_ms(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _shard_stall_seconds() -> Optional[float]:
    ms = _env_ms(SHARD_TIMEOUT_ENV, 0)
    return ms / 1000.0 if ms > 0 else None


def _drain_timeout_seconds() -> float:
    ms = _env_ms(DRAIN_TIMEOUT_ENV, DEFAULT_DRAIN_TIMEOUT_MS)
    if ms <= 0:
        ms = DEFAULT_DRAIN_TIMEOUT_MS
    return ms / 1000.0


def _instant_span(name: str, **attrs) -> None:
    """Record a zero-duration event span if a tracer is ambient."""
    tracer = _tracing.current_tracer()
    if tracer is None:
        return
    tracer.finish(tracer.start(name, **attrs))


def run_job_in_parent(
    job: PendingShard,
    atoms: Tuple,
    backend: str,
    index_kind: str,
    gao: Optional[Tuple[str, ...]],
    limit: Optional[int],
    trace: Optional[Tuple[str, Optional[str]]] = None,
) -> ShardResult:
    """Execute one clipped shard serially in the parent process.

    The quarantine / degradation path: the clipped relations are already
    parent-side (that's what :class:`PendingShard` carries), so the
    shard runs through the exact worker code path —
    :func:`~repro.parallel.workers.execute_shard` over bare relation
    payloads — with no pipes, no pickling, no shared memory.  Raises
    :class:`WorkerError` when the shard fails even here: a shard that
    fails deterministically in serial execution is a genuine query
    error, not a fault to survive.
    """
    payloads = []
    for name, key, ship in job.relations:
        if isinstance(ship, _shm.SlicePlan):
            ship = ship.materialize()
        payloads.append((name, key, ship))
    task = ShardTask(
        shard_id=job.shard_id,
        atoms=atoms,
        payloads=tuple(payloads),
        backend=backend,
        index_kind=index_kind,
        gao=gao,
        limit=limit,
        trace=trace,
    )
    result = execute_shard(task, WorkerCache())
    if result.error is not None:
        raise WorkerError(
            f"shard {job.shard_id} failed even in serial in-parent "
            f"re-execution:\n{result.error}"
        )
    return result


class WorkerPool:
    """N persistent shard workers plus the parent-side cache mirror."""

    def __init__(
        self, num_workers: int, start_method: Optional[str] = None
    ):
        if num_workers < 1:
            raise ValueError(f"need at least 1 worker, got {num_workers}")
        # Start the resource tracker *before* forking: children then
        # share the parent's tracker (idempotent re-registers on shm
        # attach), instead of each lazily starting a private tracker
        # that would unlink parent-owned segments when the worker exits.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - exotic platforms
            pass
        self._ctx = mp.get_context(start_method or _preferred_start_method())
        self.num_workers = num_workers
        self._conns: List = []
        self._procs: List = []
        try:
            fault_plan = _faults.plan()
            if fault_plan is not None and fault_plan.take_spawn_failure():
                raise OSError(
                    "injected worker pool spawn failure (REPRO_FAULTS)"
                )
            for i in range(num_workers):
                conn, proc = self._spawn_worker(i)
                self._conns.append(conn)
                self._procs.append(proc)
        except BaseException:
            # Leave no half-pool behind: callers degrade to serial
            # in-process execution on a spawn failure.
            for conn in self._conns:
                try:
                    conn.close()
                except OSError:
                    pass
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
            raise
        #: Precomputed pipe → worker id map (the deal loop's ready-conn
        #: lookup; kept exact across respawns).
        self._conn_wid: Dict[object, int] = {
            conn: wid for wid, conn in enumerate(self._conns)
        }
        #: Mirror of each worker's relation cache, by content key.
        self._known: List[set] = [set() for _ in range(num_workers)]
        #: Per-worker map of cached key → arena segment id, so an
        #: eviction ack releases the matching arena owner.
        self._seg_refs: List[Dict[Tuple, Tuple[str, int]]] = [
            {} for _ in range(num_workers)
        ]
        #: Content keys ever shipped by value through this pool — how
        #: the report tells a first ship from a steal-induced re-ship.
        self._shipped_keys: set = set()
        #: Pool-lifetime count of workers respawned after death/hang.
        self.respawns = 0
        self.closed = False
        #: True while a run owns the pipes.  The one-in/one-out protocol
        #: cannot multiplex runs: a second concurrent run would receive
        #: the first run's in-flight replies as its own shards.
        self.active = False

    def _spawn_worker(self, wid: int):
        parent_end, child_end = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_end,),
            daemon=True,
            name=f"repro-shard-worker-{wid}",
        )
        proc.start()
        child_end.close()
        return parent_end, proc

    def _respawn(self, wid: int, report=None, reason: str = "") -> None:
        """Replace a dead/hung worker in place.

        The worker's segment attachments died with it, so its arena
        owners are released and its cache mirror reset — the respawned
        worker starts cold and the next dispatch re-ships what it needs.
        """
        old_conn = self._conns[wid]
        self._conn_wid.pop(old_conn, None)
        try:
            old_conn.close()
        except OSError:
            pass
        proc = self._procs[wid]
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=2.0)
        self._seg_refs[wid].clear()
        _shm.ARENA.release_owner((id(self), wid))
        self._known[wid] = set()
        conn, proc = self._spawn_worker(wid)
        self._conns[wid] = conn
        self._procs[wid] = proc
        self._conn_wid[conn] = wid
        self.respawns += 1
        if report is not None:
            report.worker_respawns += 1
        _instant_span("worker.respawn", worker=wid, reason=reason)

    # -- dealing ---------------------------------------------------------------

    def _pick_job(
        self, wid: int, pending: List[PendingShard]
    ) -> Tuple[PendingShard, bool]:
        """Pop the best pending shard for a worker: affinity, then LPT.

        ``pending`` is kept heaviest-first.  Score prefers shards this
        worker already caches, then unclaimed shards, then shards cached
        by *another* worker — stealing re-ships rows, so it's the last
        resort (and the right one: when only another worker's shards
        remain, idling would straggle the run).  Ties break toward the
        heavier shard.  Returns ``(job, stolen)`` — stolen meaning the
        pick holds relations resident on another worker but none on this
        one, so any by-value payloads it ships are genuine re-ships.
        """
        known = self._known[wid]
        others = [k for i, k in enumerate(self._known) if i != wid]
        best_i = 0
        best_score = None
        for i, job in enumerate(pending):
            own = sum(1 for _, key, _ in job.relations if key in known)
            stolen = max(
                (
                    sum(1 for _, key, _ in job.relations if key in o)
                    for o in others
                ),
                default=0,
            )
            # Own-cached first, then unclaimed, then steal (stealing
            # re-ships rows — last resort, but better than idling).
            score = (own, -stolen)
            if best_score is None or score > best_score:
                best_i, best_score = i, score
                if own == len(job.relations):
                    break  # fully cached and heaviest such — done
        job = pending.pop(best_i)
        own, stolen = (best_score if best_score is not None
                       else (0, 0))
        return job, own == 0 and -stolen > 0

    def run_shards(
        self,
        jobs: Sequence[PendingShard],
        atoms: Tuple,
        backend: str,
        index_kind: str,
        gao: Optional[Tuple[str, ...]],
        limit: Optional[int],
        report=None,
        trace: Optional[Tuple[str, Optional[str]]] = None,
        deadline: Optional[float] = None,
    ) -> Iterator[Tuple[ShardResult, int, PendingShard]]:
        """Deal shards dynamically; yield results in completion order.

        Yields ``(result, worker_id, job)`` — ``worker_id`` is ``-1``
        for shards executed serially in-parent (quarantine or degraded
        mode).  ``deadline`` is a ``time.monotonic()`` instant; past it
        the run aborts with :class:`QueryTimeout` (busy workers are
        killed and respawned so the pool stays serviceable).

        Worker deaths and hangs are survived: the worker is respawned,
        the shard retried up to :data:`SHARD_RETRY_LIMIT` dispatches,
        then quarantined to serial in-parent execution.
        :class:`WorkerError` is raised only for genuine failures — a
        shard that fails even serially, or an unrecoverable protocol
        desync.  Closing the generator early (a merged cursor hitting
        its limit) stops dealing and *drains* the in-flight shards with
        a bounded timeout so the one-in/one-out pipe protocol stays in
        sync for the next run.

        A pool runs one shard set at a time: the generator marks the
        pool ``active`` while it owns the pipes, and every received
        result is checked against the shard it was paired with —
        callers acquire pools through :func:`get_pool`, which never
        hands out an active one, so overlapping cursors each get their
        own pool instead of cross-wiring each other's replies.
        """
        if self.closed:
            raise WorkerError("worker pool is closed")
        if self.active:
            raise WorkerError(
                "worker pool is already running a shard set "
                "(acquire pools via get_pool)"
            )
        self.active = True
        stall_s = _shard_stall_seconds()
        pending = sorted(jobs, key=lambda j: -j.weight)
        free = list(range(self.num_workers))
        busy: Dict[int, _InFlight] = {}
        #: shard_id → dispatches so far (the retry bound).
        attempts: Dict[int, int] = {}
        # A run that keeps burning workers must stop paying fork+reship
        # per shard at some point: past the budget the remaining shards
        # run serially in-parent instead (degraded mode).
        respawn_budget = max(4, 2 * self.num_workers)
        respawns_used = 0
        degraded = False

        def serial(job: PendingShard, why: str) -> ShardResult:
            if report is not None:
                if why == "quarantine":
                    report.shards_quarantined += 1
                else:
                    report.serial_fallback_shards += 1
            return run_job_in_parent(
                job, atoms, backend, index_kind, gao, limit, trace
            )

        def fail(wid: int, reason: str) -> Optional[PendingShard]:
            """A busy worker died or hung: respawn it, decide the shard.

            Returns the job when it must now run serially (retries
            exhausted or degraded mode), else ``None`` (requeued).
            """
            nonlocal respawns_used, degraded
            inflight = busy.pop(wid)
            respawns_used += 1
            self._respawn(wid, report=report, reason=reason)
            free.append(wid)
            if respawns_used >= respawn_budget:
                degraded = True
            job = inflight.job
            if degraded or attempts.get(job.shard_id, 0) >= SHARD_RETRY_LIMIT:
                return job
            if report is not None:
                report.shard_retries += 1
            _instant_span(
                "shard.retry",
                shard=job.shard_id,
                attempt=attempts.get(job.shard_id, 0),
                reason=reason,
            )
            pending.append(job)
            pending.sort(key=lambda j: -j.weight)
            return None

        try:
            while pending or busy:
                if degraded:
                    # Past the crash budget: stop dealing, run the rest
                    # here (busy results are still collected below).
                    while pending:
                        job = pending.pop(0)
                        yield serial(job, "degraded"), -1, job
                while not degraded and free and pending:
                    wid = free.pop()
                    job, stolen = self._pick_job(wid, pending)
                    if stolen and report is not None:
                        report.shards_stolen += 1
                    attempt = attempts.get(job.shard_id, 0)
                    attempts[job.shard_id] = attempt + 1
                    busy[wid] = _InFlight(job, attempt, time.monotonic())
                    try:
                        self._dispatch(
                            wid, job, atoms, backend, index_kind, gao,
                            limit, report, trace, attempt,
                        )
                    except _WorkerDied as exc:
                        q = fail(wid, f"dispatch failed: {exc}")
                        if q is not None:
                            yield serial(q, "quarantine"), -1, q
                if not busy:
                    continue

                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    self._abort_on_deadline(busy, pending, report)
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - now)
                if stall_s is not None:
                    next_stall = max(
                        0.0,
                        min(f.started for f in busy.values())
                        + stall_s - now,
                    )
                    timeout = (
                        next_stall if timeout is None
                        else min(timeout, next_stall)
                    )
                # Waiting on pipes *and* process sentinels: a worker
                # death wakes the loop immediately, even when it died
                # without writing a byte.  Fault-free with no deadline
                # armed, timeout stays None — a plain blocking wait.
                conns = {self._conns[w]: w for w in busy}
                sentinels = {self._procs[w].sentinel: w for w in busy}
                ready = mp_connection.wait(
                    list(conns) + list(sentinels), timeout
                )
                ready_wids: List[int] = []
                dead_wids: List[int] = []
                seen = set()
                for obj in ready:
                    wid = conns.get(obj)
                    if wid is not None and wid not in seen:
                        seen.add(wid)
                        ready_wids.append(wid)
                for obj in ready:
                    wid = sentinels.get(obj)
                    if wid is None or wid in seen:
                        continue
                    seen.add(wid)
                    # The process is gone, but its final result may
                    # still sit in the pipe buffer — prefer it to a
                    # needless retry.
                    try:
                        has_result = self._conns[wid].poll(0)
                    except (OSError, EOFError):
                        has_result = False
                    (ready_wids if has_result else dead_wids).append(wid)

                for wid in ready_wids:
                    try:
                        result = self._receive(wid)
                    except _WorkerDied as exc:
                        q = fail(wid, str(exc))
                        if q is not None:
                            yield serial(q, "quarantine"), -1, q
                        continue
                    inflight = busy.pop(wid)
                    free.append(wid)
                    if result.shard_id != inflight.job.shard_id:
                        # Desynchronized pipe: never serve mismatched
                        # results as if they belonged to this run.
                        self._invalidate()
                        raise WorkerError(
                            f"worker {wid} answered shard "
                            f"{result.shard_id} while "
                            f"{inflight.job.shard_id} was in flight "
                            f"(protocol desync)"
                        )
                    if result.error is not None:
                        # A deterministic worker-side failure (the
                        # worker itself is alive and in protocol):
                        # retrying would fail identically, so go
                        # straight to serial in-parent execution.
                        job = inflight.job
                        yield serial(job, "quarantine"), -1, job
                        continue
                    if report is not None:
                        report.dispatch_successes += 1
                        report.shm_attaches += result.shm_attaches
                        report.shm_attached_bytes += (
                            result.shm_attached_bytes
                        )
                        report.shm_attach_seconds += result.attach_seconds
                    yield result, wid, inflight.job

                for wid in dead_wids:
                    if wid not in busy:
                        continue
                    q = fail(wid, "worker process died")
                    if q is not None:
                        yield serial(q, "quarantine"), -1, q

                if stall_s is not None:
                    now = time.monotonic()
                    stalled = [
                        w for w, f in busy.items()
                        if now - f.started >= stall_s
                    ]
                    for wid in stalled:
                        q = fail(
                            wid,
                            f"no result in {stall_s:.1f}s (hung worker)",
                        )
                        if q is not None:
                            yield serial(q, "quarantine"), -1, q
        finally:
            if not self.closed:
                self._drain(busy, report)
            self.active = False

    def _abort_on_deadline(self, busy, pending, report) -> None:
        """Deadline expired: kill-and-respawn every busy worker (a hung
        worker must not outlive the query), then raise
        :class:`QueryTimeout` with the partial report."""
        in_flight = len(busy)
        for wid in list(busy):
            busy.pop(wid)
            self._respawn(wid, report=report, reason="query deadline")
        if report is not None:
            report.timed_out = True
        raise QueryTimeout(
            f"parallel query exceeded its deadline with {in_flight} "
            f"shards in flight and {len(pending)} pending",
            report=report,
        )

    def _drain(self, busy: Dict[int, _InFlight], report) -> None:
        """Drain in-flight replies (dispatched but not yet received) so
        the next run starts from a synchronized protocol state.

        Bounded: a worker that doesn't answer within
        ``REPRO_DRAIN_TIMEOUT_MS`` — dead, or hung mid-shard — is
        respawned instead of wedging the parent forever (the failure
        mode of the old unbounded drain).
        """
        drain_deadline = time.monotonic() + _drain_timeout_seconds()
        for wid in list(busy):
            busy.pop(wid)
            drained = False
            try:
                remaining = drain_deadline - time.monotonic()
                if remaining > 0 and self._conns[wid].poll(remaining):
                    self._receive(wid)
                    drained = True
            except (_WorkerDied, OSError, EOFError):
                drained = False
            if not drained:
                self._respawn(wid, report=report, reason="drain timeout")

    def _encode_payload(self, wid: int, key: Tuple, ship, report):
        """One cold payload's wire form, with ship accounting.

        Slices and large relations go by segment ref through the arena
        (fallback: materialize / blob); everything else ships as a
        pre-pickled blob whose length is the *actual* wire size — the
        nominal ``8 × rows × attrs`` figure is kept separately.  An
        *exception* from ``export`` (shm exhaustion beyond the arena's
        own fallback net, injected faults) degrades to the blob path
        exactly like a ``None`` return: shipping is never the reason a
        query dies.
        """
        owner = (id(self), wid)
        if isinstance(ship, _shm.SlicePlan):
            try:
                ref = _shm.ARENA.export(ship.base, owner=owner)
            except Exception:
                ref = None
                if report is not None:
                    report.shm_export_errors += 1
            if ref is not None:
                payload = _shm.ShmSlice(ref, ship.lo, ship.hi, ship.rest)
                self._seg_refs[wid][key] = (ref.segment, ref.generation)
                if report is not None:
                    report.shm_ships += 1
                    report.bytes_shipped += _wire_size(payload)
                    report.bytes_nominal += ship.nominal_bytes()
                return payload
            if report is not None and _shm.shm_enabled():
                report.shm_fallbacks += 1
            ship = ship.materialize()
        if (
            _shm.shm_enabled()
            and ship.nominal_bytes() >= _shm.shm_min_bytes()
        ):
            try:
                ref = _shm.ARENA.export(ship, owner=owner)
            except Exception:
                ref = None
                if report is not None:
                    report.shm_export_errors += 1
            if ref is not None:
                self._seg_refs[wid][key] = (ref.segment, ref.generation)
                if report is not None:
                    report.shm_ships += 1
                    report.bytes_shipped += _wire_size(ref)
                    report.bytes_nominal += ship.nominal_bytes()
                return ref
            if report is not None:
                report.shm_fallbacks += 1
        payload = RelBlob(bytes(ForkingPickler.dumps(ship)))
        if report is not None:
            if key in self._shipped_keys:
                # This content is already resident on another worker:
                # a steal-induced re-ship, tallied apart so the
                # first-ship row count stays meaningful.
                report.rows_reshipped += len(ship)
            else:
                report.rows_shipped += len(ship)
            report.bytes_shipped += len(payload.blob)
            report.bytes_nominal += ship.nominal_bytes()
        self._shipped_keys.add(key)
        return payload

    def _dispatch(
        self, wid, job, atoms, backend, index_kind, gao, limit, report,
        trace=None, attempt=0,
    ) -> None:
        known = self._known[wid]
        payloads = []
        for name, key, ship in job.relations:
            if key in known:
                payloads.append((name, key, None))
                if report is not None:
                    report.ref_hits += 1
            else:
                payloads.append(
                    (name, key, self._encode_payload(wid, key, ship, report))
                )
                known.add(key)
            if report is not None:
                report.refs_total += 1
        task = ShardTask(
            shard_id=job.shard_id,
            atoms=atoms,
            payloads=tuple(payloads),
            backend=backend,
            index_kind=index_kind,
            gao=gao,
            limit=limit,
            trace=trace,
            attempt=attempt,
            metrics=_metrics.REGISTRY.enabled,
        )
        if report is not None:
            # Attempts and successes are tallied apart: a shard whose
            # worker dies mid-compute counts one attempt here and no
            # success, while its quarantine re-run in-parent touches
            # neither — so fault runs no longer double-count dispatches.
            report.dispatch_attempts += 1
        try:
            self._conns[wid].send(task)
        except (BrokenPipeError, OSError) as exc:
            raise _WorkerDied(
                f"worker {wid} is gone at dispatch: {exc}"
            ) from exc

    def _receive(self, wid: int) -> ShardResult:
        try:
            result = self._conns[wid].recv()
        except (EOFError, OSError) as exc:
            raise _WorkerDied(
                f"worker {wid} died mid-shard: {exc}"
            ) from exc
        for key in result.evicted:
            self._known[wid].discard(key)
            seg_id = self._seg_refs[wid].pop(key, None)
            if seg_id is not None and seg_id not in (
                self._seg_refs[wid].values()
            ):
                _shm.ARENA.release(seg_id, (id(self), wid))
        # Fold the worker's registry movement in right here — the one
        # chokepoint every result passes through (normal completions,
        # error results headed for quarantine, even abandoned-run
        # drains), so supervision paths never drop worker telemetry.
        if result.metrics is not None:
            _metrics.merge_wire_delta(
                _metrics.REGISTRY,
                result.metrics,
                worker_prefix=f"worker.{wid}",
            )
            result.metrics = None  # consumed; never fold twice
        return result

    # -- lifecycle -------------------------------------------------------------

    def _invalidate(self) -> None:
        """Tear down after a protocol failure; drop from the registry."""
        self.close(graceful=False)
        pools = _POOLS.get(self.num_workers)
        if pools is not None and self in pools:
            pools.remove(self)

    def close(self, graceful: bool = True) -> None:
        if self.closed:
            return
        self.closed = True
        for conn in self._conns:
            if graceful:
                try:
                    conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + (2.0 if graceful else 0.2)
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
        for conn in self._conns:
            conn.close()
        # Workers are gone (or going): their segment attachments die
        # with them, so every arena owner this pool held is released.
        for refs in self._seg_refs:
            refs.clear()
        _shm.ARENA.release_owners(id(self))


_POOLS: Dict[int, List[WorkerPool]] = {}


def get_pool(num_workers: int) -> WorkerPool:
    """An *idle* persistent pool for a worker count.

    Pools are memoized and reused across queries (that's what keeps the
    per-worker relation caches warm), but a pool mid-run is never handed
    out again: a second parallel cursor consumed while the first is
    still open gets its own pool, because the pipe protocol cannot carry
    two runs at once.  Idle pools are recycled; extra pools accumulate
    only while that many parallel runs are genuinely open at once.

    May raise ``OSError`` when worker processes cannot be spawned at
    all; :func:`repro.parallel.merge.run_shards` degrades that into
    serial in-process execution.
    """
    pools = _POOLS.setdefault(num_workers, [])
    pools[:] = [p for p in pools if not p.closed]
    for pool in pools:
        if not pool.active:
            return pool
    pool = WorkerPool(num_workers)
    pools.append(pool)
    return pool


def shutdown_pools() -> None:
    """Close every memoized pool and unlink the arena's segments
    (registered atexit; callable in tests)."""
    for pools in _POOLS.values():
        for pool in pools:
            pool.close()
    _POOLS.clear()
    _shm.ARENA.close()


atexit.register(shutdown_pools)
