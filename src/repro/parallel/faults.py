"""Deterministic fault injection for the shard-parallel plane.

The supervision machinery in :mod:`~repro.parallel.scheduler` exists to
survive worker crashes, hangs, serialization failures and resource
exhaustion — events that are, by nature, impossible to reproduce on
demand.  This module makes them reproducible: a :class:`FaultPlan`
parsed from the ``REPRO_FAULTS`` environment variable describes exactly
which fault fires on which shard (and how many times), and the hooks in
the workers, the scheduler and the shm arena consult it at the moments
where the real failures would strike.

The plan rides on the *environment*, not on shared state: forked
workers inherit the parent's environment, so the same spec is visible on
both sides of the pipe with no extra wire traffic, and counting is done
against the task's ``attempt`` number — a pure function of
``(shard_id, attempt)`` — so "crash twice, then succeed" needs no
cross-process counter.

Spec grammar (comma-separated tokens)::

    crash@K[*N]        worker running shard K os._exit()s, N times (default 1)
    hang@K[*N]         worker running shard K sleeps forever, N times
    error@K[*N]        shard K raises InjectedFault in the worker, N times
    unpicklable@K[*N]  shard K's result fails to pickle on send, N times
    spawn[*N]          the next N WorkerPool constructions fail
    shm-export[*N]     the next N ShmArena.export calls raise

``*inf`` (or ``*always``) makes a fault permanent — the quarantine /
degradation paths exist for exactly those.  Example::

    REPRO_FAULTS="crash@3,hang@7*2,shm-export*1"

Worker-scoped faults (crash/hang/error/unpicklable) fire only inside a
worker process (:func:`mark_worker` is called by ``worker_main``), so
the scheduler's serial in-parent re-execution of a quarantined shard is
never re-poisoned by the fault that quarantined it — mirroring reality,
where the parent does not share the worker's failure.

Everything here is test/benchmark machinery: with ``REPRO_FAULTS``
unset, :func:`plan` returns ``None`` after one cached ``os.environ``
read and no hook does anything.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

#: The environment variable carrying the fault spec.
FAULTS_ENV = "REPRO_FAULTS"

#: Sentinel repeat count for ``*inf`` — effectively "every attempt".
ALWAYS = 1 << 30

#: How long an injected hang sleeps.  Far beyond any deadline a test or
#: benchmark would configure; the supervisor kills the worker first.
HANG_SECONDS = 3600.0

#: Exit status of an injected crash (distinguishable from a real signal
#: death in ``Process.exitcode`` while debugging chaos runs).
CRASH_EXIT_CODE = 70


class InjectedFault(RuntimeError):
    """The deterministic worker-side error ``error@K`` raises."""


class Unpicklable:
    """An object whose pickling always fails — stand-in for the exotic
    stats objects that would break ``conn.send`` in the wild."""

    def __reduce__(self):
        raise TypeError("injected unpicklable result (REPRO_FAULTS)")


@dataclass
class FaultPlan:
    """A parsed fault spec.

    Shard-scoped faults map ``shard_id → remaining count`` and are
    checked statelessly against the task's attempt number; pool-scoped
    faults (``spawn``, ``shm_export``) are parent-side countdowns
    consumed by ``take_*``.
    """

    crash: Dict[int, int] = field(default_factory=dict)
    hang: Dict[int, int] = field(default_factory=dict)
    error: Dict[int, int] = field(default_factory=dict)
    unpicklable: Dict[int, int] = field(default_factory=dict)
    spawn: int = 0
    shm_export: int = 0

    # -- shard-scoped (deterministic on (shard, attempt)) ----------------------

    def should_crash(self, shard_id: int, attempt: int) -> bool:
        return attempt < self.crash.get(shard_id, 0)

    def should_hang(self, shard_id: int, attempt: int) -> bool:
        return attempt < self.hang.get(shard_id, 0)

    def should_error(self, shard_id: int, attempt: int) -> bool:
        return attempt < self.error.get(shard_id, 0)

    def should_unpickle_fail(self, shard_id: int, attempt: int) -> bool:
        return attempt < self.unpicklable.get(shard_id, 0)

    # -- parent-scoped countdowns ----------------------------------------------

    def take_spawn_failure(self) -> bool:
        if self.spawn <= 0:
            return False
        if self.spawn < ALWAYS:
            self.spawn -= 1
        return True

    def take_shm_export_failure(self) -> bool:
        if self.shm_export <= 0:
            return False
        if self.shm_export < ALWAYS:
            self.shm_export -= 1
        return True


def parse_faults(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string (raises ``ValueError``)."""
    fp = FaultPlan()
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        body, _, count_s = token.partition("*")
        count_s = count_s.strip()
        if count_s in ("inf", "always"):
            count = ALWAYS
        elif count_s:
            count = int(count_s)
        else:
            count = 1
        kind, at, shard_s = body.partition("@")
        kind = kind.strip().lower().replace("_", "-")
        if kind in ("crash", "hang", "error", "unpicklable"):
            if not at:
                raise ValueError(
                    f"fault {kind!r} needs a shard: {kind}@K in {FAULTS_ENV}"
                )
            getattr(fp, kind.replace("-", "_"))[int(shard_s)] = count
        elif kind == "spawn":
            fp.spawn = count
        elif kind in ("shm-export", "shmexport"):
            fp.shm_export = count
        else:
            raise ValueError(
                f"unknown fault kind {kind!r} in {FAULTS_ENV}={spec!r}"
            )
    return fp


# The plan is cached per spec string so the fault-free path costs one
# environ read; take_* countdowns mutate the cached plan, which is what
# makes "spawn*1" mean one failure per process, not one per call site.
_CACHED_SPEC: Optional[str] = None
_CACHED_PLAN: Optional[FaultPlan] = None


def plan() -> Optional[FaultPlan]:
    """The active fault plan, or ``None`` when ``REPRO_FAULTS`` is unset."""
    global _CACHED_SPEC, _CACHED_PLAN
    spec = os.environ.get(FAULTS_ENV)
    if spec != _CACHED_SPEC:
        _CACHED_SPEC = spec
        _CACHED_PLAN = parse_faults(spec) if spec else None
    return _CACHED_PLAN


def reset() -> None:
    """Drop the cached plan (tests re-arming the same spec string)."""
    global _CACHED_SPEC, _CACHED_PLAN
    _CACHED_SPEC = None
    _CACHED_PLAN = None


# Worker-scoped faults fire only in worker processes.  The flag is set
# by worker_main after fork/spawn; the parent (and its serial in-parent
# quarantine path) always sees False.
_IN_WORKER = False


def mark_worker() -> None:
    """Declare this process a shard worker (called by ``worker_main``)."""
    global _IN_WORKER
    _IN_WORKER = True


def in_worker() -> bool:
    return _IN_WORKER


def maybe_fire(fp: FaultPlan, shard_id: int, attempt: int) -> None:
    """Fire any worker-scoped execution fault armed for this attempt.

    Called from ``execute_shard`` once the shard's relations are
    materialized (so crashes leave the scheduler's cache mirror with
    real divergence to clean up — the hard case).  No-op outside a
    worker process.
    """
    if not _IN_WORKER:
        return
    if fp.should_crash(shard_id, attempt):
        os._exit(CRASH_EXIT_CODE)
    if fp.should_hang(shard_id, attempt):
        time.sleep(HANG_SECONDS)
    if fp.should_error(shard_id, attempt):
        raise InjectedFault(
            f"injected deterministic fault on shard {shard_id} "
            f"(attempt {attempt})"
        )
