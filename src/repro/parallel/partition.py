"""Dyadic output-space partitioning: shards, split choice, clipping.

A **shard** is one cell of a partition of the output box space: a
conjunction of packed dyadic intervals, one per planner-chosen split
attribute.  The shards of a partition are pairwise disjoint and cover
the whole space — every output tuple's projection onto the split
attributes lands in exactly one shard — so per-shard join results can
be concatenated without deduplication.

Partitioning applies the same split rule as Section 4.5's balanced
partitions (``repro.core.balance.balanced_partition``: halve every
interval that is too heavy, yielding a prefix-free dyadic code) — here
steered by data and generalized to several axes rather than calling
that single-axis, threshold-driven helper: starting from the root cell
⟨λ, …, λ⟩, repeatedly split the *heaviest* cell along the axis whose
dyadic halving divides its load most evenly, until the requested shard
count is reached.  Load is measured as clipped input size, read off the
PR-3 cached sorted views with two bisections per (relation, interval) —
the partitioner never scans a relation.

Clipping a relation to a shard is the same bisect range on the cached
view with the constrained attribute leading: zero-copy on the parent
(the view is the memoized one every other consumer shares) and compact
on the wire (the clipped relation pickles as schema + rows only, see
``Relation.__getstate__``).
"""

from __future__ import annotations

import bisect
import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core import intervals as dy
from repro.core.intervals import PLAMBDA, Packed
from repro.relational.query import Database, JoinQuery
from repro.relational.relation import Relation, SortedView

Row = Tuple[int, ...]

#: Default number of shards dealt per worker: oversharding lets the
#: scheduler re-deal around skew (a straggler shard delays one worker by
#: one shard, not by the whole skewed half of the space).
OVERSHARD = 4


def default_num_shards(workers: int) -> int:
    """The 2^k shard count for a worker count: ~OVERSHARD× oversharded."""
    target = max(1, workers) * OVERSHARD
    return 1 << (target - 1).bit_length()


@dataclass(frozen=True)
class Shard:
    """One dyadic cell of the output space: attr → packed interval.

    ``constraints`` is ordered by split attribute (the planner's order)
    and covers *every* split attribute — unsplit axes carry λ, so two
    shards of one partition always constrain the same attribute tuple.
    """

    constraints: Tuple[Tuple[str, Packed], ...]

    def interval(self, attr: str) -> Optional[Packed]:
        for a, p in self.constraints:
            if a == attr:
                return p
        return None

    def value_range(self, attr: str, depth: int) -> Tuple[int, int]:
        """The inclusive ``[lo, hi]`` value range on one split attribute."""
        p = self.interval(attr)
        if p is None:
            return 0, (1 << depth) - 1
        return _packed_range(p, depth)

    def describe(self) -> str:
        """``A=01*, B=λ`` — the bitstring form the EXPLAIN tree renders."""
        return ", ".join(
            f"{a}={dy.pto_bits(p)}{'' if p == PLAMBDA else '*'}"
            for a, p in self.constraints
        )

    def sort_key(self) -> Tuple:
        return tuple(p for _, p in self.constraints)


def _packed_range(p: Packed, depth: int) -> Tuple[int, int]:
    """Inclusive value range of a packed dyadic interval at ``depth``."""
    length = p.bit_length() - 1
    if length > depth:
        raise ValueError(
            f"interval {dy.pto_bits(p)} deeper than domain depth {depth}"
        )
    span = depth - length
    lo = (p ^ (1 << length)) << span
    return lo, lo + (1 << span) - 1


def leading_view(rel: Relation, attr: str) -> SortedView:
    """The relation's memoized sorted view with ``attr`` leading.

    Schema order when ``attr`` already leads (that view always exists),
    otherwise ``(attr, …rest in schema order)`` — the same view clipping
    uses, so the partitioner's weight probes warm the cache clipping
    reads.
    """
    attrs = rel.schema.attrs
    if attrs[0] == attr:
        return rel.view(attrs)
    order = (attr,) + tuple(a for a in attrs if a != attr)
    return rel.view(order)


def clipped_count(rel: Relation, attr: str, lo: int, hi: int) -> int:
    """|σ_{lo ≤ attr ≤ hi}(R)| via two bisections on the cached view."""
    rows = leading_view(rel, attr).rows
    left = bisect.bisect_left(rows, (lo,))
    right = bisect.bisect_left(rows, (hi + 1,))
    return right - left


def attr_distinct_bounds(query: JoinQuery, db: Database) -> Dict[str, int]:
    """Per-variable max distinct count across the relations mentioning it."""
    bounds: Dict[str, int] = {}
    for atom in query.atoms:
        counts = db[atom.name].distinct_counts()
        for attr, schema_attr in zip(atom.attrs, db[atom.name].attrs):
            d = counts.get(schema_attr, 1)
            bounds[attr] = max(bounds.get(attr, 0), d)
    return bounds


def choose_split_attrs(
    query: JoinQuery,
    distinct_by_attr: Mapping[str, int],
    max_attrs: int = 2,
) -> Tuple[str, ...]:
    """Greedy set-cover of the query's atoms by split attributes.

    Each round picks the variable clipping the most not-yet-clipped
    atoms, breaking ties toward higher distinct counts (more dyadic
    levels to split on).  Atoms containing no split attribute are
    replicated to every shard — redundant work — so coverage dominates
    the score; variables with ≤ 1 distinct value cannot split anything
    and are never chosen.
    """
    uncovered = {a.name: set(a.attrs) for a in query.atoms}
    chosen: List[str] = []
    while uncovered and len(chosen) < max_attrs:
        best = None
        best_score = None
        for var in query.variables:
            if var in chosen or distinct_by_attr.get(var, 1) <= 1:
                continue
            covers = sum(1 for attrs in uncovered.values() if var in attrs)
            if covers == 0:
                continue
            score = (covers, distinct_by_attr.get(var, 1))
            if best_score is None or score > best_score:
                best, best_score = var, score
        if best is None:
            break
        chosen.append(best)
        uncovered = {
            name: attrs
            for name, attrs in uncovered.items()
            if best not in attrs
        }
    return tuple(chosen)


class _Cell:
    """A mutable partition cell during the heaviest-first split loop."""

    __slots__ = ("intervals", "weight")

    def __init__(self, intervals: Dict[str, Packed], weight: int):
        self.intervals = intervals
        self.weight = weight


def _cell_weight(
    cell_intervals: Mapping[str, Packed],
    relations: Sequence[Tuple[Relation, Dict[str, str]]],
    depth: int,
) -> int:
    """Load estimate of a cell: Σ over relations of the clipped size.

    A relation constrained on several split attributes is counted at the
    *tightest* single-attribute clip (exact multi-attribute counts would
    need one probe per constraint combination; min is a safe proxy for
    balancing).  Relations containing no split attribute contribute their
    full size — they really are replicated to every shard.
    """
    total = 0
    for rel, by_query_attr in relations:
        best = len(rel)
        for query_attr, schema_attr in by_query_attr.items():
            p = cell_intervals.get(query_attr, PLAMBDA)
            if p == PLAMBDA:
                continue
            lo, hi = _packed_range(p, depth)
            best = min(best, clipped_count(rel, schema_attr, lo, hi))
        total += best
    return total


def partition_shards(
    query: JoinQuery,
    db: Database,
    num_shards: int,
    split_attrs: Optional[Sequence[str]] = None,
) -> Tuple[Shard, ...]:
    """Partition the output box space into ≤ ``num_shards`` dyadic shards.

    The balanced-partition split rule of Proposition F.4, steered by
    data: pop the heaviest cell, halve it along the split attribute that
    levels its two children best, repeat.  Stops early when every
    remaining cell is a unit box on all split axes or carries no load.
    The returned shards are disjoint, cover the space, and are sorted by
    their packed intervals (deterministic for fixed inputs).
    """
    depth = db.domain.depth
    if split_attrs is None:
        split_attrs = choose_split_attrs(
            query, attr_distinct_bounds(query, db)
        )
    split_attrs = tuple(split_attrs)
    root = Shard(tuple((a, PLAMBDA) for a in split_attrs))
    if num_shards <= 1 or not split_attrs or depth == 0:
        return (root,)

    # (relation, {query attr → schema attr}) for every atom touching a
    # split attribute; the weight function bisects these.
    relations: List[Tuple[Relation, Dict[str, str]]] = []
    for atom in query.atoms:
        rel = db[atom.name]
        mapping = {
            qa: sa
            for qa, sa in zip(atom.attrs, rel.attrs)
            if qa in split_attrs
        }
        relations.append((rel, mapping))

    unit_bit = 1 << depth
    counter = itertools.count()  # heap tiebreak: stable, never compares cells
    start = _Cell(
        {a: PLAMBDA for a in split_attrs},
        _cell_weight({a: PLAMBDA for a in split_attrs}, relations, depth),
    )
    heap: List[Tuple[int, int, _Cell]] = [(-start.weight, next(counter), start)]
    done: List[_Cell] = []
    while heap and len(heap) + len(done) < num_shards:
        neg_weight, _, cell = heapq.heappop(heap)
        if -neg_weight <= 0:
            # Heaviest cell is empty: splitting further cannot balance
            # anything (and the empties will be pruned before dispatch).
            done.append(cell)
            break
        best_axis = None
        best_children: Optional[Tuple[int, int]] = None
        for attr in split_attrs:
            p = cell.intervals[attr]
            if p >= unit_bit:  # unit interval: this axis is exhausted
                continue
            children = []
            for half in (p << 1, (p << 1) | 1):
                trial = dict(cell.intervals)
                trial[attr] = half
                children.append(_cell_weight(trial, relations, depth))
            imbalance = max(children)
            if best_children is None or imbalance < max(best_children):
                best_axis = attr
                best_children = (children[0], children[1])
        if best_axis is None:
            done.append(cell)  # unit box on every axis; cannot split
            continue
        p = cell.intervals[best_axis]
        for half, weight in zip(
            (p << 1, (p << 1) | 1), best_children
        ):
            child = dict(cell.intervals)
            child[best_axis] = half
            heapq.heappush(
                heap, (-weight, next(counter), _Cell(child, weight))
            )
    cells = done + [cell for _, _, cell in heap]
    shards = [
        Shard(tuple((a, cell.intervals[a]) for a in split_attrs))
        for cell in cells
    ]
    return tuple(sorted(shards, key=Shard.sort_key))


def clip_range(
    rel: Relation,
    shard: Shard,
    depth: int,
    attr_map: Optional[Mapping[str, str]] = None,
) -> Optional[Tuple[int, int]]:
    """The shard's clip as a canonical-row range, where one exists.

    When exactly one schema attribute is constrained and it is the
    schema-*leading* one, :func:`clip_relation`'s selection is a
    contiguous ``[lo, hi)`` slice of the relation's canonical sorted
    rows — the shape the shared-memory data plane ships as an
    ``ShmSlice`` over the base segment instead of materializing a
    clipped copy.  Returns ``None`` when the clip is not such a slice
    (no constraint at all, a non-leading attribute, or several
    constrained attributes): callers fall back to
    :func:`clip_relation`.
    """
    if attr_map is None:
        attr_map = {a: a for a in rel.schema.attrs}
    constrained = [
        (attr_map[a], p)
        for a, p in shard.constraints
        if p != PLAMBDA and a in attr_map
    ]
    if len(constrained) != 1:
        return None
    attr, packed = constrained[0]
    if attr != rel.schema.attrs[0]:
        return None
    lo, hi = _packed_range(packed, depth)
    rows = rel.view(rel.schema.attrs).rows
    left = bisect.bisect_left(rows, (lo,))
    right = bisect.bisect_left(rows, (hi + 1,), left)
    return left, right


def clip_slice(
    rel: Relation,
    shard: Shard,
    depth: int,
    attr_map: Optional[Mapping[str, str]] = None,
) -> Optional[Tuple[int, int, Tuple[Tuple[int, int, int], ...]]]:
    """The shard's clip as a leading slice plus a residual box, if any.

    Generalizes :func:`clip_range` to the shape the shared-memory plane
    actually ships: whenever the schema-*leading* attribute is
    constrained, the clip is the bisected canonical row range of that
    constraint — ``(lo, hi)`` — with every *further* constrained
    attribute carried as an inclusive ``(column index, lo, hi)`` filter
    the worker applies to the slice on arrival.  The parent then never
    materializes the clipped rows at all: one bisect here, the residual
    scan on the worker (in parallel, over the shared columns).

    Returns ``None`` when the clip is not slice-shaped — nothing
    constrained (ship the whole relation) or the leading attribute
    unconstrained (the bisect would need a non-canonical sort order);
    callers fall back to :func:`clip_relation`.  A returned range with
    ``hi <= lo`` means the clip is *provably empty* — the leading range
    bisected to nothing, or a residual range is disjoint from its
    column's value range — and the shard can be pruned without
    dispatching.
    """
    if attr_map is None:
        attr_map = {a: a for a in rel.schema.attrs}
    constrained = [
        (attr_map[a], p)
        for a, p in shard.constraints
        if p != PLAMBDA and a in attr_map
    ]
    if not constrained:
        return None
    attrs = rel.schema.attrs
    by_attr = dict(constrained)
    if attrs[0] not in by_attr:
        return None
    lo_v, hi_v = _packed_range(by_attr[attrs[0]], depth)
    rows = rel.view(attrs).rows
    left = bisect.bisect_left(rows, (lo_v,))
    right = bisect.bisect_left(rows, (hi_v + 1,), left)
    rest: List[Tuple[int, int, int]] = []
    ranges = rel.column_ranges()
    for attr, p in constrained:
        if attr == attrs[0]:
            continue
        r_lo, r_hi = _packed_range(p, depth)
        col_lo, col_hi = ranges.get(attr, (0, -1))
        if r_lo > col_hi or r_hi < col_lo:
            return 0, 0, ()
        rest.append((attrs.index(attr), r_lo, r_hi))
    return left, right, tuple(rest)


def clip_relation(
    rel: Relation,
    shard: Shard,
    depth: int,
    attr_map: Optional[Mapping[str, str]] = None,
) -> Relation:
    """σ_shard(R): the rows consistent with a shard's intervals.

    ``attr_map`` translates query attributes to the relation's schema
    attributes (positional, the same convention the stats collector
    uses); identity when omitted.  Returns ``rel`` itself (shared, no
    copy) when no split attribute appears in the schema.  Otherwise one
    bisect range on the cached sorted view with the primary constrained
    attribute leading, plus a per-row range check for any further
    constrained attributes, rebuilt into a relation through the trusted
    fast path (no re-validation).
    """
    if attr_map is None:
        attr_map = {a: a for a in rel.schema.attrs}
    constrained = [
        (attr_map[a], p)
        for a, p in shard.constraints
        if p != PLAMBDA and a in attr_map
    ]
    if not constrained:
        return rel
    attrs = rel.schema.attrs
    # Prefer the schema-leading attribute: its bisect slice of the
    # canonical view is already in schema order — no permute, no re-sort.
    primary = next((a for a, _ in constrained if a == attrs[0]),
                   constrained[0][0])
    view = leading_view(rel, primary)
    lo, hi = _packed_range(dict(constrained)[primary], depth)
    rows = view.rows
    left = bisect.bisect_left(rows, (lo,))
    right = bisect.bisect_left(rows, (hi + 1,))
    selected = rows[left:right]
    rest = [
        (view.attr_order.index(a), _packed_range(p, depth))
        for a, p in constrained
        if a != primary
    ]
    if rest:
        selected = [
            r
            for r in selected
            if all(lo2 <= r[i] <= hi2 for i, (lo2, hi2) in rest)
        ]
    if view.attr_order != attrs:
        perm = tuple(view.attr_order.index(a) for a in attrs)
        selected = sorted(tuple(r[i] for i in perm) for r in selected)
    return Relation.from_sorted_rows(rel.schema, selected, rel.domain)


def clip_database(
    query: JoinQuery, db: Database, shard: Shard
) -> Optional[Database]:
    """The shard's database: every atom clipped, or ``None`` when pruned.

    A shard in which any relation clips to empty cannot produce output;
    returning ``None`` lets the scheduler skip it without dispatching.
    """
    depth = db.domain.depth
    clipped: List[Relation] = []
    for atom in query.atoms:
        rel = db[atom.name]
        attr_map = dict(zip(atom.attrs, rel.attrs))
        piece = clip_relation(rel, shard, depth, attr_map)
        if len(piece) == 0:
            return None
        clipped.append(piece)
    return Database(clipped)
